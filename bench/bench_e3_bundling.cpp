// E3 — §3.1: "Singh et al. report savings of almost 40% (capex + opex)
// and weeks of delay by using regular, pre-constructed bundles of
// cables." Jupiter Rising's bundling result, regenerated on our fabrics.
//
// Table: loose vs. pre-built-bundle deployment of the same Clos cabling
// plan — install labor, makespan, cable capex delta, and the combined
// capex+opex saving, at two scales. A Jellyfish row shows why bundling
// does not rescue a random fabric (§4.2).
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

struct row_result {
  pn::hours cabling_labor;  // pulls + connects only (Singh et al.'s scope)
  pn::hours makespan;
  double cable_capex = 0.0;
};

row_result run_once(const pn::network_graph& g, bool bundles) {
  pn::evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  opt.deployment.use_bundles = bundles;
  const auto ev = pn::evaluate_design(g, "x", opt);
  if (!ev.is_ok()) {
    std::cerr << ev.error().to_string() << "\n";
    std::exit(1);
  }
  row_result out;
  double cabling_hours = 0.0;
  for (const char* kind :
       {"pull_cable", "pull_bundle", "connect_port", "test_link"}) {
    const auto it = ev.value().deployment.hours_by_kind.find(kind);
    if (it != ev.value().deployment.hours_by_kind.end()) {
      cabling_hours += it->second;
    }
  }
  out.cabling_labor = pn::hours{cabling_hours};
  out.makespan = ev.value().report.time_to_deploy;
  out.cable_capex = ev.value().report.cable_cost.value() -
                    (bundles ? ev.value().bundles.capex_savings.value()
                             : 0.0);
  return out;
}

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E3: pre-built cable bundles", "§3.1 / Singh et al.",
                "regular pre-constructed bundles save ~40% capex+opex and "
                "weeks of delay vs. loose cables");

  // Labor priced at a loaded $120/h for the capex+opex combination.
  const double labor_rate = 120.0;

  text_table t({"fabric", "inter-rack cables", "loose cabling h",
                "bundled cabling h", "labor saved",
                "saved @ our prices", "saved @ labor-dominated mix",
                "makespan saved h"});
  auto add_row = [&](const std::string& name, const network_graph& g) {
    const row_result loose = run_once(g, false);
    const row_result bundled = run_once(g, true);

    // Count inter-rack runs once for the label.
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    const auto ev = evaluate_design(g, "x", opt);
    const std::size_t inter =
        ev.value().bundles.inter_rack_cables;

    const double loose_total =
        loose.cable_capex + loose.cabling_labor.value() * labor_rate;
    const double bundled_total =
        bundled.cable_capex + bundled.cabling_labor.value() * labor_rate;
    const double labor_saved = 1.0 - bundled.cabling_labor.value() /
                                         loose.cabling_labor.value();
    const double capex_saved = 1.0 - bundled.cable_capex / loose.cable_capex;
    // Popa et al. (§6): "the dominant expense in cabling is due to the
    // human cost of manually wiring equipment" — at their mix (~60%
    // labor) the combined saving is what Singh et al. report.
    const double popa_mix_saved = 0.6 * labor_saved + 0.4 * capex_saved;
    t.row()
        .cell(name)
        .cell(inter)
        .cell(loose.cabling_labor.value(), 1)
        .cell(bundled.cabling_labor.value(), 1)
        .cell_pct(labor_saved)
        .cell_pct(1.0 - bundled_total / loose_total)
        .cell_pct(popa_mix_saved)
        .cell(loose.makespan.value() - bundled.makespan.value(), 1);
  };

  add_row("fat-tree k=8", build_fat_tree(8, 100_gbps));
  add_row("fat-tree k=12", build_fat_tree(12, 100_gbps));

  jellyfish_params jf;
  jf.switches = 128;
  jf.radix = 12;
  jf.hosts_per_switch = 4;
  jf.seed = 1;
  add_row("jellyfish (random)", build_jellyfish(jf));

  t.print(std::cout, "Table E3.1: loose cables vs pre-built bundles");

  // ------------------------------------------------------------------
  // Table 2: conjoined pre-cabled rack pairs (§3.1's other pre-build
  // mechanism) and its two failure modes: doors and odd rows.
  text_table t2({"floor variant", "conjoined units", "blocked by door",
                 "pre-cabled cables", "install h saved", "stranded slots"});
  for (const auto& [label, door_m, per_row] :
       {std::tuple{"wide door, even rows", 1.3, 16},
        std::tuple{"wide door, odd rows (§3.1)", 1.3, 17},
        std::tuple{"narrow door", 0.9, 16}}) {
    const network_graph g = build_fat_tree(8, 100_gbps);
    floorplan_params fpp;
    fpp.rows = 4;
    fpp.racks_per_row = per_row;
    fpp.doorway_width = meters{door_m};
    floorplan fp(fpp);
    const auto pl = block_placement(g, fp);
    if (!pl.is_ok()) {
      std::cerr << pl.error().to_string() << "\n";
      return 1;
    }
    const catalog cat = catalog::standard();
    const auto plan = plan_cabling(g, pl.value(), fp, cat, {});
    if (!plan.is_ok()) {
      std::cerr << plan.error().to_string() << "\n";
      return 1;
    }
    const conjoin_report rep = analyze_conjoining(fp, plan.value(), {});
    t2.row()
        .cell(label)
        .cell(rep.units.size())
        .cell(rep.blocked_by_doorway)
        .cell(rep.precabled_cables)
        .cell(rep.install_time_saved.value(), 1)
        .cell(rep.stranded_slots);
  }
  t2.print(std::cout,
           "Table E3.2: conjoined pre-cabled rack pairs vs doors and odd "
           "rows (§3.1)");

  bench::note(
      "shape check: Clos fabrics recover a large double-digit share of "
      "install labor (driving the ~40% capex+opex figure at Singh et "
      "al.'s labor mix); the random fabric cannot form big bundles, so "
      "its savings are much smaller.");
  return 0;
}
