// E13 — §3.1: "Free-space optics require unobstructed paths between
// racks, which is hard to guarantee ... 60GHz wireless links probably
// cannot be packed tightly enough to entirely replace large bundles of
// fibers."
//
// Table: for two fabric scales, what fraction of the inter-rack cable
// plan's capacity a 60GHz ceiling-mirror deployment or an FSO deployment
// could actually deliver, and which limit binds (range, radios, beam
// packing, obstruction).
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"
#include "physical/wireless.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E13: can wireless replace the cables?", "§3.1",
                "FSO needs unobstructed paths; 60GHz cannot pack tightly "
                "enough to replace cable bundles");

  text_table t({"fabric", "technology", "inter-rack links", "in range",
                "radio-limited to", "concurrent beams", "demanded Gbps",
                "deliverable Gbps", "capacity replaced"});

  // Rack-level fabrics with one ToR per rack — the setting the wireless
  // proposals actually target (beams between rack tops).
  struct fabric {
    std::string label;
    network_graph g;
  };
  std::vector<fabric> fabrics;
  {
    // A flat ToR-to-ToR fabric spread one switch per rack — exactly the
    // "replace the cable mesh with beams" proposal.
    flattened_butterfly_params p;
    p.dims = {8, 8};
    p.hosts_per_switch = 16;
    fabrics.push_back({"flat ToR mesh 8x8", build_flattened_butterfly(p)});
  }
  fabrics.push_back({"fat-tree k=12", build_fat_tree(12, 100_gbps)});

  for (const auto& f : fabrics) {
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    const auto ev = evaluate_design(f.g, f.label, opt);
    if (!ev.is_ok()) {
      std::cerr << ev.error().to_string() << "\n";
      return 1;
    }
    for (const auto& [label, params] :
         {std::pair<const char*, wireless_params>{"60GHz (ceiling mirror)",
                                                  wireless_params::wigig()},
          {"free-space optics", wireless_params::fso()}}) {
      const wireless_report rep = assess_wireless_substitution(
          ev.value().floor, ev.value().cables, params);
      t.row()
          .cell(f.label)
          .cell(label)
          .cell(rep.links_requested)
          .cell(rep.links_in_range)
          .cell(rep.links_with_radios)
          .cell(rep.concurrent_beams)
          .cell(human_count(rep.demanded_gbps))
          .cell(human_count(rep.deliverable_gbps))
          .cell_pct(rep.capacity_fraction);
    }
  }
  t.print(std::cout,
          "Table E13.1: wireless substitution of the inter-rack cable "
          "plan");

  bench::note(
      "shape check: both technologies replace only a small fraction of "
      "the cable plan's capacity — 60GHz is beam-packing- and rate-"
      "limited, FSO is obstruction- and radio-limited — matching the "
      "paper's dismissal of both as bundle replacements.");
  return 0;
}
