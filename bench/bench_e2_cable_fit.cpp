// E2 — §3.1: the AWS cable data. "The 2.5m cables they used within switch
// racks went from a 6.7mm OD for 100Gbps to an 11mm OD for 400Gbps ...
// their cross-sectional area increases by 2.7X. Such cables are much
// harder (or impossible?) to fit into a rack full of switches (they
// report using 256 cables in a rack). Therefore, they switched to active
// electrical cables."
//
// Table 1: per-medium geometry and cost at each rate.
// Table 2: can 256 intra-rack cables fit the rack plenum, per medium and
// rate — the decision that drove AWS to AEC.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E2: rack cable fit across media and rates", "§3.1 (AWS)",
                "400G DAC has 2.7x the cross-section of 100G DAC; 256 of "
                "them no longer fit a rack, forcing AEC");

  const catalog cat = catalog::standard();
  const meters run{2.5};  // AWS's intra-rack length
  const int cables_in_rack = 256;
  // A rack *full of switches* has far less free cross-section than the
  // general-purpose rack plenum: the chassis occupy most of the depth.
  const square_millimeters plenum{20000.0};

  text_table t1({"rate", "medium", "OD mm", "area mm^2",
                 "area vs 100G DAC", "cost/cable", "power W", "reach m"});
  const double base_area = circle_area(6.7_mm).value();
  for (const gbps rate : {100_gbps, 200_gbps, 400_gbps, 800_gbps}) {
    for (const link_choice& lc : cat.link_options(rate, run)) {
      t1.row()
          .cell(str_format("%.0fG", rate.value()))
          .cell(cable_medium_name(lc.cable->medium))
          .cell(lc.diameter.value(), 1)
          .cell(circle_area(lc.diameter).value(), 1)
          .cell(str_format("%.2fx",
                           circle_area(lc.diameter).value() / base_area))
          .cell(human_dollars(lc.total_cost.value()))
          .cell(lc.total_power.value(), 1)
          .cell(lc.cable->max_length.value(), 1);
    }
  }
  t1.print(std::cout, "Table E2.1: media at a 2.5m intra-rack run");

  text_table t2({"rate", "medium", "256-cable bundle mm^2", "plenum fill",
                 "fits?", "airflow margin"});
  for (const gbps rate : {100_gbps, 400_gbps, 800_gbps}) {
    for (const link_choice& lc : cat.link_options(rate, run)) {
      const double area =
          circle_area(lc.diameter).value() * cables_in_rack;
      const double fill = area / plenum.value();
      t2.row()
          .cell(str_format("%.0fG", rate.value()))
          .cell(cable_medium_name(lc.cable->medium))
          .cell(area, 0)
          .cell_pct(fill)
          .cell(fill <= 1.0 ? "yes" : "NO")
          // §3.1 footnote: a thicket of cables impairs airflow; keep 30%.
          .cell(fill <= 0.7 ? "ok" : (fill <= 1.0 ? "impaired" : "none"));
    }
  }
  t2.print(std::cout,
           str_format("Table E2.2: %d cables vs a %.0f mm^2 rack plenum",
                      cables_in_rack, plenum.value()));

  bench::note(
      "shape check: 100G DAC fits; 400G DAC's ~2.7x area overflows or "
      "chokes airflow; 400G AEC restores the fit at a small cost premium "
      "and far below optics cost — the AWS decision.");
  return 0;
}
