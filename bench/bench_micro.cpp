// Microbenchmarks (google-benchmark) for the library's hot paths: a
// digital twin is only useful if dry runs and constraint sweeps are
// "rapid" (§5.3), so we track the cost of the core algorithms.
//
// `--json <path>` (or `--json=<path>`) additionally writes every result
// as op -> ns/op plus CSR-vs-reference speedup ratios, so successive
// runs are machine-comparable (see BENCH_micro.json at the repo root).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/physnet.h"
#include "search/engine.h"
#include "service/batcher.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace {

using namespace pn;
using namespace pn::literals;

void bm_build_fat_tree(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fat_tree(k, 100_gbps));
  }
}
BENCHMARK(bm_build_fat_tree)->Arg(8)->Arg(16);

void bm_build_jellyfish(benchmark::State& state) {
  jellyfish_params p;
  p.switches = static_cast<int>(state.range(0));
  p.radix = 24;
  p.hosts_per_switch = 12;
  for (auto _ : state) {
    p.seed++;
    benchmark::DoNotOptimize(build_jellyfish(p));
  }
}
BENCHMARK(bm_build_jellyfish)->Arg(128)->Arg(512);

// --- CSR snapshot + distance cache vs the adjacency-list reference ---

void bm_bfs_reference(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, node_id{i % g.node_count()}));
    ++i;
  }
}
BENCHMARK(bm_bfs_reference)->Arg(8)->Arg(16);

void bm_bfs_csr(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const csr_graph csr = csr_graph::build(g);
  bfs_workspace ws;
  std::vector<int> dist;
  std::size_t i = 0;
  for (auto _ : state) {
    ws.distances(csr, static_cast<std::uint32_t>(i % g.node_count()), dist);
    benchmark::DoNotOptimize(dist);
    ++i;
  }
}
BENCHMARK(bm_bfs_csr)->Arg(8)->Arg(16);

// One adjacency-list BFS per host-facing row — how every consumer
// gathered distances before the cache existed, and the "before" side of
// the bfs_rows_batched speedup.
void bm_bfs_rows_reference(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const std::vector<node_id> hf = g.host_facing_nodes();
  for (auto _ : state) {
    for (node_id s : hf) {
      benchmark::DoNotOptimize(bfs_distances(g, s));
    }
  }
}
BENCHMARK(bm_bfs_rows_reference)->Arg(8)->Arg(16);

// Batched (64-wide multi-source) fill of every host-facing row; the cache
// is rebuilt each iteration, so this is the evaluator's cold-start cost.
void bm_distance_warm_all(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const std::vector<node_id> hf = g.host_facing_nodes();
  for (auto _ : state) {
    distance_cache cache(g);
    cache.warm_all(hf, 1);
    benchmark::DoNotOptimize(cache.rows_cached());
  }
}
BENCHMARK(bm_distance_warm_all)->Arg(8)->Arg(16);

// The pre-CSR implementation of path-length stats (one std::queue BFS per
// host-facing source, sample_stats over all ordered pairs), kept here as
// the "before" side of the speedup pair. Mirrors the seed implementation.
path_length_stats path_length_stats_reference(const network_graph& g) {
  const auto sources = g.host_facing_nodes();
  path_length_stats out;
  sample_stats hops;
  for (node_id s : sources) {
    const std::vector<int> dist = bfs_distances(g, s);
    for (node_id t : sources) {
      if (s == t) continue;
      hops.add(static_cast<double>(dist[t.index()]));
    }
  }
  out.mean = hops.mean();
  out.diameter = static_cast<int>(hops.max());
  out.p99 = hops.percentile(0.99);
  out.hop_histogram.assign(static_cast<std::size_t>(out.diameter) + 1, 0.0);
  for (double h : hops.samples()) {
    out.hop_histogram[static_cast<std::size_t>(h)] += 1.0;
  }
  for (double& f : out.hop_histogram) {
    f /= static_cast<double>(hops.count());
  }
  return out;
}

void bm_path_length_stats_reference(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path_length_stats_reference(g));
  }
}
BENCHMARK(bm_path_length_stats_reference)->Arg(8)->Arg(16);

void bm_path_length_stats(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_path_length_stats(g));
  }
}
BENCHMARK(bm_path_length_stats)->Arg(8)->Arg(16);

void bm_ecmp_loads_reference(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_ecmp_loads_reference(g, tm));
  }
}
BENCHMARK(bm_ecmp_loads_reference)->Arg(8)->Arg(12);

void bm_ecmp_loads(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_ecmp_loads(g, tm));  // cold cache
  }
}
BENCHMARK(bm_ecmp_loads)->Arg(8)->Arg(12);

// Shared-cache variant: rows warmed once, reused every call — the shape
// the evaluator actually runs (stats, throughput, and repair sim share
// one cache per evaluation).
void bm_ecmp_loads_shared(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  distance_cache cache(g);
  cache.warm_all(g.host_facing_nodes(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_ecmp_loads(g, tm, cache));
  }
}
BENCHMARK(bm_ecmp_loads_shared)->Arg(8)->Arg(12);

void bm_ecmp_throughput(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecmp_throughput(g, tm));
  }
}
BENCHMARK(bm_ecmp_throughput)->Arg(8)->Arg(12);

void bm_plan_cabling(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const catalog cat = catalog::standard();
  evaluation_options opt;
  const floorplan_params fpp = auto_size_floor(g, opt.floor, 0.3);
  for (auto _ : state) {
    floorplan fp(fpp);
    auto pl = block_placement(g, fp);
    benchmark::DoNotOptimize(plan_cabling(g, pl.value(), fp, cat, {}));
  }
}
BENCHMARK(bm_plan_cabling)->Arg(8)->Arg(12);

void bm_tray_route(benchmark::State& state) {
  floorplan_params p;
  p.rows = 8;
  p.racks_per_row = 32;
  floorplan fp(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const rack_id a{i % fp.rack_count()};
    const rack_id b{(i * 7 + 13) % fp.rack_count()};
    if (a != b) {
      benchmark::DoNotOptimize(fp.routed_length(a, b));
    }
    ++i;
  }
}
BENCHMARK(bm_tray_route);

void bm_dry_run_decom(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  const auto ev = evaluate_design(g, "x", opt);
  const twin_model twin =
      build_network_twin(g, ev.value().place, ev.value().floor,
                         ev.value().cables, catalog::standard());
  const twin_schema schema = twin_schema::network_schema();
  const auto plan = safe_decom_plan(twin, {"spine0/sw0"});
  dry_run_options dopt;
  dopt.validate_each_step = false;
  for (auto _ : state) {
    dry_run_engine eng(twin, &schema);
    benchmark::DoNotOptimize(eng.run(plan, dopt));
  }
}
BENCHMARK(bm_dry_run_decom);

void bm_constraint_sweep(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto ev = evaluate_design(g, "x", opt);
  const catalog cat = catalog::standard();
  const physical_design d{&g, &ev.value().place, &ev.value().floor,
                          &ev.value().cables, &cat};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_all_checks(d));
  }
}
BENCHMARK(bm_constraint_sweep);

void bm_simulate_deployment(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto ev = evaluate_design(g, "x", opt);
  const work_order wo = build_deployment_order(
      g, ev.value().place, ev.value().floor, ev.value().cables, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_deployment(wo, {}));
  }
}
BENCHMARK(bm_simulate_deployment);

void bm_evaluate_design_staged(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_design_staged(g, "x", opt));
  }
}
BENCHMARK(bm_evaluate_design_staged)->Arg(8)->Arg(12);

// --- delta-aware scenario evaluation ------------------------------------
//
// The paper's lifecycle loops (§2.1, §4.1) mutate a handful of links and
// re-ask for the metrics. The reference side rebuilds the distance cache
// and recomputes path stats from scratch after every step; the delta side
// keeps one incremental_metrics across the whole scenario and repairs
// only the invalidated rows. Same numbers, bit for bit (tests/property/
// delta_eval_property_test.cc) — these pairs track the 10x target.

network_graph expansion_bench_base(int switches) {
  jellyfish_params p;
  p.switches = switches;
  p.radix = 24;
  p.hosts_per_switch = 12;
  p.seed = 7;
  network_graph g = build_jellyfish(p);
  // Jellyfish wires every non-host port, but real fabrics are sized for
  // the max build-out (§4.1) — give each switch expansion headroom so
  // new links land without recabling.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    g.node(node_id{i}).radix += 8;
  }
  return g;
}

deploy_scenario expansion_bench_scenario(const network_graph& g) {
  edge_expansion_params p;
  p.steps = 64;
  p.links_per_step = 2;
  p.parallel_links = true;  // capacity expansion: distances never move
  p.seed = 11;
  return plan_expansion_edge_scenario(g, p);
}

void bm_expansion_sweep_reference(benchmark::State& state) {
  const network_graph base =
      expansion_bench_base(static_cast<int>(state.range(0)));
  const deploy_scenario sc = expansion_bench_scenario(base);
  for (auto _ : state) {
    network_graph g = base;
    double acc = 0.0;
    for (const scenario_step& step : sc.steps) {
      apply_scenario_step(g, step);
      distance_cache cache(g);
      acc += compute_path_length_stats(g, cache).mean;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_expansion_sweep_reference)->Arg(128);

void bm_expansion_sweep_delta(benchmark::State& state) {
  const network_graph base =
      expansion_bench_base(static_cast<int>(state.range(0)));
  const deploy_scenario sc = expansion_bench_scenario(base);
  for (auto _ : state) {
    network_graph g = base;
    incremental_metrics inc(g, 25_gbps);
    double acc = 0.0;
    for (const scenario_step& step : sc.steps) {
      apply_scenario_step(g, step);
      acc += inc.path_stats().mean;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_expansion_sweep_delta)->Arg(128);

network_graph decom_bench_base(int leaves) {
  leaf_spine_params p;
  p.leaves = leaves;
  p.spines = 16;
  p.hosts_per_leaf = 24;
  return build_leaf_spine(p);
}

deploy_scenario decom_bench_scenario(const network_graph& g) {
  edge_decom_params p;
  p.switches = 2;
  p.links_per_step = 2;
  p.seed = 5;
  return plan_decom_edge_scenario(g, p);
}

void bm_decom_sweep_reference(benchmark::State& state) {
  const network_graph base =
      decom_bench_base(static_cast<int>(state.range(0)));
  const deploy_scenario sc = decom_bench_scenario(base);
  for (auto _ : state) {
    network_graph g = base;
    double acc = 0.0;
    for (const scenario_step& step : sc.steps) {
      apply_scenario_step(g, step);
      distance_cache cache(g);
      acc += compute_path_length_stats(g, cache).mean;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_decom_sweep_reference)->Arg(128);

void bm_decom_sweep_delta(benchmark::State& state) {
  const network_graph base =
      decom_bench_base(static_cast<int>(state.range(0)));
  const deploy_scenario sc = decom_bench_scenario(base);
  for (auto _ : state) {
    network_graph g = base;
    incremental_metrics inc(g, 25_gbps);
    double acc = 0.0;
    for (const scenario_step& step : sc.steps) {
      apply_scenario_step(g, step);
      acc += inc.path_stats().mean;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_decom_sweep_delta)->Arg(128);

// 12 jellyfish points, the acceptance grid for the parallel sweep: the
// jobs > 1 runs must show real wall-clock speedup over jobs = 1.
std::vector<sweep_point> sweep_grid_12() {
  std::vector<sweep_point> grid;
  for (int i = 0; i < 12; ++i) {
    const int switches = 48 + 8 * i;
    jellyfish_params p;
    p.switches = switches;
    p.radix = 16;
    p.hosts_per_switch = 8;
    p.seed = 7;
    grid.push_back(sweep_point{"jf-" + std::to_string(switches),
                               [p] { return build_jellyfish(p); }});
  }
  return grid;
}

void bm_run_sweep(benchmark::State& state) {
  const std::vector<sweep_point> grid = sweep_grid_12();
  evaluation_options opt;
  opt.run_repair_sim = false;
  sweep_options sopt;
  sopt.jobs = static_cast<int>(state.range(0));
  std::size_t completed = 0;
  for (auto _ : state) {
    const sweep_results res = run_sweep(grid, opt, sopt);
    completed = res.reports.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["points"] = static_cast<double>(completed);
}
BENCHMARK(bm_run_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Checkpointing cost: the same 12-point sweep with per-point flushed
// appends to a checkpoint file. The delta vs bm_run_sweep/4 is the
// entire price of interrupt-safety at sweep granularity.
void bm_run_sweep_checkpointed(benchmark::State& state) {
  const std::vector<sweep_point> grid = sweep_grid_12();
  evaluation_options opt;
  opt.run_repair_sim = false;
  const std::string path = "bench_micro_sweep.ckpt";
  for (auto _ : state) {
    std::remove(path.c_str());
    sweep_options sopt;
    sopt.jobs = static_cast<int>(state.range(0));
    sopt.checkpoint_path = path;
    benchmark::DoNotOptimize(run_sweep(grid, opt, sopt));
  }
  std::remove(path.c_str());
}
BENCHMARK(bm_run_sweep_checkpointed)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Checkpoint entry serialization in isolation (escape + %.17g formatting
// of all 29 report fields) — the per-completed-point CPU cost a sweep
// worker pays under the writer mutex.
void bm_checkpoint_line(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  const evaluation ev = evaluate_design_staged(g, "bench point", opt);
  sweep_checkpoint_entry e;
  e.point_index = 3;
  e.seed = sweep_point_seed(1, 3);
  e.ok = true;
  e.report = ev.report;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_checkpoint_line(e));
  }
}
BENCHMARK(bm_checkpoint_line);

// --- evaluation service: cold vs cached, serial vs batched ---

eval_request service_request(const std::string& name, int k) {
  eval_request req;
  req.name = name;
  req.options.run_repair_sim = false;
  req.design_twin =
      serialize_twin(design_to_twin(build_fat_tree(k, 100_gbps)));
  return req;
}

// A full service round through the batcher on a cache miss: canonical
// encode, hash, admission, dispatch, evaluation, response encode.
void bm_service_eval_cold(benchmark::State& state) {
  result_cache cache(64);
  service_metrics metrics;
  eval_batcher batcher(batcher_config{}, &cache, &metrics);
  const eval_request req =
      service_request("bench/cold", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.invalidate());  // force a miss
    benchmark::DoNotOptimize(batcher.evaluate(req));
  }
}
BENCHMARK(bm_service_eval_cold)->Arg(4)->Arg(8)->UseRealTime();

// The same request answered from the result cache: encode + hash +
// sharded-LRU lookup, no evaluation. The cold/cached ratio is what the
// cache buys on a repeat query.
void bm_service_eval_cached(benchmark::State& state) {
  result_cache cache(64);
  service_metrics metrics;
  eval_batcher batcher(batcher_config{}, &cache, &metrics);
  const eval_request req =
      service_request("bench/cached", static_cast<int>(state.range(0)));
  benchmark::DoNotOptimize(batcher.evaluate(req));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(batcher.evaluate(req));
  }
}
BENCHMARK(bm_service_eval_cached)->Arg(4)->Arg(8)->UseRealTime();

// N distinct requests issued one at a time: only one evaluation is ever
// in flight, so the eval pool sits idle — the "before" side of the
// batching speedup.
void bm_service_eval_serial(benchmark::State& state) {
  result_cache cache(64);
  service_metrics metrics;
  eval_batcher batcher(batcher_config{}, &cache, &metrics);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<eval_request> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(service_request("bench/serial-" + std::to_string(i), 6));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.invalidate());
    for (const eval_request& req : reqs) {
      benchmark::DoNotOptimize(batcher.evaluate(req));
    }
  }
}
BENCHMARK(bm_service_eval_serial)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The same N requests arriving concurrently: the dispatcher groups them
// into batches and fans them across the eval pool.
void bm_service_eval_batched(benchmark::State& state) {
  result_cache cache(64);
  service_metrics metrics;
  eval_batcher batcher(batcher_config{}, &cache, &metrics);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<eval_request> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(service_request("bench/batched-" + std::to_string(i), 6));
  }
  thread_pool callers(static_cast<int>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.invalidate());
    for (const eval_request& req : reqs) {
      callers.submit([&batcher, &req] {
        benchmark::DoNotOptimize(batcher.evaluate(req));
      });
    }
    callers.wait_idle();
  }
}
BENCHMARK(bm_service_eval_batched)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- deployability-constrained topology search ---
//
// The search subsystem's hot paths: space text handling, grid
// enumeration, Pareto-front maintenance, and a full (small) run_search
// through the local backend. These feed BENCH_search.json via
// --json-search (see scripts/bench_gate.py).

constexpr const char* bench_space_text = R"(physnet-search-space v1
name bench
seed 3
constraint min_hosts 48
family jellyfish
dim switches range 8 64 8
dim radix range 8 22 2
dim hosts_per_switch choice 4 6 8 10
dim strategy choice block random
end
family leaf_spine
dim leaves range 4 32 4
dim uplinks range 1 2 1
end
)";

void bm_search_space_parse(benchmark::State& state) {
  const std::string text = bench_space_text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_space(text));
  }
}
BENCHMARK(bm_search_space_parse);

void bm_search_space_serialize(benchmark::State& state) {
  const search_space space = parse_space(bench_space_text).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_space(space));
  }
}
BENCHMARK(bm_search_space_serialize);

// Cartesian enumeration alone (4160 candidates): the fixed cost every
// grid search pays before the first evaluation.
void bm_search_grid_enumerate(benchmark::State& state) {
  const search_space space = parse_space(bench_space_text).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_grid(space));
  }
}
BENCHMARK(bm_search_grid_enumerate);

std::vector<pareto_entry> pareto_population(std::size_t n) {
  rng r(17);
  std::vector<pareto_entry> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pareto_objectives o;
    o.cost_usd = static_cast<double>(r.next_index(1u << 20));
    o.time_h = static_cast<double>(r.next_index(4096));
    o.rewires = static_cast<double>(r.next_index(16));
    o.bisection = static_cast<double>(r.next_index(4096));
    pop.push_back(pareto_entry{i, o});
  }
  return pop;
}

// The O(n^2) every-pair oracle — the "before" side of the front speedup
// and the differential oracle in tests/search/search_test.cc.
void bm_pareto_front_reference(benchmark::State& state) {
  const auto pop =
      pareto_population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_front(pop));
  }
}
BENCHMARK(bm_pareto_front_reference)->Arg(256)->Arg(1024);

// Incremental insert as the engine actually accumulates the front: each
// insert compares against the current front only, which stays tiny
// relative to the population.
void bm_pareto_front_incremental(benchmark::State& state) {
  const auto pop =
      pareto_population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pareto_front front;
    for (const pareto_entry& e : pop) front.insert(e.ordinal, e.obj);
    benchmark::DoNotOptimize(front.entries().size());
  }
}
BENCHMARK(bm_pareto_front_incremental)->Arg(256)->Arg(1024);

// An end-to-end grid search (11 candidates, 3 families) through the
// local backend — jobs > 1 must show real wall-clock speedup, the same
// contract bm_run_sweep tracks for the layer below.
constexpr const char* bench_run_space_text = R"(physnet-search-space v1
name bench-run
seed 5
constraint min_hosts 32
family jellyfish
dim switches range 8 16 4
dim radix choice 12
dim strategy choice block random
end
family fat_tree
dim k range 4 6 2
end
family leaf_spine
dim leaves range 4 8 2
end
)";

void bm_search_grid_run(benchmark::State& state) {
  const search_space space = parse_space(bench_run_space_text).value();
  std::size_t front = 0;
  for (auto _ : state) {
    local_backend_options lopt;
    lopt.jobs = static_cast<int>(state.range(0));
    local_search_backend backend(lopt);
    const auto res = run_search(space, backend, {});
    front = res.value().front.size();
    benchmark::DoNotOptimize(front);
  }
  state.counters["front"] = static_cast<double>(front);
}
BENCHMARK(bm_search_grid_run)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_search_local_run(benchmark::State& state) {
  const search_space space = parse_space(bench_run_space_text).value();
  search_run_options opt;
  opt.strategy = search_strategy::local;
  opt.local.restarts = 2;
  for (auto _ : state) {
    local_search_backend backend{local_backend_options{}};
    benchmark::DoNotOptimize(run_search(space, backend, opt));
  }
}
BENCHMARK(bm_search_local_run)->UseRealTime()->Unit(benchmark::kMillisecond);

// Per-stage timing table for a representative evaluation, printed before
// the benchmark runs so every bench log carries the pipeline breakdown.
void print_stage_timing_table() {
  const network_graph g = build_fat_tree(12, 100_gbps);
  evaluation_options opt;
  const evaluation ev = evaluate_design_staged(g, "ft12", opt);
  stage_trace_table(ev.trace)
      .print(std::cout, "evaluate_design stage timings (fat_tree k=12)");
  std::cout << std::endl;
}

// Console reporter that also keeps op -> ns/op for the --json dump.
class recording_reporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      if (run.iterations == 0) continue;
      ns_per_op_[run.benchmark_name()] =
          run.real_accumulated_time /
          static_cast<double>(run.iterations) * 1e9;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::map<std::string, double>& ns_per_op() const {
    return ns_per_op_;
  }

 private:
  std::map<std::string, double> ns_per_op_;
};

// Reference/optimized benchmark pairs whose ratio is reported as a
// speedup. Pairs are matched per argument suffix ("/8", "/12", ...).
struct speedup_pair {
  const char* label;
  const char* before;
  const char* after;
};
constexpr speedup_pair kSpeedupPairs[] = {
    {"bfs_single_source", "bm_bfs_reference", "bm_bfs_csr"},
    {"bfs_rows_batched", "bm_bfs_rows_reference", "bm_distance_warm_all"},
    {"path_length_stats", "bm_path_length_stats_reference",
     "bm_path_length_stats"},
    {"ecmp_loads_cold", "bm_ecmp_loads_reference", "bm_ecmp_loads"},
    {"ecmp_loads_shared", "bm_ecmp_loads_reference", "bm_ecmp_loads_shared"},
    {"service_cache_hit", "bm_service_eval_cold", "bm_service_eval_cached"},
    {"service_batched", "bm_service_eval_serial", "bm_service_eval_batched"},
    {"expansion_sweep_delta", "bm_expansion_sweep_reference",
     "bm_expansion_sweep_delta"},
    {"decom_sweep_delta", "bm_decom_sweep_reference", "bm_decom_sweep_delta"},
};

// The search subsystem's speedups, dumped separately (--json-search ->
// BENCH_search.json) so the search gate can evolve its floors without
// touching the micro baseline.
constexpr speedup_pair kSearchSpeedupPairs[] = {
    {"pareto_front_incremental", "bm_pareto_front_reference",
     "bm_pareto_front_incremental"},
};

bool is_search_bench(const std::string& name) {
  return name.rfind("bm_search_", 0) == 0 || name.rfind("bm_pareto_", 0) == 0;
}

template <std::size_t N>
bool write_json(const std::string& path,
                const std::map<std::string, double>& ns_per_op,
                const speedup_pair (&pairs)[N]) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_micro: cannot write " << path << "\n";
    return false;
  }
  out << "{\n  \"nanoseconds_per_op\": {";
  bool first = true;
  for (const auto& [name, ns] : ns_per_op) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": "
        << str_format("%.1f", ns);
    first = false;
  }
  out << "\n  },\n  \"speedups_vs_reference\": {";
  first = true;
  for (const speedup_pair& pair : pairs) {
    const std::string before_prefix = std::string(pair.before) + "/";
    for (const auto& [name, before_ns] : ns_per_op) {
      if (name.rfind(before_prefix, 0) != 0) continue;
      const std::string arg = name.substr(before_prefix.size() - 1);
      const auto after = ns_per_op.find(pair.after + arg);
      if (after == ns_per_op.end() || after->second <= 0.0) continue;
      out << (first ? "\n" : ",\n") << "    \"" << pair.label << arg
          << "\": " << str_format("%.2f", before_ns / after->second);
      first = false;
    }
  }
  out << "\n  }\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json <path> / --json=<path> (and the --json-search variant)
  // before benchmark::Initialize so the library doesn't reject them as
  // unrecognized.
  std::string json_path;
  std::string json_search_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
      continue;
    }
    if (a == "--json-search" && i + 1 < argc) {
      json_search_path = argv[++i];
      continue;
    }
    if (a.rfind("--json-search=", 0) == 0) {
      json_search_path = std::string(a.substr(14));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  print_stage_timing_table();
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  recording_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !write_json(json_path, reporter.ns_per_op(), kSpeedupPairs)) {
    return 1;
  }
  if (!json_search_path.empty()) {
    std::map<std::string, double> search_only;
    for (const auto& [name, ns] : reporter.ns_per_op()) {
      if (is_search_bench(name)) search_only.emplace(name, ns);
    }
    if (!write_json(json_search_path, search_only, kSearchSpeedupPairs)) {
      return 1;
    }
  }
  return 0;
}
