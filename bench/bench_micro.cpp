// Microbenchmarks (google-benchmark) for the library's hot paths: a
// digital twin is only useful if dry runs and constraint sweeps are
// "rapid" (§5.3), so we track the cost of the core algorithms.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/physnet.h"

namespace {

using namespace pn;
using namespace pn::literals;

void bm_build_fat_tree(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fat_tree(k, 100_gbps));
  }
}
BENCHMARK(bm_build_fat_tree)->Arg(8)->Arg(16);

void bm_build_jellyfish(benchmark::State& state) {
  jellyfish_params p;
  p.switches = static_cast<int>(state.range(0));
  p.radix = 24;
  p.hosts_per_switch = 12;
  for (auto _ : state) {
    p.seed++;
    benchmark::DoNotOptimize(build_jellyfish(p));
  }
}
BENCHMARK(bm_build_jellyfish)->Arg(128)->Arg(512);

void bm_path_length_stats(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_path_length_stats(g));
  }
}
BENCHMARK(bm_path_length_stats)->Arg(8)->Arg(16);

void bm_ecmp_throughput(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecmp_throughput(g, tm));
  }
}
BENCHMARK(bm_ecmp_throughput)->Arg(8)->Arg(12);

void bm_plan_cabling(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  const catalog cat = catalog::standard();
  evaluation_options opt;
  const floorplan_params fpp = auto_size_floor(g, opt.floor, 0.3);
  for (auto _ : state) {
    floorplan fp(fpp);
    auto pl = block_placement(g, fp);
    benchmark::DoNotOptimize(plan_cabling(g, pl.value(), fp, cat, {}));
  }
}
BENCHMARK(bm_plan_cabling)->Arg(8)->Arg(12);

void bm_tray_route(benchmark::State& state) {
  floorplan_params p;
  p.rows = 8;
  p.racks_per_row = 32;
  floorplan fp(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const rack_id a{i % fp.rack_count()};
    const rack_id b{(i * 7 + 13) % fp.rack_count()};
    if (a != b) {
      benchmark::DoNotOptimize(fp.routed_length(a, b));
    }
    ++i;
  }
}
BENCHMARK(bm_tray_route);

void bm_dry_run_decom(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  const auto ev = evaluate_design(g, "x", opt);
  const twin_model twin =
      build_network_twin(g, ev.value().place, ev.value().floor,
                         ev.value().cables, catalog::standard());
  const twin_schema schema = twin_schema::network_schema();
  const auto plan = safe_decom_plan(twin, {"spine0/sw0"});
  dry_run_options dopt;
  dopt.validate_each_step = false;
  for (auto _ : state) {
    dry_run_engine eng(twin, &schema);
    benchmark::DoNotOptimize(eng.run(plan, dopt));
  }
}
BENCHMARK(bm_dry_run_decom);

void bm_constraint_sweep(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto ev = evaluate_design(g, "x", opt);
  const catalog cat = catalog::standard();
  const physical_design d{&g, &ev.value().place, &ev.value().floor,
                          &ev.value().cables, &cat};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_all_checks(d));
  }
}
BENCHMARK(bm_constraint_sweep);

void bm_simulate_deployment(benchmark::State& state) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto ev = evaluate_design(g, "x", opt);
  const work_order wo = build_deployment_order(
      g, ev.value().place, ev.value().floor, ev.value().cables, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_deployment(wo, {}));
  }
}
BENCHMARK(bm_simulate_deployment);

void bm_evaluate_design_staged(benchmark::State& state) {
  const network_graph g =
      build_fat_tree(static_cast<int>(state.range(0)), 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_design_staged(g, "x", opt));
  }
}
BENCHMARK(bm_evaluate_design_staged)->Arg(8)->Arg(12);

// 12 jellyfish points, the acceptance grid for the parallel sweep: the
// jobs > 1 runs must show real wall-clock speedup over jobs = 1.
std::vector<sweep_point> sweep_grid_12() {
  std::vector<sweep_point> grid;
  for (int i = 0; i < 12; ++i) {
    const int switches = 48 + 8 * i;
    jellyfish_params p;
    p.switches = switches;
    p.radix = 16;
    p.hosts_per_switch = 8;
    p.seed = 7;
    grid.push_back(sweep_point{"jf-" + std::to_string(switches),
                               [p] { return build_jellyfish(p); }});
  }
  return grid;
}

void bm_run_sweep(benchmark::State& state) {
  const std::vector<sweep_point> grid = sweep_grid_12();
  evaluation_options opt;
  opt.run_repair_sim = false;
  sweep_options sopt;
  sopt.jobs = static_cast<int>(state.range(0));
  std::size_t completed = 0;
  for (auto _ : state) {
    const sweep_results res = run_sweep(grid, opt, sopt);
    completed = res.reports.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["points"] = static_cast<double>(completed);
}
BENCHMARK(bm_run_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Per-stage timing table for a representative evaluation, printed before
// the benchmark runs so every bench log carries the pipeline breakdown.
void print_stage_timing_table() {
  const network_graph g = build_fat_tree(12, 100_gbps);
  evaluation_options opt;
  const evaluation ev = evaluate_design_staged(g, "ft12", opt);
  stage_trace_table(ev.trace)
      .print(std::cout, "evaluate_design stage timings (fat_tree k=12)");
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  print_stage_timing_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
