// E7 — §3.3: the unit-of-repair tradeoff. "While using higher switch
// radixes supports lower hop-count designs, that also means that one
// switch repair takes more ports out of service, even if only one port
// has failed." And: "network availability depends on mean time to repair
// (MTTR), an inherently physical problem."
//
// Table 1: repair-unit granularity (port / line-card / chassis) on one
// fabric: collateral drained capacity and availability.
// Table 2: radix sweep at fixed host count — hops vs blast radius.
// Table 3: MTTR sensitivity (fungibility / stockouts, §2.2).
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

struct rig {
  explicit rig(pn::network_graph graph) : g(std::move(graph)) {
    pn::evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    auto ev = pn::evaluate_design(g, "x", opt);
    if (!ev.is_ok()) {
      std::cerr << ev.error().to_string() << "\n";
      std::exit(1);
    }
    e.emplace(std::move(ev).value());
  }
  pn::network_graph g;
  std::optional<pn::evaluation> e;
};

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E7: unit of repair, radix and MTTR", "§3.3, §2.2",
                "bigger repair units drain more collateral capacity; "
                "availability tracks MTTR; fungibility tames stockouts");

  const catalog cat = catalog::standard();
  repair_params base;
  base.horizon = hours{10.0 * 365 * 24};

  // Table 1: repair-unit granularity.
  {
    rig r(build_fat_tree(8, 100_gbps));
    text_table t({"repair unit", "port failures", "mean MTTR h",
                  "lost Gbps-h", "collateral Gbps-h", "availability"});
    for (const repair_unit u :
         {repair_unit::port, repair_unit::line_card, repair_unit::chassis}) {
      repair_params p = base;
      p.unit = u;
      const auto res = simulate_repairs(r.g, r.e->place, r.e->floor,
                                        r.e->cables, cat, p);
      t.row()
          .cell(repair_unit_name(u))
          .cell(res.port_failures)
          .cell(res.mean_mttr.value(), 2)
          .cell(human_count(res.lost_gbps_hours))
          .cell(human_count(res.collateral_gbps_hours))
          .cell(str_format("%.6f", res.availability));
    }
    t.print(std::cout,
            "Table E7.1: repair-unit granularity on a k=8 fat-tree");
  }

  // Table 2: §3.3's design tradeoff head-on — a low-radix 3-tier fabric
  // (more hops, small drain domains) vs a high-radix 2-tier fabric
  // (2 hops, but one spine repair drains a large slice). Chassis repair,
  // ~fixed hosts.
  {
    text_table t({"design", "max radix", "mean path", "repairs",
                  "collateral Gbps-h / repair", "availability"});
    struct entry {
      std::string name;
      network_graph g;
    };
    std::vector<entry> entries;
    entries.push_back({"fat-tree k=12 (3-tier)",
                       build_fat_tree(12, 100_gbps)});
    leaf_spine_params p;
    p.leaves = 27;
    p.spines = 16;
    p.hosts_per_leaf = 16;  // 432 hosts, spine radix 27, leaf radix 32
    entries.push_back({"leaf-spine (2-tier, fat spines)",
                       build_leaf_spine(p)});
    for (auto& e : entries) {
      rig r(std::move(e.g));
      repair_params rp = base;
      rp.unit = repair_unit::chassis;
      const auto res = simulate_repairs(r.g, r.e->place, r.e->floor,
                                        r.e->cables, cat, rp);
      const auto pls = compute_path_length_stats(r.g);
      int max_radix = 0;
      for (std::size_t i = 0; i < r.g.node_count(); ++i) {
        max_radix = std::max(max_radix, r.g.node(node_id{i}).radix);
      }
      const auto repairs = res.switch_failures + res.port_failures;
      t.row()
          .cell(e.name)
          .cell(max_radix)
          .cell(pls.mean, 2)
          .cell(repairs)
          .cell(repairs > 0 ? res.collateral_gbps_hours /
                                  static_cast<double>(repairs)
                            : 0.0,
                0)
          .cell(str_format("%.6f", res.availability));
    }
    t.print(std::cout,
            "Table E7.2: hop count vs blast radius at ~432 hosts "
            "(chassis-level repair)");
  }

  // Table 3: MTTR sensitivity — fungibility and stockouts.
  {
    rig r(build_fat_tree(8, 100_gbps));
    text_table t({"parts strategy", "stockout p", "mean MTTR h",
                  "p95 MTTR h", "availability"});
    for (const bool fungible : {true, false}) {
      for (const double stockout : {0.05, 0.20}) {
        repair_params p = base;
        p.fungible_parts = fungible;
        p.stockout_probability = stockout;
        const auto res = simulate_repairs(r.g, r.e->place, r.e->floor,
                                          r.e->cables, cat, p);
        t.row()
            .cell(fungible ? "fungible (2nd source ok)" : "sole-source")
            .cell(stockout, 2)
            .cell(res.mean_mttr.value(), 2)
            .cell(res.p95_mttr.value(), 2)
            .cell(str_format("%.6f", res.availability));
      }
    }
    t.print(std::cout,
            "Table E7.3: fungibility vs stockouts (§2.2's supply-chain "
            "argument)");
  }

  // Table 4: why MTTR matters — concurrent-failure tolerance. The longer
  // repairs take, the more failures overlap; this is what the fabric
  // looks like while the repair queue is deep.
  {
    const network_graph ft = build_fat_tree(8, 100_gbps);
    leaf_spine_params lsp;
    lsp.leaves = 16;
    lsp.spines = 4;
    lsp.hosts_per_leaf = 8;
    const network_graph ls = build_leaf_spine(lsp);
    text_table t({"design", "concurrent failures", "mean retention",
                  "worst retention", "partition prob"});
    for (const auto& [name, g] :
         {std::pair<const char*, const network_graph*>{"fat-tree k=8", &ft},
          {"leaf-spine 16x4", &ls}}) {
      const traffic_matrix tm = uniform_traffic(*g, gbps{10.0});
      for (const int failures : {1, 2, 4}) {
        degradation_params dp;
        dp.concurrent_switch_failures = failures;
        dp.samples = 40;
        const auto rep = analyze_degradation(*g, tm, dp);
        t.row()
            .cell(name)
            .cell(failures)
            .cell_pct(rep.mean_capacity_retention)
            .cell_pct(rep.worst_capacity_retention)
            .cell_pct(rep.partition_probability);
      }
    }
    t.print(std::cout,
            "Table E7.4: capacity under concurrent failures (the world a "
            "slow repair pipeline lives in)");
  }

  bench::note(
      "shape check: collateral damage grows port -> line-card -> chassis "
      "and with radix; availability falls as MTTR rises; fungibility "
      "makes the stockout probability irrelevant. Retention degrades "
      "with concurrent failures — slow MTTR converts isolated faults "
      "into overlapping ones (§3.3).");
  return 0;
}
