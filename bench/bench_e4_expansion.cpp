// E4 — §4.1 / Zhao et al.: "using a layer of patch panels between the
// aggregation blocks and spine blocks in a large Clos made it a lot
// easier to expand the network incrementally"; Poutievski et al.: OCS
// eases it further. Plus the §5.4 lifecycle metrics (re-wiring steps,
// re-wired links per panel, panels touched, drain windows).
//
// Table 1: one expansion (4 -> 8 pods) under direct / panel / OCS wiring.
// Table 2: the full growth path 4 -> 8 -> 16 -> 32 pods, cumulative.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

int main() {
  using namespace pn;

  bench::banner("E4: expansion under direct / patch-panel / OCS wiring",
                "§4.1, §5.4 / Zhao et al., Poutievski et al.",
                "indirection turns floor-wide rewiring into localized "
                "jumper moves or pure software");

  clos_expansion_params base;
  base.spine_groups = 8;
  base.spines_per_group = 8;
  base.ports_per_spine = 32;  // sized for 32 pods per group port budget
  base.panel_ports = 64;

  text_table t1({"wiring", "links rewired", "links added", "floor pulls",
                 "jumper moves", "ocs reconfigs", "panels touched",
                 "links/panel", "drain windows", "labor h",
                 "dead cables left"});
  for (const spine_wiring w :
       {spine_wiring::direct, spine_wiring::patch_panel, spine_wiring::ocs}) {
    clos_expansion_params p = base;
    p.from_pods = 4;
    p.to_pods = 8;
    p.wiring = w;
    const expansion_plan plan = plan_clos_expansion(p);
    t1.row()
        .cell(spine_wiring_name(w))
        .cell(plan.links_rewired)
        .cell(plan.links_added)
        .cell(plan.floor_cable_pulls)
        .cell(plan.jumper_moves)
        .cell(plan.ocs_reconfigs)
        .cell(plan.panels_touched)
        .cell(plan.rewired_links_per_panel, 1)
        .cell(plan.drain_windows)
        .cell(plan.labor.value(), 1)
        .cell(plan.dead_cables_left);
  }
  t1.print(std::cout, "Table E4.1: expanding 4 -> 8 pods");

  text_table t2({"growth step", "direct labor h", "panel labor h",
                 "ocs labor h", "direct drains", "panel drains",
                 "ocs drains"});
  const int steps[][2] = {{4, 8}, {8, 16}, {16, 32}};
  double cum_direct = 0.0, cum_panel = 0.0, cum_ocs = 0.0;
  for (const auto& step : steps) {
    clos_expansion_params p = base;
    p.from_pods = step[0];
    p.to_pods = step[1];
    p.wiring = spine_wiring::direct;
    const auto d = plan_clos_expansion(p);
    p.wiring = spine_wiring::patch_panel;
    const auto pp = plan_clos_expansion(p);
    p.wiring = spine_wiring::ocs;
    const auto oc = plan_clos_expansion(p);
    cum_direct += d.labor.value();
    cum_panel += pp.labor.value();
    cum_ocs += oc.labor.value();
    t2.row()
        .cell(str_format("%d -> %d pods", step[0], step[1]))
        .cell(d.labor.value(), 1)
        .cell(pp.labor.value(), 1)
        .cell(oc.labor.value(), 1)
        .cell(d.drain_windows)
        .cell(pp.drain_windows)
        .cell(oc.drain_windows);
  }
  t2.row()
      .cell("cumulative")
      .cell(cum_direct, 1)
      .cell(cum_panel, 1)
      .cell(cum_ocs, 1)
      .cell("-")
      .cell("-")
      .cell("-");
  t2.print(std::cout, "Table E4.2: the growth path 4 -> 8 -> 16 -> 32");

  bench::note(
      "shape check: direct wiring pays floor labor proportional to moved "
      "links every step; panels cut labor by an order of magnitude (2-min "
      "jumpers, localized drains); OCS reduces rewiring to software with "
      "one drain sweep — the Zhao -> Poutievski progression.");
  return 0;
}
