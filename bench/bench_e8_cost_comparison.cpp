// E8 — §6 / Popa et al. + §3.1 + §5.4: topology cost comparison that
// includes cabling *labor* (Popa: "the dominant expense in cabling is due
// to the human cost of manually wiring equipment"), the copper/optics
// media mix, the bundling correction Popa missed (Singh et al.), and the
// §5.4 day-1 vs lifetime tradeoff.
//
// Table 1: full capex incl. labor, per family, with and without bundles.
// Table 2: day-1 vs 3-expansion lifetime cost for direct vs panel wiring.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

constexpr double labor_rate = 120.0;  // loaded $/h

struct costed {
  double hardware = 0.0;
  double labor = 0.0;
  double per_host = 0.0;
  double optics_frac = 0.0;
};

costed cost_of(const pn::network_graph& g, bool bundles) {
  pn::evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  opt.deployment.use_bundles = bundles;
  const auto ev = pn::evaluate_design(g, "x", opt);
  if (!ev.is_ok()) {
    std::cerr << ev.error().to_string() << "\n";
    std::exit(1);
  }
  const auto& r = ev.value().report;
  costed out;
  out.hardware = r.capex().value() -
                 (bundles ? ev.value().bundles.capex_savings.value() : 0.0);
  out.labor = r.deploy_labor.value() * labor_rate;
  out.per_host = (out.hardware + out.labor) /
                 static_cast<double>(r.hosts);
  out.optics_frac = r.optics_fraction;
  return out;
}

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E8: topology cost incl. cabling labor", "§6 / Popa, §5.4",
                "labor is a first-class cost; bundles change the ranking; "
                "cheap day-1 designs can be expensive to evolve");

  struct entry {
    std::string name;
    network_graph g;
  };
  std::vector<entry> designs;
  designs.push_back({"fat-tree k=12", build_fat_tree(12, 100_gbps)});
  leaf_spine_params ls;
  ls.leaves = 24;
  ls.spines = 8;
  ls.hosts_per_leaf = 16;
  designs.push_back({"leaf-spine", build_leaf_spine(ls)});
  jellyfish_params jf;
  jf.switches = 180;  // the fat-tree's gear, more hosts (see E5)
  jf.radix = 12;
  jf.hosts_per_switch = 3;
  jf.seed = 1;
  designs.push_back({"jellyfish", build_jellyfish(jf)});
  xpander_params xp;
  xp.degree = 9;
  xp.lift_size = 18;
  xp.hosts_per_switch = 3;
  xp.seed = 1;
  designs.push_back({"xpander", build_xpander(xp)});

  text_table t1({"design", "hosts", "hardware", "install labor",
                 "$/host loose", "$/host bundled", "optics share"});
  for (const auto& d : designs) {
    const costed loose = cost_of(d.g, false);
    const costed bundled = cost_of(d.g, true);
    t1.row()
        .cell(d.name)
        .cell(d.g.total_hosts())
        .cell(human_dollars(loose.hardware))
        .cell(human_dollars(loose.labor))
        .cell(human_dollars(loose.per_host))
        .cell(human_dollars(bundled.per_host))
        .cell_pct(loose.optics_frac);
  }
  t1.print(std::cout,
           "Table E8.1: capex + install labor (Popa's comparison, with "
           "Singh's bundling correction)");

  // Table 2: day-1 vs lifetime. A Clos either pre-provisions patch panels
  // (day-1 premium: panels + jumpers + fiber everywhere) or wires spines
  // directly (cheaper day 1, floor-labor every expansion).
  clos_expansion_params ex;
  ex.spine_groups = 8;
  ex.spines_per_group = 8;
  ex.ports_per_spine = 32;
  const int group_ports = ex.spines_per_group * ex.ports_per_spine;
  const int total_links = group_ports * ex.spine_groups;
  // Panel hardware: 2 ports per link, 64-port passive panels at $800.
  const double panel_capex =
      std::ceil(2.0 * total_links / 64.0) * 800.0;
  // Fiber premium per link vs DAC at spine distances (~$900 transceivers
  // pair premium avoided by panels? No: panel fabrics force fiber). Use
  // catalog: fiber+2x100G transceivers at 30m vs DAC-infeasible -> AOC.
  const catalog cat = catalog::standard();
  const double fiber_link =
      cat.best_link(100_gbps, meters{30.0}, 1).value().total_cost.value();
  const double direct_link =
      cat.best_link(100_gbps, meters{30.0}, 0).value().total_cost.value();
  const double media_premium = (fiber_link - direct_link) * total_links;

  text_table t2({"wiring", "day-1 premium", "labor per expansion h",
                 "3 expansions labor $", "lifetime total"});
  double direct_labor = 0.0, panel_labor = 0.0;
  const int steps[][2] = {{4, 8}, {8, 16}, {16, 32}};
  for (const auto& s : steps) {
    clos_expansion_params p = ex;
    p.from_pods = s[0];
    p.to_pods = s[1];
    p.wiring = spine_wiring::direct;
    direct_labor += plan_clos_expansion(p).labor.value();
    p.wiring = spine_wiring::patch_panel;
    panel_labor += plan_clos_expansion(p).labor.value();
  }
  t2.row()
      .cell("direct to spines")
      .cell(human_dollars(0))
      .cell(direct_labor / 3.0, 1)
      .cell(human_dollars(direct_labor * labor_rate))
      .cell(human_dollars(direct_labor * labor_rate));
  t2.row()
      .cell("patch panels")
      .cell(human_dollars(panel_capex + media_premium))
      .cell(panel_labor / 3.0, 1)
      .cell(human_dollars(panel_labor * labor_rate))
      .cell(human_dollars(panel_capex + media_premium +
                          panel_labor * labor_rate));
  t2.print(std::cout,
           "Table E8.2: day-1 vs lifetime cost of spine indirection "
           "(§5.4's tradeoff)");

  // Table 3: full lifecycle TCO per family over a 6-year service life,
  // pulling deployment labor, repair labor, and availability-weighted
  // downtime cost from the simulators.
  {
    std::vector<lifecycle_cost> costs;
    for (const auto& d : designs) {
      lifecycle_options lopt;
      lopt.evaluation.run_throughput = false;
      const auto lc = compute_lifecycle_cost(d.g, d.name, lopt);
      if (!lc.is_ok()) {
        std::cerr << lc.error().to_string() << "\n";
        return 1;
      }
      costs.push_back(lc.value());
    }
    lifecycle_table(costs).print(
        std::cout, "Table E8.3: 6-year lifecycle cost (day-1 + repairs + "
                   "downtime)");
  }

  bench::note(
      "shape check: bundling moves the Clos down more than the expanders "
      "(its cables bundle). In E8.2 the panel fabric's day-1 premium is "
      "NOT recovered by three expansions' labor alone — exactly §5.4's "
      "warning that 'a hard-to-evolve design might be sufficiently "
      "cheaper up-front to merit its use'; what tips real deployments "
      "toward panels is the unpriced risk/downtime of floor-wide rewiring "
      "(E4's drain windows), not raw labor dollars.");
  return 0;
}
