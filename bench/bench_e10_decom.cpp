// E10 — §2.1: decommissioning. "It is surprisingly hard to automate a
// decom procedure, because it can be hard to know for sure what cannot be
// removed. ... Physically removing switches or, especially, cables from a
// running network is risky."
//
// Table 1: naive vs twin-checked decom of increasing scope — steps,
// dry-run verdicts, and the in-service links a naive execution would
// have cut (each one an outage).
// Table 2: the "leave dead cables" policy — tray headroom consumed by
// never removing old generations.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E10: decommissioning safety", "§2.1",
                "naive decom cuts live links; the twin knows what cannot "
                "be removed yet");

  const catalog cat = catalog::standard();
  const twin_schema schema = twin_schema::network_schema();

  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto baseline = evaluate_design(g, "ft8", opt);
  if (!baseline.is_ok()) {
    std::cerr << baseline.error().to_string() << "\n";
    return 1;
  }
  evaluation& ev = baseline.value();
  const twin_model twin =
      build_network_twin(g, ev.place, ev.floor, ev.cables, cat);

  // Decom scopes: one spine, one spine group, one pod.
  struct scope {
    std::string label;
    std::vector<std::string> switches;
  };
  std::vector<scope> scopes;
  scopes.push_back({"one spine switch", {"spine0/sw0"}});
  {
    scope s{"one spine group (4 switches)", {}};
    for (int i = 0; i < 4; ++i) {
      s.switches.push_back(str_format("spine0/sw%d", i));
    }
    scopes.push_back(s);
  }
  {
    scope s{"one pod (8 switches)", {}};
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      const node_info& n = g.node(node_id{i});
      if (n.layer < 2 && n.block == 0) s.switches.push_back(n.name);
    }
    scopes.push_back(s);
  }

  text_table t1({"scope", "plan", "steps", "dry run", "live links cut",
                 "drains scheduled"});
  dry_run_options dopt;
  dopt.validate_each_step = false;
  for (const auto& s : scopes) {
    const auto blockers = blocking_cables(twin, s.switches);
    for (const bool naive : {true, false}) {
      const auto plan = naive ? naive_decom_plan(twin, s.switches)
                              : safe_decom_plan(twin, s.switches);
      dry_run_engine eng(twin, &schema);
      const auto report = eng.run(plan, dopt);
      std::size_t drains = 0;
      for (const auto& op : plan) {
        if (op.kind == twin_op::op_kind::set_attr) ++drains;
      }
      t1.row()
          .cell(s.label)
          .cell(naive ? "naive" : "twin-checked")
          .cell(plan.size())
          .cell(report.ok ? "PASSED" : "FAILED")
          // A naive plan that executed anyway would cut every blocking
          // cable while its peer port still carried traffic.
          .cell(naive ? blockers.size() : 0u)
          .cell(drains);
    }
  }
  t1.print(std::cout, "Table E10.1: naive vs twin-checked decom plans");

  // Table 2: §2.1's "we seldom remove old ones" — cumulative tray fill
  // across cable generations when dead cables stay in the trays.
  text_table t2({"generations in trays", "max tray fill", "mean tray fill",
                 "mean inter-rack len m", "still routable?"});
  {
    // A floor provisioned with tray headroom "for several generations"
    // (§2.1) — sized so each cabling generation consumes a meaningful
    // share, as real fills do.
    floorplan_params tight = ev.floor.params();
    tight.row_tray_capacity = square_millimeters{6500.0};
    tight.cross_tray_capacity = square_millimeters{9000.0};
    floorplan fp(tight);
    auto pl = block_placement(g, fp);
    bool routable = true;
    for (int gen = 1; gen <= 6 && routable; ++gen) {
      cabling_options copt;
      copt.reserve_tray_capacity = true;
      const auto plan = plan_cabling(g, pl.value(), fp, cat, copt);
      double max_fill = 0.0, mean_fill = 0.0, mean_len = 0.0;
      if (plan.is_ok()) {
        max_fill = plan.value().max_tray_fill;
        mean_fill = plan.value().mean_tray_fill;
        double len = 0.0;
        std::size_t inter = 0;
        for (const cable_run& run : plan.value().runs) {
          if (run.rack_a != run.rack_b) {
            len += run.length.value();
            ++inter;
          }
        }
        mean_len = inter > 0 ? len / static_cast<double>(inter) : 0.0;
      } else {
        routable = false;
      }
      t2.row()
          .cell(gen)
          .cell_pct(max_fill)
          .cell_pct(mean_fill)
          .cell(mean_len, 1)
          .cell(routable ? "yes" : "NO — trays exhausted");
      // The old generation's reservations deliberately stay (dead cables
      // are not pulled); the next loop iteration adds another overlay.
    }
  }
  t2.print(std::cout,
           "Table E10.2: cable generations accumulating in trays (§2.1: "
           "'we seldom remove old ones')");

  bench::note(
      "shape check: every naive plan fails its dry run with exactly the "
      "blocking-cable count as would-be outages; the twin-checked plan "
      "passes by scheduling drains first. Each undeleted generation "
      "fills trays further; once segments saturate, new cables detour "
      "(mean length climbs) and eventually routing fails — why floors "
      "provision tray space 'for several generations' up front.");
  return 0;
}
