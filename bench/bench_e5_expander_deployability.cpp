// E5 — §4.2: "Why aren't expanders in wide use?" The cross-family
// comparison behind the paper's central case study: Clos, leaf-spine,
// Jellyfish, Xpander, flattened butterfly and Slim Fly at comparable
// host counts, scored on both the traditional metrics (where expanders
// shine) and the physical-deployability metrics (where they pay).
//
// Tables: abstract metrics / deployability / cost (shared renderers),
// plus the expansion-rewiring table (Xpander's d/2 per added ToR) and a
// placement ablation.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

pn::evaluation_options e5_options() {
  pn::evaluation_options opt;
  opt.repair.horizon = pn::hours{2.0 * 365 * 24};
  return opt;
}

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E5: expander-family deployability", "§4.2",
                "expanders beat Clos on abstract metrics but lose on "
                "bundling, SKUs and incremental rewiring");

  // Comparable fabrics around 320-512 hosts at 100G.
  struct design {
    std::string name;
    network_graph graph;
    double rewires_per_add;  // measured below where applicable
  };
  std::vector<design> designs;

  designs.push_back({"fat-tree k=12", build_fat_tree(12, 100_gbps), 0.0});

  leaf_spine_params ls;
  ls.leaves = 24;
  ls.spines = 8;
  ls.hosts_per_leaf = 16;
  designs.push_back({"leaf-spine 24x8", build_leaf_spine(ls), 0.0});

  // Expanders at the fat-tree's *gear* (180 radix-12 switches) but with
  // more hosts — the Jellyfish paper's "more servers at equal cost".
  jellyfish_params jf;
  jf.switches = 180;
  jf.radix = 12;
  jf.hosts_per_switch = 3;  // 540 hosts vs the fat-tree's 432
  jf.seed = 1;
  designs.push_back({"jellyfish", build_jellyfish(jf), 0.0});

  xpander_params xp;
  xp.degree = 9;
  xp.lift_size = 18;  // 180 switches
  xp.hosts_per_switch = 3;
  xp.seed = 1;
  designs.push_back({"xpander", build_xpander(xp), 0.0});

  flattened_butterfly_params fb;
  fb.dims = {15, 15};
  fb.hosts_per_switch = 2;
  designs.push_back(
      {"flattened butterfly", build_flattened_butterfly(fb), 0.0});

  slim_fly_params sf;
  sf.q = 13;  // 338 switches, degree 19
  sf.hosts_per_switch = 2;
  designs.push_back({"slim fly q=13", build_slim_fly(sf).value(), 0.0});

  dragonfly_params df = balanced_dragonfly(4, 16, gbps{100.0});
  df.hosts_per_switch = 3;  // 128 switches x 3 hosts
  designs.push_back({"dragonfly h=4", build_dragonfly(df).value(), 0.0});

  // Measure incremental-add rewiring where the family defines it.
  {
    network_graph j = designs[2].graph;
    double total = 0;
    for (int i = 0; i < 4; ++i) {
      total += jellyfish_add_switch(j, jf, 100 + static_cast<std::uint64_t>(i));
    }
    designs[2].rewires_per_add = total / 4.0;

    network_graph x = designs[3].graph;
    double xtotal = 0;
    for (int i = 0; i < 4; ++i) {
      xtotal += xpander_add_switch(x, xp, i % (xp.degree + 1),
                                   200 + static_cast<std::uint64_t>(i));
    }
    designs[3].rewires_per_add = xtotal / 4.0;
    // Clos/leaf-spine with pre-provisioned panels: adding a ToR touches
    // no existing link (0); flattened butterfly and Slim Fly require
    // rewiring their whole dimension/cayley group — approximate with the
    // inter-switch degree (every link of the new position moves).
    designs[4].rewires_per_add = (15 - 1) * 2 / 2.0;
    designs[5].rewires_per_add = slim_fly_degree(13) / 2.0;
    // Dragonfly: adding a switch to a group rewires its share of the
    // intra-group clique plus global-link rebalance: ~(a-1+h)/2.
    designs[6].rewires_per_add = (8 - 1 + 4) / 2.0;
  }

  std::vector<deployability_report> reports;
  for (auto& d : designs) {
    auto ev = evaluate_design(d.graph, d.name, e5_options());
    if (!ev.is_ok()) {
      std::cerr << d.name << ": " << ev.error().to_string() << "\n";
      return 1;
    }
    deployability_report r = ev.value().report;
    r.rewires_per_added_switch = d.rewires_per_add;
    reports.push_back(std::move(r));
  }

  abstract_metrics_table(reports).print(
      std::cout, "Table E5.1: the abstract story (what the papers show)");
  deployability_table(reports).print(
      std::cout, "Table E5.2: the physical story (what the floor sees)");
  cost_table(reports).print(std::cout, "Table E5.3: capex & power");
  operations_table(reports).print(
      std::cout,
      "Table E5.4: operations & incremental growth (Xpander ~d/2 rewires "
      "per added ToR, §4.2)");

  // Placement ablation: what optimization can and cannot recover for the
  // random fabric (Mudigonda's problem).
  text_table abl({"placement", "jellyfish cable+optics capex",
                  "fat-tree cable+optics capex"});
  for (const placement_strategy s :
       {placement_strategy::random, placement_strategy::block,
        placement_strategy::annealed}) {
    evaluation_options opt = e5_options();
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    opt.strategy = s;
    opt.anneal.iterations = 20000;
    const auto ej = evaluate_design(designs[2].graph, "jf", opt);
    const auto ec = evaluate_design(designs[0].graph, "ft", opt);
    if (!ej.is_ok() || !ec.is_ok()) {
      std::cerr << "ablation failed\n";
      return 1;
    }
    auto wire_cost = [](const deployability_report& r) {
      return r.cable_cost.value() + r.transceiver_cost.value();
    };
    abl.row()
        .cell(placement_strategy_name(s))
        .cell(human_dollars(wire_cost(ej.value().report)))
        .cell(human_dollars(wire_cost(ec.value().report)));
  }
  abl.print(std::cout,
            "Table E5.5: placement ablation (random / block / annealed)");

  bench::note(
      "shape check: expanders win mean path length and $/host; Clos wins "
      "bundleability, SKU count and zero-rewire expansion. Annealing "
      "narrows but does not close the jellyfish cable-cost gap — "
      "Mudigonda's 'flying cable monster'.");
  return 0;
}
