// Shared banner/formatting for the experiment benches. Each bench
// regenerates one quantitative claim from the paper (see DESIGN.md §4)
// and prints labeled tables; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <iostream>
#include <string>

namespace pn::bench {

inline void banner(const std::string& experiment, const std::string& anchor,
                   const std::string& claim) {
  std::cout << "\n" << std::string(78, '=') << "\n"
            << experiment << "  (" << anchor << ")\n"
            << claim << "\n"
            << std::string(78, '=') << "\n";
}

inline void note(const std::string& text) {
  std::cout << "note: " << text << "\n";
}

}  // namespace pn::bench
