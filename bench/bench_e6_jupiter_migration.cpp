// E6 — §4.3: the live Jupiter redesign. "To convert the existing Jupiters
// from fat-trees to the direct-connect design, technicians must change
// how fibers connect to OCS units ... we temporarily drain traffic from
// each OCS rack ... This process takes multiple hours of human labor per
// rack, across many racks."
//
// Table 1: the fabric before/after (what the redesign buys).
// Table 2: conversion effort vs. fabric size.
// Table 3: drain concurrency vs. capacity floor and calendar time.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E6: live fat-tree -> direct-connect migration", "§4.3",
                "multiple hours of labor per OCS rack; indirection + SDN "
                "drains make a live redesign possible");

  auto make_params = [](int blocks) {
    jupiter_params p;
    p.agg_blocks = blocks;
    p.tors_per_block = 8;
    p.mbs_per_block = 4;
    p.uplinks_per_mb = 16;
    p.spine_blocks = blocks / 2;
    p.ocs_count = blocks * 2;
    p.link_rate = gbps{200.0};
    return p;
  };

  // Table 1: what the redesign changes.
  {
    const jupiter_params p = make_params(16);
    const jupiter_fabric before = build_jupiter(p);
    jupiter_params pd = p;
    pd.mode = jupiter_mode::direct;
    const jupiter_fabric after = build_jupiter(pd);
    const auto bs = compute_path_length_stats(before.graph);
    const auto as = compute_path_length_stats(after.graph);
    const catalog cat = catalog::standard();
    auto spine_capex = [&](const jupiter_fabric& f) {
      dollars d{0.0};
      for (node_id n : f.graph.nodes_of_kind(node_kind::spine)) {
        d += cat.switches().cost(f.graph.node(n).radix,
                                 f.graph.node(n).port_rate);
      }
      return d;
    };
    text_table t({"fabric", "switches", "mean path", "diam",
                  "spine-block capex"});
    t.row()
        .cell("fat-tree via OCS")
        .cell(before.graph.node_count())
        .cell(bs.mean, 2)
        .cell(bs.diameter)
        .cell(human_dollars(spine_capex(before).value()));
    t.row()
        .cell("direct via OCS")
        .cell(after.graph.node_count())
        .cell(as.mean, 2)
        .cell(as.diameter)
        .cell(human_dollars(spine_capex(after).value()));
    t.print(std::cout,
            "Table E6.1: the redesign avoids the considerable cost of the "
            "spine blocks");
  }

  // Table 2: conversion effort vs. scale.
  text_table t2({"agg blocks", "OCS racks", "fibers moved", "labor h",
                 "labor h/rack", "elapsed days (1 rack at a time)",
                 "miswires caught"});
  for (const int blocks : {8, 16, 32}) {
    const jupiter_fabric f = build_jupiter(make_params(blocks));
    const migration_report rep = plan_jupiter_migration(f, {});
    t2.row()
        .cell(blocks)
        .cell(rep.ocs_racks)
        .cell(rep.fiber_disconnects + rep.fiber_connects)
        .cell(rep.labor.value(), 1)
        .cell(rep.labor_per_rack.value(), 2)
        .cell(rep.elapsed.value() / 8.0, 1)  // 8h shifts
        .cell(rep.miswires_caught);
  }
  t2.print(std::cout, "Table E6.2: conversion effort vs fabric size");

  // Table 3: concurrency vs capacity floor.
  const jupiter_fabric f = build_jupiter(make_params(16));
  text_table t3({"concurrent drains", "capacity floor", "elapsed h",
                 "labor h"});
  for (const int c : {1, 2, 4, 8}) {
    migration_params mp;
    mp.concurrent_drains = c;
    const migration_report rep = plan_jupiter_migration(f, mp);
    t3.row()
        .cell(c)
        .cell_pct(rep.min_residual_capacity)
        .cell(rep.elapsed.value(), 1)
        .cell(rep.labor.value(), 1);
  }
  t3.print(std::cout,
           "Table E6.3: the SDN scheduling tradeoff (low-impact chunks "
           "vs calendar time)");

  bench::note(
      "shape check: labor per rack lands in the 'multiple hours' range "
      "and scales with fibers per OCS; total labor scales with fabric "
      "size; capacity floor = 1 - drained-OCS share.");
  return 0;
}
