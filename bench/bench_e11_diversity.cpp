// E11 — §3.4/§5.4: heterogeneity and "diversity-support" metrics. "A
// network might end up incorporating switches with multiple radixes, or
// different line rates. Ideally, then, a network design should support
// heterogeneity"; §5.4 proposes counting "the number of different link
// speeds or switch radixes that can be included in one network without
// severe problems."
//
// Method: evolve a Clos in place — new pods arrive with newer (faster,
// higher-radix) gear each generation. Measure, per generation count:
// constraint violations, envelope findings, throughput skew, and the
// cable-SKU blowup. A second table shows Xpander's radix-mixing question
// (§4.2: "unclear whether Xpander supports mixing ToRs of several
// radixes").
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

// A Clos where pods 0..g-1 use generation-g_i gear: rate 100*2^g_i, and
// proportionally fewer uplinks so the spine port budget holds.
pn::network_graph heterogeneous_clos(int generations) {
  using namespace pn;
  using namespace pn::literals;
  PN_CHECK(generations >= 1 && generations <= 3);
  network_graph g;
  g.family = "clos";
  const int pods_per_gen = 4;
  const int spine_groups = 4;
  const int spines_per_group = 2;
  // Spine switches carry mixed rates on dedicated port banks.
  const int spine_radix = 64;
  std::vector<node_id> spines;
  for (int sg = 0; sg < spine_groups; ++sg) {
    for (int s = 0; s < spines_per_group; ++s) {
      spines.push_back(g.add_node({str_format("spine%d/sw%d", sg, s),
                                   node_kind::spine, spine_radix,
                                   400_gbps, 0, 2,
                                   generations * pods_per_gen + sg}));
    }
  }
  for (int gen = 0; gen < generations; ++gen) {
    const gbps rate{100.0 * (1 << gen)};
    const int tors = 4, aggs = spine_groups;
    const int hosts = 8;
    for (int pod = gen * pods_per_gen; pod < (gen + 1) * pods_per_gen;
         ++pod) {
      std::vector<node_id> pod_tors, pod_aggs;
      for (int t = 0; t < tors; ++t) {
        pod_tors.push_back(g.add_node(
            {str_format("pod%d/tor%d", pod, t), node_kind::tor,
             hosts + aggs, rate, hosts, 0, pod}));
      }
      for (int a = 0; a < aggs; ++a) {
        pod_aggs.push_back(g.add_node(
            {str_format("pod%d/agg%d", pod, a), node_kind::aggregation,
             tors + spines_per_group, rate, 0, 1, pod}));
      }
      for (node_id t : pod_tors) {
        for (node_id a : pod_aggs) g.add_edge(t, a, rate);
      }
      for (int a = 0; a < aggs; ++a) {
        for (int s = 0; s < spines_per_group; ++s) {
          g.add_edge(pod_aggs[static_cast<std::size_t>(a)],
                     spines[static_cast<std::size_t>(
                         a * spines_per_group + s)],
                     rate);
        }
      }
    }
  }
  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E11: heterogeneity / diversity-support", "§3.4, §5.4",
                "how many co-existing rates & radixes before automation "
                "and physical plant complain");

  const catalog cat = catalog::standard();
  const capability_envelope envelope =
      capability_envelope::clos_automation();

  text_table t1({"generations", "rates in fabric", "radixes",
                 "cable SKUs", "envelope findings", "constraint errors",
                 "tput alpha (uniform)"});
  for (int gens = 1; gens <= 3; ++gens) {
    const network_graph g = heterogeneous_clos(gens);
    evaluation_options opt;
    opt.run_repair_sim = false;
    auto ev = evaluate_design(g, "hclos", opt);
    if (!ev.is_ok()) {
      std::cerr << ev.error().to_string() << "\n";
      return 1;
    }
    const design_summary sum = summarize_design(g, ev.value().cables);
    const auto findings = envelope.check_design(g, ev.value().cables);
    const physical_design d{&g, &ev.value().place, &ev.value().floor,
                            &ev.value().cables, &cat};
    t1.row()
        .cell(gens)
        .cell(sum.distinct_link_rates)
        .cell(sum.distinct_radixes)
        .cell(ev.value().bundles.distinct_skus)
        .cell(findings.size())
        .cell(count_errors(run_all_checks(d)))
        .cell(ev.value().report.throughput_alpha_uniform, 2);
  }
  t1.print(std::cout,
           "Table E11.1: a Clos evolving in place (100G -> 200G -> 400G "
           "pods)");

  // Xpander's open question (§4.2): mixing ToR radixes. Groups must stay
  // matched; a higher-radix switch cannot use its extra ports without
  // breaking the lift structure — measure stranded ports.
  text_table t2({"mixed-radix groups", "switches", "stranded ports",
                 "stranded fraction"});
  for (const int upgraded_groups : {0, 2, 4}) {
    xpander_params xp;
    xp.degree = 8;
    xp.lift_size = 6;
    xp.hosts_per_switch = 4;
    xp.seed = 1;
    network_graph g = build_xpander(xp);
    // Upgrading a group to radix+8 switches strands 8 ports per switch:
    // the lift of K_{d+1} has no meta-edges for them.
    int stranded = 0;
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      if (g.node(node_id{i}).block < upgraded_groups) {
        g.node(node_id{i}).radix += 8;
        stranded += 8;
      }
    }
    const int total_ports =
        static_cast<int>(g.node_count()) * (xp.degree + xp.hosts_per_switch) +
        stranded;
    t2.row()
        .cell(upgraded_groups)
        .cell(g.node_count())
        .cell(stranded)
        .cell_pct(static_cast<double>(stranded) / total_ports);
  }
  t2.print(std::cout,
           "Table E11.2: Xpander with mixed ToR radixes (§4.2's open "
           "question) — extra ports strand");

  bench::note(
      "shape check: the fabric keeps working across generations (alpha "
      "stays near 1), but SKUs and envelope findings climb with each "
      "added rate — heterogeneity is an automation problem before it is "
      "a performance problem. Xpander strands every port above the "
      "lift degree.");
  return 0;
}
