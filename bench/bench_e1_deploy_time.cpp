// E1 — §2.3: "An extra 5 minutes per thing adds up quickly when you have
// to install 10k things (that would be about 1 week of added time)."
//
// Table 1: labor added by per-task overhead at three fabric scales —
// reproducing the paper's arithmetic with a full work-order simulation.
// Table 2: time-to-deploy vs. technician count, and the stranded-capital
// cost of the slower schedules (a machine without a network connection is
// stranded capital).
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E1: deployment time & stranded capital", "§2.3",
                "5 extra minutes x 10k tasks ~ 1 week; parallelism and "
                "overhead dominate time-to-deploy");

  // ------------------------------------------------------------------
  // Table 1: per-task overhead vs. added labor.
  text_table t1({"fabric", "physical tasks", "overhead min/task",
                 "labor h", "added labor h", "added weeks (1 tech)"});
  for (const int k : {8, 12, 16}) {
    const network_graph g = build_fat_tree(k, 100_gbps);
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;

    double base_labor = 0.0;
    std::size_t physical_tasks = 0;
    for (const double overhead : {0.0, 2.0, 5.0}) {
      opt.deployment.times.per_task_overhead = overhead;
      const auto ev = evaluate_design(g, "ft", opt);
      if (!ev.is_ok()) {
        std::cerr << ev.error().to_string() << "\n";
        return 1;
      }
      if (overhead == 0.0) {
        base_labor = ev.value().report.deploy_labor.value();
        for (const auto& [kind, unused] :
             ev.value().deployment.hours_by_kind) {
          (void)kind;
        }
        physical_tasks = ev.value().deployment.tasks_executed -
                         ev.value().deployment.links_tested;
      }
      const double labor = ev.value().report.deploy_labor.value();
      t1.row()
          .cell(str_format("fat-tree k=%d (%zu hosts)", k,
                           g.total_hosts()))
          .cell(physical_tasks)
          .cell(overhead, 0)
          .cell(labor, 1)
          .cell(labor - base_labor, 1)
          .cell((labor - base_labor) / 40.0, 2);  // 40h work weeks
    }
  }
  t1.print(std::cout, "Table E1.1: the 'extra 5 minutes per thing' tax");

  // ------------------------------------------------------------------
  // Table 2: crew size vs. makespan and stranded machine-capital.
  // Machines cost ~10x the network (§3.5 cites Hamilton); a host is
  // stranded until its fabric is up. Price stranding at $10k/host
  // amortized over 4 years -> $0.285/host/hour.
  const network_graph g = build_fat_tree(12, 100_gbps);
  const double stranded_rate_per_host_hour = 10000.0 / (4 * 365 * 24.0);
  text_table t2({"technicians", "makespan h", "labor h", "walk h",
                 "first-pass yield", "stranded capital"});
  for (const int techs : {1, 4, 8, 16, 32, 64}) {
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    opt.technicians.technicians = techs;
    const auto ev = evaluate_design(g, "ft12", opt);
    if (!ev.is_ok()) {
      std::cerr << ev.error().to_string() << "\n";
      return 1;
    }
    const auto& d = ev.value().deployment;
    const double stranded = d.makespan.value() *
                            static_cast<double>(g.total_hosts()) *
                            stranded_rate_per_host_hour;
    t2.row()
        .cell(techs)
        .cell(d.makespan.value(), 1)
        .cell(d.labor.value(), 1)
        .cell(d.walking.value(), 1)
        .cell_pct(d.first_pass_yield, 2)
        .cell(human_dollars(stranded));
  }
  t2.print(std::cout,
           str_format("Table E1.2: crew size on a %zu-host fabric",
                      g.total_hosts()));

  // ------------------------------------------------------------------
  // Table 3: materials. §2: automation must "order the correct materials
  // (e.g., cables pre-built to proper lengths)"; §2.3: "Fungibility also
  // helps here, by avoiding deployment delays when a part needs to be
  // substituted."
  {
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    const auto ev = evaluate_design(g, "ft12", opt);
    if (!ev.is_ok()) {
      std::cerr << ev.error().to_string() << "\n";
      return 1;
    }
    const procurement_order order =
        build_procurement_order(ev.value().cables, {});
    text_table t3a({"order book", "value"});
    t3a.row().cell("distinct SKUs").cell(order.skus.size());
    t3a.row().cell("cables incl. spares").cell(order.total_cables);
    t3a.row().cell("materials cost").cell(
        human_dollars(order.total_cost.value()));
    t3a.row().cell("longest lead time (days)").cell(
        order.max_lead_time_days, 0);
    t3a.row().cell("sole-source SKUs").cell(order.sole_source_skus);
    t3a.print(std::cout,
              "Table E1.3a: the materials order automation must place");

    text_table t3b({"vendor outage (60 days)", "affected SKUs",
                    "re-sourced", "blocked", "cost premium",
                    "deploy delay days"});
    for (const char* vendor : {"CuLink", "PhotonCord", "LumenSys"}) {
      const auto rep = assess_vendor_outage(order, vendor, 60.0);
      t3b.row()
          .cell(vendor)
          .cell(rep.affected_skus)
          .cell(rep.resourced_skus)
          .cell(rep.blocked_skus)
          .cell(human_dollars(rep.cost_premium.value()))
          .cell(rep.delay_days, 0);
    }
    t3b.print(std::cout,
              "Table E1.3b: fungibility vs a 60-day vendor outage (§2.2, "
              "§2.3)");
  }

  bench::note(
      "shape check: added labor scales linearly with overhead x task "
      "count (the paper's ~1 week at 10k tasks x 5 min), and makespan "
      "saturates once technicians outnumber the critical path. Commodity "
      "media ride out a vendor outage at a small premium; sole-source "
      "active cables block the schedule for the whole outage.");
  return 0;
}
