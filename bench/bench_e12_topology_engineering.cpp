// E12 — §4.1: "Poutievski et al. showed that replacing these patch panels
// with a relatively slow optical circuit switch not only further eases
// expansions, but also supports frequent changes to the capacity between
// aggregation blocks, to respond to changing and uneven inter-block
// traffic demands. (In real networks, inter-rack and inter-block demands
// are often persistently and highly non-uniform...)"
//
// Table 1: uniform vs demand-engineered OCS mesh under increasingly
// skewed inter-block matrices — throughput, retunes, and the labor bill
// (zero: it is software).
// Table 2: routing matters too — ECMP vs VLB on the direct mesh.
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"
#include "deploy/topology_engineering.h"

namespace {

using namespace pn;
using namespace pn::literals;

// A TM where `hot_pairs` block pairs carry `skew`x the background demand.
traffic_matrix skewed_block_tm(const jupiter_fabric& f, int hot_pairs,
                               double skew, double base_gbps) {
  traffic_matrix tm(f.graph.host_facing_nodes());
  const auto& eps = tm.endpoints();
  const int blocks = f.params.agg_blocks;
  auto is_hot = [&](int b1, int b2) {
    // Hot pairs: (0,1), (2,3), ... the first `hot_pairs` disjoint pairs.
    for (int h = 0; h < hot_pairs; ++h) {
      if ((b1 == 2 * h && b2 == 2 * h + 1) ||
          (b2 == 2 * h && b1 == 2 * h + 1)) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t s = 0; s < eps.size(); ++s) {
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      const int bs = f.graph.node(eps[s]).block;
      const int bt = f.graph.node(eps[t]).block;
      if (bs == bt || bs >= blocks || bt >= blocks) continue;
      tm.set_demand(s, t,
                    is_hot(bs, bt) ? base_gbps * skew : base_gbps);
    }
  }
  return tm;
}

}  // namespace

int main() {
  bench::banner("E12: OCS topology engineering", "§4.1 / Poutievski et al.",
                "retuning the OCS mesh to the demand matrix is a software "
                "operation that buys real throughput under skew");

  jupiter_params p;
  p.agg_blocks = 8;
  p.tors_per_block = 4;
  p.mbs_per_block = 4;
  p.uplinks_per_mb = 8;  // 32 uplinks per block
  p.ocs_count = 16;
  p.hosts_per_tor = 8;
  p.mode = jupiter_mode::direct;
  const jupiter_fabric uniform = build_jupiter(p);

  text_table t1({"skew", "alpha uniform mesh", "alpha engineered mesh",
                 "gain", "ocs retunes", "floor labor h"});
  for (const double skew : {1.0, 4.0, 16.0, 64.0}) {
    const traffic_matrix tm = skewed_block_tm(uniform, 2, skew, 0.4);
    const auto demand = block_demand_matrix(uniform, tm);
    const auto mesh = engineer_jupiter_mesh(p, demand);
    if (!mesh.is_ok()) {
      std::cerr << mesh.error().to_string() << "\n";
      return 1;
    }
    const double a_uniform = best_routing_throughput(uniform.graph, tm).alpha;

    // Rebuild the TM against the engineered fabric's endpoints (same
    // order by construction).
    traffic_matrix tm2(mesh.value().fabric.graph.host_facing_nodes());
    for (std::size_t s = 0; s < tm.size(); ++s) {
      for (std::size_t t = 0; t < tm.size(); ++t) {
        tm2.set_demand(s, t, tm.demand(s, t));
      }
    }
    const double a_eng =
        best_routing_throughput(mesh.value().fabric.graph, tm2).alpha;
    t1.row()
        .cell(skew, 0)
        .cell(a_uniform, 2)
        .cell(a_eng, 2)
        .cell(str_format("%.2fx", a_eng / a_uniform))
        .cell(mesh.value().ocs_retunes)
        .cell(0);
  }
  t1.print(std::cout,
           "Table E12.1: demand-proportional OCS mesh vs uniform mesh");

  // Routing ablation on the uniform mesh.
  text_table t2({"traffic", "ECMP alpha", "VLB alpha", "best"});
  struct tmcase {
    std::string name;
    traffic_matrix tm;
  };
  std::vector<tmcase> cases;
  cases.push_back({"uniform all-to-all",
                   uniform_traffic(uniform.graph, 5_gbps)});
  cases.push_back({"permutation",
                   permutation_traffic(uniform.graph, 20_gbps, 3)});
  cases.push_back({"2 hot block pairs (16x)",
                   skewed_block_tm(uniform, 2, 16.0, 0.4)});
  for (const auto& c : cases) {
    const double ecmp = ecmp_throughput(uniform.graph, c.tm).alpha;
    const double vlb = vlb_throughput(uniform.graph, c.tm).alpha;
    t2.row()
        .cell(c.name)
        .cell(ecmp, 2)
        .cell(vlb, 2)
        .cell(ecmp >= vlb ? "ECMP" : "VLB");
  }
  t2.print(std::cout,
           "Table E12.2: the direct mesh needs non-minimal routing "
           "(§4.2 / Harsh et al.)");

  bench::note(
      "shape check: at skew 1 the engineered mesh changes (almost) "
      "nothing; under skew it always wins, with the largest gains at "
      "moderate skew (beyond that the block uplink budget itself binds). "
      "Retunes stay software-only — labor 0h, contrast E4's floor hours. "
      "VLB wins on adversarial matrices, ECMP on uniform.");
  return 0;
}
