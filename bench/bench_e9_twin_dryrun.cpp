// E9 — §5.2/§5.3: what the digital twin buys. "The costs to remediate
// mistakes increase dramatically if we only discover them late"; "almost
// all of [our deployment mistakes] could have been averted if we could do
// multi-layer digital-twin dry runs."
//
// Method: inject a library of realistic design/plan faults into an
// otherwise-clean design. For each fault, check which defense catches it
// (schema validation, capability envelope, constraint checks, dry run)
// and price remediation at the stage it would otherwise surface
// (plan-time ~ $0; deploy-time ~ rework labor; in-service ~ outage).
#include <iostream>

#include "bench_util.h"
#include "core/physnet.h"

namespace {

struct fault_outcome {
  std::string fault;
  std::string caught_by;  // "" = escaped to the floor
  double plan_cost = 0.0;
  double late_cost = 0.0;  // remediation if it had shipped
};

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  bench::banner("E9: twin dry-run value", "§5.2/§5.3",
                "plan-time detection turns expensive physical rework into "
                "a schema/constraint error");

  const catalog cat = catalog::standard();
  const twin_schema schema = twin_schema::network_schema();
  const capability_envelope envelope =
      capability_envelope::clos_automation();

  // A clean baseline design.
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  auto baseline = evaluate_design(g, "ft8", opt);
  if (!baseline.is_ok()) {
    std::cerr << baseline.error().to_string() << "\n";
    return 1;
  }
  evaluation& ev = baseline.value();
  const twin_model twin =
      build_network_twin(g, ev.place, ev.floor, ev.cables, cat);

  std::vector<fault_outcome> outcomes;

  // Fault 1: rack power budget mis-specified (shared feed overload).
  {
    fault_outcome f{"rack power budget halved (overloaded feed)", "", 0.0,
                    25000.0};
    floorplan_params fpp = ev.floor.params();
    fpp.rack_power_budget = watts{1200.0};
    floorplan bad_floor(fpp);
    auto pl = block_placement(g, bad_floor);
    if (pl.is_ok()) {
      auto plan = plan_cabling(g, pl.value(), bad_floor, cat, {});
      if (plan.is_ok()) {
        const physical_design d{&g, &pl.value(), &bad_floor,
                                &plan.value(), &cat};
        if (count_errors(run_all_checks(d)) > 0) {
          f.caught_by = "constraint check (rack_power)";
        }
      }
    }
    outcomes.push_back(f);
  }

  // Fault 2: plenum too small for the cable count (the §3.1 rack).
  {
    fault_outcome f{"256-cable rack with a 400G-DAC-sized plenum", "",
                    0.0, 40000.0};
    floorplan_params fpp = ev.floor.params();
    fpp.rack_plenum = square_millimeters{4000.0};
    floorplan bad_floor(fpp);
    auto pl = block_placement(g, bad_floor);
    if (pl.is_ok()) {
      auto plan = plan_cabling(g, pl.value(), bad_floor, cat, {});
      if (plan.is_ok()) {
        const physical_design d{&g, &pl.value(), &bad_floor,
                                &plan.value(), &cat};
        for (const auto& v : run_all_checks(d)) {
          if (v.check == "plenum") f.caught_by = "constraint check (plenum)";
        }
      }
    }
    outcomes.push_back(f);
  }

  // Fault 3: an out-of-envelope design handed to Clos-only automation.
  {
    fault_outcome f{"jellyfish fabric handed to Clos automation", "", 0.0,
                    120000.0};
    jellyfish_params jp;
    jp.switches = 64;
    jp.radix = 12;
    jp.hosts_per_switch = 4;
    jp.seed = 2;
    const network_graph jf = build_jellyfish(jp);
    auto jev = evaluate_design(jf, "jf", opt);
    if (jev.is_ok() &&
        !envelope.check_design(jf, jev.value().cables).empty()) {
      f.caught_by = "capability envelope";
    }
    outcomes.push_back(f);
  }

  // Fault 4: a switch model outside the schema's representable range.
  {
    fault_outcome f{"1024-port chassis nobody's automation has seen", "",
                    0.0, 60000.0};
    twin_model m = twin;
    const entity_id e = m.add_entity("switch", "monster");
    m.set_attr(e, "radix", std::int64_t{1024});
    m.set_attr(e, "port_rate_gbps", 100.0);
    m.set_attr(e, "rack_units", std::int64_t{16});
    m.set_attr(e, "power_w", 4000.0);
    if (!schema.validate(m).empty()) {
      f.caught_by = "schema validation (attr_range)";
    }
    outcomes.push_back(f);
  }

  // Fault 5: a decom plan that removes a switch before its cables.
  {
    fault_outcome f{"decom removes switch before its cables", "", 0.0,
                    90000.0};
    dry_run_engine eng(twin, &schema);
    dry_run_options dopt;
    dopt.validate_each_step = false;
    const auto report =
        eng.run(naive_decom_plan(twin, {"spine0/sw0"}), dopt);
    if (!report.ok) f.caught_by = "dry run (referential integrity)";
    outcomes.push_back(f);
  }

  // Fault 6: an expansion plan referencing equipment that is not there.
  {
    fault_outcome f{"work order wires a switch that was never ordered",
                    "", 0.0, 15000.0};
    dry_run_engine eng(twin, &schema);
    dry_run_options dopt;
    dopt.validate_each_step = false;
    const auto report = eng.run(
        {op_add_relation("placed_in", "switch", "pod9/tor9", "rack",
                         "r00.00")},
        dopt);
    if (!report.ok) f.caught_by = "dry run (missing entity)";
    outcomes.push_back(f);
  }

  // Fault 7: a data error inside all schema ranges — a cable recorded at
  // 900 m (schema allows up to 2000 m). Only §5.3's inferred design rules
  // ("Bugs as Deviant Behavior") can flag it: every other cable in this
  // fabric is under ~25 m.
  {
    fault_outcome f{"cable length imported as 900m (schema-legal typo)",
                    "", 0.0, 12000.0};
    const auto rules = infer_rules(twin);
    twin_model bad = twin;
    const auto cable = bad.find("cable", "cable0");
    if (cable.has_value()) {
      bad.set_attr(*cable, "length_m", 900.0);
      if (!check_against_rules(bad, rules).empty()) {
        f.caught_by = "inferred design rules (deviant datum)";
      }
    }
    outcomes.push_back(f);
  }

  // Fault 8: a subtle one no model layer can see (mis-measured rack
  // position) — the paper's honest caveat: "that will require better
  // techniques for measuring the physical world."
  outcomes.push_back({"rack position recorded 0.3m off (bad survey data)",
                      "", 0.0, 8000.0});

  text_table t({"injected fault", "caught at plan time by",
                "plan-time cost", "cost if shipped"});
  double averted = 0.0, escaped = 0.0;
  int caught = 0;
  for (const auto& f : outcomes) {
    t.row()
        .cell(f.fault)
        .cell(f.caught_by.empty() ? "ESCAPED" : f.caught_by)
        .cell(human_dollars(f.plan_cost))
        .cell(human_dollars(f.late_cost));
    if (f.caught_by.empty()) {
      escaped += f.late_cost;
    } else {
      averted += f.late_cost;
      ++caught;
    }
  }
  t.print(std::cout, "Table E9.1: fault library vs the twin's defenses");

  std::cout << "\ncaught " << caught << "/" << outcomes.size()
            << " faults at plan time; remediation averted "
            << human_dollars(averted) << ", escaped "
            << human_dollars(escaped) << "\n";

  bench::note(
      "shape check: 'almost all' faults are caught before hardware moves "
      "(7/8 here) — including a schema-legal data typo only the inferred "
      "design rules notice; the residue is bad physical-world "
      "measurement, which the paper flags as the open problem.");
  return 0;
}
