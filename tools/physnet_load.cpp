// physnet_load — open-loop load generator for physnet_serve/physnet_proxy.
//
//   physnet_load --connect=unix:/tmp/proxy.sock --qps=500 --duration=5
//   physnet_load --connect=tcp::9917 --mix=fat_tree:4,jellyfish:8:random \
//       --hot-fraction=0.9 --hot-variants=160 --json=BENCH_leg.json
//
// The arrival schedule, request mix, and request bytes are a pure
// function of --seed/--qps/--duration/--mix (see src/service/loadgen.h
// for the methodology); only service behavior varies between runs.
// Prints a JSON leg object to stdout (and to --json=PATH if given) with
// achieved-vs-offered QPS and latency percentiles measured from each
// request's scheduled arrival.
//
// Exit codes: 0 run completed, 1 run failed to execute, 2 usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>
#include "cli_parse.h"

#include "common/strings.h"
#include "service/loadgen.h"

namespace {

using namespace pn;

struct cli_args {
  loadgen_config cfg;
  std::string json_path;
  std::string label = "load";
  int workers = 1;  // annotation only: fleet size behind --connect
};

// "--mix=fat_tree:4,jellyfish:8:random" -> entries; strategy optional.
bool parse_mix(const std::string& value,
               std::vector<load_mix_entry>& out) {
  out.clear();
  for (const std::string& part : split(value, ',')) {
    const std::vector<std::string> fields = split(part, ':');
    if (fields.size() < 2 || fields.size() > 3 || fields[0].empty()) {
      std::cerr << "bad --mix entry '" << part
                << "' (want family:size[:strategy])\n";
      return false;
    }
    load_mix_entry entry;
    entry.family = fields[0];
    if (!cli::parse_or_usage("--mix size", fields[1], entry.size)) {
      return false;
    }
    if (fields.size() == 3) entry.strategy = fields[2];
    out.push_back(std::move(entry));
  }
  if (out.empty()) {
    std::cerr << "--mix must name at least one family:size\n";
    return false;
  }
  return true;
}

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--connect") {
      out.cfg.connect = value;
    } else if (key == "--qps") {
      if (!cli::parse_or_usage(key, value, out.cfg.offered_qps)) {
        return false;
      }
      if (out.cfg.offered_qps <= 0.0) {
        std::cerr << "--qps must be > 0\n";
        return false;
      }
    } else if (key == "--duration") {
      if (!cli::parse_or_usage(key, value, out.cfg.duration_s)) {
        return false;
      }
      if (out.cfg.duration_s <= 0.0) {
        std::cerr << "--duration must be > 0 (seconds)\n";
        return false;
      }
    } else if (key == "--connections") {
      if (!cli::parse_or_usage(key, value, out.cfg.connections)) {
        return false;
      }
      if (out.cfg.connections < 1) {
        std::cerr << "--connections must be >= 1\n";
        return false;
      }
    } else if (key == "--seed") {
      if (!cli::parse_or_usage(key, value, out.cfg.seed)) return false;
    } else if (key == "--mix") {
      if (!parse_mix(value, out.cfg.mix)) return false;
    } else if (key == "--hot-fraction") {
      if (!cli::parse_or_usage(key, value, out.cfg.hot_fraction)) {
        return false;
      }
      if (out.cfg.hot_fraction < 0.0 || out.cfg.hot_fraction > 1.0) {
        std::cerr << "--hot-fraction must be in [0, 1]\n";
        return false;
      }
    } else if (key == "--hot-variants") {
      if (!cli::parse_or_usage(key, value, out.cfg.hot_variants)) {
        return false;
      }
      if (out.cfg.hot_variants < 1) {
        std::cerr << "--hot-variants must be >= 1\n";
        return false;
      }
    } else if (key == "--repair") {
      out.cfg.run_repair_sim = true;
    } else if (key == "--json") {
      out.json_path = value;
    } else if (key == "--label") {
      out.label = value;
    } else if (key == "--workers") {
      if (!cli::parse_or_usage(key, value, out.workers)) return false;
      if (out.workers < 1) {
        std::cerr << "--workers must be >= 1\n";
        return false;
      }
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.cfg.connect.empty()) {
    std::cerr << "--connect is required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_load --connect=unix:PATH|tcp:HOST:PORT\n"
           "       [--qps=N] [--duration=SECONDS] [--connections=N]\n"
           "       [--seed=N] [--mix=family:size[:strategy],...]\n"
           "       [--hot-fraction=F] [--hot-variants=N] [--repair]\n"
           "       [--json=PATH] [--label=NAME] [--workers=N]\n"
           "  exit codes: 0 run completed, 1 run failed, 2 usage\n";
    return 2;
  }

  auto schedule = build_schedule(args.cfg);
  if (!schedule.is_ok()) {
    std::cerr << "cannot build schedule: " << schedule.error().to_string()
              << "\n";
    return 2;
  }
  std::cerr << "physnet_load: " << schedule.value().size()
            << " requests at " << args.cfg.offered_qps << " qps over "
            << args.cfg.connections << " connections\n";

  auto report = run_load(args.cfg, schedule.value());
  if (!report.is_ok()) {
    std::cerr << "load run failed: " << report.error().to_string() << "\n";
    return 1;
  }

  const std::string json =
      load_report_json(report.value(), args.label, args.workers);
  std::cout << json << "\n";
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      return 1;
    }
    out << json << "\n";
  }
  // A run that executed but answered nothing successfully still exits 0:
  // the report itself is the result (the caller inspects the counters).
  return 0;
}
