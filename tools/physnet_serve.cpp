// physnet_serve — the batched, cached evaluation service daemon.
//
//   physnet_serve --listen=unix:/tmp/physnet.sock
//   physnet_serve --listen=tcp::9917 --eval-threads=8 --queue-limit=128
//
// Accepts framed requests (see src/service/protocol.h), coalesces and
// batches evaluations onto a worker pool, caches results by content
// hash, and exposes live counters via the `stats` request.
//
// SIGINT/SIGTERM drain cleanly: the listener closes immediately, every
// request already admitted is evaluated and answered, new evaluate
// requests answer `shutting_down`, and the process exits 0. A final
// stats dump goes to stderr on the way out.
//
// Exit codes: 0 clean shutdown (including signal-driven drain),
// 1 serve/bind failure, 2 usage error.
#include <csignal>
#include <iostream>
#include <string>
#include "cli_parse.h"

#include "core/physnet.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using namespace pn;

struct cli_args {
  std::string listen;
  int conn_threads = 8;
  int eval_threads = 0;  // 0 = one per core
  std::size_t queue_limit = 64;
  std::size_t max_batch = 8;
  std::size_t cache_capacity = 256;
  std::uint64_t seed = 1;  // default seed for the base template
  bool quiet = false;
};

// Shared with the signal handlers: request_cancel is one relaxed atomic
// store, which is async-signal-safe once the token exists.
cancel_token g_shutdown;

extern "C" void handle_shutdown_signal(int) { g_shutdown.request_cancel(); }

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--listen") {
      out.listen = value;
    } else if (key == "--conn-threads") {
      if (!cli::parse_or_usage(key, value, out.conn_threads)) {
        return false;
      }
      if (out.conn_threads < 1) {
        std::cerr << "--conn-threads must be >= 1\n";
        return false;
      }
    } else if (key == "--eval-threads") {
      if (!cli::parse_or_usage(key, value, out.eval_threads)) {
        return false;
      }
      if (out.eval_threads < 0) {
        std::cerr << "--eval-threads must be >= 0 (0 = one per core)\n";
        return false;
      }
    } else if (key == "--queue-limit") {
      if (!cli::parse_or_usage(key, value, out.queue_limit)) {
        return false;
      }
      if (out.queue_limit == 0) {
        std::cerr << "--queue-limit must be >= 1\n";
        return false;
      }
    } else if (key == "--max-batch") {
      if (!cli::parse_or_usage(key, value, out.max_batch)) {
        return false;
      }
      if (out.max_batch == 0) {
        std::cerr << "--max-batch must be >= 1\n";
        return false;
      }
    } else if (key == "--cache-capacity") {
      if (!cli::parse_or_usage(key, value, out.cache_capacity)) {
        return false;
      }
    } else if (key == "--seed") {
      if (!cli::parse_or_usage(key, value, out.seed)) return false;
    } else if (key == "--quiet") {
      out.quiet = true;
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.listen.empty()) {
    std::cerr << "--listen is required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_serve --listen=unix:PATH|tcp:HOST:PORT\n"
           "       [--conn-threads=N] [--eval-threads=N] "
           "[--queue-limit=N] [--max-batch=N] [--cache-capacity=N] "
           "[--seed=N] [--quiet]\n"
           "  SIGINT/SIGTERM drain in-flight requests and exit 0.\n"
           "  exit codes: 0 clean shutdown, 1 serve failure, 2 usage\n";
    return 2;
  }

  server_config cfg;
  cfg.listen = args.listen;
  cfg.conn_threads = args.conn_threads;
  cfg.eval_threads = args.eval_threads;
  cfg.queue_limit = args.queue_limit;
  cfg.max_batch = args.max_batch;
  cfg.cache_capacity = args.cache_capacity;
  cfg.base_options.seed = args.seed;

  eval_server server(std::move(cfg));
  if (const status bound = server.bind(); !bound.is_ok()) {
    std::cerr << "bind failed: " << bound.to_string() << "\n";
    return 1;
  }
  if (!args.quiet) {
    std::cerr << "physnet_serve: listening on " << args.listen << "\n";
  }

  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
  const status served = server.serve(g_shutdown);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (!args.quiet) {
    const cache_stats cs = server.cache().stats();
    std::cerr << "physnet_serve: drained\n";
    for (const auto& [key, value] : server.metrics().to_stats(
             cs.hits, cs.misses, cs.entries, cs.epoch)) {
      std::cerr << "  " << key << " = " << value << "\n";
    }
  }
  if (!served.is_ok()) {
    std::cerr << "serve failed: " << served.to_string() << "\n";
    return 1;
  }
  return 0;
}
