// physnet_search — deployability-constrained topology search.
//
//   physnet_search --space=examples/search/quickstart.space
//   physnet_search --space=FILE --strategy=local --restarts=4 --jobs=8
//   physnet_search --space=FILE --checkpoint=s.ckpt
//   physnet_search --space=FILE --resume=s.ckpt
//   physnet_search --space=FILE --via-serve=unix:/tmp/physnet.sock
//
// Parses the declarative search-space file (src/search), runs the chosen
// strategy (exhaustive grid, or seeded hill-climbing with restarts), and
// prints the Pareto front over (cost-to-deploy, time-to-deploy,
// rewiring-steps, bisection) as CSV on stdout. --trace=FILE additionally
// writes the full trace — every candidate the search discovered, in
// ordinal order. Neither CSV has timing columns, so equal searches are
// byte-identical however they ran: serial, --jobs N, --via-serve against
// a fleet, or interrupted and resumed.
//
// --via-serve=ENDPOINT evaluates candidates through the evaluation
// service (physnet_serve, or physnet_proxy fronting a fleet) over
// --connections concurrent channels instead of locally.
//
// SIGINT (^C) requests cooperative cancellation; with --checkpoint the
// search resumes later via --resume. Exit codes: 0 ok, 1 candidate
// evaluation failed, 2 usage error, 130 cancelled.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli_parse.h"
#include "search/engine.h"
#include "service/client.h"

namespace {

using namespace pn;

struct cli_args {
  std::string space_file;
  std::string strategy = "grid";
  bool seed_set = false;
  std::uint64_t seed = 0;
  int jobs = 1;
  local_search_options local;
  std::vector<search_constraint> extra_constraints;
  double point_deadline_ms = 0.0;
  std::string front_file;  // empty = stdout
  std::string trace_file;
  std::string checkpoint_file;
  std::string resume_file;
  std::size_t cancel_after = 0;
  std::string via_serve;  // endpoint spec; empty = evaluate locally
  int connections = 2;
  retry_policy retry;
};

// Shared with the SIGINT handler: request_cancel is one relaxed atomic
// store, which is async-signal-safe once the token exists.
cancel_token g_sigint_cancel;

extern "C" void handle_sigint(int) { g_sigint_cancel.request_cancel(); }

// --constraint=min_hosts:128 — appended after the space file's own.
bool parse_constraint_flag(const std::string& value,
                           search_constraint& out) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) {
    std::cerr << "--constraint wants NAME:BOUND, e.g. min_hosts:128\n";
    return false;
  }
  const auto kind = constraint_kind_from_name(value.substr(0, colon));
  if (!kind.has_value()) {
    std::cerr << "--constraint: unknown constraint '"
              << value.substr(0, colon) << "'\n";
    return false;
  }
  out.kind = *kind;
  return cli::parse_or_usage("--constraint", value.substr(colon + 1),
                             out.bound);
}

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--space") {
      out.space_file = value;
    } else if (key == "--strategy") {
      out.strategy = value;
      if (value != "grid" && value != "local") {
        std::cerr << "--strategy must be grid or local\n";
        return false;
      }
    } else if (key == "--seed") {
      if (!cli::parse_or_usage(key, value, out.seed)) return false;
      out.seed_set = true;
    } else if (key == "--jobs") {
      if (!cli::parse_or_usage(key, value, out.jobs)) return false;
      if (out.jobs < 0) {
        std::cerr << "--jobs must be >= 0\n";
        return false;
      }
    } else if (key == "--restarts") {
      if (!cli::parse_or_usage(key, value, out.local.restarts)) return false;
      if (out.local.restarts < 1) {
        std::cerr << "--restarts must be >= 1\n";
        return false;
      }
    } else if (key == "--iters") {
      if (!cli::parse_or_usage(key, value, out.local.max_iters)) return false;
      if (out.local.max_iters < 1) {
        std::cerr << "--iters must be >= 1\n";
        return false;
      }
    } else if (key == "--constraint") {
      search_constraint con;
      if (!parse_constraint_flag(value, con)) return false;
      out.extra_constraints.push_back(con);
    } else if (key == "--point-deadline-ms") {
      if (!cli::parse_or_usage(key, value, out.point_deadline_ms)) {
        return false;
      }
    } else if (key == "--front") {
      out.front_file = value;
    } else if (key == "--trace") {
      out.trace_file = value;
    } else if (key == "--checkpoint") {
      out.checkpoint_file = value;
    } else if (key == "--resume") {
      out.resume_file = value;
    } else if (key == "--cancel-after") {
      if (!cli::parse_or_usage(key, value, out.cancel_after)) return false;
    } else if (key == "--via-serve") {
      out.via_serve = value;
      if (out.via_serve.empty()) {
        std::cerr << "--via-serve needs an endpoint spec\n";
        return false;
      }
    } else if (key == "--connections") {
      if (!cli::parse_or_usage(key, value, out.connections)) return false;
      if (out.connections < 1) {
        std::cerr << "--connections must be >= 1\n";
        return false;
      }
    } else if (key == "--retries") {
      if (!cli::parse_or_usage(key, value, out.retry.retries)) return false;
      if (out.retry.retries < 0) {
        std::cerr << "--retries must be >= 0\n";
        return false;
      }
    } else if (key == "--backoff-ms") {
      if (!cli::parse_or_usage(key, value, out.retry.backoff_ms)) {
        return false;
      }
      if (out.retry.backoff_ms <= 0.0) {
        std::cerr << "--backoff-ms must be > 0\n";
        return false;
      }
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.space_file.empty()) {
    std::cerr << "--space is required\n";
    return false;
  }
  return true;
}

bool write_file_or_stderr(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_search --space=FILE [--strategy=grid|local]\n"
           "  [--seed=N] [--jobs=N] [--restarts=N] [--iters=N]\n"
           "  [--constraint=NAME:BOUND]... [--point-deadline-ms=MS]\n"
           "  [--front=FILE] [--trace=FILE] [--checkpoint=FILE] "
           "[--resume=FILE]\n"
           "  [--cancel-after=N]\n"
           "  [--via-serve=unix:PATH|tcp:HOST:PORT [--connections=N]\n"
           "   [--retries=N] [--backoff-ms=MS]]\n"
           "stdout: Pareto-front CSV (or --front=FILE); --trace=FILE gets "
           "the full\n"
           "candidate trace. SIGINT drains cleanly (exit 130); rerun with\n"
           "--resume=FILE to finish.\n";
    return 2;
  }

  std::ifstream in(args.space_file);
  if (!in) {
    std::cerr << "cannot read " << args.space_file << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = parse_space(text.str());
  if (!parsed.is_ok()) {
    std::cerr << args.space_file << ": " << parsed.error().to_string()
              << "\n";
    return 2;
  }
  search_space space = std::move(parsed).value();
  if (args.seed_set) space.seed = args.seed;
  for (const search_constraint& con : args.extra_constraints) {
    space.constraints.push_back(con);
  }

  search_run_options ropt;
  ropt.strategy = args.strategy == "local" ? search_strategy::local
                                           : search_strategy::grid;
  ropt.local = args.local;
  ropt.cancel = g_sigint_cancel;

  sweep_checkpoint resume_from;
  if (!args.resume_file.empty()) {
    auto loaded = load_sweep_checkpoint(args.resume_file);
    if (!loaded.is_ok()) {
      std::cerr << "cannot resume: " << loaded.error().to_string() << "\n";
      return 2;
    }
    resume_from = std::move(loaded).value();
    ropt.resume = &resume_from;
  }
  ropt.checkpoint_path = !args.checkpoint_file.empty() ? args.checkpoint_file
                                                       : args.resume_file;

  local_search_backend local_backend{[&] {
    local_backend_options lopt;
    lopt.jobs = args.jobs;
    lopt.cancel = g_sigint_cancel;
    lopt.point_deadline_ms = args.point_deadline_ms;
    lopt.cancel_after = args.cancel_after;
    return lopt;
  }()};
  std::unique_ptr<serve_search_backend> serve_backend;
  if (!args.via_serve.empty()) {
    serve_backend_options sopt;
    sopt.endpoint = args.via_serve;
    sopt.connections = args.connections;
    sopt.retry = args.retry;
    sopt.cancel = g_sigint_cancel;
    auto connected = serve_search_backend::connect(std::move(sopt));
    if (!connected.is_ok()) {
      std::cerr << "connect failed: " << connected.error().to_string()
                << "\n";
      return 1;
    }
    serve_backend = std::move(connected).value();
  }
  search_backend& backend =
      serve_backend != nullptr
          ? static_cast<search_backend&>(*serve_backend)
          : static_cast<search_backend&>(local_backend);

  std::signal(SIGINT, handle_sigint);
  auto run = run_search(space, backend, ropt);
  std::signal(SIGINT, SIG_DFL);
  if (!run.is_ok()) {
    std::cerr << "search failed: " << run.error().to_string() << "\n";
    return 2;
  }
  const search_results& res = run.value();

  const std::string front_csv = search_front_csv(res);
  if (args.front_file.empty()) {
    std::cout << front_csv;
  } else if (!write_file_or_stderr(args.front_file, front_csv)) {
    return 2;
  }
  if (!args.trace_file.empty() &&
      !write_file_or_stderr(args.trace_file, search_trace_csv(res))) {
    return 2;
  }

  std::size_t evaluated = 0, failed = 0, feasible = 0, pending = 0;
  for (const search_record& r : res.records) {
    switch (r.st) {
      case search_record::state::ok:
        ++evaluated;
        if (r.feasible) ++feasible;
        break;
      case search_record::state::failed:
        ++evaluated;
        ++failed;
        break;
      case search_record::state::skipped:
        ++pending;
        break;
    }
  }
  std::cerr << "search: " << res.records.size() << " candidates, "
            << feasible << " feasible, " << failed << " failed, front "
            << res.front.size();
  if (res.restored > 0) std::cerr << ", " << res.restored << " resumed";
  std::cerr << "\n";

  if (res.cancelled) {
    std::cerr << "search cancelled: " << evaluated << "/"
              << res.records.size() << " discovered candidates done, "
              << pending << " remaining";
    if (!ropt.checkpoint_path.empty()) {
      std::cerr << "; resume with --resume=" << ropt.checkpoint_path;
    }
    std::cerr << "\n";
    return 130;
  }
  return failed == 0 ? 0 : 1;
}
