// physnet_eval — command-line deployability evaluation of one design.
//
//   physnet_eval --family=fat_tree --size=8
//   physnet_eval --family=jellyfish --size=64 --strategy=annealed --repair
//   physnet_eval --family=dragonfly --size=9 --dot=fabric.dot
//
// Families: fat_tree (size = k), leaf_spine (size = leaves),
// jellyfish / xpander (size = switches), flattened_butterfly (size = dim,
// 2-D), slim_fly (size = q), vl2 (size = tors), dragonfly (size = groups),
// jupiter_fat_tree / jupiter_direct (size = aggregation blocks).
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/physnet.h"

namespace {

using namespace pn;
using namespace pn::literals;

struct cli_args {
  std::string family = "fat_tree";
  int size = 8;
  std::string strategy = "block";
  std::uint64_t seed = 1;
  bool repair = false;
  std::string dot_file;
};

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--family") {
      out.family = value;
    } else if (key == "--size") {
      out.size = std::stoi(value);
    } else if (key == "--strategy") {
      out.strategy = value;
    } else if (key == "--seed") {
      out.seed = std::stoull(value);
    } else if (key == "--repair") {
      out.repair = true;
    } else if (key == "--dot") {
      out.dot_file = value;
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

result<network_graph> build_family(const std::string& family, int size,
                                   std::uint64_t seed) {
  if (family == "fat_tree") {
    if (size % 2 != 0) return invalid_argument_error("k must be even");
    return build_fat_tree(size, 100_gbps);
  }
  if (family == "leaf_spine") {
    leaf_spine_params p;
    p.leaves = size;
    p.spines = std::max(2, size / 3);
    p.hosts_per_leaf = 16;
    return build_leaf_spine(p);
  }
  if (family == "jellyfish") {
    jellyfish_params p;
    p.switches = size;
    p.radix = 16;
    p.hosts_per_switch = 8;
    p.seed = seed;
    return build_jellyfish(p);
  }
  if (family == "xpander") {
    xpander_params p;
    p.degree = 8;
    p.lift_size = std::max(1, size / (p.degree + 1));
    p.hosts_per_switch = 8;
    p.seed = seed;
    return build_xpander(p);
  }
  if (family == "flattened_butterfly") {
    flattened_butterfly_params p;
    p.dims = {size, size};
    p.hosts_per_switch = 4;
    return build_flattened_butterfly(p);
  }
  if (family == "slim_fly") {
    slim_fly_params p;
    p.q = size;
    p.hosts_per_switch = 6;
    auto g = build_slim_fly(p);
    if (!g.is_ok()) return g.error();
    return std::move(g).value();
  }
  if (family == "vl2") {
    vl2_params p;
    p.tors = size;
    p.aggs = std::max(2, size / 4);
    p.intermediates = std::max(2, size / 8);
    return build_vl2(p);
  }
  if (family == "dragonfly") {
    auto g = build_dragonfly(balanced_dragonfly(3, size, 100_gbps));
    if (!g.is_ok()) return g.error();
    return std::move(g).value();
  }
  if (family == "jupiter_fat_tree" || family == "jupiter_direct") {
    jupiter_params p;
    p.agg_blocks = size;
    p.spine_blocks = std::max(2, size / 2);
    p.mode = family == "jupiter_direct" ? jupiter_mode::direct
                                        : jupiter_mode::fat_tree;
    return build_jupiter(p).graph;
  }
  return invalid_argument_error("unknown family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_eval [--family=NAME] [--size=N] "
           "[--strategy=block|random|annealed] [--seed=N] [--repair] "
           "[--dot=FILE]\n"
           "families: fat_tree leaf_spine jellyfish xpander "
           "flattened_butterfly slim_fly vl2 dragonfly jupiter_fat_tree "
           "jupiter_direct\n";
    return 2;
  }

  auto graph = build_family(args.family, args.size, args.seed);
  if (!graph.is_ok()) {
    std::cerr << "cannot build design: " << graph.error().to_string()
              << "\n";
    return 1;
  }

  evaluation_options opt;
  opt.seed = args.seed;
  opt.run_repair_sim = args.repair;
  if (args.strategy == "block") {
    opt.strategy = placement_strategy::block;
  } else if (args.strategy == "random") {
    opt.strategy = placement_strategy::random;
  } else if (args.strategy == "annealed") {
    opt.strategy = placement_strategy::annealed;
  } else {
    std::cerr << "unknown strategy: " << args.strategy << "\n";
    return 2;
  }

  const std::string name = args.family + "/" + std::to_string(args.size);
  const auto ev = evaluate_design(graph.value(), name, opt);
  if (!ev.is_ok()) {
    std::cerr << "evaluation failed: " << ev.error().to_string() << "\n";
    return 1;
  }

  const std::vector<deployability_report> reports{ev.value().report};
  abstract_metrics_table(reports).print(std::cout, "abstract metrics");
  cost_table(reports).print(std::cout, "capital cost & power");
  deployability_table(reports).print(std::cout, "physical deployability");
  if (args.repair) {
    operations_table(reports).print(std::cout, "operations");
  }

  if (!args.dot_file.empty()) {
    std::ofstream out(args.dot_file);
    if (!out) {
      std::cerr << "cannot write " << args.dot_file << "\n";
      return 1;
    }
    out << to_dot(graph.value());
    std::cout << "\nwrote " << args.dot_file << "\n";
  }
  return 0;
}
