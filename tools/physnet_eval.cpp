// physnet_eval — command-line deployability evaluation of one design.
//
//   physnet_eval --family=fat_tree --size=8
//   physnet_eval --family=jellyfish --size=64 --strategy=annealed --repair
//   physnet_eval --family=dragonfly --size=9 --dot=fabric.dot
//   physnet_eval --family=fat_tree --sweep=4,6,8,10 --jobs=4 --trace
//
// Families: fat_tree (size = k), leaf_spine (size = leaves),
// jellyfish / xpander (size = switches), flattened_butterfly (size = dim,
// 2-D), slim_fly (size = q), vl2 (size = tors), dragonfly (size = groups),
// jupiter_fat_tree / jupiter_direct (size = aggregation blocks).
//
// --sweep=S1,S2,... evaluates the family at each size via the parallel
// sweep driver (--jobs workers) and prints CSV instead of tables.
// --trace prints the per-stage pipeline timing table (single eval) or
// appends per-stage timing columns to the CSV (sweep mode).
//
// Sweep-mode robustness flags:
//   --checkpoint=FILE  append completed points to FILE as they finish
//   --resume=FILE      skip points already in FILE; merged CSV output is
//                      byte-identical to an uninterrupted run (implies
//                      --checkpoint=FILE, so progress keeps accruing)
//   --deadline=MS      per-point wall-clock budget (deadline_exceeded
//                      failures are real, checkpointed outcomes)
//   --fail-at=P:STAGE[,P:STAGE...]  inject a deterministic fault into
//                      stage STAGE of point P (testing/chaos)
//   --fail-prob=P      additionally fail each (point, stage) with
//                      probability P under --fail-seed
//   --cancel-after=N   request cancellation after N completed points
//                      (deterministic stand-in for ^C in tests)
//
// Deploy-scenario mode (single --size, no --sweep):
//   --scenario=expansion|repair|migration|decom  plan that lifecycle
//                      scenario over the design and evaluate the fabric
//                      after every step (CSV output, one row per step)
//   --scenario-steps=N scenario length (default 8)
//   --delta            evaluate steps delta-aware: one shared distance
//                      cache + incremental metrics repaired per step via
//                      the graph's edge journal, instead of a cold
//                      rebuild per step. Output is bit-identical to the
//                      cold path by contract (see DESIGN.md §12).
// SIGINT (^C) requests cooperative cancellation: points in flight stop
// at their next stage boundary, the checkpoint keeps everything already
// completed, and the exit code is 130.
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli_parse.h"
#include "core/physnet.h"

namespace {

using namespace pn;
using namespace pn::literals;

struct cli_args {
  std::string family = "fat_tree";
  int size = 8;
  std::string strategy = "block";
  std::uint64_t seed = 1;
  bool repair = false;
  bool trace = false;
  int jobs = 1;
  std::vector<int> sweep_sizes;  // empty = single-design mode
  std::string scenario;          // expansion|repair|migration|decom
  int scenario_steps = 8;
  bool delta = false;            // delta-aware scenario evaluation
  std::string dot_file;
  std::string checkpoint_file;
  std::string resume_file;
  double deadline_ms = 0.0;
  std::string fail_at;     // POINT:STAGE[,POINT:STAGE...]
  double fail_prob = 0.0;
  std::uint64_t fail_seed = 0;
  std::size_t cancel_after = 0;
};

// Shared with the SIGINT handler: request_cancel is one relaxed atomic
// store, which is async-signal-safe once the token exists.
cancel_token g_sigint_cancel;

extern "C" void handle_sigint(int) { g_sigint_cancel.request_cancel(); }

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--family") {
      out.family = value;
    } else if (key == "--size") {
      if (!cli::parse_or_usage(key, value, out.size)) return false;
    } else if (key == "--strategy") {
      out.strategy = value;
    } else if (key == "--seed") {
      if (!cli::parse_or_usage(key, value, out.seed)) return false;
    } else if (key == "--repair") {
      out.repair = true;
    } else if (key == "--trace") {
      out.trace = true;
    } else if (key == "--jobs") {
      if (!cli::parse_or_usage(key, value, out.jobs)) return false;
      if (out.jobs < 0) {
        std::cerr << "--jobs must be >= 0\n";
        return false;
      }
    } else if (key == "--sweep") {
      for (const std::string& part : split(value, ',')) {
        if (part.empty()) continue;
        int size = 0;
        if (!cli::parse_or_usage(key, part, size)) return false;
        out.sweep_sizes.push_back(size);
      }
      if (out.sweep_sizes.empty()) {
        std::cerr << "--sweep needs a comma-separated size list\n";
        return false;
      }
    } else if (key == "--scenario") {
      out.scenario = value;
    } else if (key == "--scenario-steps") {
      if (!cli::parse_or_usage(key, value, out.scenario_steps)) return false;
      if (out.scenario_steps <= 0) {
        std::cerr << "--scenario-steps must be > 0\n";
        return false;
      }
    } else if (key == "--delta") {
      out.delta = true;
    } else if (key == "--dot") {
      out.dot_file = value;
    } else if (key == "--checkpoint") {
      out.checkpoint_file = value;
    } else if (key == "--resume") {
      out.resume_file = value;
    } else if (key == "--deadline") {
      if (!cli::parse_or_usage(key, value, out.deadline_ms)) return false;
      if (out.deadline_ms <= 0.0) {
        std::cerr << "--deadline must be > 0 (milliseconds per point)\n";
        return false;
      }
    } else if (key == "--fail-at") {
      out.fail_at = value;
    } else if (key == "--fail-prob") {
      if (!cli::parse_or_usage(key, value, out.fail_prob)) return false;
      if (out.fail_prob < 0.0 || out.fail_prob > 1.0) {
        std::cerr << "--fail-prob must be in [0, 1]\n";
        return false;
      }
    } else if (key == "--fail-seed") {
      if (!cli::parse_or_usage(key, value, out.fail_seed)) return false;
    } else if (key == "--cancel-after") {
      if (!cli::parse_or_usage(key, value, out.cancel_after)) return false;
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

// Design construction lives in topology/generators/families.h so the
// eval CLI, the service client, and the smoke scripts agree on what
// "jellyfish/64" means.

}  // namespace

int run_sweep_mode(const cli_args& args, const evaluation_options& opt) {
  // Validate every size up front: builders report bad parameters via
  // result<>, and a failure inside a sweep worker would be unrecoverable.
  for (const int size : args.sweep_sizes) {
    const auto g = build_family(args.family, size, args.seed);
    if (!g.is_ok()) {
      std::cerr << "cannot build " << args.family << "/" << size << ": "
                << g.error().to_string() << "\n";
      return 2;
    }
  }

  std::vector<sweep_point> grid;
  grid.reserve(args.sweep_sizes.size());
  for (const int size : args.sweep_sizes) {
    const std::string family = args.family;
    const std::uint64_t seed = args.seed;
    grid.push_back(sweep_point{
        args.family + "/" + std::to_string(size), [family, size, seed] {
          // Validated above; value() would throw only on a racing bug.
          return std::move(build_family(family, size, seed)).value();
        }});
  }

  sweep_options sopt;
  sopt.jobs = args.jobs;
  sopt.cancel = g_sigint_cancel;
  sopt.point_deadline_ms = args.deadline_ms;
  sopt.cancel_after_points = args.cancel_after;

  if (!args.fail_at.empty()) {
    auto targets = parse_fault_targets(args.fail_at);
    if (!targets.is_ok()) {
      std::cerr << targets.error().to_string() << "\n";
      return 2;
    }
    for (const fault_target& t : targets.value()) {
      if (t.point_index >= grid.size()) {
        std::cerr << "--fail-at point " << t.point_index
                  << " out of range (sweep has " << grid.size()
                  << " points)\n";
        return 2;
      }
    }
    sopt.faults.targets = std::move(targets).value();
  }
  sopt.faults.probability = args.fail_prob;
  sopt.faults.seed = args.fail_seed;

  sweep_checkpoint resume_from;
  if (!args.resume_file.empty()) {
    auto loaded = load_sweep_checkpoint(args.resume_file);
    if (!loaded.is_ok()) {
      std::cerr << "cannot resume: " << loaded.error().to_string() << "\n";
      return 2;
    }
    resume_from = std::move(loaded).value();
    if (resume_from.base_seed != args.seed ||
        resume_from.point_count != grid.size()) {
      std::cerr << "cannot resume: checkpoint is for seed "
                << resume_from.base_seed << " / " << resume_from.point_count
                << " points, this sweep is seed " << args.seed << " / "
                << grid.size() << " points\n";
      return 2;
    }
    sopt.resume = &resume_from;
  }
  // --resume keeps appending to the same file unless --checkpoint says
  // otherwise, so an interrupted resume still accrues progress.
  sopt.checkpoint_path = !args.checkpoint_file.empty() ? args.checkpoint_file
                                                       : args.resume_file;

  std::signal(SIGINT, handle_sigint);
  const sweep_results res = run_sweep(grid, opt, sopt);
  std::signal(SIGINT, SIG_DFL);

  sweep_csv_options copt;
  copt.stage_timings = args.trace;
  std::cout << sweep_to_csv(res, copt);
  if (!res.failures.empty()) {
    std::cerr << sweep_failures_to_csv(res);
  }
  if (res.cancelled) {
    std::cerr << "sweep cancelled: "
              << res.reports.size() + res.failures.size() << "/"
              << grid.size() << " points done, "
              << res.cancelled_points.size() << " remaining";
    if (!sopt.checkpoint_path.empty()) {
      std::cerr << "; resume with --resume=" << sopt.checkpoint_path;
    }
    std::cerr << "\n";
    return 130;
  }
  return res.failures.empty() ? 0 : 1;
}

// --scenario=KIND evolves ONE design through a lifecycle scenario
// (expansion = random link landings, repair = failure/repair churn,
// migration = link moves, decom = staged link drains) and re-evaluates
// after every step, printing one CSV row per step. --delta switches the
// topology-metrics stage to delta-aware incremental evaluation (row
// repair + per-destination ECMP caching); results are bit-identical to
// the cold default, only faster.
int run_scenario_mode(const cli_args& args, const evaluation_options& opt) {
  auto built = build_family(args.family, args.size, args.seed);
  if (!built.is_ok()) {
    std::cerr << "cannot build " << args.family << "/" << args.size << ": "
              << built.error().to_string() << "\n";
    return 2;
  }
  network_graph g = std::move(built).value();

  deploy_scenario sc;
  if (args.scenario == "expansion") {
    edge_expansion_params p;
    p.steps = args.scenario_steps;
    p.seed = args.seed;
    // Generated families come out fully wired (zero free ports), so
    // grant the §4.1 expansion headroom the paper argues real designs
    // must reserve — otherwise there is nowhere to land new links.
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      g.node(node_id{i}).radix += 2 * p.links_per_step;
    }
    sc = plan_expansion_edge_scenario(g, p);
  } else if (args.scenario == "repair") {
    edge_repair_params p;
    p.steps = args.scenario_steps;
    p.seed = args.seed;
    sc = plan_repair_edge_scenario(g, p);
  } else if (args.scenario == "migration") {
    edge_migration_params p;
    p.steps = args.scenario_steps;
    p.seed = args.seed;
    sc = plan_migration_edge_scenario(g, p);
  } else if (args.scenario == "decom") {
    edge_decom_params p;
    p.links_per_step =
        std::max<int>(1, static_cast<int>(g.live_edges().size()) /
                             (4 * args.scenario_steps));
    p.seed = args.seed;
    sc = plan_decom_edge_scenario(g, p);
  } else {
    std::cerr << "unknown scenario: " << args.scenario
              << " (expansion|repair|migration|decom)\n";
    return 2;
  }

  const std::vector<sweep_point> grid = scenario_sweep_points(sc);
  sweep_options sopt;
  sopt.cancel = g_sigint_cancel;
  sopt.scenario_graph = &g;
  sopt.delta_eval = args.delta;
  sopt.cancel_after_points = args.cancel_after;

  // Checkpoint/resume compose with scenario mode: restored points
  // replay their graph mutations and skip only the evaluation, so the
  // plan must be rebuilt identically (same family/size/seed/steps).
  sweep_checkpoint resume_from;
  if (!args.resume_file.empty()) {
    auto loaded = load_sweep_checkpoint(args.resume_file);
    if (!loaded.is_ok()) {
      std::cerr << "cannot resume: " << loaded.error().to_string() << "\n";
      return 2;
    }
    resume_from = std::move(loaded).value();
    if (resume_from.base_seed != args.seed ||
        resume_from.point_count != grid.size()) {
      std::cerr << "cannot resume: checkpoint is for seed "
                << resume_from.base_seed << " / " << resume_from.point_count
                << " points, this scenario is seed " << args.seed << " / "
                << grid.size() << " points\n";
      return 2;
    }
    sopt.resume = &resume_from;
  }
  sopt.checkpoint_path = !args.checkpoint_file.empty() ? args.checkpoint_file
                                                       : args.resume_file;

  std::signal(SIGINT, handle_sigint);
  const sweep_results res = run_sweep(grid, opt, sopt);
  std::signal(SIGINT, SIG_DFL);

  sweep_csv_options copt;
  copt.stage_timings = args.trace;
  std::cout << sweep_to_csv(res, copt);
  if (!res.failures.empty()) {
    std::cerr << sweep_failures_to_csv(res);
  }
  if (res.cancelled) {
    std::cerr << "scenario cancelled: "
              << res.reports.size() + res.failures.size() << "/"
              << grid.size() << " steps done, "
              << res.cancelled_points.size() << " remaining";
    if (!sopt.checkpoint_path.empty()) {
      std::cerr << "; resume with --resume=" << sopt.checkpoint_path;
    }
    std::cerr << "\n";
    return 130;
  }
  return res.failures.empty() ? 0 : 1;
}

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_eval [--family=NAME] [--size=N] "
           "[--strategy=block|random|annealed] [--seed=N] [--repair] "
           "[--trace] [--sweep=S1,S2,...] [--jobs=N] [--dot=FILE]\n"
           "scenario mode: [--scenario=expansion|repair|migration|decom] "
           "[--scenario-steps=N] [--delta]\n"
           "sweep robustness: [--checkpoint=FILE] [--resume=FILE] "
           "[--deadline=MS] [--fail-at=P:STAGE,...] [--fail-prob=P] "
           "[--fail-seed=N] [--cancel-after=N]\n"
           "  SIGINT drains the sweep cleanly (exit 130); rerun with "
           "--resume=FILE to finish it.\n"
           "families: fat_tree leaf_spine jellyfish xpander "
           "flattened_butterfly slim_fly vl2 dragonfly jupiter_fat_tree "
           "jupiter_direct\n";
    return 2;
  }

  evaluation_options opt;
  opt.seed = args.seed;
  opt.run_repair_sim = args.repair;
  if (const auto strat = placement_strategy_from_name(args.strategy)) {
    opt.strategy = *strat;
  } else {
    std::cerr << "unknown strategy: " << args.strategy << "\n";
    return 2;
  }

  if (!args.scenario.empty()) {
    if (!args.sweep_sizes.empty()) {
      std::cerr << "--scenario and --sweep are mutually exclusive\n";
      return 2;
    }
    return run_scenario_mode(args, opt);
  }
  if (!args.sweep_sizes.empty()) {
    return run_sweep_mode(args, opt);
  }

  auto graph = build_family(args.family, args.size, args.seed);
  if (!graph.is_ok()) {
    std::cerr << "cannot build design: " << graph.error().to_string()
              << "\n";
    return 1;
  }

  const std::string name = args.family + "/" + std::to_string(args.size);
  const evaluation ev = evaluate_design_staged(graph.value(), name, opt);
  if (!ev.trace.ok()) {
    const sweep_failure f{0, name, *ev.trace.failed_stage(),
                          ev.trace.first_error()};
    std::cerr << "evaluation failed: " << f.to_string() << "\n";
    if (args.trace) {
      stage_trace_table(ev.trace).print(std::cerr, "pipeline stages");
    }
    return 1;
  }

  const std::vector<deployability_report> reports{ev.report};
  abstract_metrics_table(reports).print(std::cout, "abstract metrics");
  cost_table(reports).print(std::cout, "capital cost & power");
  deployability_table(reports).print(std::cout, "physical deployability");
  if (args.repair) {
    operations_table(reports).print(std::cout, "operations");
  }
  if (args.trace) {
    stage_trace_table(ev.trace).print(std::cout, "pipeline stages");
  }

  if (!args.dot_file.empty()) {
    std::ofstream out(args.dot_file);
    if (!out) {
      std::cerr << "cannot write " << args.dot_file << "\n";
      return 1;
    }
    out << to_dot(graph.value());
    std::cout << "\nwrote " << args.dot_file << "\n";
  }
  return 0;
}
