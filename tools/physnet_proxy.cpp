// physnet_proxy — consistent-hashing front proxy for physnet_serve.
//
//   physnet_proxy --listen=unix:/tmp/proxy.sock \
//       --worker=unix:/tmp/w0.sock --worker=unix:/tmp/w1.sock
//
// Speaks physnet/1 on both sides. Evaluate requests route by the hash
// of their canonical bytes (the same key the workers cache on), so the
// fleet's caches partition cleanly; responses relay byte-identical.
// `stats` aggregates worker counters plus proxy.* counters; an
// `invalidate` broadcasts the epoch bump to every worker. When a worker
// dies the proxy fails over along the hash ring and probes the dead
// worker with capped exponential backoff; when nothing can answer, the
// client sees a retryable `overloaded` error.
//
// SIGINT/SIGTERM drain: the listener closes, admitted round trips
// finish (bounded by --stall-timeout-ms), then the process exits 0.
//
// Exit codes: 0 clean shutdown, 1 serve/bind failure, 2 usage error.
#include <csignal>
#include <iostream>
#include <string>
#include "cli_parse.h"

#include "service/proxy.h"

namespace {

using namespace pn;

struct cli_args {
  proxy_config cfg;
  bool quiet = false;
};

cancel_token g_shutdown;

extern "C" void handle_shutdown_signal(int) { g_shutdown.request_cancel(); }

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--listen") {
      out.cfg.listen = value;
    } else if (key == "--worker") {
      if (value.empty()) {
        std::cerr << "--worker needs an endpoint spec\n";
        return false;
      }
      out.cfg.workers.push_back(value);
    } else if (key == "--conn-threads") {
      if (!cli::parse_or_usage(key, value, out.cfg.conn_threads)) {
        return false;
      }
      if (out.cfg.conn_threads < 1) {
        std::cerr << "--conn-threads must be >= 1\n";
        return false;
      }
    } else if (key == "--vnodes") {
      if (!cli::parse_or_usage(key, value, out.cfg.vnodes)) {
        return false;
      }
      if (out.cfg.vnodes < 1) {
        std::cerr << "--vnodes must be >= 1\n";
        return false;
      }
    } else if (key == "--backoff-base-ms") {
      if (!cli::parse_or_usage(key, value, out.cfg.backoff_base_ms)) {
        return false;
      }
      if (out.cfg.backoff_base_ms <= 0.0) {
        std::cerr << "--backoff-base-ms must be > 0\n";
        return false;
      }
    } else if (key == "--backoff-cap-ms") {
      if (!cli::parse_or_usage(key, value, out.cfg.backoff_cap_ms)) {
        return false;
      }
      if (out.cfg.backoff_cap_ms <= 0.0) {
        std::cerr << "--backoff-cap-ms must be > 0\n";
        return false;
      }
    } else if (key == "--stall-timeout-ms") {
      if (!cli::parse_or_usage(key, value, out.cfg.stall_timeout_ms)) {
        return false;
      }
      if (out.cfg.stall_timeout_ms < 1) {
        std::cerr << "--stall-timeout-ms must be >= 1\n";
        return false;
      }
    } else if (key == "--quiet") {
      out.quiet = true;
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.cfg.listen.empty()) {
    std::cerr << "--listen is required\n";
    return false;
  }
  if (out.cfg.workers.empty()) {
    std::cerr << "at least one --worker is required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_proxy --listen=unix:PATH|tcp:HOST:PORT\n"
           "       --worker=SPEC [--worker=SPEC ...]\n"
           "       [--conn-threads=N] [--vnodes=N] [--backoff-base-ms=MS]\n"
           "       [--backoff-cap-ms=MS] [--stall-timeout-ms=MS] [--quiet]\n"
           "  SIGINT/SIGTERM drain in-flight requests and exit 0.\n"
           "  exit codes: 0 clean shutdown, 1 serve failure, 2 usage\n";
    return 2;
  }

  eval_proxy proxy(std::move(args.cfg));
  if (const status bound = proxy.bind(); !bound.is_ok()) {
    std::cerr << "bind failed: " << bound.to_string() << "\n";
    return 1;
  }
  if (!args.quiet) {
    std::cerr << "physnet_proxy: listening, "
              << proxy.ring().worker_count() << " workers\n";
  }

  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
  const status served = proxy.serve(g_shutdown);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (!args.quiet) {
    const proxy_metrics& m = proxy.metrics();
    std::cerr << "physnet_proxy: drained\n"
              << "  connections.accepted = "
              << m.connections_accepted.load() << "\n"
              << "  requests.forwarded = " << m.requests_forwarded.load()
              << "\n"
              << "  requests.failovers = " << m.failovers.load() << "\n"
              << "  requests.no_worker = " << m.no_worker_available.load()
              << "\n"
              << "  workers.failures = " << m.worker_failures.load()
              << "\n";
  }
  if (!served.is_ok()) {
    std::cerr << "serve failed: " << served.to_string() << "\n";
    return 1;
  }
  return 0;
}
