// Checked numeric parsing for --key=value CLI flags, shared by every
// physnet tool.
//
// The tools' argv loops used to call std::stoi/std::stoull/std::stod
// directly, so a malformed value like `--size=abc` threw
// std::invalid_argument and terminated with an unhandled exception
// instead of printing usage. parse_or_usage is the checked replacement:
// it parses the FULL value string strictly (no trailing junk, no
// silent wrap-around of negatives into unsigned flags, no overflow),
// prints a one-line diagnostic naming the flag on failure, and returns
// false so the caller falls through to its usage text and exits 2.
#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace pn::cli {

namespace detail {

inline bool bad_value(const std::string& key, const std::string& value,
                      const char* expected) {
  std::cerr << key << ": bad value '" << value << "' (expected " << expected
            << ")\n";
  return false;
}

}  // namespace detail

// Signed 64-bit. Strict: the whole value must be one base-10 integer.
[[nodiscard]] inline bool parse_or_usage(const std::string& key,
                                         const std::string& value,
                                         long long& out) {
  if (value.empty()) return detail::bad_value(key, value, "an integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return detail::bad_value(key, value, "an integer");
  }
  out = v;
  return true;
}

[[nodiscard]] inline bool parse_or_usage(const std::string& key,
                                         const std::string& value,
                                         int& out) {
  long long v = 0;
  if (!parse_or_usage(key, value, v)) return false;
  if (v < INT_MIN || v > INT_MAX) {
    return detail::bad_value(key, value, "a 32-bit integer");
  }
  out = static_cast<int>(v);
  return true;
}

// Unsigned 64-bit (seeds, counts, sizes). strtoull silently wraps
// "-1" to 2^64-1, so a leading sign is rejected explicitly.
[[nodiscard]] inline bool parse_or_usage(const std::string& key,
                                         const std::string& value,
                                         std::uint64_t& out) {
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    return detail::bad_value(key, value, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return detail::bad_value(key, value, "a non-negative integer");
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

[[nodiscard]] inline bool parse_or_usage(const std::string& key,
                                         const std::string& value,
                                         double& out) {
  if (value.empty()) return detail::bad_value(key, value, "a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return detail::bad_value(key, value, "a finite number");
  }
  out = v;
  return true;
}

}  // namespace pn::cli
