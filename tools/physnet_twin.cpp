// physnet_twin — validate a serialized twin model from the shell.
//
//   physnet_twin model.twin                # schema + inferred-rule check
//   physnet_twin --export-sample > m.twin  # emit a sample fabric twin
//   physnet_twin --rollup=pod model.twin   # validate, then roll up by an
//                                          # attribute and print a summary
//
// Exit code 0 = clean, 1 = violations found, 2 = usage/parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/physnet.h"

namespace {

using namespace pn;
using namespace pn::literals;

int export_sample() {
  const network_graph g = build_fat_tree(4, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  const auto ev = evaluate_design(g, "sample", opt);
  if (!ev.is_ok()) {
    std::cerr << ev.error().to_string() << "\n";
    return 2;
  }
  const twin_model twin =
      build_network_twin(g, ev.value().place, ev.value().floor,
                         ev.value().cables, ev.value().cat);
  std::cout << serialize_twin(twin);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string rollup_attr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--export-sample") {
      return export_sample();
    }
    if (arg.rfind("--rollup=", 0) == 0) {
      rollup_attr = arg.substr(9);
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "usage: physnet_twin [--rollup=ATTR] FILE | "
                   "--export-sample\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: physnet_twin [--rollup=ATTR] FILE | "
                 "--export-sample\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = parse_twin(buffer.str());
  if (!parsed.is_ok()) {
    std::cerr << "parse error: " << parsed.error().to_string() << "\n";
    return 2;
  }
  const twin_model& model = parsed.value();
  std::cout << path << ": " << model.live_entity_count() << " entities, "
            << model.live_relation_count() << " relations\n";

  int problems = 0;

  const auto schema_violations =
      twin_schema::network_schema().validate(model);
  std::cout << "schema: " << schema_violations.size() << " violation(s)\n";
  for (const auto& v : schema_violations) {
    std::cout << "  [" << v.rule << "] " << v.subject << ": " << v.detail
              << "\n";
    ++problems;
  }

  // Self-check against inferred rules: deviants are data-entry suspects.
  const auto rules = infer_rules(model);
  const auto deviants = check_against_rules(model, rules);
  std::cout << "inferred rules: " << rules.size() << " learned, "
            << deviants.size() << " deviant(s)\n";
  for (const auto& d : deviants) {
    std::cout << "  " << d.entity << ": " << d.detail << "\n";
    ++problems;
  }

  if (!rollup_attr.empty()) {
    const auto rolled = roll_up(
        model, {"switch", rollup_attr, "group_", {"power_w"}});
    if (!rolled.is_ok()) {
      std::cerr << "rollup failed: " << rolled.error().to_string() << "\n";
      return 2;
    }
    std::cout << "rollup by switch." << rollup_attr << ": "
              << rolled.value().aggregates << " aggregate(s)\n";
    for (entity_id agg :
         rolled.value().model.entities_of_kind("group_")) {
      const auto& e = rolled.value().model.entity(agg);
      std::cout << "  " << e.name << ": "
                << rolled.value().model.attr_number(agg, "members")
                       .value_or(0.0)
                << " members\n";
    }
  }

  return problems == 0 ? 0 : 1;
}
