// physnet_campaign — replay a lifetime digital-twin campaign.
//
//   physnet_campaign --campaign=examples/campaigns/jellyfish_3y.campaign
//   physnet_campaign --campaign=FILE --delta --checkpoint=c.ckpt
//   physnet_campaign --campaign=FILE --resume=c.ckpt
//   physnet_campaign --campaign=FILE --via-serve=unix:/tmp/physnet.sock
//
// Parses the declarative multi-year campaign file (src/campaign), compiles
// it into one deploy scenario (step 0 = the day-1 design), and replays it
// through run_sweep's scenario mode. stdout gets the per-step trajectory
// CSV (one row per evaluation, same columns as physnet_eval sweeps); the
// day-1 vs lifetime summary CSV goes to --summary=FILE, or stderr when no
// file is named. --checkpoint/--resume extend the sweep contract to whole
// campaigns: an interrupted replay resumes to byte-identical CSVs.
//
// --via-serve=ENDPOINT sends every step's evaluation through the
// evaluation service (physnet_serve, or physnet_proxy in front of a
// fleet) as real client traffic instead of evaluating locally. Served
// reports are bit-identical to local evaluation on the CSV columns,
// with one caveat: the wire format canonicalizes adjacency order
// (edges re-added in id order) while the local lineage graph keeps
// revive_edge's append-at-end order, so after a churn event revives a
// link, adjacency-order-sensitive estimates (bisection sampling) can
// legitimately differ. Campaigns without churn replay byte-identical
// in both modes.
//
// SIGINT (^C) requests cooperative cancellation; with --checkpoint the
// replay resumes later via --resume. Exit codes: 0 ok, 1 evaluation or
// transport failure, 2 usage error, 130 cancelled.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "cli_parse.h"
#include "core/physnet.h"
#include "service/client.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace {

using namespace pn;

struct cli_args {
  std::string campaign_file;
  bool delta = true;
  bool trace = false;
  std::string summary_file;
  std::string checkpoint_file;
  std::string resume_file;
  std::size_t cancel_after = 0;
  std::string via_serve;  // endpoint spec; empty = evaluate locally
  retry_policy retry;
};

// Shared with the SIGINT handler: request_cancel is one relaxed atomic
// store, which is async-signal-safe once the token exists.
cancel_token g_sigint_cancel;

extern "C" void handle_sigint(int) { g_sigint_cancel.request_cancel(); }

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--campaign") {
      out.campaign_file = value;
    } else if (key == "--delta") {
      out.delta = true;
    } else if (key == "--no-delta") {
      out.delta = false;
    } else if (key == "--trace") {
      out.trace = true;
    } else if (key == "--summary") {
      out.summary_file = value;
    } else if (key == "--checkpoint") {
      out.checkpoint_file = value;
    } else if (key == "--resume") {
      out.resume_file = value;
    } else if (key == "--cancel-after") {
      if (!cli::parse_or_usage(key, value, out.cancel_after)) return false;
    } else if (key == "--via-serve") {
      out.via_serve = value;
      if (out.via_serve.empty()) {
        std::cerr << "--via-serve needs an endpoint spec\n";
        return false;
      }
    } else if (key == "--retries") {
      if (!cli::parse_or_usage(key, value, out.retry.retries)) return false;
      if (out.retry.retries < 0) {
        std::cerr << "--retries must be >= 0\n";
        return false;
      }
    } else if (key == "--backoff-ms") {
      if (!cli::parse_or_usage(key, value, out.retry.backoff_ms)) {
        return false;
      }
      if (out.retry.backoff_ms <= 0.0) {
        std::cerr << "--backoff-ms must be > 0\n";
        return false;
      }
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.campaign_file.empty()) {
    std::cerr << "--campaign is required\n";
    return false;
  }
  if (!out.via_serve.empty() &&
      (!out.checkpoint_file.empty() || !out.resume_file.empty())) {
    std::cerr << "--via-serve does not compose with --checkpoint/--resume "
                 "(the service holds no sweep state)\n";
    return false;
  }
  return true;
}

void emit_summary(const cli_args& args, const campaign_plan& plan,
                  const std::vector<deployability_report>& reports) {
  if (reports.empty()) return;
  const campaign_summary s = summarize_campaign(plan, reports);
  const std::string csv =
      campaign_summary_csv_header() + campaign_summary_csv_row(s);
  if (args.summary_file.empty()) {
    std::cerr << csv;
    return;
  }
  std::ofstream out(args.summary_file);
  if (!out) {
    std::cerr << "cannot write " << args.summary_file << "\n";
    return;
  }
  out << csv;
}

int run_local(const cli_args& args, const campaign_plan& plan) {
  campaign_run_options ropt;
  ropt.delta = args.delta;
  ropt.cancel = g_sigint_cancel;
  ropt.cancel_after_points = args.cancel_after;

  sweep_checkpoint resume_from;
  if (!args.resume_file.empty()) {
    auto loaded = load_sweep_checkpoint(args.resume_file);
    if (!loaded.is_ok()) {
      std::cerr << "cannot resume: " << loaded.error().to_string() << "\n";
      return 2;
    }
    resume_from = std::move(loaded).value();
    if (resume_from.base_seed != plan.spec.seed ||
        resume_from.point_count != plan.scenario.steps.size()) {
      std::cerr << "cannot resume: checkpoint is for seed "
                << resume_from.base_seed << " / " << resume_from.point_count
                << " points, this campaign is seed " << plan.spec.seed
                << " / " << plan.scenario.steps.size() << " points\n";
      return 2;
    }
    ropt.resume = &resume_from;
  }
  ropt.checkpoint_path = !args.checkpoint_file.empty() ? args.checkpoint_file
                                                       : args.resume_file;

  std::signal(SIGINT, handle_sigint);
  const sweep_results res = run_campaign(plan, ropt);
  std::signal(SIGINT, SIG_DFL);

  sweep_csv_options copt;
  copt.stage_timings = args.trace;
  std::cout << sweep_to_csv(res, copt);
  if (!res.failures.empty()) {
    std::cerr << sweep_failures_to_csv(res);
  }
  if (res.cancelled) {
    std::cerr << "campaign cancelled: "
              << res.reports.size() + res.failures.size() << "/"
              << plan.scenario.steps.size() << " steps done, "
              << res.cancelled_points.size() << " remaining";
    if (!ropt.checkpoint_path.empty()) {
      std::cerr << "; resume with --resume=" << ropt.checkpoint_path;
    }
    std::cerr << "\n";
    return 130;
  }
  emit_summary(args, plan, res.reports);
  return res.failures.empty() ? 0 : 1;
}

// --via-serve: same steps, same per-point seeds, but every evaluation
// ships as a framed request to the evaluation service. The graph still
// evolves locally (the service is stateless per request); each step's
// mutated design travels as its twin serialization.
int run_via_serve(const cli_args& args, const campaign_plan& plan) {
  auto client = eval_client::connect(args.via_serve);
  if (!client.is_ok()) {
    std::cerr << "connect failed: " << client.error().to_string() << "\n";
    return 1;
  }

  network_graph g = plan.base;
  std::vector<deployability_report> reports;
  reports.reserve(plan.scenario.steps.size());
  const auto sleeper = [](double ms) { sleep_ms(ms); };

  std::signal(SIGINT, handle_sigint);
  for (std::size_t i = 0; i < plan.scenario.steps.size(); ++i) {
    if (g_sigint_cancel.cancelled()) break;
    const scenario_step& step = plan.scenario.steps[i];
    apply_scenario_step(g, step);

    eval_request req;
    req.name = step.label;
    req.options.seed = sweep_point_seed(plan.spec.seed, i);
    req.options.strategy = plan.spec.strategy;
    req.options.run_repair_sim = plan.spec.repair;
    req.design_twin = serialize_twin(design_to_twin(g));

    auto report = client.value().evaluate_with_retry(req, args.retry, sleeper);
    if (!report.is_ok()) {
      std::cerr << "evaluate failed at step " << step.label << ": "
                << report.error().to_string() << "\n";
      std::signal(SIGINT, SIG_DFL);
      return 1;
    }
    reports.push_back(std::move(report).value());
  }
  std::signal(SIGINT, SIG_DFL);
  const bool cancelled = g_sigint_cancel.cancelled();

  sweep_results res;
  res.reports = reports;
  std::cout << sweep_to_csv(res, sweep_csv_options{});
  if (cancelled) {
    std::cerr << "campaign cancelled: " << reports.size() << "/"
              << plan.scenario.steps.size() << " steps done\n";
    return 130;
  }
  emit_summary(args, plan, reports);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_campaign --campaign=FILE [--no-delta] [--trace]\n"
           "  [--summary=FILE] [--checkpoint=FILE] [--resume=FILE] "
           "[--cancel-after=N]\n"
           "  [--via-serve=unix:PATH|tcp:HOST:PORT [--retries=N] "
           "[--backoff-ms=MS]]\n"
           "stdout: per-step trajectory CSV; summary CSV to --summary or "
           "stderr.\n"
           "SIGINT drains cleanly (exit 130); rerun with --resume=FILE to "
           "finish.\n";
    return 2;
  }

  std::ifstream in(args.campaign_file);
  if (!in) {
    std::cerr << "cannot read " << args.campaign_file << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  auto spec = parse_campaign(text.str());
  if (!spec.is_ok()) {
    std::cerr << args.campaign_file << ": " << spec.error().to_string()
              << "\n";
    return 2;
  }
  auto plan = compile_campaign(spec.value());
  if (!plan.is_ok()) {
    std::cerr << "cannot compile campaign: " << plan.error().to_string()
              << "\n";
    return 2;
  }

  return args.via_serve.empty() ? run_local(args, plan.value())
                                : run_via_serve(args, plan.value());
}
