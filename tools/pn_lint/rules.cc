// The per-rule engines. Each rule is a pure function from scanned
// sources to findings; suppression and baseline filtering happen after.
//
// Rules are heuristics tuned to this codebase — when one misfires, the
// fix is an inline `// pn_lint: allow(<rule>) <why>` at the call site,
// which doubles as documentation of the exception. Scoping conventions:
//   - paths are repo-root-relative with '/' separators
//   - "in src/" style scoping is a path-prefix test, so the same engine
//     runs unchanged over the fixture tree in tests/lint/fixtures
#include "pn_lint/lint.h"

#include <algorithm>
#include <tuple>

#include "pn_lint/decls.h"
#include "pn_lint/tarjan.h"

namespace pn::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
bool path_contains(std::string_view path, std::string_view piece) {
  return path.find(piece) != std::string_view::npos;
}

struct rule_ctx {
  const source_file& file;
  std::vector<finding>& out;

  void report(const std::string& rule, int line, std::string message) {
    out.push_back(finding{rule, file.path, line, std::move(message)});
  }
};

// ---- R1: nondeterminism primitives ------------------------------------
// Function-like names are only flagged when called (next token is '(')
// and not as a member (prev token '.'/'->'), so fields named `time` or
// comments never fire. Type/tag names fire on any mention.
void rule_nondet(rule_ctx& ctx) {
  if (ends_with(ctx.file.path, "common/rng.h")) return;  // the one RNG home
  // common/clock.h is the one sanctioned home for monotonic clock reads
  // (steady_clock); everything else must inject a pn::clock_fn.
  if (ends_with(ctx.file.path, "common/clock.h")) return;
  static const std::set<std::string> call_like = {
      "rand",  "srand",  "drand48", "lrand48", "mrand48",     "random",
      "clock", "time",   "getenv",  "gettimeofday", "clock_gettime",
  };
  static const std::set<std::string> any_mention = {
      "random_device", "system_clock", "high_resolution_clock",
      "steady_clock",  "sleep_for",    "sleep_until",
      "default_random_engine", "mt19937", "mt19937_64",
  };
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != tok_kind::ident) continue;
    const std::string& t = toks[i].text;
    if (any_mention.count(t) != 0) {
      ctx.report("nondet", toks[i].line,
                 "nondeterminism primitive '" + t +
                     "' — seed a pn::rng explicitly (common/rng.h)");
      continue;
    }
    if (call_like.count(t) == 0) continue;
    const bool called = i + 1 < toks.size() &&
                        toks[i + 1].kind == tok_kind::punct &&
                        toks[i + 1].text == "(";
    const bool member = i > 0 && toks[i - 1].kind == tok_kind::punct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (called && !member) {
      ctx.report("nondet", toks[i].line,
                 "call to '" + t +
                     "()' — nondeterministic; use pn::rng or pass the value "
                     "in explicitly");
    }
  }
}

// ---- R2: raw threading outside the pool -------------------------------
void rule_raw_thread(rule_ctx& ctx) {
  if (ends_with(ctx.file.path, "common/thread_pool.h") ||
      ends_with(ctx.file.path, "common/thread_pool.cc")) {
    return;  // the one place allowed to own std::thread
  }
  static const std::set<std::string> banned = {"thread", "jthread", "async"};
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind != tok_kind::ident || banned.count(toks[i].text) == 0) {
      continue;
    }
    const bool std_qualified =
        toks[i - 1].kind == tok_kind::punct && toks[i - 1].text == "::" &&
        toks[i - 2].kind == tok_kind::ident && toks[i - 2].text == "std";
    if (std_qualified) {
      ctx.report("raw-thread", toks[i].line,
                 "raw std::" + toks[i].text +
                     " — route concurrency through common/thread_pool "
                     "(thread_pool / parallel_for)");
    }
  }
}

// ---- R7: node-keyed red-black trees in hot directories ----------------
// src/topology/ and src/core/ sit on the mutate -> delta-evaluate path,
// where per-node state is indexed millions of times per sweep;
// src/campaign/ compiles lifetime timelines through that same path; and
// src/service/ sits on the per-request serving path (cache probe,
// stats snapshot, proxy routing) where every allocation is paid at QPS.
// src/search/ memoizes candidates and accumulates Pareto fronts at grid
// scale through the same evaluator.
// Ordered associative containers there are almost always an accident —
// node and edge ids are dense integers and stats keys are assembled
// once then iterated — so the natural structure is an index-keyed or
// sorted vector (sort + unique for set semantics). Deliberate uses
// (ordered iteration a caller depends on) carry an allow() with the
// justification.
void rule_hot_assoc(rule_ctx& ctx) {
  const bool hot = starts_with(ctx.file.path, "src/topology/") ||
                   starts_with(ctx.file.path, "src/core/") ||
                   starts_with(ctx.file.path, "src/campaign/") ||
                   starts_with(ctx.file.path, "src/search/") ||
                   starts_with(ctx.file.path, "src/service/");
  if (!hot) return;
  static const std::set<std::string> banned = {"map", "set", "multimap",
                                               "multiset"};
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind != tok_kind::ident || banned.count(toks[i].text) == 0) {
      continue;
    }
    const bool std_qualified =
        toks[i - 1].kind == tok_kind::punct && toks[i - 1].text == "::" &&
        toks[i - 2].kind == tok_kind::ident && toks[i - 2].text == "std";
    if (std_qualified) {
      ctx.report("hot-assoc", toks[i].line,
                 "std::" + toks[i].text +
                     " in a hot directory — ids are dense integers; use an "
                     "index-keyed vector (or sort+unique), or justify with "
                     "an allow()");
    }
  }
}

// ---- R3: naked new/delete in src/ -------------------------------------
void rule_naked_new(rule_ctx& ctx) {
  if (!starts_with(ctx.file.path, "src/")) return;
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != tok_kind::ident) continue;
    if (toks[i].text == "new") {
      // `operator new` overloads would be deliberate enough to suppress.
      ctx.report("naked-new", toks[i].line,
                 "naked 'new' — use containers, std::make_unique, or value "
                 "semantics");
    } else if (toks[i].text == "delete") {
      const bool deleted_fn = i > 0 && toks[i - 1].kind == tok_kind::punct &&
                              toks[i - 1].text == "=";
      if (!deleted_fn) {
        ctx.report("naked-new", toks[i].line,
                   "naked 'delete' — ownership must live in a container or "
                   "smart pointer");
      }
    }
  }
}

// ---- R4: hand-joined CSV fields ---------------------------------------
// Scope: files that see the sweep/checkpoint CSV machinery. Trigger: a
// statement-like token span (between ; { }) that contains a '<<' chain
// and a string literal with a CSV-style comma — a comma immediately
// followed by a non-space, the shape of "a,b,c" headers and ",%.3f"
// joiners, while prose like "points, resuming" stays quiet — with no
// csv_field() call anywhere in the span.
bool csv_style_comma(std::string_view s) {
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == ',' && s[i + 1] != ' ') return true;
  }
  return false;
}

void rule_csv_comma(rule_ctx& ctx) {
  if (!starts_with(ctx.file.path, "src/") &&
      !starts_with(ctx.file.path, "tools/")) {
    return;
  }
  bool in_scope = path_contains(ctx.file.path, "core/sweep.") ||
                  path_contains(ctx.file.path, "core/checkpoint.");
  for (const include_ref& inc : ctx.file.includes) {
    if (inc.path == "core/sweep.h" || inc.path == "core/checkpoint.h") {
      in_scope = true;
    }
  }
  if (!in_scope) return;
  const auto& toks = ctx.file.tokens;
  std::size_t span_begin = 0;
  for (std::size_t i = 0; i <= toks.size(); ++i) {
    const bool boundary =
        i == toks.size() ||
        (toks[i].kind == tok_kind::punct &&
         (toks[i].text == ";" || toks[i].text == "{" || toks[i].text == "}"));
    if (!boundary) continue;
    int shift_line = 0;
    bool raw_comma = false, escaped = false;
    for (std::size_t j = span_begin; j < i; ++j) {
      const token& t = toks[j];
      if (t.kind == tok_kind::punct && t.text == "<<" && shift_line == 0) {
        shift_line = t.line;
      } else if (t.kind == tok_kind::str && csv_style_comma(t.text)) {
        raw_comma = true;
      } else if (t.kind == tok_kind::ident && t.text == "csv_field") {
        escaped = true;
      }
    }
    if (shift_line != 0 && raw_comma && !escaped) {
      ctx.report("csv-comma", shift_line,
                 "'<<' chain joins CSV fields with raw commas — route "
                 "every data field through csv_field()");
    }
    span_begin = i + 1;
  }
}

// ---- R5a: #pragma once ------------------------------------------------
void rule_pragma_once(rule_ctx& ctx) {
  if (ctx.file.is_header && !ctx.file.has_pragma_once) {
    ctx.report("pragma-once", 1,
               "header is missing '#pragma once'");
  }
}

// ---- R6: float equality -----------------------------------------------
void rule_float_eq(rule_ctx& ctx) {
  if (!starts_with(ctx.file.path, "src/") &&
      !starts_with(ctx.file.path, "tools/")) {
    return;  // tests may assert exact IEEE round-trips on purpose
  }
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != tok_kind::punct ||
        (toks[i].text != "==" && toks[i].text != "!=")) {
      continue;
    }
    const token& prev = toks[i - 1];
    std::size_t r = i + 1;  // skip unary sign on the right operand
    if (toks[r].kind == tok_kind::punct &&
        (toks[r].text == "-" || toks[r].text == "+") && r + 1 < toks.size()) {
      ++r;
    }
    const bool float_operand =
        (prev.kind == tok_kind::number && prev.is_float) ||
        (toks[r].kind == tok_kind::number && toks[r].is_float);
    if (float_operand) {
      ctx.report("float-eq", toks[i].line,
                 "'" + toks[i].text +
                     "' against a floating-point literal — compare with a "
                     "tolerance, or restructure around an integer");
    }
  }
}

// ---- R5b: include cycles (cross-file) ---------------------------------
// Edges: quoted includes resolved (a) against include_root — the
// project-wide `-I src` convention — then (b) against the including
// file's own directory. Tarjan (pn_lint/tarjan.h, shared with the
// lock-order pass) over the resolved graph; every SCC of size > 1 (or a
// self-include) is one finding.
void rule_include_cycle(const std::vector<source_file>& files,
                        const std::string& include_root,
                        std::vector<finding>& out) {
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path[files[i].path] = i;

  std::vector<std::vector<std::size_t>> adj(files.size());
  std::vector<bool> self_loop(files.size(), false);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string dir =
        files[i].path.substr(0, files[i].path.find_last_of('/') + 1);
    for (const include_ref& inc : files[i].includes) {
      if (inc.angled) continue;  // system headers cannot cycle with us
      std::size_t target = files.size();
      const auto root_hit = by_path.find(include_root + "/" + inc.path);
      const auto rel_hit = by_path.find(dir + inc.path);
      if (root_hit != by_path.end()) {
        target = root_hit->second;
      } else if (rel_hit != by_path.end()) {
        target = rel_hit->second;
      }
      if (target == files.size()) continue;
      if (target == i) self_loop[i] = true;
      adj[i].push_back(target);
    }
  }

  tarjan t(adj);
  t.run();
  for (const auto& scc : t.sccs) {
    if (scc.size() < 2 && !(scc.size() == 1 && self_loop[scc[0]])) continue;
    std::vector<std::string> members;
    members.reserve(scc.size());
    for (std::size_t v : scc) members.push_back(files[v].path);
    std::sort(members.begin(), members.end());
    std::string msg = "include cycle: ";
    for (std::size_t k = 0; k < members.size(); ++k) {
      msg += members[k];
      msg += (k + 1 < members.size()) ? " -> " : "";
    }
    out.push_back(finding{"include-cycle", members.front(), 1, std::move(msg)});
  }
}

}  // namespace

// An allow() on line N covers findings on lines N and N+1 — same-line
// trailing comments and a comment directly above a long statement.
// Shared with the concurrency passes, which apply it internally.
bool allow_suppressed(const source_file& f, const finding& fnd) {
  for (int ln : {fnd.line, fnd.line - 1}) {
    const auto it = f.allows.find(ln);
    if (it == f.allows.end()) continue;
    if (it->second.count(fnd.rule) != 0 || it->second.count("*") != 0) {
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "nondet",     "raw-thread", "naked-new",  "csv-comma",
      "pragma-once", "include-cycle", "float-eq", "hot-assoc",
      "guarded-by", "lock-order", "unchecked-status",
  };
  return names;
}

std::vector<finding> run_rules(const std::vector<source_file>& files,
                               const std::string& include_root) {
  std::vector<finding> out;
  for (const source_file& f : files) {
    std::vector<finding> local;
    rule_ctx ctx{f, local};
    rule_nondet(ctx);
    rule_raw_thread(ctx);
    rule_hot_assoc(ctx);
    rule_naked_new(ctx);
    rule_csv_comma(ctx);
    rule_pragma_once(ctx);
    rule_float_eq(ctx);
    for (finding& fnd : local) {
      if (!allow_suppressed(f, fnd)) out.push_back(std::move(fnd));
    }
  }
  rule_include_cycle(files, include_root, out);
  run_concurrency_rules(files, out);
  std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
    return std::tie(a.path, a.line, a.rule) < std::tie(b.path, b.line, b.rule);
  });
  return out;
}

}  // namespace pn::lint
