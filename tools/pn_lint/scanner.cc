// Token-level scanner for pn_lint.
//
// This is not a C++ parser — it is exactly enough lexing to make the
// rules reliable: comments and literals must never leak identifier
// tokens (a comment saying "never call rand()" is not a violation), and
// literals must stay inspectable (R4 looks *inside* string literals for
// CSV commas). Preprocessor directives are consumed line-wise with
// continuation handling so `#include` and `#pragma once` are captured.
#include "pn_lint/lint.h"

#include <cctype>

namespace pn::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators we want as single tokens, longest first.
// Only operators the rules inspect need to be exact; everything else may
// split into single characters without affecting any rule.
constexpr std::string_view multi_punct[] = {
    "<<=", ">>=", "<=>", "...", "->*", "<<", ">>", "==", "!=", "<=", ">=",
    "::",  "->",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",
};

struct scanner {
  std::string_view src;
  std::size_t pos = 0;
  int line = 1;
  source_file out;

  char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  void advance() {
    if (src[pos] == '\n') ++line;
    ++pos;
  }
  bool at_end() const { return pos >= src.size(); }

  void push(tok_kind k, std::string text, int ln, bool is_float = false) {
    out.tokens.push_back(token{k, std::move(text), ln, is_float});
  }

  // Registers suppressions found in a comment body starting at `ln`.
  // Grammar: "pn_lint: allow(rule[, rule...])" anywhere in the comment.
  void harvest_allow(std::string_view comment, int ln) {
    const std::string_view tag = "pn_lint:";
    std::size_t at = comment.find(tag);
    if (at == std::string_view::npos) return;
    std::size_t open = comment.find("allow(", at);
    if (open == std::string_view::npos) return;
    std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) return;
    std::string_view body = comment.substr(open + 6, close - open - 6);
    std::set<std::string>& rules = out.allows[ln];
    std::string cur;
    for (char c : body) {
      if (c == ',' || c == ' ' || c == '\t') {
        if (!cur.empty()) rules.insert(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) rules.insert(cur);
  }

  void skip_line_comment() {
    const int ln = line;
    const std::size_t start = pos;
    while (!at_end() && peek() != '\n') advance();
    harvest_allow(src.substr(start, pos - start), ln);
  }

  void skip_block_comment() {
    const int ln = line;
    const std::size_t start = pos;
    advance();  // '*'
    while (!at_end()) {
      if (peek() == '*' && peek(1) == '/') {
        harvest_allow(src.substr(start, pos - start), ln);
        advance();
        advance();
        return;
      }
      advance();
    }
  }

  // Body of a quoted literal with escape handling; returns the contents.
  std::string quoted(char quote) {
    std::string body;
    advance();  // opening quote
    while (!at_end() && peek() != quote && peek() != '\n') {
      if (peek() == '\\' && pos + 1 < src.size()) {
        body.push_back(peek());
        advance();
      }
      body.push_back(peek());
      advance();
    }
    if (!at_end() && peek() == quote) advance();
    return body;
  }

  // R"delim( ... )delim" — contents verbatim, no escapes.
  std::string raw_string() {
    advance();  // 'R' already consumed by caller; this is the '"'
    std::string delim;
    while (!at_end() && peek() != '(' && peek() != '\n') {
      delim.push_back(peek());
      advance();
    }
    if (!at_end()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string body;
    while (!at_end()) {
      if (src.compare(pos, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        return body;
      }
      body.push_back(peek());
      advance();
    }
    return body;
  }

  // pp-number: integers, floats, hex, exponents, digit separators.
  void number() {
    const int ln = line;
    std::string text;
    bool is_float = false;
    const bool hex = peek() == '0' && (peek(1) == 'x' || peek(1) == 'X');
    while (!at_end()) {
      const char c = peek();
      if (digit(c) || ident_char(c) || c == '\'' || c == '.') {
        if (c == '.') is_float = true;
        if (!hex && (c == 'e' || c == 'E') &&
            (peek(1) == '+' || peek(1) == '-' || digit(peek(1)))) {
          is_float = true;
          text.push_back(c);
          advance();
          if (peek() == '+' || peek() == '-') {
            text.push_back(peek());
            advance();
          }
          continue;
        }
        if (hex && (c == 'p' || c == 'P')) {
          is_float = true;
          text.push_back(c);
          advance();
          if (peek() == '+' || peek() == '-') {
            text.push_back(peek());
            advance();
          }
          continue;
        }
        text.push_back(c);
        advance();
      } else {
        break;
      }
    }
    push(tok_kind::number, std::move(text), ln, is_float);
  }

  // A '#' directive: consume to end of line (honouring \-continuations
  // and comments), recording #include and #pragma once.
  void directive() {
    const int ln = line;
    std::string text;
    advance();  // '#'
    while (!at_end()) {
      const char c = peek();
      if (c == '\n') break;
      if (c == '\\' && peek(1) == '\n') {
        advance();
        advance();
        text.push_back(' ');
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        advance();
        skip_block_comment();
        text.push_back(' ');
        continue;
      }
      text.push_back(c);
      advance();
    }
    // Trim leading whitespace after '#'.
    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string::npos) return;
    std::string_view body = std::string_view(text).substr(b);
    if (body.rfind("include", 0) == 0) {
      std::string_view rest = body.substr(7);
      std::size_t q = rest.find_first_of("\"<");
      if (q != std::string_view::npos) {
        const bool angled = rest[q] == '<';
        const char closer = angled ? '>' : '"';
        std::size_t e = rest.find(closer, q + 1);
        if (e != std::string_view::npos) {
          out.includes.push_back(include_ref{
              std::string(rest.substr(q + 1, e - q - 1)), angled, ln});
        }
      }
    } else if (body.rfind("pragma", 0) == 0 &&
               body.find("once") != std::string::npos) {
      out.has_pragma_once = true;
    }
  }

  void run() {
    while (!at_end()) {
      const char c = peek();
      const int ln = line;
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
          c == '\v') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        skip_line_comment();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        skip_block_comment();
      } else if (c == '#') {
        directive();
      } else if (c == '"') {
        push(tok_kind::str, quoted('"'), ln);
      } else if (c == '\'') {
        push(tok_kind::chr, quoted('\''), ln);
      } else if (ident_start(c)) {
        std::string text;
        while (!at_end() && ident_char(peek())) {
          text.push_back(peek());
          advance();
        }
        // String-literal prefixes: R"...", u8"...", L"...", uR"..." etc.
        const bool raw_next =
            peek() == '"' && (text == "R" || text == "uR" || text == "UR" ||
                              text == "LR" || text == "u8R");
        const bool prefix_next =
            peek() == '"' && !raw_next &&
            (text == "u8" || text == "u" || text == "U" || text == "L");
        if (raw_next) {
          push(tok_kind::str, raw_string(), ln);
        } else if (prefix_next) {
          push(tok_kind::str, quoted('"'), ln);
        } else {
          push(tok_kind::ident, std::move(text), ln);
        }
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
      } else {
        bool matched = false;
        for (std::string_view op : multi_punct) {
          if (src.compare(pos, op.size(), op) == 0) {
            for (std::size_t i = 0; i < op.size(); ++i) advance();
            push(tok_kind::punct, std::string(op), ln);
            matched = true;
            break;
          }
        }
        if (!matched) {
          push(tok_kind::punct, std::string(1, c), ln);
          advance();
        }
      }
    }
  }
};

}  // namespace

source_file scan_source(std::string path, std::string_view text) {
  scanner s;
  s.src = text;
  s.out.path = std::move(path);
  const std::size_t dot = s.out.path.find_last_of('.');
  if (dot != std::string::npos) {
    const std::string ext = s.out.path.substr(dot);
    s.out.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
  }
  s.run();
  return s.out;
}

}  // namespace pn::lint
