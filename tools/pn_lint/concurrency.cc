// The cross-file concurrency passes, built on the declaration tracker:
//
//   R8 guarded-by        annotation completeness + unguarded accesses
//   R9 lock-order        repo-wide lock acquisition graph, cycle = finding
//   R10 unchecked-status discarded status/result return values
//
// Mutex identity is canonical: "Class::member" (nested classes keep their
// full path, function-local mutexes are "Function::name"). Everything the
// tracker cannot resolve — `auto` locals, chained accesses, callees with
// no visible declaration — is skipped, never guessed: a heuristic linter
// earns trust by having no false positives, and the annotations make the
// true positives resolvable.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pn_lint/decls.h"
#include "pn_lint/tarjan.h"

namespace pn::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// Files whose declarations and bodies the passes analyze. Tests are out:
// they poke internals on purpose and assert on error paths.
bool analyzed_path(std::string_view path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

// Directories where R8 *requires* annotations on mutex-bearing classes
// (ISSUE: the serving spine plus the two shared concurrency primitives,
// and the search subsystem that drives both).
bool annotation_required_path(std::string_view path) {
  return starts_with(path, "src/search/") ||
         starts_with(path, "src/service/") ||
         starts_with(path, "src/common/thread_pool.") ||
         starts_with(path, "src/core/checkpoint.");
}

std::string last_segment(const std::string& qualified) {
  const std::size_t at = qualified.rfind("::");
  return at == std::string::npos ? qualified : qualified.substr(at + 2);
}

struct member_rec {
  decl_member m;
  std::string path;
};

// Words in a type spelling that can never *be* the resolving class.
bool type_noise_word(std::string_view s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "mutable" || s == "volatile" || s == "auto" || s == "std" ||
         s == "typename" || s == "unsigned" || s == "signed" ||
         s == "long" || s == "short";
}

bool ident_like(std::string_view s) {
  if (s.empty()) return false;
  const char c = s[0];
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

struct analysis {
  // class -> its members (annotations included), with declaring file.
  std::map<std::string, std::vector<member_rec>> members_by_class;
  // last name segment -> qualified class names (resolution is only
  // attempted when unambiguous).
  std::map<std::string, std::vector<std::string>> class_by_last;
  // qualified function name -> every declaration/definition seen.
  std::map<std::string, std::vector<decl_function>> fns;
  std::map<std::string, const source_file*> file_by_path;

  const decl_member* find_member(const std::string& cls,
                                 const std::string& name) const {
    const auto it = members_by_class.find(cls);
    if (it == members_by_class.end()) return nullptr;
    for (const member_rec& r : it->second) {
      if (r.m.name == name) return &r.m;
    }
    return nullptr;
  }

  // Space-separated type spelling -> qualified class name, scanning from
  // the most-derived token backwards ("std::shared_ptr<slot>&" -> slot's
  // class). "" when nothing resolves unambiguously.
  std::string resolve_type_class(const std::string& type) const {
    std::vector<std::string> words;
    std::string cur;
    for (const char c : type) {
      if (c == ' ') {
        if (!cur.empty()) words.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) words.push_back(cur);
    for (auto it = words.rbegin(); it != words.rend(); ++it) {
      if (!ident_like(*it) || type_noise_word(*it)) continue;
      if (members_by_class.count(*it) != 0) return *it;
      const auto hit = class_by_last.find(*it);
      if (hit != class_by_last.end() && hit->second.size() == 1) {
        return hit->second.front();
      }
    }
    return {};
  }

  // Type of `obj` inside `fn`: parameters and explicitly-typed locals
  // first (later declarations shadow earlier ones), then members of the
  // enclosing class.
  std::string obj_class(const decl_function& fn,
                        const std::string& obj) const {
    for (auto it = fn.locals.rbegin(); it != fn.locals.rend(); ++it) {
      if (it->name == obj) return resolve_type_class(it->type);
    }
    if (!fn.cls.empty()) {
      if (const decl_member* m = find_member(fn.cls, obj)) {
        return resolve_type_class(m->type);
      }
    }
    return {};
  }

  bool has_local(const decl_function& fn, const std::string& name) const {
    for (const decl_local& l : fn.locals) {
      if (l.name == name) return true;
    }
    return false;
  }

  // Canonical mutex id for a raw guard/annotation argument ("mu_",
  // "s->mu", "sh.mu") in the context of `fn`. "" when unresolvable.
  std::string canon_mutex(const decl_function& fn,
                          const std::string& raw) const {
    std::string a = raw;
    if (starts_with(a, "this->")) a = a.substr(6);
    if (starts_with(a, "this.")) a = a.substr(5);
    std::size_t sep = a.find("->");
    std::size_t sep_len = 2;
    const std::size_t dot = a.find('.');
    if (dot != std::string::npos && (sep == std::string::npos || dot < sep)) {
      sep = dot;
      sep_len = 1;
    }
    if (sep == std::string::npos) {
      if (!fn.cls.empty() && find_member(fn.cls, a) != nullptr) {
        return fn.cls + "::" + a;
      }
      if (has_local(fn, a)) return fn.qualified + "::" + a;
      if (!fn.cls.empty()) return fn.cls + "::" + a;
      return a;
    }
    const std::string obj = a.substr(0, sep);
    const std::string field = a.substr(sep + sep_len);
    if (obj.empty() || field.empty()) return {};
    const std::string cls = obj_class(fn, obj);
    return cls.empty() ? std::string() : cls + "::" + field;
  }

  // Callee resolution, one level, by qualified name. "" when unknown.
  std::string resolve_callee(const decl_function& fn,
                             const decl_call& c) const {
    if (!c.obj.empty()) {
      const std::string cls = obj_class(fn, c.obj);
      if (!cls.empty() && fns.count(cls + "::" + c.name) != 0) {
        return cls + "::" + c.name;
      }
      return {};
    }
    // Unqualified: the enclosing class (walking out through nesting),
    // then free functions.
    std::string cls = fn.cls;
    while (!cls.empty()) {
      if (fns.count(cls + "::" + c.name) != 0) return cls + "::" + c.name;
      const std::size_t at = cls.rfind("::");
      cls = at == std::string::npos ? std::string() : cls.substr(0, at);
    }
    const auto it = fns.find(c.name);
    if (it != fns.end() && !it->second.empty() &&
        it->second.front().cls.empty()) {
      return c.name;
    }
    return {};
  }
};

analysis build_analysis(const std::vector<source_file>& files) {
  analysis az;
  for (const source_file& f : files) {
    az.file_by_path[f.path] = &f;
    if (!analyzed_path(f.path)) continue;
    file_decls d = extract_decls(f);
    for (decl_member& m : d.members) {
      az.members_by_class[m.cls].push_back(member_rec{std::move(m), f.path});
    }
    for (decl_function& fn : d.functions) {
      az.fns[fn.qualified].push_back(std::move(fn));
    }
  }
  for (const auto& [cls, mems] : az.members_by_class) {
    (void)mems;
    az.class_by_last[last_segment(cls)].push_back(cls);
  }
  // Fold prototype annotations (header declarations) into the definitions
  // they belong to, so PN_REQUIRES in a class body covers the out-of-line
  // body in the .cc.
  for (auto& [q, decls] : az.fns) {
    (void)q;
    std::set<std::string> req, exc;
    bool returns_status = false;
    for (const decl_function& fn : decls) {
      req.insert(fn.requires_args.begin(), fn.requires_args.end());
      exc.insert(fn.excludes_args.begin(), fn.excludes_args.end());
      returns_status = returns_status || fn.returns_status;
    }
    for (decl_function& fn : decls) {
      fn.requires_args.assign(req.begin(), req.end());
      fn.excludes_args.assign(exc.begin(), exc.end());
      fn.returns_status = returns_status;
    }
  }
  return az;
}

// Precomputed per-function lock context: canonical ids for PN_REQUIRES /
// PN_EXCLUDES and for every scoped acquisition.
struct lock_ctx {
  std::set<std::string> requires_ids;
  std::set<std::string> excludes_ids;
  struct scoped {
    std::set<std::string> ids;
    std::size_t begin_tok = 0;
    std::size_t end_tok = 0;
    int line = 0;
  };
  std::vector<scoped> acquires;

  std::set<std::string> held_at(std::size_t tok) const {
    std::set<std::string> held = requires_ids;
    for (const scoped& s : acquires) {
      if (s.begin_tok <= tok && tok < s.end_tok) {
        held.insert(s.ids.begin(), s.ids.end());
      }
    }
    return held;
  }
};

lock_ctx make_lock_ctx(const analysis& az, const decl_function& fn) {
  lock_ctx ctx;
  for (const std::string& r : fn.requires_args) {
    const std::string id = az.canon_mutex(fn, r);
    if (!id.empty()) ctx.requires_ids.insert(id);
  }
  for (const std::string& e : fn.excludes_args) {
    const std::string id = az.canon_mutex(fn, e);
    if (!id.empty()) ctx.excludes_ids.insert(id);
  }
  for (const decl_acquire& a : fn.acquires) {
    lock_ctx::scoped s;
    s.begin_tok = a.begin_tok;
    s.end_tok = a.end_tok;
    s.line = a.line;
    for (const std::string& arg : a.args) {
      const std::string id = az.canon_mutex(fn, arg);
      if (!id.empty()) s.ids.insert(id);
    }
    ctx.acquires.push_back(std::move(s));
  }
  return ctx;
}

// ---- R8: guarded-by ----------------------------------------------------
void rule_guarded_by(const analysis& az, std::vector<finding>& out) {
  // (a) every member beside a mutex is annotated (designated dirs only).
  for (const auto& [cls, mems] : az.members_by_class) {
    bool has_mutex = false;
    for (const member_rec& r : mems) has_mutex = has_mutex || r.m.is_mutex;
    if (!has_mutex) continue;
    for (const member_rec& r : mems) {
      if (!annotation_required_path(r.path)) continue;
      const decl_member& m = r.m;
      if (m.is_mutex || m.is_exempt) continue;
      if (!m.guarded_by.empty() || !m.excludes.empty()) continue;
      out.push_back(finding{
          "guarded-by", r.path, m.line,
          "member '" + cls + "::" + m.name +
              "' is declared beside a std::mutex but carries no "
              "PN_GUARDED_BY / PN_EXCLUDES annotation (common/guarded.h)"});
    }
  }

  // (b) accesses to annotated members must see the named mutex held.
  for (const auto& [q, decls] : az.fns) {
    (void)q;
    for (const decl_function& fn : decls) {
      if (!fn.has_body || fn.is_ctor_dtor) continue;
      const lock_ctx ctx = make_lock_ctx(az, fn);
      for (const decl_access& a : fn.accesses) {
        const decl_member* m = nullptr;
        std::string owner;
        if (a.obj.empty()) {
          if (fn.cls.empty() || az.has_local(fn, a.name)) continue;
          m = az.find_member(fn.cls, a.name);
          owner = fn.cls;
        } else {
          owner = az.obj_class(fn, a.obj);
          if (owner.empty()) continue;
          m = az.find_member(owner, a.name);
        }
        if (m == nullptr || m->guarded_by.empty()) continue;
        const std::string mutex_id = owner + "::" + m->guarded_by;
        bool covered = ctx.requires_ids.count(mutex_id) != 0 ||
                       ctx.excludes_ids.count(mutex_id) != 0;
        for (const lock_ctx::scoped& s : ctx.acquires) {
          covered = covered || (s.begin_tok <= a.tok && a.tok < s.end_tok &&
                                s.ids.count(mutex_id) != 0);
        }
        if (covered) continue;
        out.push_back(finding{
            "guarded-by", fn.path, a.line,
            "'" + owner + "::" + a.name + "' is PN_GUARDED_BY(" +
                m->guarded_by + ") but '" + m->guarded_by +
                "' is not visibly held here — take a lock_guard/"
                "unique_lock/scoped_lock, or annotate the function "
                "PN_REQUIRES / PN_EXCLUDES"});
      }
    }
  }
}

// ---- R9: lock-order ----------------------------------------------------
struct edge_info {
  std::string via;  // "holder at path:line"
  std::string path;
  int line = 0;
};

void rule_lock_order(const analysis& az, std::vector<finding>& out) {
  std::map<std::pair<std::string, std::string>, edge_info> edges;
  auto add_edge = [&](const std::string& held, const std::string& acq,
                      const std::string& via, const std::string& path,
                      int line) {
    if (held.empty() || acq.empty() || held == acq) return;
    edges.emplace(std::make_pair(held, acq), edge_info{via, path, line});
  };

  for (const auto& [q, decls] : az.fns) {
    (void)q;
    for (const decl_function& fn : decls) {
      if (!fn.has_body) continue;
      const lock_ctx ctx = make_lock_ctx(az, fn);
      // Direct acquisitions while something is already held.
      for (std::size_t i = 0; i < ctx.acquires.size(); ++i) {
        const lock_ctx::scoped& a = ctx.acquires[i];
        std::set<std::string> held = ctx.requires_ids;
        for (std::size_t j = 0; j < ctx.acquires.size(); ++j) {
          if (j == i) continue;
          const lock_ctx::scoped& b = ctx.acquires[j];
          if (b.begin_tok <= a.begin_tok && a.begin_tok < b.end_tok) {
            held.insert(b.ids.begin(), b.ids.end());
          }
        }
        for (const std::string& h : held) {
          for (const std::string& m : a.ids) {
            add_edge(h, m, fn.qualified, fn.path, a.line);
          }
        }
      }
      // One level through resolvable callees: everything the callee
      // acquires directly is acquired while our locks are held.
      for (const decl_call& c : fn.calls) {
        const std::set<std::string> held = ctx.held_at(c.tok);
        if (held.empty()) continue;
        const std::string callee = az.resolve_callee(fn, c);
        if (callee.empty() || callee == fn.qualified) continue;
        const auto it = az.fns.find(callee);
        if (it == az.fns.end()) continue;
        for (const decl_function& g : it->second) {
          for (const decl_acquire& acq : g.acquires) {
            for (const std::string& arg : acq.args) {
              const std::string id = az.canon_mutex(g, arg);
              for (const std::string& h : held) {
                add_edge(h, id, fn.qualified + " -> " + callee, fn.path,
                         c.line);
              }
            }
          }
        }
      }
    }
  }

  // Tarjan over the mutex graph; every SCC of size > 1 is one finding.
  std::map<std::string, std::size_t> node_of;
  std::vector<std::string> nodes;
  for (const auto& [e, info] : edges) {
    (void)info;
    for (const std::string& n : {e.first, e.second}) {
      if (node_of.emplace(n, nodes.size()).second) nodes.push_back(n);
    }
  }
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (const auto& [e, info] : edges) {
    (void)info;
    adj[node_of[e.first]].push_back(node_of[e.second]);
  }
  tarjan t(adj);
  t.run();
  for (const auto& scc : t.sccs) {
    if (scc.size() < 2) continue;
    std::vector<std::string> members;
    members.reserve(scc.size());
    for (const std::size_t v : scc) members.push_back(nodes[v]);
    std::sort(members.begin(), members.end());
    const std::set<std::string> in_scc(members.begin(), members.end());
    // Witness chain: walk edges inside the SCC from the smallest member
    // until the cycle closes.
    std::ostringstream msg;
    msg << "lock-order cycle: " << members.front();
    std::string first_path = members.front();
    int first_line = 1;
    std::string cur = members.front();
    std::set<std::string> visited{cur};
    for (std::size_t step = 0; step <= members.size(); ++step) {
      const edge_info* via = nullptr;
      std::string next;
      for (const auto& [e, info] : edges) {
        if (e.first != cur || in_scc.count(e.second) == 0) continue;
        const bool closes = e.second == members.front() && step > 0;
        if (visited.count(e.second) != 0 && !closes) continue;
        next = e.second;
        via = &info;
        break;
      }
      if (via == nullptr) break;
      if (step == 0) {
        first_path = via->path;
        first_line = via->line;
      }
      msg << " -> " << next << " (" << via->via << " at " << via->path << ":"
          << via->line << ")";
      if (next == members.front()) break;
      visited.insert(next);
      cur = next;
    }
    out.push_back(
        finding{"lock-order", first_path, first_line, msg.str()});
  }
}

// ---- R10: unchecked-status ---------------------------------------------
void rule_unchecked_status(const analysis& az, std::vector<finding>& out) {
  for (const auto& [q, decls] : az.fns) {
    (void)q;
    for (const decl_function& fn : decls) {
      if (!fn.has_body) continue;
      for (const decl_call& c : fn.calls) {
        if (!c.discarded) continue;
        const std::string callee = az.resolve_callee(fn, c);
        if (callee.empty()) continue;
        const auto it = az.fns.find(callee);
        if (it == az.fns.end() || it->second.empty() ||
            !it->second.front().returns_status) {
          continue;
        }
        out.push_back(finding{
            "unchecked-status", fn.path, c.line,
            c.voided
                ? "'(void)' cast on '" + callee +
                      "' (status/result return) without a pn_lint "
                      "allow(unchecked-status) justification — say why "
                      "dropping the status is safe"
                : "result of '" + callee +
                      "' (status/result return) is discarded — check it, "
                      "or '(void)' it with a pn_lint "
                      "allow(unchecked-status) justification"});
      }
    }
  }
}

}  // namespace

void run_concurrency_rules(const std::vector<source_file>& files,
                           std::vector<finding>& out) {
  const analysis az = build_analysis(files);
  std::vector<finding> local;
  rule_guarded_by(az, local);
  rule_unchecked_status(az, local);
  // R8/R10 honour inline allow() like every per-file rule; R9 is a
  // whole-graph property (like include-cycle) and is baseline-only.
  for (finding& f : local) {
    const auto it = az.file_by_path.find(f.path);
    if (it != az.file_by_path.end() && allow_suppressed(*it->second, f)) {
      continue;
    }
    out.push_back(std::move(f));
  }
  rule_lock_order(az, out);
}

}  // namespace pn::lint
