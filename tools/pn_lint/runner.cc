// Directory walking + scanning front half of pn_lint.
//
// The walk is sorted so findings come out in a stable order on every
// platform (recursive_directory_iterator order is unspecified), and the
// fixture tree under tests/lint/fixtures is excluded by default — those
// files are *deliberately* bad and feed the linter's own tests.
#include "pn_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pn::lint {
namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".hh" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::string slashed(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

}  // namespace

std::vector<finding> run_lint(const lint_options& opts) {
  std::vector<std::string> paths;
  const fs::path root(opts.root);
  for (const std::string& dir : opts.dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) {
        continue;
      }
      std::string rel =
          slashed(fs::relative(entry.path(), root).generic_string());
      const bool excluded =
          std::any_of(opts.exclude.begin(), opts.exclude.end(),
                      [&rel](const std::string& piece) {
                        return rel.find(piece) != std::string::npos;
                      });
      if (!excluded) paths.push_back(std::move(rel));
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<source_file> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    std::ifstream in(root / rel, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files.push_back(scan_source(rel, text.str()));
  }
  return run_rules(files, opts.include_root);
}

}  // namespace pn::lint
