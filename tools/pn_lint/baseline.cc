// Baseline handling: grandfathered findings that do not fail the gate.
//
// Keys deliberately omit the line number — "rule<TAB>path<TAB>message" —
// so editing an unrelated part of a file does not invalidate its
// baseline entries. The file is sorted and deduplicated on write, and
// '#' lines are comments, so diffs stay reviewable.
#include "pn_lint/lint.h"

#include <fstream>

namespace pn::lint {

std::string baseline_key(const finding& f) {
  return f.rule + "\t" + f.path + "\t" + f.message;
}

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

bool write_baseline(const std::string& path, const std::vector<finding>& fs) {
  std::set<std::string> keys;
  for (const finding& f : fs) keys.insert(baseline_key(f));
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# pn_lint baseline — grandfathered findings that do not fail the "
         "gate.\n"
         "# Regenerate with: pn_lint --fix-baseline\n"
         "# Prefer fixing or inline-suppressing over baselining; this file "
         "should trend to empty.\n";
  for (const std::string& k : keys) out << k << "\n";
  return static_cast<bool>(out);
}

std::vector<finding> filter_baselined(const std::vector<finding>& fs,
                                      const std::set<std::string>& baseline) {
  std::vector<finding> out;
  for (const finding& f : fs) {
    if (baseline.count(baseline_key(f)) == 0) out.push_back(f);
  }
  return out;
}

}  // namespace pn::lint
