// Iterative Tarjan SCC, shared by the include-cycle pass (R5b) and the
// lock-order pass (R9). Both build a small adjacency list over their own
// node ids (files, mutexes) and report every SCC of size > 1 — plus
// size-1 SCCs with a self-edge, which the callers track themselves.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pn::lint {

struct tarjan {
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  int next_index = 0;

  explicit tarjan(const std::vector<std::vector<std::size_t>>& a)
      : adj(a),
        index(a.size(), -1),
        lowlink(a.size(), 0),
        on_stack(a.size(), false) {}

  void strongconnect(std::size_t v) {
    // Iterative DFS: (node, next-edge-to-visit) frames.
    std::vector<std::pair<std::size_t, std::size_t>> frames{{v, 0}};
    while (!frames.empty()) {
      auto& [node, edge] = frames.back();
      if (edge == 0) {
        index[node] = lowlink[node] = next_index++;
        stack.push_back(node);
        on_stack[node] = true;
      }
      bool descended = false;
      while (edge < adj[node].size()) {
        const std::size_t w = adj[node][edge++];
        if (index[w] < 0) {
          frames.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[node] = std::min(lowlink[node], index[w]);
      }
      if (descended) continue;
      if (lowlink[node] == index[node]) {
        std::vector<std::size_t> scc;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == node) break;
        }
        sccs.push_back(std::move(scc));
      }
      const std::size_t done = node;
      frames.pop_back();
      if (!frames.empty()) {
        auto& [parent, unused] = frames.back();
        (void)unused;
        lowlink[parent] = std::min(lowlink[parent], lowlink[done]);
      }
    }
  }

  void run() {
    for (std::size_t v = 0; v < adj.size(); ++v) {
      if (index[v] < 0) strongconnect(v);
    }
  }
};

}  // namespace pn::lint
