// pn_lint CLI. See lint.h for the rule set.
//
//   pn_lint [options] [dir ...]
//     --root=DIR        repo root to lint (default: .)
//     --baseline=FILE   baseline path (default: ROOT/tools/pn_lint/
//                       baseline.txt; pass "none" to disable)
//     --fix-baseline    rewrite the baseline from current findings
//     --include-root=D  root-relative dir quoted includes resolve against
//                       (default: src)
//     --list-rules      print rule names and exit
//     --json            machine-readable output: a JSON object with a
//                       findings array (rule, file, line, message) and
//                       counts; exit codes unchanged
//
//   dirs default to: src tools tests (root-relative)
//
// Exit codes: 0 clean (or all findings baselined), 1 findings, 2 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "pn_lint/lint.h"

namespace {

bool take_value(const std::string& arg, const std::string& flag,
                std::string* value) {
  if (arg.rfind(flag + "=", 0) != 0) return false;
  *value = arg.substr(flag.size() + 1);
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<pn::lint::finding>& fresh,
                std::size_t baselined) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const pn::lint::finding& f = fresh[i];
    std::printf("%s\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
                "\"message\": \"%s\"}",
                i == 0 ? "" : ",", json_escape(f.rule).c_str(),
                json_escape(f.path).c_str(), f.line,
                json_escape(f.message).c_str());
  }
  std::printf("%s],\n  \"count\": %zu,\n  \"baselined\": %zu\n}\n",
              fresh.empty() ? "" : "\n  ", fresh.size(), baselined);
}

}  // namespace

int main(int argc, char** argv) {
  pn::lint::lint_options opts;
  std::string baseline_path;
  bool fix_baseline = false;
  bool json = false;
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (take_value(arg, "--root", &value)) {
      opts.root = value;
    } else if (take_value(arg, "--baseline", &value)) {
      baseline_path = value;
    } else if (take_value(arg, "--include-root", &value)) {
      opts.include_root = value;
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const std::string& name : pn::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pn_lint [--root=DIR] [--baseline=FILE|none] "
          "[--fix-baseline] [--include-root=DIR] [--list-rules] [--json] "
          "[dir ...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pn_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) opts.dirs = dirs;
  if (baseline_path.empty()) {
    baseline_path = opts.root + "/tools/pn_lint/baseline.txt";
  }

  const std::vector<pn::lint::finding> all = pn::lint::run_lint(opts);

  if (fix_baseline) {
    if (baseline_path == "none") {
      std::fprintf(stderr, "pn_lint: --fix-baseline needs a baseline path\n");
      return 2;
    }
    if (!pn::lint::write_baseline(baseline_path, all)) {
      std::fprintf(stderr, "pn_lint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("pn_lint: baselined %zu finding(s) into %s\n", all.size(),
                baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (baseline_path != "none") {
    baseline = pn::lint::load_baseline(baseline_path);
  }
  const std::vector<pn::lint::finding> fresh =
      pn::lint::filter_baselined(all, baseline);

  if (json) {
    print_json(fresh, all.size() - fresh.size());
    return fresh.empty() ? 0 : 1;
  }

  for (const pn::lint::finding& f : fresh) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  const std::size_t baselined = all.size() - fresh.size();
  if (fresh.empty()) {
    std::printf("pn_lint: clean (%zu baselined)\n", baselined);
    return 0;
  }
  std::printf("pn_lint: %zu finding(s) (%zu baselined) — fix, suppress with "
              "'// pn_lint: allow(<rule>) <why>', or --fix-baseline\n",
              fresh.size(), baselined);
  return 1;
}
