// Declaration/scope tracker: a forward pass over the token stream with an
// explicit scope stack. See decls.h for what it extracts and why it is
// allowed to be heuristic (every consumer skips what it cannot resolve).
#include "pn_lint/decls.h"

#include <set>

namespace pn::lint {
namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_punct(const token& t, std::string_view s) {
  return t.kind == tok_kind::punct && t.text == s;
}

// Statement/expression keywords that can never start a declaration we
// care about (and never name a member access or a callee).
const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",       "else",       "for",          "while",
      "do",       "switch",     "case",         "default",
      "return",   "break",      "continue",     "goto",
      "sizeof",   "alignof",    "decltype",     "new",
      "delete",   "throw",      "try",          "catch",
      "operator", "this",       "nullptr",      "true",
      "false",    "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast",
  };
  return kw;
}

// Qualifier-ish tokens that may prefix a type in a declaration.
const std::set<std::string>& type_qualifiers() {
  static const std::set<std::string> kw = {
      "const",  "constexpr", "static", "mutable", "volatile",
      "inline", "unsigned",  "signed", "long",    "short",
      "typename",
  };
  return kw;
}

bool is_annotation(std::string_view s) {
  return s == "PN_GUARDED_BY" || s == "PN_REQUIRES" || s == "PN_EXCLUDES";
}

bool is_guard_type(std::string_view s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool is_mutex_type_word(std::string_view s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex";
}

// Member types that are synchronization primitives in their own right (or
// immutable), so R8 never requires an annotation on them.
bool is_exempt_type_word(std::string_view s) {
  return s == "atomic" || s == "atomic_flag" || s == "condition_variable" ||
         s == "condition_variable_any" || s == "once_flag" || s == "const" ||
         s == "constexpr" || s == "static" || s == "thread_local";
}

struct parser {
  const source_file& f;
  const std::vector<token>& toks;
  file_decls out;
  std::vector<std::string> records;  // qualified record nesting, innermost last

  explicit parser(const source_file& file) : f(file), toks(file.tokens) {}

  std::string record_name() const {
    return records.empty() ? std::string() : records.back();
  }

  // ---- balanced skips --------------------------------------------------
  // Each takes the index of the opener and returns the index just past the
  // matching closer (or toks.size() on malformed input — every caller
  // treats "ran off the end" as "stop parsing this construct").

  std::size_t skip_group(std::size_t i, std::string_view open,
                         std::string_view close) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (is_punct(toks[i], open)) ++depth;
      if (is_punct(toks[i], close) && --depth == 0) return i + 1;
    }
    return toks.size();
  }
  std::size_t skip_parens(std::size_t i) const { return skip_group(i, "(", ")"); }
  std::size_t skip_braces(std::size_t i) const { return skip_group(i, "{", "}"); }
  std::size_t skip_brackets(std::size_t i) const {
    return skip_group(i, "[", "]");
  }

  // Template-argument skip. `>>` closes two levels (the scanner lexes it
  // as one token). Bails out (npos) when the run hits a token that cannot
  // appear in a template-argument list — the caller then treats '<' as a
  // comparison.
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    while (i < toks.size()) {
      const token& t = toks[i];
      if (is_punct(t, "<")) {
        ++depth;
        ++i;
      } else if (is_punct(t, ">")) {
        if (--depth == 0) return i + 1;
        ++i;
      } else if (is_punct(t, ">>")) {
        depth -= 2;
        if (depth <= 0) return i + 1;
        ++i;
      } else if (is_punct(t, "(")) {
        i = skip_parens(i);
      } else if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) {
        return npos;
      } else {
        ++i;
      }
    }
    return npos;
  }

  // Everything up to and past the next top-level ';' (balancing every
  // bracket kind on the way) — used for using/typedef/enum/friend.
  std::size_t skip_statement(std::size_t i) const {
    while (i < toks.size()) {
      const token& t = toks[i];
      if (is_punct(t, "(")) {
        i = skip_parens(i);
      } else if (is_punct(t, "{")) {
        i = skip_braces(i);
      } else if (is_punct(t, "[")) {
        i = skip_brackets(i);
      } else if (is_punct(t, ";")) {
        return i + 1;
      } else if (is_punct(t, "}")) {
        return i;  // never swallow the enclosing scope's closer
      } else {
        ++i;
      }
    }
    return i;
  }

  // ---- declaration sequencing -----------------------------------------

  // Parses declarations until the enclosing '}' (returned, not consumed)
  // or end of file.
  std::size_t parse_seq(std::size_t i) {
    while (i < toks.size()) {
      const token& t = toks[i];
      if (is_punct(t, "}")) return i;
      if (is_punct(t, ";")) {
        ++i;
        continue;
      }
      if (is_punct(t, "[")) {  // [[attribute]] — harmless to drop
        i = skip_brackets(i);
        continue;
      }
      if (is_punct(t, "{")) {  // stray block (extern "C" { ... })
        i = skip_braces(i);
        continue;
      }
      if (t.kind == tok_kind::ident) {
        if (t.text == "namespace") {
          i = parse_namespace(i);
          continue;
        }
        if (t.text == "template") {
          const std::size_t a =
              (i + 1 < toks.size() && is_punct(toks[i + 1], "<"))
                  ? skip_angles(i + 1)
                  : npos;
          i = a == npos ? i + 1 : a;
          continue;
        }
        if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
            t.text == "static_assert" || t.text == "enum") {
          i = skip_statement(i);
          continue;
        }
        if ((t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < toks.size() && is_punct(toks[i + 1], ":")) {
          i += 2;
          continue;
        }
        if (t.text == "class" || t.text == "struct") {
          const std::size_t r = try_parse_record(i);
          if (r != npos) {
            i = r;
            continue;
          }
        }
        i = parse_declaration(i);
        continue;
      }
      ++i;
    }
    return i;
  }

  std::size_t parse_namespace(std::size_t i) {
    ++i;  // 'namespace'
    while (i < toks.size() && (toks[i].kind == tok_kind::ident ||
                               is_punct(toks[i], "::"))) {
      ++i;
    }
    if (i < toks.size() && is_punct(toks[i], "=")) {
      return skip_statement(i);  // namespace alias
    }
    if (i < toks.size() && is_punct(toks[i], "{")) {
      std::size_t j = parse_seq(i + 1);
      return j < toks.size() ? j + 1 : j;  // past '}'
    }
    return i;
  }

  // i at 'class'/'struct'. Returns past the definition (or forward
  // declaration), or npos when this is an elaborated type inside some
  // other declaration.
  std::size_t try_parse_record(std::size_t i) {
    std::size_t j = i + 1;
    while (j < toks.size() && is_punct(toks[j], "[")) j = skip_brackets(j);
    if (j >= toks.size() || toks[j].kind != tok_kind::ident) return npos;
    const std::string name = toks[j].text;
    ++j;
    if (j < toks.size() && toks[j].kind == tok_kind::ident &&
        toks[j].text == "final") {
      ++j;
    }
    if (j < toks.size() && is_punct(toks[j], ";")) return j + 1;  // fwd decl
    if (j < toks.size() && is_punct(toks[j], ":")) {
      // base clause: scan to the body '{'
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "<")) {
          const std::size_t a = skip_angles(j);
          j = a == npos ? j + 1 : a;
        } else {
          ++j;
        }
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) return npos;
    records.push_back(records.empty() ? name : records.back() + "::" + name);
    std::size_t k = parse_seq(j + 1);
    records.pop_back();
    if (k < toks.size()) ++k;  // '}'
    if (k < toks.size() && is_punct(toks[k], ";")) ++k;
    return k;
  }

  // ---- one member / function declaration -------------------------------

  struct anno {
    std::string macro;
    std::vector<std::string> args;
    std::size_t tok = 0;
  };

  // i at '(' — returns the raw argument spellings (top-level commas,
  // tokens concatenated: "s.mu", "mu_") and sets *after to past ')'.
  std::vector<std::string> parse_arg_list(std::size_t i,
                                          std::size_t* after) const {
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (; i < toks.size(); ++i) {
      const token& t = toks[i];
      if (is_punct(t, "(")) {
        if (++depth == 1) continue;
      } else if (is_punct(t, ")")) {
        if (--depth == 0) {
          if (!cur.empty()) args.push_back(cur);
          *after = i + 1;
          return args;
        }
      } else if (is_punct(t, ",") && depth == 1) {
        if (!cur.empty()) args.push_back(cur);
        cur.clear();
        continue;
      }
      if (depth >= 1) cur += t.text;
    }
    *after = toks.size();
    if (!cur.empty()) args.push_back(cur);
    return args;
  }

  std::size_t parse_declaration(std::size_t begin) {
    std::size_t i = begin;
    std::size_t name_tok = npos;
    std::size_t params_open = npos;
    std::size_t params_close = npos;
    std::size_t init_pos = npos;
    bool is_operator = false;
    std::vector<anno> annos;

    while (i < toks.size()) {
      const token& t = toks[i];
      if (t.kind == tok_kind::ident) {
        if (is_annotation(t.text) && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "(")) {
          anno a;
          a.macro = t.text;
          a.tok = i;
          a.args = parse_arg_list(i + 1, &i);
          annos.push_back(std::move(a));
          continue;
        }
        if (t.text == "operator") is_operator = true;
        ++i;
        continue;
      }
      if (t.kind != tok_kind::punct) {
        ++i;
        continue;
      }
      if (t.text == "(") {
        if (params_open == npos && init_pos == npos) {
          const bool named =
              i > begin && toks[i - 1].kind == tok_kind::ident;
          if (named || is_operator) {
            params_open = i;
            if (named) name_tok = i - 1;
            params_close = skip_parens(i) - 1;
            i = params_close + 1;
            continue;
          }
        }
        i = skip_parens(i);
        continue;
      }
      if (t.text == "[") {
        i = skip_brackets(i);
        continue;
      }
      if (t.text == "<") {
        const std::size_t a = skip_angles(i);
        i = a == npos ? i + 1 : a;
        continue;
      }
      if (t.text == "{") {
        if (params_open != npos) {
          finish_function(begin, name_tok, params_open, params_close, annos,
                          i);
          return skip_braces(i);
        }
        if (init_pos == npos) init_pos = i;
        i = skip_braces(i);
        continue;
      }
      if (t.text == "=") {
        if (init_pos == npos) init_pos = i;
        ++i;
        continue;
      }
      if (t.text == ":" && params_open != npos) {
        i = skip_ctor_init(i + 1);  // lands on the body '{'
        continue;
      }
      if (t.text == ";") {
        if (params_open != npos) {
          finish_function(begin, name_tok, params_open, params_close, annos,
                          npos);
        } else {
          finish_member(begin, i, annos, init_pos);
        }
        return i + 1;
      }
      if (t.text == "}") return i;  // malformed; bail without swallowing
      ++i;
    }
    return i;
  }

  // Skips `member(expr), base{...}, ...` items; returns at the body '{'.
  std::size_t skip_ctor_init(std::size_t i) const {
    while (i < toks.size()) {
      while (i < toks.size() && (toks[i].kind == tok_kind::ident ||
                                 is_punct(toks[i], "::"))) {
        ++i;
      }
      if (i < toks.size() && is_punct(toks[i], "<")) {
        const std::size_t a = skip_angles(i);
        if (a != npos) i = a;
      }
      if (i < toks.size() && is_punct(toks[i], "(")) {
        i = skip_parens(i);
      } else if (i < toks.size() && is_punct(toks[i], "{")) {
        i = skip_braces(i);
      }
      if (i < toks.size() && is_punct(toks[i], ",")) {
        ++i;
        continue;
      }
      break;
    }
    return i;
  }

  void finish_member(std::size_t begin, std::size_t semi,
                     const std::vector<anno>& annos, std::size_t init_pos) {
    if (records.empty()) return;  // namespace-scope variables: not tracked
    std::size_t limit = std::min(semi, init_pos);
    for (const anno& a : annos) limit = std::min(limit, a.tok);
    std::size_t name_tok = npos;
    for (std::size_t j = begin; j < limit; ++j) {
      if (toks[j].kind == tok_kind::ident &&
          control_keywords().count(toks[j].text) == 0) {
        name_tok = j;
      }
      if (is_punct(toks[j], "<")) {  // never pick a template argument
        const std::size_t a = skip_angles(j);
        if (a != npos) j = a - 1;
      }
    }
    if (name_tok == npos || name_tok == begin) return;  // no type + name pair
    decl_member m;
    m.cls = record_name();
    m.name = toks[name_tok].text;
    m.line = toks[name_tok].line;
    for (std::size_t j = begin; j < name_tok; ++j) {
      if (!m.type.empty()) m.type += ' ';
      m.type += toks[j].text;
      if (toks[j].kind == tok_kind::ident) {
        if (is_mutex_type_word(toks[j].text)) m.is_mutex = true;
        if (is_exempt_type_word(toks[j].text)) m.is_exempt = true;
      }
      if (is_punct(toks[j], "&")) m.is_exempt = true;  // reference member
    }
    if (m.is_mutex) m.is_exempt = false;  // a mutex is its own category
    for (const anno& a : annos) {
      if (a.args.empty()) continue;
      if (a.macro == "PN_GUARDED_BY") m.guarded_by = a.args[0];
      if (a.macro == "PN_EXCLUDES") m.excludes = a.args[0];
    }
    out.members.push_back(std::move(m));
  }

  static std::string last_segment(const std::string& qualified) {
    const std::size_t at = qualified.rfind("::");
    return at == std::string::npos ? qualified : qualified.substr(at + 2);
  }

  void finish_function(std::size_t begin, std::size_t name_tok,
                       std::size_t params_open, std::size_t params_close,
                       const std::vector<anno>& annos,
                       std::size_t body_open) {
    decl_function fn;
    fn.path = f.path;
    std::size_t head_end = name_tok == npos ? params_open : name_tok;
    if (name_tok != npos) {
      fn.name = toks[name_tok].text;
      fn.line = toks[name_tok].line;
      // Out-of-line qualification: Class::[Nested::]name(
      std::string qual;
      std::size_t q = name_tok;
      while (q >= 2 && is_punct(toks[q - 1], "::") &&
             toks[q - 2].kind == tok_kind::ident) {
        qual = qual.empty() ? toks[q - 2].text : toks[q - 2].text + "::" + qual;
        q -= 2;
        head_end = q;
      }
      if (q >= 1 && is_punct(toks[q - 1], "~")) {
        fn.name = "~" + fn.name;
        head_end = q - 1;
      }
      fn.cls = !qual.empty() ? qual : record_name();
    } else {
      fn.name = "operator";
      fn.line = toks[params_open].line;
      fn.cls = record_name();
    }
    fn.qualified = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
    fn.is_ctor_dtor =
        !fn.name.empty() &&
        (fn.name[0] == '~' ||
         (!fn.cls.empty() && fn.name == last_segment(fn.cls)));
    for (std::size_t j = begin; j < head_end; ++j) {
      if (toks[j].kind == tok_kind::ident &&
          (toks[j].text == "status" || toks[j].text == "result")) {
        fn.returns_status = true;
      }
    }
    for (const anno& a : annos) {
      if (a.macro == "PN_REQUIRES") {
        fn.requires_args.insert(fn.requires_args.end(), a.args.begin(),
                                a.args.end());
      }
      if (a.macro == "PN_EXCLUDES") {
        fn.excludes_args.insert(fn.excludes_args.end(), a.args.begin(),
                                a.args.end());
      }
    }
    parse_params(fn, params_open, params_close);
    if (body_open != npos) {
      fn.has_body = true;
      parse_body(fn, body_open);
    }
    out.functions.push_back(std::move(fn));
  }

  void parse_params(decl_function& fn, std::size_t open,
                    std::size_t close) const {
    std::size_t item_begin = open + 1;
    int depth = 0;
    for (std::size_t j = open + 1; j <= close && j < toks.size(); ++j) {
      const bool at_end_of_item =
          j == close || (depth == 0 && is_punct(toks[j], ","));
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")") && j != close) --depth;
      if (is_punct(toks[j], "<")) {
        const std::size_t a = skip_angles(j);
        if (a != npos && a <= close) j = a - 1;
        continue;
      }
      if (!at_end_of_item) continue;
      add_typed_name(fn, item_begin, j);
      item_begin = j + 1;
    }
  }

  // Records "Type name" from tokens [begin, end) as a local/param, if the
  // range looks like one (at least one type token before a final plain
  // identifier; a default-argument '=' truncates the range).
  void add_typed_name(decl_function& fn, std::size_t begin,
                      std::size_t end) const {
    std::size_t stop = end;
    for (std::size_t j = begin; j < end; ++j) {
      if (is_punct(toks[j], "=")) {
        stop = j;
        break;
      }
    }
    std::size_t name_tok = npos;
    for (std::size_t j = begin; j < stop; ++j) {
      if (toks[j].kind == tok_kind::ident &&
          control_keywords().count(toks[j].text) == 0) {
        name_tok = j;
      }
      if (is_punct(toks[j], "<")) {
        const std::size_t a = skip_angles(j);
        if (a != npos) j = a - 1;
      }
    }
    if (name_tok == npos || name_tok == begin) return;
    decl_local l;
    l.name = toks[name_tok].text;
    for (std::size_t j = begin; j < name_tok; ++j) {
      if (!l.type.empty()) l.type += ' ';
      l.type += toks[j].text;
    }
    if (l.type.empty()) return;
    fn.locals.push_back(std::move(l));
  }

  // ---- body analysis ---------------------------------------------------

  void parse_body(decl_function& fn, std::size_t open) {
    const std::size_t past = skip_braces(open);
    const std::size_t body_end = past == toks.size() ? past : past - 1;
    // Per-open-block indices into fn.acquires, for scoping end_tok.
    std::vector<std::vector<std::size_t>> blocks;
    blocks.emplace_back();  // the body itself
    for (std::size_t k = open + 1; k < body_end; ++k) {
      const token& t = toks[k];
      if (is_punct(t, "{")) {
        blocks.emplace_back();
        continue;
      }
      if (is_punct(t, "}")) {
        if (!blocks.empty()) {
          for (std::size_t a : blocks.back()) fn.acquires[a].end_tok = k;
          blocks.pop_back();
        }
        continue;
      }
      if (t.kind != tok_kind::ident) continue;
      if (control_keywords().count(t.text) != 0 || is_annotation(t.text)) {
        continue;
      }
      // Scoped lock acquisition:
      //   (std::)lock_guard[<...>] var ( args ) ;
      if (is_guard_type(t.text)) {
        std::size_t j = k + 1;
        if (j < toks.size() && is_punct(toks[j], "<")) {
          const std::size_t a = skip_angles(j);
          if (a != npos) j = a;
        }
        if (j < toks.size() && toks[j].kind == tok_kind::ident &&
            j + 1 < toks.size() && is_punct(toks[j + 1], "(")) {
          decl_acquire acq;
          acq.line = t.line;
          std::size_t after = j + 1;
          acq.args = parse_arg_list(j + 1, &after);
          acq.begin_tok = after;
          acq.end_tok = body_end;  // tightened when the block closes
          if (!blocks.empty()) blocks.back().push_back(fn.acquires.size());
          fn.acquires.push_back(std::move(acq));
          k = after - 1;
          continue;
        }
      }
      const bool qual_prev = k > open + 1 && is_punct(toks[k - 1], "::");
      const bool qual_next =
          k + 1 < body_end && is_punct(toks[k + 1], "::");
      if (qual_prev || qual_next) continue;  // std::..., Class::static
      // Explicitly-typed local declaration at a statement start.
      const token& prev = toks[k - 1];
      const bool stmt_start = is_punct(prev, ";") || is_punct(prev, "{") ||
                              is_punct(prev, "}") || is_punct(prev, "(");
      if (stmt_start) try_local(fn, k, body_end);

      const bool member_prev =
          is_punct(prev, ".") || is_punct(prev, "->");
      std::string obj;
      if (member_prev && k >= 2 && toks[k - 2].kind == tok_kind::ident) {
        const bool chained =
            k >= 3 && (is_punct(toks[k - 3], ".") ||
                       is_punct(toks[k - 3], "->") ||
                       is_punct(toks[k - 3], "::"));
        if (!chained && toks[k - 2].text != "this") obj = toks[k - 2].text;
      }
      const bool called = k + 1 < body_end && is_punct(toks[k + 1], "(");
      if (called) {
        decl_call c;
        c.name = t.text;
        c.obj = obj;
        c.line = t.line;
        c.tok = k;
        mark_discard(c, k, open, body_end);
        fn.calls.push_back(std::move(c));
      } else {
        decl_access a;
        a.name = t.text;
        a.obj = member_prev ? obj : std::string();
        // `x.y` with unresolvable x (chained/this) is obj "" but still a
        // member access — distinguish from an unqualified read by eliding
        // it entirely: unqualified reads have no '.'/'->' before them.
        if (member_prev && obj.empty()) continue;
        a.line = t.line;
        a.tok = k;
        fn.accesses.push_back(std::move(a));
      }
    }
    for (std::size_t a : blocks.empty() ? std::vector<std::size_t>{}
                                        : blocks.front()) {
      fn.acquires[a].end_tok = body_end;
    }
  }

  void try_local(decl_function& fn, std::size_t k, std::size_t body_end) {
    // Greedily consume a type-and-name run: idents/::/<...>/&/*, at least
    // two identifier groups, terminated by = ; ( { or : (range-for).
    std::size_t j = k;
    std::size_t groups = 0;
    std::size_t name_tok = npos;
    while (j < body_end) {
      const token& t = toks[j];
      if (t.kind == tok_kind::ident) {
        if (control_keywords().count(t.text) != 0 &&
            type_qualifiers().count(t.text) == 0) {
          return;
        }
        name_tok = j;
        ++groups;
        ++j;
        while (j + 1 < body_end && is_punct(toks[j], "::") &&
               toks[j + 1].kind == tok_kind::ident) {
          name_tok = j + 1;
          j += 2;  // qualified name: still one group
        }
        continue;
      }
      if (is_punct(t, "<")) {
        const std::size_t a = skip_angles(j);
        if (a == npos) return;
        j = a;
        continue;
      }
      if (is_punct(t, "&") || is_punct(t, "*") || is_punct(t, "&&")) {
        ++j;
        continue;
      }
      break;
    }
    if (groups < 2 || name_tok == npos || j >= body_end) return;
    const token& stop = toks[j];
    if (!(is_punct(stop, "=") || is_punct(stop, ";") || is_punct(stop, "(") ||
          is_punct(stop, "{") || is_punct(stop, ":"))) {
      return;
    }
    if (toks[name_tok].kind != tok_kind::ident) return;
    decl_local l;
    l.name = toks[name_tok].text;
    for (std::size_t q = k; q < name_tok; ++q) {
      if (!l.type.empty()) l.type += ' ';
      l.type += toks[q].text;
    }
    if (l.type.empty()) return;
    fn.locals.push_back(std::move(l));
  }

  void mark_discard(decl_call& c, std::size_t k, std::size_t body_open,
                    std::size_t body_end) const {
    // Result used when the postfix chain continues after the call.
    const std::size_t after = skip_parens(k + 1);
    if (after > body_end || after >= toks.size() ||
        !is_punct(toks[after], ";")) {
      return;
    }
    // Walk the object chain back to the statement's first token.
    std::size_t s = k;
    while (s >= 2 &&
           (is_punct(toks[s - 1], ".") || is_punct(toks[s - 1], "->")) &&
           toks[s - 2].kind == tok_kind::ident) {
      s -= 2;
    }
    std::size_t boundary = s;  // token index before which we need ; { }
    if (s >= 3 && is_punct(toks[s - 1], ")") &&
        toks[s - 2].kind == tok_kind::ident && toks[s - 2].text == "void" &&
        is_punct(toks[s - 3], "(")) {
      c.voided = true;
      boundary = s - 3;
    }
    if (boundary == body_open + 1) {
      c.discarded = true;
      return;
    }
    if (boundary >= 1) {
      const token& b = toks[boundary - 1];
      if (is_punct(b, ";") || is_punct(b, "{") || is_punct(b, "}")) {
        c.discarded = true;
      }
    }
  }
};

}  // namespace

file_decls extract_decls(const source_file& f) {
  parser p(f);
  p.parse_seq(0);
  return p.out;
}

}  // namespace pn::lint
