// pn_lint — physnet's in-repo static-analysis gate.
//
// The paper argues that designs fail on constraints nobody formalized;
// this tool formalizes ours. The compiler cannot see that "bit-identical
// under --jobs=N" forbids wall-clock seeding, or that "serialize∘parse is
// a fixed point" forbids hand-joined CSV fields — so pn_lint walks the
// tree at token level (comments and string literals stripped, so prose
// never trips a rule) and fails the build when a new call site silently
// violates a project invariant:
//
//   nondet        (R1) nondeterminism primitives (rand, srand,
//                 std::random_device, time(), system_clock, steady_clock,
//                 sleep_for, ...) outside common/rng.h — use pn::rng with
//                 an explicit seed. common/clock.h is the one sanctioned
//                 home for steady_clock; time readers inject pn::clock_fn
//   raw-thread    (R2) std::thread / std::jthread / std::async outside
//                 common/thread_pool.* — use thread_pool / parallel_for
//   naked-new     (R3) naked new/delete in src/ (`= delete` is fine) —
//                 use containers / smart pointers
//   csv-comma     (R4) in files that include core/sweep.h or
//                 core/checkpoint.h: a `<<` chain containing a string
//                 literal with a CSV-style comma (comma followed by a
//                 non-space) and no csv_field() call — fields must be
//                 escaped through csv_field
//   pragma-once   (R5a) every header starts with #pragma once
//   include-cycle (R5b) no cycles in the src/-internal include graph
//                 (Tarjan SCC over resolved quoted includes)
//   float-eq      (R6) == / != against a floating-point literal outside
//                 tests/ — compare against a tolerance or an integer
//   hot-assoc     (R7) std::map / std::set (and multi-) in the hot
//                 directories src/topology/, src/core/, src/campaign/,
//                 src/search/, and src/service/ — node and edge ids are
//                 dense integers on the mutate -> delta-evaluate path,
//                 so use index-keyed vectors or sort + unique;
//                 deliberate ordered iteration carries an allow() with
//                 its justification
//   guarded-by    (R8) concurrency discipline (common/guarded.h): every
//                 non-exempt member of a mutex-bearing class in
//                 src/search/, src/service/, src/common/thread_pool.*,
//                 and src/core/checkpoint.* carries PN_GUARDED_BY /
//                 PN_EXCLUDES, and every access to a PN_GUARDED_BY
//                 member happens with the named mutex visibly held (a
//                 lock_guard/unique_lock/scoped_lock in scope, or
//                 PN_REQUIRES / PN_EXCLUDES on the enclosing function)
//   lock-order    (R9) the repo-wide lock acquisition graph — "holds A,
//                 acquires B" edges from bodies and one level of
//                 resolvable callees — is cycle-free (Tarjan SCC, with
//                 a witness chain in the message). Whole-graph like
//                 include-cycle, so baseline-only: not inline-allowable
//   unchecked-status
//                 (R10) a call to a function returning status/result in
//                 statement position with the value discarded — check
//                 it, or cast to (void) with an allow() justification
//
// Deliberate violations carry an inline suppression with a justification:
//
//   out << "a,b,c\n";  // pn_lint: allow(csv-comma) fixed header text
//
// A suppression covers its own line and the line directly below it (so it
// can sit above a long statement). A checked-in baseline file
// (tools/pn_lint/baseline.txt) grandfathers findings so the gate starts
// green; `pn_lint --fix-baseline` regenerates it.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pn::lint {

enum class tok_kind {
  ident,    // identifiers and keywords
  number,   // integer or floating literal (see token::is_float)
  str,      // string literal; text holds the *contents*, quotes stripped
  chr,      // character literal; text holds the contents
  punct,    // operators and punctuation, longest-match (e.g. "<<", "==")
};

struct token {
  tok_kind kind;
  std::string text;
  int line = 0;
  bool is_float = false;  // numbers only: has '.', exponent, or hex-float p
};

struct include_ref {
  std::string path;  // the quoted/bracketed spelling, e.g. "core/sweep.h"
  bool angled = false;
  int line = 0;
};

// One scanned translation unit (or header), ready for the rule engine.
struct source_file {
  std::string path;  // root-relative, '/'-separated, e.g. "src/core/sweep.cc"
  bool is_header = false;
  bool has_pragma_once = false;
  std::vector<token> tokens;
  std::vector<include_ref> includes;
  // line -> rules allowed on that line and the next ("*" allows all).
  std::map<int, std::set<std::string>> allows;
};

struct finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

// Tokenizes `text`. Strips // and /* */ comments (harvesting
// `pn_lint: allow(rule[, rule...])` suppressions), handles raw strings,
// escape sequences, digit separators, and preprocessor directives
// (#include and #pragma once are recorded; other directives are skipped).
source_file scan_source(std::string path, std::string_view text);

// Runs every rule over the scanned set. Include-cycle detection resolves
// quoted includes against `include_root` (root-relative dir, e.g. "src")
// and against the including file's own directory. Suppressed findings are
// dropped here.
std::vector<finding> run_rules(const std::vector<source_file>& files,
                               const std::string& include_root);

struct lint_options {
  std::string root = ".";                          // repo root
  std::vector<std::string> dirs = {"src", "tools", "tests"};
  std::string include_root = "src";                // for include resolution
  // Path substrings that are never linted (deliberately-bad test data).
  std::vector<std::string> exclude = {"tests/lint/fixtures"};
};

// Walks root/dirs for .h/.hpp/.cc/.cpp files, scans them, and runs the
// rules. Findings are sorted by (path, line, rule).
std::vector<finding> run_lint(const lint_options& opts);

// ---- baseline ----------------------------------------------------------
// A baseline entry is "rule<TAB>path<TAB>message" — deliberately without a
// line number, so unrelated edits to a file do not invalidate it.
std::string baseline_key(const finding& f);
std::set<std::string> load_baseline(const std::string& path);
bool write_baseline(const std::string& path, const std::vector<finding>& fs);

// Findings whose key is not in the baseline.
std::vector<finding> filter_baselined(const std::vector<finding>& fs,
                                      const std::set<std::string>& baseline);

// All rule names, for --list-rules and allow() validation.
const std::vector<std::string>& rule_names();

// True when `fnd` is covered by an inline allow() in `f` (the finding's
// own line or the line above). Exposed for passes that run after the
// per-file loop and apply suppression themselves.
bool allow_suppressed(const source_file& f, const finding& fnd);

}  // namespace pn::lint
