// A lightweight declaration/scope tracker layered on the token scanner.
//
// pn_lint deliberately has no real C++ frontend; the concurrency passes
// (R8 guarded-by, R9 lock-order, R10 unchecked-status) need just enough
// structure to reason about *who* touches *what* under *which* lock:
//
//   - which records (class/struct, including nested ones) declare which
//     members, with their type tokens and any PN_GUARDED_BY / PN_EXCLUDES
//     annotation (common/guarded.h),
//   - which functions exist (inline bodies and out-of-line definitions,
//     merged by qualified name across files), their parameters and
//     explicitly-typed locals, their PN_REQUIRES / PN_EXCLUDES trailers,
//   - inside each body: every lock_guard/unique_lock/scoped_lock/
//     shared_lock acquisition with the token range it covers, every
//     member-ish identifier access, and every call with its object
//     expression and whether the result is used.
//
// The parser is a forward pass over the token stream with an explicit
// scope stack (namespace / record / body braces). It is a heuristic: it
// resolves types only when a declaration spells them (auto and computed
// expressions are skipped), which keeps every downstream rule
// conservative — no resolution, no finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pn_lint/lint.h"

namespace pn::lint {

// One data member of a record.
struct decl_member {
  std::string cls;   // qualified record name, e.g. "eval_batcher::slot"
  std::string name;
  std::string type;  // declaration type tokens, space-joined
  bool is_mutex = false;   // type mentions `mutex` (and is not a lock RAII)
  bool is_exempt = false;  // atomic / condition_variable / const / static / &
  std::string guarded_by;  // PN_GUARDED_BY argument ("" when absent)
  std::string excludes;    // PN_EXCLUDES argument ("" when absent)
  int line = 0;
};

// A scoped lock acquisition inside a body. Covers tokens in
// [begin_tok, end_tok) — the guard's declaration to its block's `}`.
struct decl_acquire {
  std::vector<std::string> args;  // raw guard arguments, e.g. "mu_", "s.mu"
  int line = 0;
  std::size_t begin_tok = 0;
  std::size_t end_tok = 0;
};

// A call site inside a body.
struct decl_call {
  std::string name;  // callee, last identifier before '('
  std::string obj;   // object identifier for x.f() / x->f(), else ""
  int line = 0;
  std::size_t tok = 0;    // token index of the callee identifier
  bool discarded = false;  // statement position, result unused
  bool voided = false;     // preceded by a (void) cast
};

// A member-ish identifier read/write inside a body.
struct decl_access {
  std::string name;  // identifier accessed
  std::string obj;   // "" for unqualified (implicit this), else the object
  int line = 0;
  std::size_t tok = 0;
};

// A parameter or explicitly-typed local variable.
struct decl_local {
  std::string name;
  std::string type;  // space-joined type tokens ("auto" stays unresolved)
};

struct decl_function {
  std::string cls;        // owning qualified record, "" for free functions
  std::string name;
  std::string qualified;  // "cls::name", or just "name" for free functions
  std::string path;       // file the body (or declaration) lives in
  int line = 0;
  bool returns_status = false;  // return type mentions pn status/result
  bool is_ctor_dtor = false;
  bool has_body = false;
  std::vector<std::string> requires_args;  // PN_REQUIRES trailer arguments
  std::vector<std::string> excludes_args;  // PN_EXCLUDES trailer arguments
  std::vector<decl_local> locals;          // params + typed locals
  std::vector<decl_acquire> acquires;
  std::vector<decl_call> calls;
  std::vector<decl_access> accesses;
};

struct file_decls {
  std::vector<decl_member> members;
  std::vector<decl_function> functions;
};

// Extracts every record member and function (with analyzed body) from one
// scanned file. Pure; merging across files is the concurrency pass's job.
file_decls extract_decls(const source_file& f);

// The concurrency analyses (R8 guarded-by, R9 lock-order) and the
// unchecked-status audit (R10), run over the whole scanned set at once.
// Appends findings; inline allow() suppression is applied internally
// (except for lock-order, which is a whole-graph property like
// include-cycle and is baseline-only).
void run_concurrency_rules(const std::vector<source_file>& files,
                           std::vector<finding>& out);

}  // namespace pn::lint
