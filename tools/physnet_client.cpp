// physnet_client — CLI client for the physnet_serve evaluation service.
//
//   physnet_client --connect=unix:/tmp/physnet.sock --family=fat_tree --size=8
//   physnet_client --connect=tcp::9917 --family=jellyfish --size=64
//       --strategy=annealed --repeat=3
//   physnet_client --connect=unix:/tmp/physnet.sock --stats
//   physnet_client --connect=unix:/tmp/physnet.sock --ping
//   physnet_client --connect=unix:/tmp/physnet.sock --invalidate
//
// The default mode builds the named design locally (same generator
// defaults as physnet_eval), ships it as a twin serialization, and
// prints the returned deployability report. --repeat sends the same
// request N times over one connection — after the first answer the rest
// are served from the result cache (watch `stats`). --csv prints the
// report as one sweep-CSV row instead of tables.
//
// Exit codes: 0 success, 1 server-side or transport error, 2 usage
// error, 3 server said overloaded / shutting_down (retryable).
#include <iostream>
#include <string>

#include "cli_parse.h"
#include "common/clock.h"
#include "core/physnet.h"
#include "service/client.h"
#include "twin/design_codec.h"

namespace {

using namespace pn;

enum class mode { evaluate, stats, ping, invalidate };

struct cli_args {
  std::string connect;
  mode m = mode::evaluate;
  std::string family = "fat_tree";
  int size = 8;
  std::string strategy = "block";
  std::uint64_t seed = 1;
  bool repair = true;
  double deadline_ms = 0.0;
  int repeat = 1;
  bool csv = false;
  retry_policy retry;
};

bool parse_args(int argc, char** argv, cli_args& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--connect") {
      out.connect = value;
    } else if (key == "--stats") {
      out.m = mode::stats;
    } else if (key == "--ping") {
      out.m = mode::ping;
    } else if (key == "--invalidate") {
      out.m = mode::invalidate;
    } else if (key == "--family") {
      out.family = value;
    } else if (key == "--size") {
      if (!cli::parse_or_usage(key, value, out.size)) return false;
    } else if (key == "--strategy") {
      out.strategy = value;
    } else if (key == "--seed") {
      if (!cli::parse_or_usage(key, value, out.seed)) return false;
    } else if (key == "--no-repair") {
      out.repair = false;
    } else if (key == "--deadline") {
      if (!cli::parse_or_usage(key, value, out.deadline_ms)) return false;
      if (out.deadline_ms <= 0.0) {
        std::cerr << "--deadline must be > 0 (milliseconds)\n";
        return false;
      }
    } else if (key == "--repeat") {
      if (!cli::parse_or_usage(key, value, out.repeat)) return false;
      if (out.repeat < 1) {
        std::cerr << "--repeat must be >= 1\n";
        return false;
      }
    } else if (key == "--csv") {
      out.csv = true;
    } else if (key == "--retries") {
      if (!cli::parse_or_usage(key, value, out.retry.retries)) return false;
      if (out.retry.retries < 0) {
        std::cerr << "--retries must be >= 0\n";
        return false;
      }
    } else if (key == "--backoff-ms") {
      if (!cli::parse_or_usage(key, value, out.retry.backoff_ms)) {
        return false;
      }
      if (out.retry.backoff_ms <= 0.0) {
        std::cerr << "--backoff-ms must be > 0\n";
        return false;
      }
    } else if (key == "--backoff-cap-ms") {
      if (!cli::parse_or_usage(key, value, out.retry.backoff_cap_ms)) {
        return false;
      }
      if (out.retry.backoff_cap_ms <= 0.0) {
        std::cerr << "--backoff-cap-ms must be > 0\n";
        return false;
      }
    } else if (key == "--retry-jitter-seed") {
      if (!cli::parse_or_usage(key, value, out.retry.jitter_seed)) {
        return false;
      }
    } else if (key == "--help" || key == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out.connect.empty()) {
    std::cerr << "--connect is required\n";
    return false;
  }
  return true;
}

int exit_code_for(const status& error) {
  return (error.code() == status_code::overloaded ||
          error.code() == status_code::shutting_down)
             ? 3
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli_args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr
        << "usage: physnet_client --connect=unix:PATH|tcp:HOST:PORT\n"
           "  evaluate (default): [--family=NAME] [--size=N] "
           "[--strategy=block|random|annealed] [--seed=N] [--no-repair] "
           "[--deadline=MS] [--repeat=N] [--csv]\n"
           "    [--retries=N] [--backoff-ms=MS] [--backoff-cap-ms=MS] "
           "[--retry-jitter-seed=N]\n"
           "  other modes: --stats | --ping | --invalidate\n"
           "  exit codes: 0 ok, 1 error, 2 usage, 3 overloaded/draining "
           "(retry)\n";
    return 2;
  }

  auto client = eval_client::connect(args.connect);
  if (!client.is_ok()) {
    std::cerr << "connect failed: " << client.error().to_string() << "\n";
    return 1;
  }

  if (args.m == mode::ping) {
    const status pinged = client.value().ping();
    if (!pinged.is_ok()) {
      std::cerr << "ping failed: " << pinged.to_string() << "\n";
      return exit_code_for(pinged);
    }
    std::cout << "pong\n";
    return 0;
  }
  if (args.m == mode::stats) {
    auto stats = client.value().stats();
    if (!stats.is_ok()) {
      std::cerr << "stats failed: " << stats.error().to_string() << "\n";
      return exit_code_for(stats.error());
    }
    for (const auto& [key, value] : stats.value()) {
      std::cout << key << " = " << value << "\n";
    }
    return 0;
  }
  if (args.m == mode::invalidate) {
    auto epoch = client.value().invalidate();
    if (!epoch.is_ok()) {
      std::cerr << "invalidate failed: " << epoch.error().to_string()
                << "\n";
      return exit_code_for(epoch.error());
    }
    std::cout << "cache epoch now " << epoch.value() << "\n";
    return 0;
  }

  auto graph = build_family(args.family, args.size, args.seed);
  if (!graph.is_ok()) {
    std::cerr << "cannot build design: " << graph.error().to_string()
              << "\n";
    return 2;
  }

  eval_request req;
  req.name = args.family + "/" + std::to_string(args.size);
  req.options.seed = args.seed;
  req.options.strategy = args.strategy;
  req.options.run_repair_sim = args.repair;
  req.options.deadline_ms = args.deadline_ms;
  req.design_twin = serialize_twin(design_to_twin(graph.value()));

  // Retryable backpressure (exit 3) can instead be absorbed here with
  // --retries: jittered capped exponential backoff between attempts.
  const auto sleeper = [](double ms) { sleep_ms(ms); };
  deployability_report last;
  for (int i = 0; i < args.repeat; ++i) {
    auto report =
        client.value().evaluate_with_retry(req, args.retry, sleeper);
    if (!report.is_ok()) {
      std::cerr << "evaluate failed: " << report.error().to_string()
                << "\n";
      return exit_code_for(report.error());
    }
    last = std::move(report).value();
  }

  const std::vector<deployability_report> reports{last};
  if (args.csv) {
    sweep_results res;
    res.reports = reports;
    std::cout << sweep_to_csv(res, sweep_csv_options{});
  } else {
    abstract_metrics_table(reports).print(std::cout, "abstract metrics");
    cost_table(reports).print(std::cout, "capital cost & power");
    deployability_table(reports).print(std::cout,
                                       "physical deployability");
    if (args.repair) {
      operations_table(reports).print(std::cout, "operations");
    }
  }
  return 0;
}
