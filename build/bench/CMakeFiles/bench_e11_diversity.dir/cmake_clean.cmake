file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_diversity.dir/bench_e11_diversity.cpp.o"
  "CMakeFiles/bench_e11_diversity.dir/bench_e11_diversity.cpp.o.d"
  "bench_e11_diversity"
  "bench_e11_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
