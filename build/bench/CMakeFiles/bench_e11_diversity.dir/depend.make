# Empty dependencies file for bench_e11_diversity.
# This may be replaced when dependencies are built.
