file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_topology_engineering.dir/bench_e12_topology_engineering.cpp.o"
  "CMakeFiles/bench_e12_topology_engineering.dir/bench_e12_topology_engineering.cpp.o.d"
  "bench_e12_topology_engineering"
  "bench_e12_topology_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_topology_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
