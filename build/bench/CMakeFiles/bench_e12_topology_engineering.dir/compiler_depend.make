# Empty compiler generated dependencies file for bench_e12_topology_engineering.
# This may be replaced when dependencies are built.
