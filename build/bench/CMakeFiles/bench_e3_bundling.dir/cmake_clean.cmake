file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_bundling.dir/bench_e3_bundling.cpp.o"
  "CMakeFiles/bench_e3_bundling.dir/bench_e3_bundling.cpp.o.d"
  "bench_e3_bundling"
  "bench_e3_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
