# Empty compiler generated dependencies file for bench_e3_bundling.
# This may be replaced when dependencies are built.
