# Empty compiler generated dependencies file for bench_e2_cable_fit.
# This may be replaced when dependencies are built.
