file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_cable_fit.dir/bench_e2_cable_fit.cpp.o"
  "CMakeFiles/bench_e2_cable_fit.dir/bench_e2_cable_fit.cpp.o.d"
  "bench_e2_cable_fit"
  "bench_e2_cable_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_cable_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
