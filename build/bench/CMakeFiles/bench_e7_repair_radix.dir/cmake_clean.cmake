file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_repair_radix.dir/bench_e7_repair_radix.cpp.o"
  "CMakeFiles/bench_e7_repair_radix.dir/bench_e7_repair_radix.cpp.o.d"
  "bench_e7_repair_radix"
  "bench_e7_repair_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_repair_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
