# Empty compiler generated dependencies file for bench_e7_repair_radix.
# This may be replaced when dependencies are built.
