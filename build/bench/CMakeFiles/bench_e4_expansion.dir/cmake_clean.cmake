file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_expansion.dir/bench_e4_expansion.cpp.o"
  "CMakeFiles/bench_e4_expansion.dir/bench_e4_expansion.cpp.o.d"
  "bench_e4_expansion"
  "bench_e4_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
