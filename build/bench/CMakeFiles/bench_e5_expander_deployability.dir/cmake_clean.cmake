file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_expander_deployability.dir/bench_e5_expander_deployability.cpp.o"
  "CMakeFiles/bench_e5_expander_deployability.dir/bench_e5_expander_deployability.cpp.o.d"
  "bench_e5_expander_deployability"
  "bench_e5_expander_deployability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_expander_deployability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
