# Empty dependencies file for bench_e5_expander_deployability.
# This may be replaced when dependencies are built.
