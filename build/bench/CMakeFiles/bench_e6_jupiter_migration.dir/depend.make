# Empty dependencies file for bench_e6_jupiter_migration.
# This may be replaced when dependencies are built.
