file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_jupiter_migration.dir/bench_e6_jupiter_migration.cpp.o"
  "CMakeFiles/bench_e6_jupiter_migration.dir/bench_e6_jupiter_migration.cpp.o.d"
  "bench_e6_jupiter_migration"
  "bench_e6_jupiter_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_jupiter_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
