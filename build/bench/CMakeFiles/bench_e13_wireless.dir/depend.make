# Empty dependencies file for bench_e13_wireless.
# This may be replaced when dependencies are built.
