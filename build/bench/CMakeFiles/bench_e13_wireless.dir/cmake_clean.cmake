file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_wireless.dir/bench_e13_wireless.cpp.o"
  "CMakeFiles/bench_e13_wireless.dir/bench_e13_wireless.cpp.o.d"
  "bench_e13_wireless"
  "bench_e13_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
