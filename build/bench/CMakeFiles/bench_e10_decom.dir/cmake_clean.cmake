file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_decom.dir/bench_e10_decom.cpp.o"
  "CMakeFiles/bench_e10_decom.dir/bench_e10_decom.cpp.o.d"
  "bench_e10_decom"
  "bench_e10_decom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_decom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
