# Empty compiler generated dependencies file for bench_e1_deploy_time.
# This may be replaced when dependencies are built.
