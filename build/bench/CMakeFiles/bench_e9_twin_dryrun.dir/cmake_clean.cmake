file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_twin_dryrun.dir/bench_e9_twin_dryrun.cpp.o"
  "CMakeFiles/bench_e9_twin_dryrun.dir/bench_e9_twin_dryrun.cpp.o.d"
  "bench_e9_twin_dryrun"
  "bench_e9_twin_dryrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_twin_dryrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
