# Empty dependencies file for bench_e9_twin_dryrun.
# This may be replaced when dependencies are built.
