file(REMOVE_RECURSE
  "CMakeFiles/jupiter_migration.dir/jupiter_migration.cpp.o"
  "CMakeFiles/jupiter_migration.dir/jupiter_migration.cpp.o.d"
  "jupiter_migration"
  "jupiter_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jupiter_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
