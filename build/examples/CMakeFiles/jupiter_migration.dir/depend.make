# Empty dependencies file for jupiter_migration.
# This may be replaced when dependencies are built.
