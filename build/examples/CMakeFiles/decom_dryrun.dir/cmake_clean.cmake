file(REMOVE_RECURSE
  "CMakeFiles/decom_dryrun.dir/decom_dryrun.cpp.o"
  "CMakeFiles/decom_dryrun.dir/decom_dryrun.cpp.o.d"
  "decom_dryrun"
  "decom_dryrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decom_dryrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
