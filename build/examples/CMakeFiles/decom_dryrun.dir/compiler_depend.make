# Empty compiler generated dependencies file for decom_dryrun.
# This may be replaced when dependencies are built.
