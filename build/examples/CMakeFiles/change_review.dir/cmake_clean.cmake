file(REMOVE_RECURSE
  "CMakeFiles/change_review.dir/change_review.cpp.o"
  "CMakeFiles/change_review.dir/change_review.cpp.o.d"
  "change_review"
  "change_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
