# Empty dependencies file for change_review.
# This may be replaced when dependencies are built.
