# Empty compiler generated dependencies file for expander_study.
# This may be replaced when dependencies are built.
