file(REMOVE_RECURSE
  "CMakeFiles/expander_study.dir/expander_study.cpp.o"
  "CMakeFiles/expander_study.dir/expander_study.cpp.o.d"
  "expander_study"
  "expander_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expander_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
