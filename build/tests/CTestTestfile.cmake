# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pn_common_test[1]_include.cmake")
include("/root/repo/build/tests/pn_geom_test[1]_include.cmake")
include("/root/repo/build/tests/pn_topology_test[1]_include.cmake")
include("/root/repo/build/tests/pn_physical_test[1]_include.cmake")
include("/root/repo/build/tests/pn_twin_test[1]_include.cmake")
include("/root/repo/build/tests/pn_deploy_test[1]_include.cmake")
include("/root/repo/build/tests/pn_integration_test[1]_include.cmake")
include("/root/repo/build/tests/pn_property_test[1]_include.cmake")
include("/root/repo/build/tests/pn_lifecycle_test[1]_include.cmake")
