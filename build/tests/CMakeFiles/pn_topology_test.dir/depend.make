# Empty dependencies file for pn_topology_test.
# This may be replaced when dependencies are built.
