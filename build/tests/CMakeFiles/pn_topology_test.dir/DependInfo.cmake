
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topology/generators_test.cc" "tests/CMakeFiles/pn_topology_test.dir/topology/generators_test.cc.o" "gcc" "tests/CMakeFiles/pn_topology_test.dir/topology/generators_test.cc.o.d"
  "/root/repo/tests/topology/graph_test.cc" "tests/CMakeFiles/pn_topology_test.dir/topology/graph_test.cc.o" "gcc" "tests/CMakeFiles/pn_topology_test.dir/topology/graph_test.cc.o.d"
  "/root/repo/tests/topology/metrics_test.cc" "tests/CMakeFiles/pn_topology_test.dir/topology/metrics_test.cc.o" "gcc" "tests/CMakeFiles/pn_topology_test.dir/topology/metrics_test.cc.o.d"
  "/root/repo/tests/topology/routing_traffic_test.cc" "tests/CMakeFiles/pn_topology_test.dir/topology/routing_traffic_test.cc.o" "gcc" "tests/CMakeFiles/pn_topology_test.dir/topology/routing_traffic_test.cc.o.d"
  "/root/repo/tests/topology/vlb_paths_test.cc" "tests/CMakeFiles/pn_topology_test.dir/topology/vlb_paths_test.cc.o" "gcc" "tests/CMakeFiles/pn_topology_test.dir/topology/vlb_paths_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/pn_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/twin/CMakeFiles/pn_twin.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/pn_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
