file(REMOVE_RECURSE
  "CMakeFiles/pn_topology_test.dir/topology/generators_test.cc.o"
  "CMakeFiles/pn_topology_test.dir/topology/generators_test.cc.o.d"
  "CMakeFiles/pn_topology_test.dir/topology/graph_test.cc.o"
  "CMakeFiles/pn_topology_test.dir/topology/graph_test.cc.o.d"
  "CMakeFiles/pn_topology_test.dir/topology/metrics_test.cc.o"
  "CMakeFiles/pn_topology_test.dir/topology/metrics_test.cc.o.d"
  "CMakeFiles/pn_topology_test.dir/topology/routing_traffic_test.cc.o"
  "CMakeFiles/pn_topology_test.dir/topology/routing_traffic_test.cc.o.d"
  "CMakeFiles/pn_topology_test.dir/topology/vlb_paths_test.cc.o"
  "CMakeFiles/pn_topology_test.dir/topology/vlb_paths_test.cc.o.d"
  "pn_topology_test"
  "pn_topology_test.pdb"
  "pn_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
