# Empty compiler generated dependencies file for pn_common_test.
# This may be replaced when dependencies are built.
