file(REMOVE_RECURSE
  "CMakeFiles/pn_common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/pn_common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/pn_common_test.dir/common/stats_test.cc.o"
  "CMakeFiles/pn_common_test.dir/common/stats_test.cc.o.d"
  "CMakeFiles/pn_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/pn_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/pn_common_test.dir/common/strings_table_test.cc.o"
  "CMakeFiles/pn_common_test.dir/common/strings_table_test.cc.o.d"
  "CMakeFiles/pn_common_test.dir/common/units_test.cc.o"
  "CMakeFiles/pn_common_test.dir/common/units_test.cc.o.d"
  "pn_common_test"
  "pn_common_test.pdb"
  "pn_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
