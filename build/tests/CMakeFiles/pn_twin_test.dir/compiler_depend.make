# Empty compiler generated dependencies file for pn_twin_test.
# This may be replaced when dependencies are built.
