file(REMOVE_RECURSE
  "CMakeFiles/pn_twin_test.dir/twin/constraints_envelope_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/constraints_envelope_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/diff_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/diff_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/dryrun_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/dryrun_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/inference_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/inference_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/model_schema_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/model_schema_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/serialize_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/serialize_test.cc.o.d"
  "CMakeFiles/pn_twin_test.dir/twin/views_test.cc.o"
  "CMakeFiles/pn_twin_test.dir/twin/views_test.cc.o.d"
  "pn_twin_test"
  "pn_twin_test.pdb"
  "pn_twin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_twin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
