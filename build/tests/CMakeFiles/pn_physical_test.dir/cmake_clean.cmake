file(REMOVE_RECURSE
  "CMakeFiles/pn_physical_test.dir/physical/cabling_bundling_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/cabling_bundling_test.cc.o.d"
  "CMakeFiles/pn_physical_test.dir/physical/catalog_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/catalog_test.cc.o.d"
  "CMakeFiles/pn_physical_test.dir/physical/conjoin_feeds_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/conjoin_feeds_test.cc.o.d"
  "CMakeFiles/pn_physical_test.dir/physical/floorplan_placement_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/floorplan_placement_test.cc.o.d"
  "CMakeFiles/pn_physical_test.dir/physical/procurement_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/procurement_test.cc.o.d"
  "CMakeFiles/pn_physical_test.dir/physical/wireless_obstacles_test.cc.o"
  "CMakeFiles/pn_physical_test.dir/physical/wireless_obstacles_test.cc.o.d"
  "pn_physical_test"
  "pn_physical_test.pdb"
  "pn_physical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_physical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
