file(REMOVE_RECURSE
  "CMakeFiles/pn_property_test.dir/property/catalog_property_test.cc.o"
  "CMakeFiles/pn_property_test.dir/property/catalog_property_test.cc.o.d"
  "CMakeFiles/pn_property_test.dir/property/expansion_property_test.cc.o"
  "CMakeFiles/pn_property_test.dir/property/expansion_property_test.cc.o.d"
  "CMakeFiles/pn_property_test.dir/property/pipeline_property_test.cc.o"
  "CMakeFiles/pn_property_test.dir/property/pipeline_property_test.cc.o.d"
  "CMakeFiles/pn_property_test.dir/property/serialize_fuzz_test.cc.o"
  "CMakeFiles/pn_property_test.dir/property/serialize_fuzz_test.cc.o.d"
  "pn_property_test"
  "pn_property_test.pdb"
  "pn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
