# Empty dependencies file for pn_property_test.
# This may be replaced when dependencies are built.
