file(REMOVE_RECURSE
  "CMakeFiles/pn_lifecycle_test.dir/deploy/repair_queue_lifecycle_test.cc.o"
  "CMakeFiles/pn_lifecycle_test.dir/deploy/repair_queue_lifecycle_test.cc.o.d"
  "pn_lifecycle_test"
  "pn_lifecycle_test.pdb"
  "pn_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
