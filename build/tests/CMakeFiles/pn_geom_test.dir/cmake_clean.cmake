file(REMOVE_RECURSE
  "CMakeFiles/pn_geom_test.dir/geom/tray_graph_test.cc.o"
  "CMakeFiles/pn_geom_test.dir/geom/tray_graph_test.cc.o.d"
  "pn_geom_test"
  "pn_geom_test.pdb"
  "pn_geom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
