# Empty dependencies file for pn_geom_test.
# This may be replaced when dependencies are built.
