file(REMOVE_RECURSE
  "CMakeFiles/pn_deploy_test.dir/deploy/degradation_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/degradation_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/drain_scheduler_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/drain_scheduler_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/expansion_executor_sweep_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/expansion_executor_sweep_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/migration_decom_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/migration_decom_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/repair_expansion_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/repair_expansion_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/topology_engineering_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/topology_engineering_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/worker_cap_feeds_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/worker_cap_feeds_test.cc.o.d"
  "CMakeFiles/pn_deploy_test.dir/deploy/workorder_tech_sim_test.cc.o"
  "CMakeFiles/pn_deploy_test.dir/deploy/workorder_tech_sim_test.cc.o.d"
  "pn_deploy_test"
  "pn_deploy_test.pdb"
  "pn_deploy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_deploy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
