# Empty compiler generated dependencies file for pn_deploy_test.
# This may be replaced when dependencies are built.
