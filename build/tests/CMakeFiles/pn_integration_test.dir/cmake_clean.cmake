file(REMOVE_RECURSE
  "CMakeFiles/pn_integration_test.dir/integration/evaluator_test.cc.o"
  "CMakeFiles/pn_integration_test.dir/integration/evaluator_test.cc.o.d"
  "pn_integration_test"
  "pn_integration_test.pdb"
  "pn_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
