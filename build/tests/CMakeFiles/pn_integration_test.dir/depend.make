# Empty dependencies file for pn_integration_test.
# This may be replaced when dependencies are built.
