# Empty compiler generated dependencies file for pn_topology.
# This may be replaced when dependencies are built.
