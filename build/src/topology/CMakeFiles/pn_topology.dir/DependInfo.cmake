
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/export.cc" "src/topology/CMakeFiles/pn_topology.dir/export.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/export.cc.o.d"
  "/root/repo/src/topology/generators/clos.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/clos.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/clos.cc.o.d"
  "/root/repo/src/topology/generators/dragonfly.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/dragonfly.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/dragonfly.cc.o.d"
  "/root/repo/src/topology/generators/flattened_butterfly.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/flattened_butterfly.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/flattened_butterfly.cc.o.d"
  "/root/repo/src/topology/generators/jellyfish.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/jellyfish.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/jellyfish.cc.o.d"
  "/root/repo/src/topology/generators/jupiter.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/jupiter.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/jupiter.cc.o.d"
  "/root/repo/src/topology/generators/leaf_spine.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/leaf_spine.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/leaf_spine.cc.o.d"
  "/root/repo/src/topology/generators/slim_fly.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/slim_fly.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/slim_fly.cc.o.d"
  "/root/repo/src/topology/generators/vl2.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/vl2.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/vl2.cc.o.d"
  "/root/repo/src/topology/generators/xpander.cc" "src/topology/CMakeFiles/pn_topology.dir/generators/xpander.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/generators/xpander.cc.o.d"
  "/root/repo/src/topology/graph.cc" "src/topology/CMakeFiles/pn_topology.dir/graph.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/graph.cc.o.d"
  "/root/repo/src/topology/metrics.cc" "src/topology/CMakeFiles/pn_topology.dir/metrics.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/metrics.cc.o.d"
  "/root/repo/src/topology/paths.cc" "src/topology/CMakeFiles/pn_topology.dir/paths.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/paths.cc.o.d"
  "/root/repo/src/topology/routing.cc" "src/topology/CMakeFiles/pn_topology.dir/routing.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/routing.cc.o.d"
  "/root/repo/src/topology/traffic.cc" "src/topology/CMakeFiles/pn_topology.dir/traffic.cc.o" "gcc" "src/topology/CMakeFiles/pn_topology.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
