file(REMOVE_RECURSE
  "CMakeFiles/pn_topology.dir/export.cc.o"
  "CMakeFiles/pn_topology.dir/export.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/clos.cc.o"
  "CMakeFiles/pn_topology.dir/generators/clos.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/dragonfly.cc.o"
  "CMakeFiles/pn_topology.dir/generators/dragonfly.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/flattened_butterfly.cc.o"
  "CMakeFiles/pn_topology.dir/generators/flattened_butterfly.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/jellyfish.cc.o"
  "CMakeFiles/pn_topology.dir/generators/jellyfish.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/jupiter.cc.o"
  "CMakeFiles/pn_topology.dir/generators/jupiter.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/leaf_spine.cc.o"
  "CMakeFiles/pn_topology.dir/generators/leaf_spine.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/slim_fly.cc.o"
  "CMakeFiles/pn_topology.dir/generators/slim_fly.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/vl2.cc.o"
  "CMakeFiles/pn_topology.dir/generators/vl2.cc.o.d"
  "CMakeFiles/pn_topology.dir/generators/xpander.cc.o"
  "CMakeFiles/pn_topology.dir/generators/xpander.cc.o.d"
  "CMakeFiles/pn_topology.dir/graph.cc.o"
  "CMakeFiles/pn_topology.dir/graph.cc.o.d"
  "CMakeFiles/pn_topology.dir/metrics.cc.o"
  "CMakeFiles/pn_topology.dir/metrics.cc.o.d"
  "CMakeFiles/pn_topology.dir/paths.cc.o"
  "CMakeFiles/pn_topology.dir/paths.cc.o.d"
  "CMakeFiles/pn_topology.dir/routing.cc.o"
  "CMakeFiles/pn_topology.dir/routing.cc.o.d"
  "CMakeFiles/pn_topology.dir/traffic.cc.o"
  "CMakeFiles/pn_topology.dir/traffic.cc.o.d"
  "libpn_topology.a"
  "libpn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
