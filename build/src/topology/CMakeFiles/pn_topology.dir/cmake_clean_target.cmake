file(REMOVE_RECURSE
  "libpn_topology.a"
)
