# Empty compiler generated dependencies file for pn_geom.
# This may be replaced when dependencies are built.
