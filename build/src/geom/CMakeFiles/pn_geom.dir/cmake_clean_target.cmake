file(REMOVE_RECURSE
  "libpn_geom.a"
)
