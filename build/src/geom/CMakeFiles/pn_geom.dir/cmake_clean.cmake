file(REMOVE_RECURSE
  "CMakeFiles/pn_geom.dir/tray_graph.cc.o"
  "CMakeFiles/pn_geom.dir/tray_graph.cc.o.d"
  "libpn_geom.a"
  "libpn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
