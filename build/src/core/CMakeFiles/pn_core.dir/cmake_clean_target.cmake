file(REMOVE_RECURSE
  "libpn_core.a"
)
