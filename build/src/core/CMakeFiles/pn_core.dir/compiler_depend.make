# Empty compiler generated dependencies file for pn_core.
# This may be replaced when dependencies are built.
