file(REMOVE_RECURSE
  "CMakeFiles/pn_core.dir/compare.cc.o"
  "CMakeFiles/pn_core.dir/compare.cc.o.d"
  "CMakeFiles/pn_core.dir/evaluator.cc.o"
  "CMakeFiles/pn_core.dir/evaluator.cc.o.d"
  "CMakeFiles/pn_core.dir/lifecycle.cc.o"
  "CMakeFiles/pn_core.dir/lifecycle.cc.o.d"
  "CMakeFiles/pn_core.dir/sweep.cc.o"
  "CMakeFiles/pn_core.dir/sweep.cc.o.d"
  "libpn_core.a"
  "libpn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
