file(REMOVE_RECURSE
  "libpn_common.a"
)
