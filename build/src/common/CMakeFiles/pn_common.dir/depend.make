# Empty dependencies file for pn_common.
# This may be replaced when dependencies are built.
