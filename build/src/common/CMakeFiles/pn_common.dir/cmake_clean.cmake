file(REMOVE_RECURSE
  "CMakeFiles/pn_common.dir/check.cc.o"
  "CMakeFiles/pn_common.dir/check.cc.o.d"
  "CMakeFiles/pn_common.dir/stats.cc.o"
  "CMakeFiles/pn_common.dir/stats.cc.o.d"
  "CMakeFiles/pn_common.dir/status.cc.o"
  "CMakeFiles/pn_common.dir/status.cc.o.d"
  "CMakeFiles/pn_common.dir/strings.cc.o"
  "CMakeFiles/pn_common.dir/strings.cc.o.d"
  "CMakeFiles/pn_common.dir/table.cc.o"
  "CMakeFiles/pn_common.dir/table.cc.o.d"
  "CMakeFiles/pn_common.dir/units.cc.o"
  "CMakeFiles/pn_common.dir/units.cc.o.d"
  "libpn_common.a"
  "libpn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
