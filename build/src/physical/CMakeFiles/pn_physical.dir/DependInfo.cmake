
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physical/bundling.cc" "src/physical/CMakeFiles/pn_physical.dir/bundling.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/bundling.cc.o.d"
  "/root/repo/src/physical/cabling.cc" "src/physical/CMakeFiles/pn_physical.dir/cabling.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/cabling.cc.o.d"
  "/root/repo/src/physical/catalog.cc" "src/physical/CMakeFiles/pn_physical.dir/catalog.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/catalog.cc.o.d"
  "/root/repo/src/physical/conjoin.cc" "src/physical/CMakeFiles/pn_physical.dir/conjoin.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/conjoin.cc.o.d"
  "/root/repo/src/physical/floorplan.cc" "src/physical/CMakeFiles/pn_physical.dir/floorplan.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/floorplan.cc.o.d"
  "/root/repo/src/physical/placement.cc" "src/physical/CMakeFiles/pn_physical.dir/placement.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/placement.cc.o.d"
  "/root/repo/src/physical/procurement.cc" "src/physical/CMakeFiles/pn_physical.dir/procurement.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/procurement.cc.o.d"
  "/root/repo/src/physical/wireless.cc" "src/physical/CMakeFiles/pn_physical.dir/wireless.cc.o" "gcc" "src/physical/CMakeFiles/pn_physical.dir/wireless.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pn_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
