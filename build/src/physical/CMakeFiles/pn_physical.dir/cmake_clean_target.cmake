file(REMOVE_RECURSE
  "libpn_physical.a"
)
