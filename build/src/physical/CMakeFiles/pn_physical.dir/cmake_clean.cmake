file(REMOVE_RECURSE
  "CMakeFiles/pn_physical.dir/bundling.cc.o"
  "CMakeFiles/pn_physical.dir/bundling.cc.o.d"
  "CMakeFiles/pn_physical.dir/cabling.cc.o"
  "CMakeFiles/pn_physical.dir/cabling.cc.o.d"
  "CMakeFiles/pn_physical.dir/catalog.cc.o"
  "CMakeFiles/pn_physical.dir/catalog.cc.o.d"
  "CMakeFiles/pn_physical.dir/conjoin.cc.o"
  "CMakeFiles/pn_physical.dir/conjoin.cc.o.d"
  "CMakeFiles/pn_physical.dir/floorplan.cc.o"
  "CMakeFiles/pn_physical.dir/floorplan.cc.o.d"
  "CMakeFiles/pn_physical.dir/placement.cc.o"
  "CMakeFiles/pn_physical.dir/placement.cc.o.d"
  "CMakeFiles/pn_physical.dir/procurement.cc.o"
  "CMakeFiles/pn_physical.dir/procurement.cc.o.d"
  "CMakeFiles/pn_physical.dir/wireless.cc.o"
  "CMakeFiles/pn_physical.dir/wireless.cc.o.d"
  "libpn_physical.a"
  "libpn_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
