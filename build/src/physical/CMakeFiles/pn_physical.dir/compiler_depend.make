# Empty compiler generated dependencies file for pn_physical.
# This may be replaced when dependencies are built.
