file(REMOVE_RECURSE
  "libpn_deploy.a"
)
