file(REMOVE_RECURSE
  "CMakeFiles/pn_deploy.dir/decom.cc.o"
  "CMakeFiles/pn_deploy.dir/decom.cc.o.d"
  "CMakeFiles/pn_deploy.dir/degradation.cc.o"
  "CMakeFiles/pn_deploy.dir/degradation.cc.o.d"
  "CMakeFiles/pn_deploy.dir/drain_scheduler.cc.o"
  "CMakeFiles/pn_deploy.dir/drain_scheduler.cc.o.d"
  "CMakeFiles/pn_deploy.dir/expansion.cc.o"
  "CMakeFiles/pn_deploy.dir/expansion.cc.o.d"
  "CMakeFiles/pn_deploy.dir/expansion_executor.cc.o"
  "CMakeFiles/pn_deploy.dir/expansion_executor.cc.o.d"
  "CMakeFiles/pn_deploy.dir/migration.cc.o"
  "CMakeFiles/pn_deploy.dir/migration.cc.o.d"
  "CMakeFiles/pn_deploy.dir/plan_builder.cc.o"
  "CMakeFiles/pn_deploy.dir/plan_builder.cc.o.d"
  "CMakeFiles/pn_deploy.dir/repair_sim.cc.o"
  "CMakeFiles/pn_deploy.dir/repair_sim.cc.o.d"
  "CMakeFiles/pn_deploy.dir/tech_sim.cc.o"
  "CMakeFiles/pn_deploy.dir/tech_sim.cc.o.d"
  "CMakeFiles/pn_deploy.dir/topology_engineering.cc.o"
  "CMakeFiles/pn_deploy.dir/topology_engineering.cc.o.d"
  "CMakeFiles/pn_deploy.dir/workorder.cc.o"
  "CMakeFiles/pn_deploy.dir/workorder.cc.o.d"
  "libpn_deploy.a"
  "libpn_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
