
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/decom.cc" "src/deploy/CMakeFiles/pn_deploy.dir/decom.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/decom.cc.o.d"
  "/root/repo/src/deploy/degradation.cc" "src/deploy/CMakeFiles/pn_deploy.dir/degradation.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/degradation.cc.o.d"
  "/root/repo/src/deploy/drain_scheduler.cc" "src/deploy/CMakeFiles/pn_deploy.dir/drain_scheduler.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/drain_scheduler.cc.o.d"
  "/root/repo/src/deploy/expansion.cc" "src/deploy/CMakeFiles/pn_deploy.dir/expansion.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/expansion.cc.o.d"
  "/root/repo/src/deploy/expansion_executor.cc" "src/deploy/CMakeFiles/pn_deploy.dir/expansion_executor.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/expansion_executor.cc.o.d"
  "/root/repo/src/deploy/migration.cc" "src/deploy/CMakeFiles/pn_deploy.dir/migration.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/migration.cc.o.d"
  "/root/repo/src/deploy/plan_builder.cc" "src/deploy/CMakeFiles/pn_deploy.dir/plan_builder.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/plan_builder.cc.o.d"
  "/root/repo/src/deploy/repair_sim.cc" "src/deploy/CMakeFiles/pn_deploy.dir/repair_sim.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/repair_sim.cc.o.d"
  "/root/repo/src/deploy/tech_sim.cc" "src/deploy/CMakeFiles/pn_deploy.dir/tech_sim.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/tech_sim.cc.o.d"
  "/root/repo/src/deploy/topology_engineering.cc" "src/deploy/CMakeFiles/pn_deploy.dir/topology_engineering.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/topology_engineering.cc.o.d"
  "/root/repo/src/deploy/workorder.cc" "src/deploy/CMakeFiles/pn_deploy.dir/workorder.cc.o" "gcc" "src/deploy/CMakeFiles/pn_deploy.dir/workorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/pn_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/twin/CMakeFiles/pn_twin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
