# Empty compiler generated dependencies file for pn_deploy.
# This may be replaced when dependencies are built.
