file(REMOVE_RECURSE
  "CMakeFiles/pn_twin.dir/builder.cc.o"
  "CMakeFiles/pn_twin.dir/builder.cc.o.d"
  "CMakeFiles/pn_twin.dir/constraints.cc.o"
  "CMakeFiles/pn_twin.dir/constraints.cc.o.d"
  "CMakeFiles/pn_twin.dir/diff.cc.o"
  "CMakeFiles/pn_twin.dir/diff.cc.o.d"
  "CMakeFiles/pn_twin.dir/dryrun.cc.o"
  "CMakeFiles/pn_twin.dir/dryrun.cc.o.d"
  "CMakeFiles/pn_twin.dir/envelope.cc.o"
  "CMakeFiles/pn_twin.dir/envelope.cc.o.d"
  "CMakeFiles/pn_twin.dir/inference.cc.o"
  "CMakeFiles/pn_twin.dir/inference.cc.o.d"
  "CMakeFiles/pn_twin.dir/model.cc.o"
  "CMakeFiles/pn_twin.dir/model.cc.o.d"
  "CMakeFiles/pn_twin.dir/schema.cc.o"
  "CMakeFiles/pn_twin.dir/schema.cc.o.d"
  "CMakeFiles/pn_twin.dir/serialize.cc.o"
  "CMakeFiles/pn_twin.dir/serialize.cc.o.d"
  "CMakeFiles/pn_twin.dir/views.cc.o"
  "CMakeFiles/pn_twin.dir/views.cc.o.d"
  "libpn_twin.a"
  "libpn_twin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_twin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
