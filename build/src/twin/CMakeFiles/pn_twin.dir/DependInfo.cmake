
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twin/builder.cc" "src/twin/CMakeFiles/pn_twin.dir/builder.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/builder.cc.o.d"
  "/root/repo/src/twin/constraints.cc" "src/twin/CMakeFiles/pn_twin.dir/constraints.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/constraints.cc.o.d"
  "/root/repo/src/twin/diff.cc" "src/twin/CMakeFiles/pn_twin.dir/diff.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/diff.cc.o.d"
  "/root/repo/src/twin/dryrun.cc" "src/twin/CMakeFiles/pn_twin.dir/dryrun.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/dryrun.cc.o.d"
  "/root/repo/src/twin/envelope.cc" "src/twin/CMakeFiles/pn_twin.dir/envelope.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/envelope.cc.o.d"
  "/root/repo/src/twin/inference.cc" "src/twin/CMakeFiles/pn_twin.dir/inference.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/inference.cc.o.d"
  "/root/repo/src/twin/model.cc" "src/twin/CMakeFiles/pn_twin.dir/model.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/model.cc.o.d"
  "/root/repo/src/twin/schema.cc" "src/twin/CMakeFiles/pn_twin.dir/schema.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/schema.cc.o.d"
  "/root/repo/src/twin/serialize.cc" "src/twin/CMakeFiles/pn_twin.dir/serialize.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/serialize.cc.o.d"
  "/root/repo/src/twin/views.cc" "src/twin/CMakeFiles/pn_twin.dir/views.cc.o" "gcc" "src/twin/CMakeFiles/pn_twin.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/pn_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pn_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
