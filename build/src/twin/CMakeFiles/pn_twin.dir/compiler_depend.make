# Empty compiler generated dependencies file for pn_twin.
# This may be replaced when dependencies are built.
