file(REMOVE_RECURSE
  "libpn_twin.a"
)
