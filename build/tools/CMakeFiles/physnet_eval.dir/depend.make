# Empty dependencies file for physnet_eval.
# This may be replaced when dependencies are built.
