file(REMOVE_RECURSE
  "CMakeFiles/physnet_eval.dir/physnet_eval.cpp.o"
  "CMakeFiles/physnet_eval.dir/physnet_eval.cpp.o.d"
  "physnet_eval"
  "physnet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physnet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
