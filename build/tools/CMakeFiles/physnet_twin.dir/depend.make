# Empty dependencies file for physnet_twin.
# This may be replaced when dependencies are built.
