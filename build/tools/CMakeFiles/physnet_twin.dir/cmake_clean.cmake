file(REMOVE_RECURSE
  "CMakeFiles/physnet_twin.dir/physnet_twin.cpp.o"
  "CMakeFiles/physnet_twin.dir/physnet_twin.cpp.o.d"
  "physnet_twin"
  "physnet_twin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physnet_twin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
