// Procurement planning and supply-chain fungibility (§2, §2.2).
//
// §2: automation must "order the correct materials (e.g., cables
// pre-built to proper lengths)". §2.2: "if the network design ... supports
// fungible hardware ... a supply-chain problem at one vendor can be
// resolved by buying compatible parts from another," and a fungibility
// requirement may mean designing for the second-best part. This module
// turns a cabling plan into an order book of length-quantized SKUs with
// vendor alternatives, and assesses what a vendor outage does to the
// deployment schedule with and without fungibility.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "physical/cabling.h"
#include "physical/catalog.h"

namespace pn {

struct vendor_offer {
  std::string vendor;
  double price_multiplier = 1.0;  // vs. catalog price
  double lead_time_days = 14.0;
};

struct procurement_sku {
  std::string description;   // e.g. "dac-100g @ 5m"
  cable_medium medium = cable_medium::copper_dac;
  gbps rate;
  meters length;             // quantized SKU length
  std::size_t quantity = 0;  // incl. spares
  dollars unit_cost;         // primary vendor
  // Offers sorted by price; front() is the primary source. A SKU with a
  // single offer is the §2.2 sole-source risk.
  std::vector<vendor_offer> offers;
};

struct procurement_params {
  // Spare stock ordered beyond the plan (repair pipeline, §3.3).
  double spares_fraction = 0.05;
  meters length_quantum{5.0};
};

struct procurement_order {
  std::vector<procurement_sku> skus;
  dollars total_cost;
  std::size_t total_cables = 0;
  double max_lead_time_days = 0.0;
  std::size_t sole_source_skus = 0;
};

// Builds the order book from a cabling plan. Vendor offers come from a
// built-in market model: passive copper and bare fiber have multiple
// interchangeable vendors; active cables (AEC/AOC) are effectively
// sole-source at any moment (their DSPs are), which is exactly where the
// paper's fungibility worry bites.
[[nodiscard]] procurement_order build_procurement_order(
    const cabling_plan& plan, const procurement_params& p);

struct vendor_outage_report {
  std::string vendor;
  std::size_t affected_skus = 0;
  std::size_t blocked_skus = 0;    // no alternative source
  std::size_t resourced_skus = 0;  // switched to another vendor
  dollars cost_premium;            // paying the second-best price
  // Deployment delay: longest alternative lead time among re-sourced
  // SKUs, or the outage duration for blocked ones.
  double delay_days = 0.0;
};

// What happens to the order if `vendor` stops shipping for
// `outage_days`: fungible SKUs are re-sourced at a premium; sole-source
// SKUs block the schedule for the whole outage.
[[nodiscard]] vendor_outage_report assess_vendor_outage(
    const procurement_order& order, const std::string& vendor,
    double outage_days);

}  // namespace pn
