// Conjoined, pre-cabled rack units (§3.1).
//
// "Intra-rack cables are often pre-installed before a rack full of
// switches is delivered. In some cases, it can be helpful to pre-cable a
// conjoined pair of racks (representing an atomic unit of network
// capacity). However, this can conflict with floor-space constraints
// limiting a row to an odd number of racks ... (Also, double-wide racks
// don't always fit through doors.)" This analysis finds adjacent rack
// pairs dense enough in mutual cabling to ship as one pre-cabled unit,
// honoring the doorway constraint, and prices both the install time saved
// and the §3.1 side effects (stranded odd slots).
#pragma once

#include "common/units.h"
#include "physical/cabling.h"
#include "physical/floorplan.h"

namespace pn {

struct conjoin_params {
  // Minimum cables between adjacent racks to justify factory pre-cabling.
  std::size_t min_shared_cables = 8;
  // Field minutes avoided per pre-cabled cable (pull + both connects move
  // to the factory).
  double minutes_saved_per_cable = 7.4;
};

struct conjoined_unit {
  rack_id a;
  rack_id b;            // adjacent in the same row
  std::size_t cables;   // inter-rack runs that become factory work
};

struct conjoin_report {
  std::vector<conjoined_unit> units;
  // Pairs dense enough to conjoin but blocked because the doubled unit
  // does not fit the doorway.
  int blocked_by_doorway = 0;
  std::size_t precabled_cables = 0;
  hours install_time_saved{0.0};
  // Rows with an odd rack count that used conjoined units: their leftover
  // single slot is the §3.1 stranded floor space.
  int stranded_slots = 0;
};

[[nodiscard]] conjoin_report analyze_conjoining(const floorplan& fp,
                                                const cabling_plan& plan,
                                                const conjoin_params& p);

}  // namespace pn
