#include "physical/cabling.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

plenum_fill_list compute_plenum_fill(const floorplan& fp,
                                     const std::vector<cable_run>& runs) {
  // Gather one (rack, area) entry per rack touch, then stable-sort by
  // rack: within a rack the entries keep run order, so the float
  // accumulation below adds areas in exactly the order the old
  // std::map-keyed `used[rk] += area` did.
  std::vector<std::pair<rack_id, square_millimeters>> touches;
  touches.reserve(runs.size() * 2);
  for (const cable_run& r : runs) {
    const square_millimeters area = circle_area(r.choice.diameter);
    touches.emplace_back(r.rack_a, area);
    if (r.rack_b != r.rack_a) touches.emplace_back(r.rack_b, area);
  }
  std::stable_sort(touches.begin(), touches.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  plenum_fill_list out;
  for (std::size_t i = 0; i < touches.size();) {
    const rack_id rk = touches[i].first;
    square_millimeters used{};
    for (; i < touches.size() && touches[i].first == rk; ++i) {
      used += touches[i].second;
    }
    out.emplace_back(rk, used.value() / fp.rack_at(rk).plenum.value());
  }
  return out;
}

result<cabling_plan> plan_cabling(const network_graph& g, const placement& pl,
                                  floorplan& fp, const catalog& cat,
                                  const cabling_options& opt) {
  PN_CHECK_MSG(pl.complete(), "cabling needs a complete placement");
  cabling_plan plan;
  plan.runs.reserve(g.edge_count());

  for (edge_id e : g.live_edges()) {
    const edge_info& info = g.edge(e);
    cable_run run;
    run.edge = e;
    run.rack_a = pl.rack_of(info.a);
    run.rack_b = pl.rack_of(info.b);
    run.indirections =
        run.rack_a == run.rack_b ? 0 : opt.indirections_inter_rack;

    if (run.rack_a == run.rack_b) {
      run.length = floorplan::intra_rack_length();
    } else {
      // Media selection interacts with routing through the required tray
      // cross-section; resolve with the thinnest plausible requirement
      // first, then re-check the chosen cable actually fits.
      auto path = fp.routed_path_between(run.rack_a, run.rack_b,
                                         square_millimeters{0.0});
      if (!path.is_ok()) return path.error();
      run.length = path.value().length;
      run.route = std::move(path).value().route;
    }

    auto choice = cat.best_link(info.capacity, run.length, run.indirections);
    if (!choice.is_ok()) {
      return infeasible_error(str_format(
          "edge %s -> %s: %s", g.node(info.a).name.c_str(),
          g.node(info.b).name.c_str(), choice.error().message().c_str()));
    }
    run.choice = choice.value();

    if (opt.reserve_tray_capacity && run.rack_a != run.rack_b) {
      const square_millimeters area = circle_area(run.choice.diameter);
      status s = fp.trays().reserve(run.route, area);
      if (!s.is_ok()) {
        // The shortest route is full for this cable: retry constrained on
        // remaining capacity (a longer detour), then re-pick media.
        auto retry = fp.routed_path_between(run.rack_a, run.rack_b, area);
        if (!retry.is_ok()) {
          return capacity_error(str_format(
              "edge %s -> %s: trays full on every route",
              g.node(info.a).name.c_str(), g.node(info.b).name.c_str()));
        }
        run.length = retry.value().length;
        run.route = std::move(retry).value().route;
        auto rechoice =
            cat.best_link(info.capacity, run.length, run.indirections);
        if (!rechoice.is_ok()) return rechoice.error();
        run.choice = rechoice.value();
        PN_CHECK(fp.trays()
                     .reserve(run.route, circle_area(run.choice.diameter))
                     .is_ok());
      }
    }

    // Totals.
    const bool optical =
        run.choice.cable->medium == cable_medium::active_optical ||
        run.choice.cable->medium == cable_medium::fiber;
    if (run.rack_a == run.rack_b) {
      ++plan.intra_rack_runs;
    }
    if (optical) {
      ++plan.optical_runs;
    } else {
      ++plan.copper_runs;
    }
    if (run.choice.transceiver != nullptr) {
      plan.transceiver_cost += run.choice.transceiver->cost * 2.0;
      plan.cable_cost +=
          run.choice.total_cost - run.choice.transceiver->cost * 2.0;
    } else {
      plan.cable_cost += run.choice.total_cost;
    }
    plan.cable_power += run.choice.total_power;
    plan.runs.push_back(std::move(run));
  }

  // Tray fill statistics.
  const tray_graph& trays = fp.trays();
  double fill_sum = 0.0;
  for (std::size_t t = 0; t < trays.segment_count(); ++t) {
    const double f = trays.fill_fraction(tray_id{t});
    plan.max_tray_fill = std::max(plan.max_tray_fill, f);
    fill_sum += f;
  }
  plan.mean_tray_fill =
      trays.segment_count() > 0
          ? fill_sum / static_cast<double>(trays.segment_count())
          : 0.0;

  plan.plenum_fill = compute_plenum_fill(fp, plan.runs);
  if (opt.enforce_plenum) {
    for (const auto& [rk, fill] : plan.plenum_fill) {
      if (fill > 1.0) {
        return capacity_error(str_format(
            "rack %s plenum at %.0f%% of capacity",
            fp.rack_at(rk).name.c_str(), fill * 100.0));
      }
    }
  }
  return plan;
}

}  // namespace pn
