#include "physical/procurement.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

// Built-in market model: who sells what, at which premium and lead time.
std::vector<vendor_offer> offers_for(cable_medium medium) {
  switch (medium) {
    case cable_medium::copper_dac:
      // Commodity: several interchangeable manufacturers.
      return {{"CuLink", 1.0, 10.0},
              {"WireWorks", 1.06, 12.0},
              {"GenericCable Co", 1.12, 21.0}};
    case cable_medium::active_electrical:
      // The retimer silicon has one source at any given moment.
      return {{"ActiveWire", 1.0, 28.0}};
    case cable_medium::active_optical:
      return {{"PhotonCord", 1.0, 35.0}};
    case cable_medium::fiber:
      // Bare fiber is fully commodity.
      return {{"LumenSys", 1.0, 7.0},
              {"FiberFab", 1.04, 9.0},
              {"OptiBulk", 1.08, 14.0}};
  }
  return {};
}

}  // namespace

procurement_order build_procurement_order(const cabling_plan& plan,
                                          const procurement_params& p) {
  PN_CHECK(p.spares_fraction >= 0.0);
  PN_CHECK(p.length_quantum.value() > 0.0);

  // Key: (cable name, quantized length).
  struct sku_accum {
    const cable_type* cable = nullptr;
    gbps rate;
    std::size_t count = 0;
  };
  std::map<std::pair<std::string, long long>, sku_accum> accum;
  for (const cable_run& run : plan.runs) {
    const auto quanta = static_cast<long long>(
        std::ceil(run.length.value() / p.length_quantum.value()));
    auto& a = accum[{run.choice.cable->name, std::max(1LL, quanta)}];
    a.cable = run.choice.cable;
    a.rate = run.choice.cable->rate;
    ++a.count;
  }

  procurement_order out;
  for (const auto& [key, a] : accum) {
    procurement_sku sku;
    const double sku_len =
        static_cast<double>(key.second) * p.length_quantum.value();
    sku.description = str_format("%s @ %.0fm", key.first.c_str(), sku_len);
    sku.medium = a.cable->medium;
    sku.rate = a.rate;
    sku.length = meters{sku_len};
    sku.quantity = a.count + static_cast<std::size_t>(std::ceil(
                                 static_cast<double>(a.count) *
                                 p.spares_fraction));
    sku.unit_cost = a.cable->cost_fixed + a.cable->cost_per_meter * sku_len;
    sku.offers = offers_for(a.cable->medium);
    PN_CHECK(!sku.offers.empty());

    out.total_cost += sku.unit_cost * static_cast<double>(sku.quantity);
    out.total_cables += sku.quantity;
    out.max_lead_time_days =
        std::max(out.max_lead_time_days, sku.offers.front().lead_time_days);
    if (sku.offers.size() == 1) {
      ++out.sole_source_skus;
    }
    out.skus.push_back(std::move(sku));
  }
  return out;
}

vendor_outage_report assess_vendor_outage(const procurement_order& order,
                                          const std::string& vendor,
                                          double outage_days) {
  PN_CHECK(outage_days >= 0.0);
  vendor_outage_report out;
  out.vendor = vendor;
  for (const procurement_sku& sku : order.skus) {
    if (sku.offers.empty() || sku.offers.front().vendor != vendor) {
      continue;  // primary source unaffected
    }
    ++out.affected_skus;
    if (sku.offers.size() == 1) {
      ++out.blocked_skus;
      out.delay_days = std::max(out.delay_days, outage_days);
      continue;
    }
    // Re-source from the next offer: pay the premium, eat its lead time.
    const vendor_offer& alt = sku.offers[1];
    ++out.resourced_skus;
    out.cost_premium += sku.unit_cost *
                        static_cast<double>(sku.quantity) *
                        (alt.price_multiplier -
                         sku.offers.front().price_multiplier);
    out.delay_days = std::max(out.delay_days, alt.lead_time_days);
  }
  return out;
}

}  // namespace pn
