#include "physical/wireless.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

wireless_params wireless_params::wigig() {
  wireless_params p;
  p.link_rate = gbps{7.0};
  p.max_range = meters{15.0};
  p.interference_radius = meters{2.5};
  p.radios_per_rack = 4;
  p.obstruction_probability = 0.0;  // the mirror clears obstructions
  return p;
}

wireless_params wireless_params::fso() {
  wireless_params p;
  p.link_rate = gbps{25.0};
  p.max_range = meters{40.0};
  p.interference_radius = meters{0.3};  // pencil beams barely interfere
  p.radios_per_rack = 8;
  // §3.1: "unobstructed paths between racks ... hard to guarantee".
  p.obstruction_probability = 0.15;
  return p;
}

wireless_report assess_wireless_substitution(const floorplan& fp,
                                             const cabling_plan& plan,
                                             const wireless_params& p,
                                             std::uint64_t seed) {
  PN_CHECK(p.link_rate.value() > 0.0);
  PN_CHECK(p.radios_per_rack > 0);
  rng r(seed);

  struct beam {
    point midpoint;
    double gbps_needed = 0.0;
  };
  std::vector<beam> beams;
  std::map<rack_id, int> radios_used;

  wireless_report out;
  for (const cable_run& run : plan.runs) {
    if (run.rack_a == run.rack_b) continue;
    ++out.links_requested;
    const double needed = run.choice.cable->rate.value() > 0.0
                              ? run.choice.cable->rate.value()
                              : (run.choice.transceiver != nullptr
                                     ? run.choice.transceiver->rate.value()
                                     : 0.0);
    out.demanded_gbps += needed;

    const point a = fp.rack_at(run.rack_a).position;
    const point b = fp.rack_at(run.rack_b).position;
    if (euclidean_distance(a, b) > p.max_range) continue;
    ++out.links_in_range;

    if (radios_used[run.rack_a] >= p.radios_per_rack ||
        radios_used[run.rack_b] >= p.radios_per_rack) {
      continue;
    }
    if (p.obstruction_probability > 0.0 &&
        r.next_bool(p.obstruction_probability)) {
      continue;  // blocked path, no mirror shot either
    }
    ++radios_used[run.rack_a];
    ++radios_used[run.rack_b];
    ++out.links_with_radios;
    beams.push_back({{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0}, needed});
  }

  // Greedy maximum independent set on the interference graph: fewest-
  // conflicts first.
  const double min_sep = p.interference_radius.value();
  std::vector<int> conflicts(beams.size(), 0);
  for (std::size_t i = 0; i < beams.size(); ++i) {
    for (std::size_t j = i + 1; j < beams.size(); ++j) {
      if (euclidean_distance(beams[i].midpoint, beams[j].midpoint)
              .value() < min_sep) {
        ++conflicts[i];
        ++conflicts[j];
      }
    }
  }
  std::vector<std::size_t> order(beams.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return conflicts[a] < conflicts[b];
                   });
  std::vector<bool> chosen(beams.size(), false);
  for (const std::size_t i : order) {
    bool ok = true;
    for (std::size_t j = 0; j < beams.size() && ok; ++j) {
      if (chosen[j] &&
          euclidean_distance(beams[i].midpoint, beams[j].midpoint)
                  .value() < min_sep) {
        ok = false;
      }
    }
    if (ok) {
      chosen[i] = true;
      ++out.concurrent_beams;
    }
  }

  out.deliverable_gbps =
      static_cast<double>(out.concurrent_beams) * p.link_rate.value();
  out.capacity_fraction =
      out.demanded_gbps > 0.0
          ? std::min(1.0, out.deliverable_gbps / out.demanded_gbps)
          : 0.0;
  return out;
}

}  // namespace pn
