// Wireless / free-space-optics substitution analysis (§3.1).
//
// "Some papers have proposed using free-space optics or 60GHz wireless
// links within datacenters. While these avoid the physical challenges of
// cables, these too suffer from real-world issues. Free-space optics
// require unobstructed paths between racks ... 60GHz wireless links
// probably cannot be packed tightly enough to entirely replace large
// bundles of fibers." This module tests that claim against a concrete
// cabling plan: model each inter-rack cable as a candidate beam bounced
// off a ceiling mirror (Zhou et al.), apply range, per-rack radio, and
// beam-interference limits, and report how much of the cable plan's
// capacity wireless could actually carry.
#pragma once

#include <cstddef>

#include "common/units.h"
#include "physical/cabling.h"
#include "physical/floorplan.h"

namespace pn {

struct wireless_params {
  gbps link_rate{7.0};            // per-beam data rate
  meters max_range{15.0};         // reach via the ceiling bounce
  // Two beams interfere when their ceiling footprints (disks at the path
  // midpoint) come closer than this.
  meters interference_radius{2.5};
  int radios_per_rack = 4;

  // 60GHz per Zhou et al. (wide beams, modest rate).
  [[nodiscard]] static wireless_params wigig();
  // Free-space optics per Hamedazimi et al. (narrow beams, high rate,
  // but an obstruction fraction: a beam blocked by ducts/trays/people).
  [[nodiscard]] static wireless_params fso();
  double obstruction_probability = 0.0;  // beams unusable outright
};

struct wireless_report {
  std::size_t links_requested = 0;   // inter-rack cable runs to replace
  std::size_t links_in_range = 0;
  std::size_t links_with_radios = 0; // also satisfy per-rack radio limits
  std::size_t concurrent_beams = 0;  // interference-free set (greedy MIS)
  double demanded_gbps = 0.0;        // capacity the cables provide
  double deliverable_gbps = 0.0;     // concurrent beams x per-beam rate
  double capacity_fraction = 0.0;    // deliverable / demanded
};

// Deterministic (obstruction draws use `seed`).
[[nodiscard]] wireless_report assess_wireless_substitution(
    const floorplan& fp, const cabling_plan& plan, const wireless_params& p,
    std::uint64_t seed = 1);

}  // namespace pn
