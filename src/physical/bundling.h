// Cable bundling analysis and the pre-built-bundle cost model.
//
// §3.1: Singh et al. report ~40% (capex+opex) savings and weeks less
// delay from "regular, pre-constructed bundles of cables"; §4.2 argues
// Jellyfish's random wiring defeats bundling while Clos/Xpander allow it.
// A bundle here is the set of same-rack-pair inter-rack runs; regularity
// is how much of the fabric's cabling lands in bundles big enough to
// pre-build, and how few distinct bundle SKUs (pair lengths x counts) a
// supplier would have to manufacture.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "physical/cabling.h"

namespace pn {

struct cable_bundle {
  rack_id rack_a;
  rack_id rack_b;
  std::size_t cable_count = 0;
  meters length;               // longest member, what the SKU must be cut to
  square_millimeters cross_section;
};

struct bundling_params {
  // A bundle is pre-buildable only at or above this size (small bundles
  // are not worth the manufacturing overhead).
  std::size_t min_bundle_size = 4;
  // Lengths are rounded up to multiples of this to form SKUs.
  meters sku_length_quantum{5.0};
  // Unit-cost discount for cables purchased inside a pre-built bundle.
  double bundle_cable_discount = 0.10;
  // Field-install minutes per individual inter-rack cable vs. per cable
  // within a pre-built bundle (pulling one bundle amortizes the walk,
  // routing and dressing across its members).
  double minutes_per_loose_cable = 8.0;
  double minutes_per_bundled_cable = 1.5;
  // Fixed minutes to land one pre-built bundle (both ends).
  double minutes_per_bundle = 20.0;
};

struct bundling_report {
  std::vector<cable_bundle> bundles;          // all rack-pair groups
  std::size_t inter_rack_cables = 0;
  std::size_t bundled_cables = 0;             // members of viable bundles
  std::size_t viable_bundles = 0;             // >= min_bundle_size
  double bundleability = 0.0;                 // bundled / inter-rack
  std::size_t distinct_skus = 0;              // (rounded length, count) pairs
  double mean_bundle_size = 0.0;              // over viable bundles

  // Install labor with and without pre-built bundles, and cable capex
  // delta from the bundle discount.
  hours loose_install_time;
  hours bundled_install_time;
  dollars capex_savings;
};

[[nodiscard]] bundling_report analyze_bundling(const cabling_plan& plan,
                                               const bundling_params& p);

}  // namespace pn
