#include "physical/catalog.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

using namespace pn::literals;

const char* cable_medium_name(cable_medium m) {
  switch (m) {
    case cable_medium::copper_dac:
      return "DAC";
    case cable_medium::active_electrical:
      return "AEC";
    case cable_medium::active_optical:
      return "AOC";
    case cable_medium::fiber:
      return "fiber";
  }
  return "unknown";
}

dollars switch_cost_model::cost(int radix, gbps rate) const {
  PN_CHECK(radix > 0);
  return base + per_gbps * (static_cast<double>(radix) * rate.value());
}

watts switch_cost_model::power(int radix, gbps rate) const {
  PN_CHECK(radix > 0);
  return power_base +
         power_per_gbps * (static_cast<double>(radix) * rate.value());
}

int switch_cost_model::rack_units(int radix) {
  PN_CHECK(radix > 0);
  if (radix <= 32) return 1;
  if (radix <= 64) return 2;
  if (radix <= 128) return 4;
  if (radix <= 256) return 8;
  return 16;  // chassis
}

catalog catalog::standard() {
  catalog c;
  // Passive copper (DAC). Diameters at 100G/400G follow the AWS numbers
  // quoted in §3.1 (6.7 mm and 11 mm); reach shrinks as rates climb.
  c.add_cable({"dac-100g", cable_medium::copper_dac, 100_gbps, 3.0_m,
               6.7_mm, 40_mm, 80_usd, 12.0_usd, 0.2_w, 50});
  c.add_cable({"dac-200g", cable_medium::copper_dac, 200_gbps, 3.0_m,
               8.5_mm, 50_mm, 130_usd, 22.0_usd, 0.3_w, 50});
  c.add_cable({"dac-400g", cable_medium::copper_dac, 400_gbps, 2.5_m,
               11.0_mm, 65_mm, 200_usd, 40.0_usd, 0.4_w, 50});
  c.add_cable({"dac-800g", cable_medium::copper_dac, 800_gbps, 2.0_m,
               13.0_mm, 80_mm, 340_usd, 65.0_usd, 0.5_w, 50});

  // Active electrical (AEC): what AWS switched to in-rack at 400G —
  // thinner than 400G DAC, longer reach, still cheaper than optics.
  c.add_cable({"aec-100g", cable_medium::active_electrical, 100_gbps, 7.0_m,
               5.5_mm, 30_mm, 260_usd, 18.0_usd, 4.0_w, 120});
  c.add_cable({"aec-400g", cable_medium::active_electrical, 400_gbps, 7.0_m,
               6.5_mm, 35_mm, 480_usd, 28.0_usd, 7.0_w, 150});
  c.add_cable({"aec-800g", cable_medium::active_electrical, 800_gbps, 5.0_m,
               7.5_mm, 40_mm, 780_usd, 45.0_usd, 12.0_w, 180});

  // Active optical cables (AOC): mid-range runs, optics glued on.
  c.add_cable({"aoc-100g", cable_medium::active_optical, 100_gbps, 100.0_m,
               3.0_mm, 25_mm, 360_usd, 4.0_usd, 4.5_w, 300});
  c.add_cable({"aoc-400g", cable_medium::active_optical, 400_gbps, 100.0_m,
               3.5_mm, 25_mm, 950_usd, 6.0_usd, 10.0_w, 400});
  c.add_cable({"aoc-800g", cable_medium::active_optical, 800_gbps, 70.0_m,
               4.0_mm, 25_mm, 1900_usd, 9.0_usd, 16.0_w, 500});

  // Duplex single-mode fiber: the only medium for long runs; needs a
  // transceiver pair. Reach below is the fiber's own handling limit — the
  // real constraint is the transceiver reach and loss budget.
  c.add_cable({"smf-duplex", cable_medium::fiber, 0_gbps, 2000.0_m, 2.9_mm,
               15_mm, 12_usd, 0.5_usd, 0.0_w, 20});

  // Transceivers (per module; a link needs two).
  c.add_transceiver({"100g-cwdm4", 100_gbps, 2000.0_m, 380_usd, 3.5_w,
                     decibels{5.0}, 600});
  c.add_transceiver({"200g-fr4", 200_gbps, 2000.0_m, 700_usd, 4.5_w,
                     decibels{4.5}, 650});
  c.add_transceiver({"400g-dr4", 400_gbps, 500.0_m, 1100_usd, 8.0_w,
                     decibels{4.0}, 700});
  c.add_transceiver({"400g-fr4", 400_gbps, 2000.0_m, 1500_usd, 9.0_w,
                     decibels{4.0}, 700});
  c.add_transceiver({"800g-dr8", 800_gbps, 500.0_m, 2400_usd, 14.0_w,
                     decibels{3.5}, 900});
  c.add_transceiver({"800g-2xfr4", 800_gbps, 2000.0_m, 3200_usd, 16.0_w,
                     decibels{3.5}, 900});
  return c;
}

void catalog::add_cable(cable_type c) {
  PN_CHECK(c.max_length.value() > 0.0);
  PN_CHECK(c.outside_diameter.value() > 0.0);
  cables_.push_back(std::move(c));
}

void catalog::add_transceiver(transceiver_type t) {
  PN_CHECK(t.rate.value() > 0.0);
  transceivers_.push_back(std::move(t));
}

std::vector<link_choice> catalog::link_options(gbps rate, meters length,
                                               int indirections) const {
  PN_CHECK(rate.value() > 0.0);
  PN_CHECK(length.value() >= 0.0);
  PN_CHECK(indirections >= 0);
  std::vector<link_choice> out;

  for (const cable_type& c : cables_) {
    if (c.medium == cable_medium::fiber) {
      // Pair the fiber with every transceiver of the right rate whose
      // reach and loss budget cover this run.
      if (length > c.max_length) continue;
      const decibels loss =
          fiber_loss_per_meter() * length.value() +
          connector_loss() * 2.0 +
          indirection_loss() * static_cast<double>(indirections);
      for (const transceiver_type& t : transceivers_) {
        if (t.rate != rate) continue;
        if (length > t.reach) continue;
        if (loss > t.loss_budget) continue;
        link_choice lc;
        lc.cable = &c;
        lc.transceiver = &t;
        lc.total_cost =
            c.cost_fixed + c.cost_per_meter * length.value() + t.cost * 2.0;
        lc.total_power = c.power + t.power * 2.0;
        lc.diameter = c.outside_diameter;
        out.push_back(lc);
      }
    } else {
      if (c.rate != rate) continue;
      if (length > c.max_length) continue;
      // Electrical and glued-optics cables cannot traverse a patch panel
      // or OCS: there is nothing to re-terminate.
      if (indirections > 0) continue;
      link_choice lc;
      lc.cable = &c;
      lc.total_cost = c.cost_fixed + c.cost_per_meter * length.value();
      lc.total_power = c.power;
      lc.diameter = c.outside_diameter;
      out.push_back(lc);
    }
  }

  std::sort(out.begin(), out.end(),
            [](const link_choice& a, const link_choice& b) {
              return a.total_cost < b.total_cost;
            });
  return out;
}

result<link_choice> catalog::best_link(gbps rate, meters length,
                                       int indirections) const {
  auto options = link_options(rate, length, indirections);
  if (options.empty()) {
    return infeasible_error(str_format(
        "no cable can carry %.0f Gbps over %.1f m with %d indirections",
        rate.value(), length.value(), indirections));
  }
  return options.front();
}

dollars catalog::cheapest_cost_estimate(gbps rate, meters length) const {
  const auto best = best_link(rate, length, 0);
  if (best.is_ok()) return best.value().total_cost;
  // Nothing reaches: charge the most expensive option at its max length
  // plus a steep penalty per extra meter, so optimizers still see a
  // gradient pushing endpoints closer together.
  dollars worst{0.0};
  for (const cable_type& c : cables_) {
    worst = std::max(worst, c.cost_fixed + c.cost_per_meter * length.value());
  }
  return worst + dollars{50.0} * length.value();
}

}  // namespace pn
