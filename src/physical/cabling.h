// Cabling engine: turns (topology, placement, floorplan, catalog) into a
// concrete cable plan — per-link media choice, routed tray paths, tray and
// plenum occupancy, bend-radius feasibility, cost and power totals.
//
// This is the optimization §3.1 describes: "complex ... since some network
// topologies gain shorter cable runs (on average) at the cost of more
// switch hops"; the plan makes that tradeoff measurable.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/graph.h"

namespace pn {

// Per-rack plenum occupancy, sorted by rack id. A flat vector rather
// than std::map: consumers only iterate it, and the cabling router is on
// the per-evaluation hot path.
using plenum_fill_list = std::vector<std::pair<rack_id, double>>;

struct cable_run {
  edge_id edge;
  rack_id rack_a;
  rack_id rack_b;            // == rack_a for intra-rack runs
  meters length;
  link_choice choice;        // selected media
  tray_route route;          // empty for intra-rack runs
  int indirections = 0;      // patch panel / OCS traversals
};

struct cabling_plan {
  std::vector<cable_run> runs;

  // Totals.
  dollars cable_cost;        // cables incl. AOC/AEC electronics
  dollars transceiver_cost;  // pluggables for bare-fiber runs
  watts cable_power;
  std::size_t optical_runs = 0;   // AOC or fiber
  std::size_t copper_runs = 0;    // DAC or AEC
  std::size_t intra_rack_runs = 0;

  // Physical occupancy after planning.
  double max_tray_fill = 0.0;            // worst tray segment, 0..1
  double mean_tray_fill = 0.0;
  plenum_fill_list plenum_fill;  // per rack, fraction of plenum

  [[nodiscard]] dollars total_cost() const {
    return cable_cost + transceiver_cost;
  }
};

struct cabling_options {
  // Reserve tray cross-section while routing (first-come first-served in
  // edge order). When false, lengths use unconstrained shortest routes —
  // the "abstract" view that ignores congestion in trays.
  bool reserve_tray_capacity = true;
  // Fail the plan if any rack's plenum overflows (§3.1's 256-cables-in-a-
  // rack problem); when false the overflow is just reported.
  bool enforce_plenum = false;
  // Count every inter-rack run as crossing this many patch panels (0 for
  // point-to-point fiber, 1 for a patch-panel fabric, 2 for panel+OCS).
  int indirections_inter_rack = 0;
};

// Plans every live edge. Fails with infeasible if some link has no viable
// medium (too long, loss budget exceeded) or capacity_exceeded if
// reservation/plenum enforcement fails. Tray reservations are applied to
// `fp.trays()` when reserve_tray_capacity is set.
//
// Lifetime: every cable_run's link_choice points into `cat`; the catalog
// must outlive the returned plan.
[[nodiscard]] result<cabling_plan> plan_cabling(const network_graph& g,
                                                const placement& pl,
                                                floorplan& fp,
                                                const catalog& cat,
                                                const cabling_options& opt);

// Per-rack plenum fill from a set of runs (sum of cable cross-sections of
// all runs touching the rack / plenum area). Sorted by rack id; per-rack
// areas accumulate in run order, so the doubles are bit-identical to the
// old std::map accumulation.
[[nodiscard]] plenum_fill_list compute_plenum_fill(
    const floorplan& fp, const std::vector<cable_run>& runs);

}  // namespace pn
