// Datacenter floor model: rows of racks on a tile grid, an overhead
// cable-tray network, per-rack plenum budgets, and doorway constraints.
//
// This is the "physical environment" of §2/§3.1: where things fit, how
// cables get from A to B, and which pre-fab units make it through a door.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "geom/point.h"
#include "geom/tray_graph.h"

namespace pn {

struct floorplan_params {
  int rows = 4;
  int racks_per_row = 16;
  meters rack_width{0.6};
  meters rack_depth{1.2};
  meters aisle_width{1.8};       // gap between rows (hot/cold aisles)
  int rack_units = 42;           // usable RU per rack
  watts rack_power_budget{17000.0};
  // Vertical plenum cross-section available for cables inside one rack.
  square_millimeters rack_plenum{30000.0};
  // Overhead tray above each row, one junction per rack position, plus
  // cross-trays joining the rows at both ends and every `cross_every`
  // positions.
  square_millimeters row_tray_capacity{40000.0};
  square_millimeters cross_tray_capacity{60000.0};
  int cross_every = 8;
  // Vertical distance a cable travels from a rack to the overhead tray
  // (counted once per end of every inter-rack run).
  meters drop_length{2.5};
  // Extra service-loop slack applied to every routed length.
  double slack_fraction = 0.10;
  // Door width limits how many pre-cabled racks can be conjoined (§3.1:
  // "double-wide racks don't always fit through doors").
  meters doorway_width{1.2};
  // Racks share power feeds in contiguous groups along a row (a busway
  // segment). §3.3: abstract designs conceal "physical-world failure
  // domains (e.g., shared power feeds)".
  int racks_per_feed = 8;
  // Keep-out zones (columns, CRAC units, ramps — the 1961 IBM 7090
  // doorway problem in miniature): no rack is placed and no tray passes
  // through these rectangles. Tray routes detour around them.
  std::vector<rect> obstacles;
};

struct rack {
  rack_id id;
  std::string name;
  int row = 0;
  int index_in_row = 0;
  point position;               // center of the rack footprint
  int rack_units = 42;
  watts power_budget;
  square_millimeters plenum;
  tray_graph::junction_index drop_junction = 0;  // tray junction above
};

class floorplan {
 public:
  explicit floorplan(const floorplan_params& p);

  [[nodiscard]] const floorplan_params& params() const { return params_; }
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  [[nodiscard]] const rack& rack_at(rack_id r) const;
  [[nodiscard]] const std::vector<rack>& racks() const { return racks_; }

  [[nodiscard]] tray_graph& trays() { return trays_; }
  [[nodiscard]] const tray_graph& trays() const { return trays_; }

  // Straight-line (Manhattan) rack-to-rack distance; a lower bound used by
  // placement optimizers because it needs no tray routing.
  [[nodiscard]] meters rack_distance(rack_id a, rack_id b) const;

  // Full routed cable length between racks: drops at both ends, the tray
  // route, and slack. For a==b returns the intra-rack patch length.
  // Does not reserve tray capacity.
  [[nodiscard]] result<meters> routed_length(rack_id a, rack_id b) const;
  // Same, but also returns the route so the caller can reserve capacity.
  struct routed_path {
    tray_route route;
    meters length;
  };
  [[nodiscard]] result<routed_path> routed_path_between(
      rack_id a, rack_id b, square_millimeters required) const;

  [[nodiscard]] static meters intra_rack_length() { return meters{2.0}; }

  // How many racks can be conjoined and still fit through the door
  // (pre-cabled multi-rack units, §3.1).
  [[nodiscard]] int max_conjoined_racks() const;

  // Power-feed (busway segment) topology: feed_of groups racks_per_feed
  // consecutive racks of a row onto one feed.
  [[nodiscard]] int feed_of(rack_id r) const;
  [[nodiscard]] int feed_count() const;
  // All racks sharing the feed — the blast radius of one feed failure.
  [[nodiscard]] std::vector<rack_id> racks_on_feed(int feed) const;

 private:
  floorplan_params params_;
  std::vector<rack> racks_;
  tray_graph trays_;
};

}  // namespace pn
