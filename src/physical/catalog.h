// Hardware catalog: cables, transceivers, switch pricing.
//
// §3.1 is about exactly this data: copper is cheap but short and thick
// (AWS: 6.7 mm OD at 100G -> 11 mm at 400G, 2.7x the cross-section);
// active electrical cables (AEC) trade a little cost for thinner, longer
// runs; optics reach hundreds of meters but are power-hungry and
// expensive, and patch panels / OCSes eat 0.5-1.0 dB of the loss budget.
// Absolute prices here are public ballparks; every conclusion in the
// benches depends only on their relative ordering, which is robust.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace pn {

enum class cable_medium : std::uint8_t {
  copper_dac,        // passive direct-attach copper
  active_electrical, // AEC: retimed copper, thinner + longer than DAC
  active_optical,    // AOC: fixed optics glued to the cable
  fiber,             // duplex SMF; needs a pluggable transceiver per end
};

[[nodiscard]] const char* cable_medium_name(cable_medium m);

struct cable_type {
  std::string name;
  cable_medium medium = cable_medium::copper_dac;
  gbps rate;
  meters max_length;            // signal-integrity reach of the cable itself
  millimeters outside_diameter;
  millimeters min_bend_radius;
  dollars cost_fixed;           // connectors/assembly per cable
  dollars cost_per_meter;
  watts power;                  // consumed by the cable (active media)
  double fit = 0.0;             // failures per 1e9 device-hours
};

struct transceiver_type {
  std::string name;
  gbps rate;
  meters reach;
  dollars cost;                 // per module (a link needs two)
  watts power;                  // per module
  decibels loss_budget;         // max end-to-end optical loss it tolerates
  double fit = 0.0;
};

// Parametric switch pricing: the paper's comparisons need switch capex and
// power to scale with radix * rate, not a per-SKU price list.
struct switch_cost_model {
  dollars base{2000.0};
  dollars per_gbps{2.0};        // times radix * port rate
  watts power_base{150.0};
  watts power_per_gbps{0.03};
  double fit = 2000.0;          // whole-switch FIT

  [[nodiscard]] dollars cost(int radix, gbps rate) const;
  [[nodiscard]] watts power(int radix, gbps rate) const;
  // Rack units occupied, by radix (1 RU up to 32 ports, doubling after).
  [[nodiscard]] static int rack_units(int radix);
};

// A concrete way to realize one link of a given rate and routed length.
struct link_choice {
  const cable_type* cable = nullptr;            // always set
  const transceiver_type* transceiver = nullptr; // set iff medium == fiber
  dollars total_cost;   // cable + 2 transceivers if any
  watts total_power;
  millimeters diameter; // what occupies tray / plenum cross-section
};

class catalog {
 public:
  // The default catalog described in DESIGN.md (100/200/400/800G DAC, AEC,
  // AOC, SMF + transceivers).
  [[nodiscard]] static catalog standard();

  void add_cable(cable_type c);
  void add_transceiver(transceiver_type t);

  [[nodiscard]] const std::vector<cable_type>& cables() const {
    return cables_;
  }
  [[nodiscard]] const std::vector<transceiver_type>& transceivers() const {
    return transceivers_;
  }
  [[nodiscard]] const switch_cost_model& switches() const { return switches_; }
  void set_switch_cost_model(switch_cost_model m) { switches_ = m; }

  // Fixed optical losses a link must absorb besides the fiber itself.
  [[nodiscard]] static decibels connector_loss() { return decibels{0.3}; }
  // §3.1 / Telescent: each patch panel or OCS traversal costs 0.5-1.0 dB.
  [[nodiscard]] static decibels indirection_loss() { return decibels{0.75}; }
  // Fiber attenuation per meter (0.4 dB/km for SMF).
  [[nodiscard]] static decibels fiber_loss_per_meter() {
    return decibels{0.0004};
  }

  // All feasible realizations of a link, cheapest first. `indirections`
  // counts patch-panel/OCS traversals (each adds loss for fiber media and
  // is simply infeasible for copper beyond 0 — you cannot patch a DAC).
  [[nodiscard]] std::vector<link_choice> link_options(
      gbps rate, meters length, int indirections = 0) const;

  // Cheapest feasible realization, or infeasible error.
  [[nodiscard]] result<link_choice> best_link(gbps rate, meters length,
                                              int indirections = 0) const;

  // Cheapest realization ignoring every constraint except rate — used as
  // an optimistic lower bound by placement optimizers.
  [[nodiscard]] dollars cheapest_cost_estimate(gbps rate,
                                               meters length) const;

 private:
  std::vector<cable_type> cables_;
  std::vector<transceiver_type> transceivers_;
  switch_cost_model switches_;
};

}  // namespace pn
