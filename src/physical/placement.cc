#include "physical/placement.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pn {

placement::placement(std::size_t node_count, const floorplan& fp)
    : rack_of_(node_count), used_units_(fp.rack_count(), 0) {
  capacity_.reserve(fp.rack_count());
  for (const rack& r : fp.racks()) {
    capacity_.push_back(r.rack_units);
  }
}

status placement::assign(node_id n, rack_id r, int rack_units) {
  PN_CHECK(n.index() < rack_of_.size());
  PN_CHECK(r.index() < used_units_.size());
  PN_CHECK_MSG(!rack_of_[n.index()].valid(), "node already placed");
  if (used_units_[r.index()] + rack_units > capacity_[r.index()]) {
    return capacity_error(str_format("rack %u has %d RU free, need %d",
                                     r.value(),
                                     capacity_[r.index()] -
                                         used_units_[r.index()],
                                     rack_units));
  }
  rack_of_[n.index()] = r;
  used_units_[r.index()] += rack_units;
  return status::ok();
}

void placement::unassign(node_id n, int rack_units) {
  PN_CHECK(n.index() < rack_of_.size());
  const rack_id r = rack_of_[n.index()];
  PN_CHECK_MSG(r.valid(), "node not placed");
  used_units_[r.index()] -= rack_units;
  PN_CHECK(used_units_[r.index()] >= 0);
  rack_of_[n.index()] = rack_id{};
}

bool placement::is_assigned(node_id n) const {
  PN_CHECK(n.index() < rack_of_.size());
  return rack_of_[n.index()].valid();
}

rack_id placement::rack_of(node_id n) const {
  PN_CHECK(n.index() < rack_of_.size());
  PN_CHECK_MSG(rack_of_[n.index()].valid(), "node not placed");
  return rack_of_[n.index()];
}

int placement::used_units(rack_id r) const {
  PN_CHECK(r.index() < used_units_.size());
  return used_units_[r.index()];
}

int placement::free_units(rack_id r) const {
  PN_CHECK(r.index() < used_units_.size());
  return capacity_[r.index()] - used_units_[r.index()];
}

std::vector<node_id> placement::nodes_in(rack_id r) const {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < rack_of_.size(); ++i) {
    if (rack_of_[i] == r) out.push_back(node_id{i});
  }
  return out;
}

bool placement::complete() const {
  return std::all_of(rack_of_.begin(), rack_of_.end(),
                     [](rack_id r) { return r.valid(); });
}

int node_rack_units(const network_graph& g, node_id n) {
  const node_info& info = g.node(n);
  return switch_cost_model::rack_units(info.radix) +
         info.host_ports * server_rack_units;
}

meters estimated_length(const floorplan& fp, rack_id a, rack_id b) {
  if (a == b) return floorplan::intra_rack_length();
  const double raw = fp.rack_distance(a, b).value() +
                     2.0 * fp.params().drop_length.value();
  return meters{raw * (1.0 + fp.params().slack_fraction)};
}

dollars placement_cable_cost(const network_graph& g, const floorplan& fp,
                             const catalog& cat, const placement& pl) {
  dollars total{0.0};
  for (edge_id e : g.live_edges()) {
    const edge_info& info = g.edge(e);
    const meters len =
        estimated_length(fp, pl.rack_of(info.a), pl.rack_of(info.b));
    total += cat.cheapest_cost_estimate(info.capacity, len);
  }
  return total;
}

namespace {

// Nodes ordered for block placement: upper layers first (they sit in the
// middle rows near the cross trays in real deployments we approximate by
// just keeping blocks contiguous), then by block, preserving generator
// order within a block.
std::vector<node_id> block_order(const network_graph& g) {
  std::vector<node_id> order;
  order.reserve(g.node_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) order.push_back(node_id{i});
  std::stable_sort(order.begin(), order.end(),
                   [&](node_id a, node_id b) {
                     const node_info& na = g.node(a);
                     const node_info& nb = g.node(b);
                     if (na.layer != nb.layer) return na.layer > nb.layer;
                     return na.block < nb.block;
                   });
  return order;
}

}  // namespace

result<placement> block_placement(const network_graph& g,
                                  const floorplan& fp) {
  placement pl(g.node_count(), fp);
  std::size_t rack_cursor = 0;
  for (node_id n : block_order(g)) {
    const int ru = node_rack_units(g, n);
    while (rack_cursor < fp.rack_count() &&
           pl.free_units(rack_id{rack_cursor}) < ru) {
      ++rack_cursor;
    }
    if (rack_cursor >= fp.rack_count()) {
      return capacity_error(
          str_format("floor full after placing %zu of %zu switches",
                     n.index(), g.node_count()));
    }
    const status s = pl.assign(n, rack_id{rack_cursor}, ru);
    if (!s.is_ok()) return s;
  }
  return pl;
}

result<placement> random_placement(const network_graph& g,
                                   const floorplan& fp, std::uint64_t seed) {
  placement pl(g.node_count(), fp);
  rng r(seed);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_id n{i};
    const int ru = node_rack_units(g, n);
    bool placed = false;
    for (int attempt = 0; attempt < 1000 && !placed; ++attempt) {
      const rack_id cand{r.next_index(fp.rack_count())};
      if (pl.free_units(cand) >= ru) {
        PN_CHECK(pl.assign(n, cand, ru).is_ok());
        placed = true;
      }
    }
    if (!placed) {
      // Fall back to first fit before declaring the floor full.
      for (std::size_t rk = 0; rk < fp.rack_count() && !placed; ++rk) {
        if (pl.free_units(rack_id{rk}) >= ru) {
          PN_CHECK(pl.assign(n, rack_id{rk}, ru).is_ok());
          placed = true;
        }
      }
    }
    if (!placed) {
      return capacity_error("floor has no rack with enough free units");
    }
  }
  return pl;
}

placement anneal_placement(const network_graph& g, const floorplan& fp,
                           const catalog& cat, placement start,
                           const anneal_options& opt) {
  PN_CHECK_MSG(start.complete(), "anneal_placement needs a complete start");
  rng r(opt.seed);

  // Cost of all edges incident to a node under the current placement.
  auto incident_cost = [&](const placement& pl, node_id n) {
    dollars c{0.0};
    for (const auto& adj : g.neighbors(n)) {
      const meters len = estimated_length(fp, pl.rack_of(n),
                                          pl.rack_of(adj.neighbor));
      c += cat.cheapest_cost_estimate(g.edge(adj.edge).capacity, len);
    }
    return c;
  };

  placement current = start;
  placement best = start;
  dollars best_cost = placement_cable_cost(g, fp, cat, current);
  dollars current_cost = best_cost;
  double temperature = opt.initial_temperature;

  for (int it = 0; it < opt.iterations; ++it, temperature *= opt.cooling) {
    const node_id a{r.next_index(g.node_count())};
    const int ru_a = node_rack_units(g, a);
    const rack_id rack_a = current.rack_of(a);

    // Either move `a` to a random rack with room, or swap with another
    // node of the same footprint.
    const bool do_swap = r.next_bool(0.5);
    node_id b;
    rack_id rack_b;
    if (do_swap) {
      b = node_id{r.next_index(g.node_count())};
      if (b == a || node_rack_units(g, b) != ru_a) continue;
      rack_b = current.rack_of(b);
      if (rack_b == rack_a) continue;
    } else {
      rack_b = rack_id{r.next_index(fp.rack_count())};
      if (rack_b == rack_a || current.free_units(rack_b) < ru_a) continue;
    }

    dollars before = incident_cost(current, a);
    if (do_swap) before += incident_cost(current, b);

    // Apply tentatively.
    current.unassign(a, ru_a);
    if (do_swap) {
      current.unassign(b, ru_a);
      PN_CHECK(current.assign(a, rack_b, ru_a).is_ok());
      PN_CHECK(current.assign(b, rack_a, ru_a).is_ok());
    } else {
      PN_CHECK(current.assign(a, rack_b, ru_a).is_ok());
    }

    dollars after = incident_cost(current, a);
    if (do_swap) after += incident_cost(current, b);
    // A swap where a and b are adjacent double-counts their shared edges
    // in both before and after, so the delta stays consistent.
    const double delta = (after - before).value();

    const bool accept =
        delta <= 0.0 ||
        (temperature > 1e-9 && r.next_bool(std::exp(-delta / temperature)));
    if (accept) {
      current_cost += dollars{delta};
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = current;
      }
    } else {
      // Revert.
      current.unassign(a, ru_a);
      if (do_swap) {
        current.unassign(b, ru_a);
        PN_CHECK(current.assign(a, rack_a, ru_a).is_ok());
        PN_CHECK(current.assign(b, rack_b, ru_a).is_ok());
      } else {
        PN_CHECK(current.assign(a, rack_a, ru_a).is_ok());
      }
    }
  }
  return best;
}

}  // namespace pn
