// Assignment of logical switches to physical racks.
//
// Mudigonda et al. ("Taming the Flying Cable Monster", §3.1) framed
// topology-to-floor placement as an optimization problem: some topologies
// buy shorter average cable runs at the cost of more hops, and placement
// decides how much of the cable bill is copper vs. optics. We provide the
// strategies the benches ablate: random (strawman), block (pre-planned,
// what real Clos deployments do), and simulated annealing on top of
// either.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "topology/graph.h"

namespace pn {

class placement {
 public:
  placement(std::size_t node_count, const floorplan& fp);

  // Fails with capacity_exceeded if the rack lacks rack units.
  status assign(node_id n, rack_id r, int rack_units);
  void unassign(node_id n, int rack_units);

  [[nodiscard]] bool is_assigned(node_id n) const;
  [[nodiscard]] rack_id rack_of(node_id n) const;
  [[nodiscard]] int used_units(rack_id r) const;
  [[nodiscard]] int free_units(rack_id r) const;
  [[nodiscard]] std::vector<node_id> nodes_in(rack_id r) const;
  [[nodiscard]] std::size_t node_count() const { return rack_of_.size(); }

  // True when every node has a rack.
  [[nodiscard]] bool complete() const;

 private:
  std::vector<rack_id> rack_of_;
  std::vector<int> used_units_;
  std::vector<int> capacity_;
};

// Rack units a switch occupies. A host-facing switch (ToR/expander) is
// placed together with the servers it serves — that is what "top of rack"
// means — so it also claims `server_rack_units` per host port. Middle and
// spine switches occupy only their own chassis.
inline constexpr int server_rack_units = 2;
[[nodiscard]] int node_rack_units(const network_graph& g, node_id n);

// Estimated rack-to-rack cable length without tray routing (Manhattan +
// drops + slack); the lower-bound metric placement optimizers use.
[[nodiscard]] meters estimated_length(const floorplan& fp, rack_id a,
                                      rack_id b);

// Total estimated cable cost of a placement (sum of cheapest feasible
// media per edge at estimated lengths).
[[nodiscard]] dollars placement_cable_cost(const network_graph& g,
                                           const floorplan& fp,
                                           const catalog& cat,
                                           const placement& pl);

// Fills racks in node order grouped by (layer, block): pods and spine
// groups land in contiguous racks — the "regular, bundleable" layout.
[[nodiscard]] result<placement> block_placement(const network_graph& g,
                                                const floorplan& fp);

// Uniform random placement; the strawman showing what ignoring physical
// locality costs.
[[nodiscard]] result<placement> random_placement(const network_graph& g,
                                                 const floorplan& fp,
                                                 std::uint64_t seed);

struct anneal_options {
  int iterations = 20000;
  double initial_temperature = 500.0;  // dollars
  double cooling = 0.9995;             // per-iteration geometric factor
  std::uint64_t seed = 1;
};

// Simulated annealing over node->rack moves and swaps, minimizing
// placement_cable_cost. Returns the improved placement (never worse than
// the input).
[[nodiscard]] placement anneal_placement(const network_graph& g,
                                         const floorplan& fp,
                                         const catalog& cat, placement start,
                                         const anneal_options& opt);

}  // namespace pn
