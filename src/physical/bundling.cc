#include "physical/bundling.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/check.h"

namespace pn {

bundling_report analyze_bundling(const cabling_plan& plan,
                                 const bundling_params& p) {
  PN_CHECK(p.min_bundle_size >= 1);
  PN_CHECK(p.sku_length_quantum.value() > 0.0);

  bundling_report out;

  // Group inter-rack runs by unordered rack pair.
  std::map<std::pair<rack_id, rack_id>, cable_bundle> groups;
  dollars bundled_cable_cost{0.0};
  std::map<std::pair<rack_id, rack_id>, dollars> group_cost;
  for (const cable_run& r : plan.runs) {
    if (r.rack_a == r.rack_b) continue;
    ++out.inter_rack_cables;
    auto key = std::minmax(r.rack_a, r.rack_b);
    cable_bundle& b = groups[key];
    b.rack_a = key.first;
    b.rack_b = key.second;
    ++b.cable_count;
    b.length = std::max(b.length, r.length);
    b.cross_section += circle_area(r.choice.diameter);
    group_cost[key] += r.choice.cable->cost_fixed +
                       r.choice.cable->cost_per_meter * r.length.value();
  }

  std::set<std::pair<long long, std::size_t>> skus;
  double loose_minutes = 0.0;
  double bundled_minutes = 0.0;
  double size_sum = 0.0;
  for (auto& [key, b] : groups) {
    out.bundles.push_back(b);
    loose_minutes += p.minutes_per_loose_cable *
                     static_cast<double>(b.cable_count);
    if (b.cable_count >= p.min_bundle_size) {
      ++out.viable_bundles;
      out.bundled_cables += b.cable_count;
      size_sum += static_cast<double>(b.cable_count);
      const auto sku_len = static_cast<long long>(
          std::ceil(b.length.value() / p.sku_length_quantum.value()));
      skus.insert({sku_len, b.cable_count});
      bundled_minutes += p.minutes_per_bundle +
                         p.minutes_per_bundled_cable *
                             static_cast<double>(b.cable_count);
      bundled_cable_cost += group_cost[key];
    } else {
      bundled_minutes += p.minutes_per_loose_cable *
                         static_cast<double>(b.cable_count);
    }
  }

  out.bundleability =
      out.inter_rack_cables > 0
          ? static_cast<double>(out.bundled_cables) /
                static_cast<double>(out.inter_rack_cables)
          : 0.0;
  out.distinct_skus = skus.size();
  out.mean_bundle_size =
      out.viable_bundles > 0
          ? size_sum / static_cast<double>(out.viable_bundles)
          : 0.0;
  out.loose_install_time = hours_from_minutes(loose_minutes);
  out.bundled_install_time = hours_from_minutes(bundled_minutes);
  out.capex_savings = bundled_cable_cost * p.bundle_cable_discount;
  return out;
}

}  // namespace pn
