#include "physical/bundling.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pn {

namespace {

// One inter-rack run, keyed by its unordered rack pair so a stable sort
// groups runs per pair while keeping run order inside each group (the
// float accumulations below stay bit-identical to the old std::map
// `groups[key] +=` form, which also visited runs in plan order).
struct keyed_run {
  std::pair<rack_id, rack_id> key;
  const cable_run* run;
};

}  // namespace

bundling_report analyze_bundling(const cabling_plan& plan,
                                 const bundling_params& p) {
  PN_CHECK(p.min_bundle_size >= 1);
  PN_CHECK(p.sku_length_quantum.value() > 0.0);

  bundling_report out;

  // Group inter-rack runs by unordered rack pair.
  std::vector<keyed_run> keyed;
  keyed.reserve(plan.runs.size());
  for (const cable_run& r : plan.runs) {
    if (r.rack_a == r.rack_b) continue;
    ++out.inter_rack_cables;
    keyed.push_back({std::minmax(r.rack_a, r.rack_b), &r});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const keyed_run& a, const keyed_run& b) {
                     return a.key < b.key;
                   });

  struct bundle_accum {
    cable_bundle bundle;
    dollars cost{0.0};
  };
  std::vector<bundle_accum> groups;
  for (std::size_t i = 0; i < keyed.size();) {
    const auto key = keyed[i].key;
    bundle_accum acc;
    acc.bundle.rack_a = key.first;
    acc.bundle.rack_b = key.second;
    for (; i < keyed.size() && keyed[i].key == key; ++i) {
      const cable_run& r = *keyed[i].run;
      ++acc.bundle.cable_count;
      acc.bundle.length = std::max(acc.bundle.length, r.length);
      acc.bundle.cross_section += circle_area(r.choice.diameter);
      acc.cost += r.choice.cable->cost_fixed +
                  r.choice.cable->cost_per_meter * r.length.value();
    }
    groups.push_back(acc);
  }

  dollars bundled_cable_cost{0.0};
  std::vector<std::pair<long long, std::size_t>> skus;
  double loose_minutes = 0.0;
  double bundled_minutes = 0.0;
  double size_sum = 0.0;
  for (const bundle_accum& g : groups) {
    const cable_bundle& b = g.bundle;
    out.bundles.push_back(b);
    loose_minutes += p.minutes_per_loose_cable *
                     static_cast<double>(b.cable_count);
    if (b.cable_count >= p.min_bundle_size) {
      ++out.viable_bundles;
      out.bundled_cables += b.cable_count;
      size_sum += static_cast<double>(b.cable_count);
      const auto sku_len = static_cast<long long>(
          std::ceil(b.length.value() / p.sku_length_quantum.value()));
      skus.emplace_back(sku_len, b.cable_count);
      bundled_minutes += p.minutes_per_bundle +
                         p.minutes_per_bundled_cable *
                             static_cast<double>(b.cable_count);
      bundled_cable_cost += g.cost;
    } else {
      bundled_minutes += p.minutes_per_loose_cable *
                         static_cast<double>(b.cable_count);
    }
  }

  out.bundleability =
      out.inter_rack_cables > 0
          ? static_cast<double>(out.bundled_cables) /
                static_cast<double>(out.inter_rack_cables)
          : 0.0;
  std::sort(skus.begin(), skus.end());
  skus.erase(std::unique(skus.begin(), skus.end()), skus.end());
  out.distinct_skus = skus.size();
  out.mean_bundle_size =
      out.viable_bundles > 0
          ? size_sum / static_cast<double>(out.viable_bundles)
          : 0.0;
  out.loose_install_time = hours_from_minutes(loose_minutes);
  out.bundled_install_time = hours_from_minutes(bundled_minutes);
  out.capex_savings = bundled_cable_cost * p.bundle_cable_discount;
  return out;
}

}  // namespace pn
