#include "physical/floorplan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

floorplan::floorplan(const floorplan_params& p) : params_(p) {
  PN_CHECK(p.rows > 0 && p.racks_per_row > 0);
  PN_CHECK(p.rack_units > 0);
  PN_CHECK(p.cross_every > 0);
  PN_CHECK(p.racks_per_feed > 0);

  const double pitch_x = p.rack_width.value();
  const double pitch_y = p.rack_depth.value() + p.aisle_width.value();

  auto obstructed = [&](point pos) {
    return std::any_of(p.obstacles.begin(), p.obstacles.end(),
                       [&](const rect& r) { return r.contains(pos); });
  };

  // One tray junction above every unobstructed rack position; a junction
  // row is a chain of segments along the row, severed at obstacles.
  constexpr auto no_junction =
      std::numeric_limits<tray_graph::junction_index>::max();
  std::vector<std::vector<tray_graph::junction_index>> row_junctions(
      static_cast<std::size_t>(p.rows),
      std::vector<tray_graph::junction_index>(
          static_cast<std::size_t>(p.racks_per_row), no_junction));

  for (int row = 0; row < p.rows; ++row) {
    for (int i = 0; i < p.racks_per_row; ++i) {
      const point pos{(static_cast<double>(i) + 0.5) * pitch_x,
                      (static_cast<double>(row) + 0.5) * pitch_y};
      if (obstructed(pos)) continue;  // no rack, no tray here
      const auto junction = trays_.add_junction(pos);
      row_junctions[static_cast<std::size_t>(row)]
                   [static_cast<std::size_t>(i)] = junction;

      rack r;
      r.id = rack_id{racks_.size()};
      r.name = str_format("r%02d.%02d", row, i);
      r.row = row;
      r.index_in_row = i;
      r.position = pos;
      r.rack_units = p.rack_units;
      r.power_budget = p.rack_power_budget;
      r.plenum = p.rack_plenum;
      r.drop_junction = junction;
      racks_.push_back(std::move(r));
    }
  }
  PN_CHECK_MSG(!racks_.empty(), "obstacles cover the whole floor");

  // Row trays between adjacent existing junctions (an obstacle severs
  // the run; routes must detour via a cross tray).
  for (int row = 0; row < p.rows; ++row) {
    const auto& js = row_junctions[static_cast<std::size_t>(row)];
    for (int i = 0; i + 1 < p.racks_per_row; ++i) {
      const auto a = js[static_cast<std::size_t>(i)];
      const auto b = js[static_cast<std::size_t>(i + 1)];
      if (a == no_junction || b == no_junction) continue;
      trays_.add_segment(a, b, p.row_tray_capacity);
    }
  }
  // Cross trays: at both ends and every cross_every positions, where both
  // endpoints exist.
  for (int i = 0; i < p.racks_per_row; ++i) {
    const bool is_cross = i == 0 || i == p.racks_per_row - 1 ||
                          (i % p.cross_every) == 0;
    if (!is_cross) continue;
    for (int row = 0; row + 1 < p.rows; ++row) {
      const auto a = row_junctions[static_cast<std::size_t>(row)]
                                  [static_cast<std::size_t>(i)];
      const auto b = row_junctions[static_cast<std::size_t>(row + 1)]
                                  [static_cast<std::size_t>(i)];
      if (a == no_junction || b == no_junction) continue;
      trays_.add_segment(a, b, p.cross_tray_capacity);
    }
  }
}

const rack& floorplan::rack_at(rack_id r) const {
  PN_CHECK(r.index() < racks_.size());
  return racks_[r.index()];
}

meters floorplan::rack_distance(rack_id a, rack_id b) const {
  return manhattan_distance(rack_at(a).position, rack_at(b).position);
}

result<meters> floorplan::routed_length(rack_id a, rack_id b) const {
  if (a == b) return intra_rack_length();
  auto p = routed_path_between(a, b, square_millimeters{0.0});
  if (!p.is_ok()) return p.error();
  return p.value().length;
}

result<floorplan::routed_path> floorplan::routed_path_between(
    rack_id a, rack_id b, square_millimeters required) const {
  PN_CHECK(a != b);
  const rack& ra = rack_at(a);
  const rack& rb = rack_at(b);
  auto route = required.value() > 0.0
                   ? trays_.route(ra.drop_junction, rb.drop_junction, required)
                   : trays_.route_unconstrained(ra.drop_junction,
                                                rb.drop_junction);
  if (!route.is_ok()) return route.error();

  routed_path out;
  out.route = std::move(route).value();
  const double raw = out.route.length.value() +
                     2.0 * params_.drop_length.value();
  out.length = meters{raw * (1.0 + params_.slack_fraction)};
  return out;
}

int floorplan::feed_of(rack_id r) const {
  const rack& rk = rack_at(r);
  const int feeds_per_row =
      (params_.racks_per_row + params_.racks_per_feed - 1) /
      params_.racks_per_feed;
  return rk.row * feeds_per_row + rk.index_in_row / params_.racks_per_feed;
}

int floorplan::feed_count() const {
  const int feeds_per_row =
      (params_.racks_per_row + params_.racks_per_feed - 1) /
      params_.racks_per_feed;
  return params_.rows * feeds_per_row;
}

std::vector<rack_id> floorplan::racks_on_feed(int feed) const {
  std::vector<rack_id> out;
  for (const rack& r : racks_) {
    if (feed_of(r.id) == feed) out.push_back(r.id);
  }
  return out;
}

int floorplan::max_conjoined_racks() const {
  const int n = static_cast<int>(
      std::floor(params_.doorway_width.value() / params_.rack_width.value()));
  return n < 1 ? 1 : n;
}

}  // namespace pn
