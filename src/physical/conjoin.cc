#include "physical/conjoin.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace pn {

conjoin_report analyze_conjoining(const floorplan& fp,
                                  const cabling_plan& plan,
                                  const conjoin_params& p) {
  conjoin_report out;

  // Cables between adjacent same-row rack pairs.
  std::map<std::pair<rack_id, rack_id>, std::size_t> adjacent_cables;
  for (const cable_run& run : plan.runs) {
    if (run.rack_a == run.rack_b) continue;
    const rack& ra = fp.rack_at(run.rack_a);
    const rack& rb = fp.rack_at(run.rack_b);
    if (ra.row != rb.row) continue;
    if (std::abs(ra.index_in_row - rb.index_in_row) != 1) continue;
    ++adjacent_cables[std::minmax(run.rack_a, run.rack_b)];
  }

  // Greedy non-overlapping selection, densest pairs first.
  std::vector<std::pair<std::size_t, std::pair<rack_id, rack_id>>> ranked;
  for (const auto& [pair, count] : adjacent_cables) {
    if (count >= p.min_shared_cables) ranked.push_back({count, pair});
  }
  std::sort(ranked.rbegin(), ranked.rend());

  const bool door_allows = fp.max_conjoined_racks() >= 2;
  std::set<rack_id> used;
  std::set<int> rows_with_units;
  for (const auto& [count, pair] : ranked) {
    if (used.contains(pair.first) || used.contains(pair.second)) continue;
    if (!door_allows) {
      ++out.blocked_by_doorway;
      continue;
    }
    used.insert(pair.first);
    used.insert(pair.second);
    out.units.push_back({pair.first, pair.second, count});
    out.precabled_cables += count;
    rows_with_units.insert(fp.rack_at(pair.first).row);
  }

  out.install_time_saved = hours_from_minutes(
      static_cast<double>(out.precabled_cables) *
      p.minutes_saved_per_cable);
  if (fp.params().racks_per_row % 2 == 1) {
    out.stranded_slots = static_cast<int>(rows_with_units.size());
  }
  return out;
}

}  // namespace pn
