// Lifetime digital-twin campaigns: declarative multi-year timelines of
// deployment events, compiled into the edge-level scenario machinery
// (deploy/scenario.h) and replayed through run_sweep's scenario mode.
//
// The paper's core argument is that deployability costs accrue over a
// fleet's *lifetime*, not at day 1. A campaign file describes that
// lifetime as an ordered list of events — Jellyfish-style growth,
// trunking, Xpander-style rewires, link-speed generation upgrades
// (§4.2), the §4.3 live migration, failure/repair churn, staged
// decommissioning — against one base design. compile_campaign turns it
// into a single deploy_scenario whose step 0 is the untouched day-1
// design, so one scenario sweep yields the whole cost/bisection
// trajectory, and run_sweep's checkpointed resume makes an interrupted
// multi-year replay finish to byte-identical CSVs.
//
// The text format follows the twin serializer idioms: line-oriented,
// whitespace-separated tokens, `#` comments, CRLF-tolerant, errors as
// "line N: why".
//
//   physnet-campaign v1
//   name example
//   base jellyfish 32 seed 7
//   years 3
//   headroom 4
//   option repair off
//   option strategy block
//   event year 1 grow g1 steps 4 links_per_step 2
//   event year 2 upgrade u1 steps 4 factor 4
//   event year 3 churn c1 steps 6 kills_per_step 1 repair_lag 2
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sweep.h"
#include "deploy/scenario.h"
#include "topology/graph.h"

namespace pn {

// One lifecycle event kind per deploy planner (plus the upgrade planner
// this module adds). grow/trunk -> expansion, rewire/migrate ->
// migration, churn -> repair, decom -> decommission.
enum class campaign_event_kind : std::uint8_t {
  grow,     // Jellyfish-style incremental growth: new links land on
            // free (headroom) ports between previously unwired pairs
  trunk,    // parallel_links capacity expansion over existing adjacencies
  rewire,   // Xpander-style rewires: drain a link, land a replacement
  upgrade,  // §4.2 link-speed generation upgrade: each live link is
            // drained and re-landed at capacity x factor
  migrate,  // §4.3 live migration moves (same mechanics as rewire,
            // distinct label/semantics in the timeline)
  churn,    // §3.3 failure/repair churn with lagged revives
  decom,    // staged decommission of non-host-facing switches
};

[[nodiscard]] const char* campaign_event_kind_name(campaign_event_kind k);

struct campaign_event {
  int year = 1;
  campaign_event_kind kind = campaign_event_kind::grow;
  std::string label;

  // Planner knobs; each kind reads the subset that applies to it.
  int steps = 4;            // all kinds: scenario steps (= evaluations)
  int links_per_step = 2;   // grow/trunk/decom
  int moves_per_step = 2;   // rewire/migrate
  int kills_per_step = 1;   // churn
  int repair_lag_steps = 2; // churn
  int switches = 1;         // decom: switches to retire
  double factor = 4.0;      // upgrade: capacity multiplier
};

struct campaign_spec {
  std::string name;
  std::string family = "jellyfish";
  int size = 32;
  std::uint64_t seed = 1;
  int years = 1;
  // Extra ports granted per switch at day 1 — the §4.1 expansion
  // headroom the paper argues real designs must reserve. Generated
  // families come out fully wired, so without headroom grow events
  // have nowhere to land links.
  int headroom = 4;
  bool repair = false;        // run the repair sim per evaluation
  std::string strategy = "block";
  std::vector<campaign_event> events;  // replayed in file order per year
};

// Parses the campaign text format. Errors name the offending line; a
// torn or truncated file parses to an error, never a crash.
[[nodiscard]] result<campaign_spec> parse_campaign(const std::string& text);

// Canonical text for a spec; parse_campaign(serialize_campaign(s))
// round-trips every field.
[[nodiscard]] std::string serialize_campaign(const campaign_spec& spec);

// A compiled campaign: the day-1 graph (headroom applied) plus one
// deploy_scenario covering the whole timeline. scenario.steps[0] is a
// synthetic no-op "day1" step so the base design gets its own
// evaluation row; every later step is labeled y<year>/<event>/<step>.
struct campaign_plan {
  campaign_spec spec;
  network_graph base;
  deploy_scenario scenario;

  // Cumulative rewiring ops over the lifetime, by kind.
  [[nodiscard]] std::size_t ops_added() const;
  [[nodiscard]] std::size_t ops_killed() const;
  [[nodiscard]] std::size_t ops_revived() const;
};

// Deterministic per-event seed, salted so it never collides with the
// sweep's per-point seed stream for the same base seed.
[[nodiscard]] std::uint64_t campaign_event_seed(std::uint64_t base_seed,
                                                std::size_t event_index);

// Builds the base family, grants headroom, and compiles every event
// through its deploy planner against the evolving lineage. Events are
// ordered by year (stable within a year). Fails on unknown families or
// events that cannot be planned.
[[nodiscard]] result<campaign_plan> compile_campaign(
    const campaign_spec& spec);

// Options for replaying a compiled campaign locally.
struct campaign_run_options {
  bool delta = true;                   // delta-aware scenario evaluation
  cancel_token cancel;
  std::size_t cancel_after_points = 0; // testing hook (see sweep_options)
  std::string checkpoint_path;
  const sweep_checkpoint* resume = nullptr;
};

// Replays the compiled scenario through run_sweep's scenario mode on a
// private copy of plan.base. Evaluation options derive from the spec
// (seed, repair, strategy). The returned reports are one row per step,
// day 1 first — feed them to sweep_to_csv for the trajectory CSV and to
// summarize_campaign for the day-1 vs lifetime table.
[[nodiscard]] sweep_results run_campaign(const campaign_plan& plan,
                                         const campaign_run_options& ropt);

// The §5.4 deliverable: day-1 vs lifetime per campaign.
struct campaign_summary {
  std::string campaign;
  std::string family;
  int size = 0;
  int years = 0;
  std::size_t evaluations = 0;  // completed evaluation rows
  std::size_t events = 0;
  std::size_t ops_added = 0;
  std::size_t ops_killed = 0;
  std::size_t ops_revived = 0;
  double day1_capex_usd = 0.0;
  double final_capex_usd = 0.0;
  double day1_time_to_deploy_h = 0.0;
  double final_time_to_deploy_h = 0.0;
  double day1_deploy_labor_h = 0.0;
  double final_deploy_labor_h = 0.0;
  double day1_bisection_gbps_per_host = 0.0;
  double min_bisection_gbps_per_host = 0.0;
  double final_bisection_gbps_per_host = 0.0;
};

// Reduces a completed replay (reports in step order, day 1 first) to
// the summary row. PN_CHECKs a non-empty report list.
[[nodiscard]] campaign_summary summarize_campaign(
    const campaign_plan& plan, const std::vector<deployability_report>& reports);

[[nodiscard]] std::string campaign_summary_csv_header();
[[nodiscard]] std::string campaign_summary_csv_row(const campaign_summary& s);

}  // namespace pn
