#include "campaign/campaign.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/evaluator.h"
#include "deploy/decom.h"
#include "deploy/expansion.h"
#include "deploy/migration.h"
#include "deploy/repair_sim.h"
#include "topology/generators/families.h"

namespace pn {

const char* campaign_event_kind_name(campaign_event_kind k) {
  switch (k) {
    case campaign_event_kind::grow: return "grow";
    case campaign_event_kind::trunk: return "trunk";
    case campaign_event_kind::rewire: return "rewire";
    case campaign_event_kind::upgrade: return "upgrade";
    case campaign_event_kind::migrate: return "migrate";
    case campaign_event_kind::churn: return "churn";
    case campaign_event_kind::decom: return "decom";
  }
  return "?";
}

namespace {

bool kind_from_name(const std::string& name, campaign_event_kind& out) {
  for (const campaign_event_kind k :
       {campaign_event_kind::grow, campaign_event_kind::trunk,
        campaign_event_kind::rewire, campaign_event_kind::upgrade,
        campaign_event_kind::migrate, campaign_event_kind::churn,
        campaign_event_kind::decom}) {
    if (name == campaign_event_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

// §4.2 link-speed generation upgrade as edge ops: every live link is
// drained and re-landed between the same endpoints at capacity x factor,
// spread evenly over `steps` steps in seed-shuffled order. The kill
// frees the ports the add re-consumes, so the plan works on fully wired
// fabrics, and each step ends with the fabric whole (the transient
// inside a step is never evaluated). The re-landed link gets a fresh
// edge id — an in-place capacity write would bypass the edge journal
// and corrupt delta evaluation.
deploy_scenario plan_upgrade_edge_scenario(const network_graph& g,
                                           int steps, double factor,
                                           std::uint64_t seed) {
  PN_CHECK(steps > 0 && factor > 0.0);
  deploy_scenario sc;
  sc.name = "upgrade";
  network_graph replay = g;
  std::vector<edge_id> live = replay.live_edges();
  PN_CHECK_MSG(!live.empty(), "upgrade scenario needs live links");

  rng r(seed);
  for (std::size_t i = live.size() - 1; i > 0; --i) {
    std::swap(live[i], live[r.next_index(i + 1)]);
  }

  const std::size_t per =
      (live.size() + static_cast<std::size_t>(steps) - 1) /
      static_cast<std::size_t>(steps);
  std::size_t cursor = 0;
  for (int step = 0; step < steps && cursor < live.size(); ++step) {
    scenario_step st;
    st.label = str_format("upgrade%d", step + 1);
    for (std::size_t n = 0; n < per && cursor < live.size(); ++n) {
      const edge_id e = live[cursor++];
      const edge_info info = replay.edge(e);
      st.ops.push_back(edge_op{edge_op_kind::kill, e, info.a, info.b,
                               gbps{0.0}});
      replay.remove_edge(e);
      const gbps cap{info.capacity.value() * factor};
      const edge_id id = replay.add_edge(info.a, info.b, cap);
      st.ops.push_back(edge_op{edge_op_kind::add, id, info.a, info.b, cap});
    }
    sc.steps.push_back(std::move(st));
  }
  return sc;
}

}  // namespace

result<campaign_spec> parse_campaign(const std::string& text) {
  campaign_spec spec;
  spec.events.clear();
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_base = false;

  auto fail = [&](const std::string& why) {
    return invalid_argument_error(
        str_format("line %zu: %s", line_no, why.c_str()));
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    if (!saw_header) {
      if (line != "physnet-campaign v1") {
        return fail("expected 'physnet-campaign v1' header");
      }
      saw_header = true;
      continue;
    }

    std::istringstream ls(line);
    std::string directive;
    ls >> directive;

    if (directive == "name") {
      ls >> spec.name;
      if (spec.name.empty()) return fail("name needs a value");
    } else if (directive == "base") {
      std::string seed_kw;
      if (!(ls >> spec.family >> spec.size >> seed_kw >> spec.seed) ||
          seed_kw != "seed") {
        return fail("malformed base (want: base <family> <size> seed <N>)");
      }
      if (spec.size <= 0) return fail("base size must be > 0");
      saw_base = true;
    } else if (directive == "years") {
      if (!(ls >> spec.years) || spec.years < 1) {
        return fail("years must be an integer >= 1");
      }
    } else if (directive == "headroom") {
      if (!(ls >> spec.headroom) || spec.headroom < 0) {
        return fail("headroom must be an integer >= 0");
      }
    } else if (directive == "option") {
      std::string key;
      ls >> key;
      if (key == "repair") {
        std::string v;
        ls >> v;
        if (v == "on") {
          spec.repair = true;
        } else if (v == "off") {
          spec.repair = false;
        } else {
          return fail("option repair wants on|off");
        }
      } else if (key == "strategy") {
        ls >> spec.strategy;
        if (spec.strategy.empty()) return fail("option strategy needs a name");
      } else {
        return fail("unknown option " + key);
      }
    } else if (directive == "event") {
      std::string year_kw;
      campaign_event ev;
      std::string kind_name;
      if (!(ls >> year_kw) || year_kw != "year" || !(ls >> ev.year)) {
        return fail("malformed event (want: event year <Y> <kind> <label>)");
      }
      if (!(ls >> kind_name >> ev.label)) return fail("malformed event");
      if (!kind_from_name(kind_name, ev.kind)) {
        return fail("unknown event kind " + kind_name);
      }
      std::string key;
      while (ls >> key) {
        bool ok = false;
        if (key == "steps") {
          ok = static_cast<bool>(ls >> ev.steps) && ev.steps > 0;
        } else if (key == "links_per_step") {
          ok = static_cast<bool>(ls >> ev.links_per_step) &&
               ev.links_per_step > 0;
        } else if (key == "moves_per_step") {
          ok = static_cast<bool>(ls >> ev.moves_per_step) &&
               ev.moves_per_step > 0;
        } else if (key == "kills_per_step") {
          ok = static_cast<bool>(ls >> ev.kills_per_step) &&
               ev.kills_per_step > 0;
        } else if (key == "repair_lag") {
          ok = static_cast<bool>(ls >> ev.repair_lag_steps) &&
               ev.repair_lag_steps >= 0;
        } else if (key == "switches") {
          ok = static_cast<bool>(ls >> ev.switches) && ev.switches > 0;
        } else if (key == "factor") {
          ok = static_cast<bool>(ls >> ev.factor) && ev.factor > 0.0;
        } else {
          return fail("unknown event key " + key);
        }
        if (!ok) return fail("bad value for event key " + key);
      }
      spec.events.push_back(std::move(ev));
    } else {
      return fail("unknown directive " + directive);
    }
  }

  if (!saw_header) {
    return invalid_argument_error("empty campaign: missing header");
  }
  if (!saw_base) {
    return invalid_argument_error("campaign has no 'base' directive");
  }
  for (const campaign_event& ev : spec.events) {
    if (ev.year < 1 || ev.year > spec.years) {
      return invalid_argument_error(
          str_format("event %s: year %d outside campaign years [1, %d]",
                     ev.label.c_str(), ev.year, spec.years));
    }
  }
  // Duplicate labels would collide in CSV row names and checkpoints.
  // Linear scan: event lists are tens of entries, and src/campaign is
  // under the R7 hot-path associative-container ban.
  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.events.size(); ++j) {
      if (spec.events[i].label == spec.events[j].label) {
        return invalid_argument_error("duplicate event label " +
                                      spec.events[i].label);
      }
    }
  }
  return spec;
}

std::string serialize_campaign(const campaign_spec& spec) {
  std::string out = "physnet-campaign v1\n";
  if (!spec.name.empty()) out += "name " + spec.name + "\n";
  out += str_format("base %s %d seed %llu\n", spec.family.c_str(), spec.size,
                    static_cast<unsigned long long>(spec.seed));
  out += str_format("years %d\n", spec.years);
  out += str_format("headroom %d\n", spec.headroom);
  out += std::string("option repair ") + (spec.repair ? "on" : "off") + "\n";
  out += "option strategy " + spec.strategy + "\n";
  for (const campaign_event& ev : spec.events) {
    out += str_format("event year %d %s %s", ev.year,
                      campaign_event_kind_name(ev.kind), ev.label.c_str());
    switch (ev.kind) {
      case campaign_event_kind::grow:
      case campaign_event_kind::trunk:
        out += str_format(" steps %d links_per_step %d", ev.steps,
                          ev.links_per_step);
        break;
      case campaign_event_kind::rewire:
      case campaign_event_kind::migrate:
        out += str_format(" steps %d moves_per_step %d", ev.steps,
                          ev.moves_per_step);
        break;
      case campaign_event_kind::upgrade:
        // %.17g: factor must survive serialize-parse exactly so a
        // recompiled campaign replays the identical plan.
        out += str_format(" steps %d factor %.17g", ev.steps, ev.factor);
        break;
      case campaign_event_kind::churn:
        out += str_format(" steps %d kills_per_step %d repair_lag %d",
                          ev.steps, ev.kills_per_step, ev.repair_lag_steps);
        break;
      case campaign_event_kind::decom:
        out += str_format(" switches %d links_per_step %d", ev.switches,
                          ev.links_per_step);
        break;
    }
    out += "\n";
  }
  return out;
}

std::size_t campaign_plan::ops_added() const {
  std::size_t n = 0;
  for (const scenario_step& st : scenario.steps) {
    for (const edge_op& op : st.ops) {
      if (op.kind == edge_op_kind::add) ++n;
    }
  }
  return n;
}

std::size_t campaign_plan::ops_killed() const {
  std::size_t n = 0;
  for (const scenario_step& st : scenario.steps) {
    for (const edge_op& op : st.ops) {
      if (op.kind == edge_op_kind::kill) ++n;
    }
  }
  return n;
}

std::size_t campaign_plan::ops_revived() const {
  std::size_t n = 0;
  for (const scenario_step& st : scenario.steps) {
    for (const edge_op& op : st.ops) {
      if (op.kind == edge_op_kind::revive) ++n;
    }
  }
  return n;
}

std::uint64_t campaign_event_seed(std::uint64_t base_seed,
                                  std::size_t event_index) {
  // Salt the base so event seeds never collide with the sweep's
  // per-point stream (both mix via sweep_point_seed otherwise).
  return sweep_point_seed(base_seed ^ 0xca3517a16e5a17edULL, event_index);
}

result<campaign_plan> compile_campaign(const campaign_spec& spec) {
  if (!placement_strategy_from_name(spec.strategy).has_value()) {
    return invalid_argument_error("unknown strategy " + spec.strategy);
  }
  auto built = build_family(spec.family, spec.size, spec.seed);
  if (!built.is_ok()) return built.error();
  network_graph g = std::move(built).value();

  // §4.1 expansion headroom: generated families come out fully wired,
  // so grow events need reserved ports to land links on.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    g.node(node_id{i}).radix += spec.headroom;
  }

  campaign_plan plan;
  plan.spec = spec;
  plan.base = g;
  plan.scenario.name = spec.name.empty() ? "campaign" : spec.name;
  // Step 0 evaluates the untouched day-1 design.
  plan.scenario.steps.push_back(scenario_step{"day1", {}});

  // Events replay in year order; file order breaks ties so a year's
  // events keep their written sequence.
  std::vector<std::size_t> order(spec.events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return spec.events[a].year < spec.events[b].year;
                   });

  network_graph replica = std::move(g);
  for (const std::size_t ei : order) {
    const campaign_event& ev = spec.events[ei];
    const std::uint64_t eseed = campaign_event_seed(spec.seed, ei);
    deploy_scenario sub;
    switch (ev.kind) {
      case campaign_event_kind::grow:
      case campaign_event_kind::trunk: {
        edge_expansion_params p;
        p.steps = ev.steps;
        p.links_per_step = ev.links_per_step;
        p.parallel_links = ev.kind == campaign_event_kind::trunk;
        p.seed = eseed;
        sub = plan_expansion_edge_scenario(replica, p);
        break;
      }
      case campaign_event_kind::rewire:
      case campaign_event_kind::migrate: {
        edge_migration_params p;
        p.steps = ev.steps;
        p.moves_per_step = ev.moves_per_step;
        p.seed = eseed;
        sub = plan_migration_edge_scenario(replica, p);
        break;
      }
      case campaign_event_kind::upgrade:
        sub = plan_upgrade_edge_scenario(replica, ev.steps, ev.factor,
                                         eseed);
        break;
      case campaign_event_kind::churn: {
        edge_repair_params p;
        p.steps = ev.steps;
        p.kills_per_step = ev.kills_per_step;
        p.repair_lag_steps = ev.repair_lag_steps;
        p.seed = eseed;
        sub = plan_repair_edge_scenario(replica, p);
        break;
      }
      case campaign_event_kind::decom: {
        // The decom planner PN_CHECKs this precondition; a campaign
        // file is user input, so fail softly with the event named.
        std::vector<std::uint8_t> hf(replica.node_count(), 0);
        for (const node_id h : replica.host_facing_nodes()) {
          hf[h.index()] = 1;
        }
        if (std::find(hf.begin(), hf.end(), std::uint8_t{0}) == hf.end()) {
          return invalid_argument_error(
              "event " + ev.label + ": decom retires non-host-facing "
              "switches and family " + spec.family + " has none");
        }
        edge_decom_params p;
        p.switches = ev.switches;
        p.links_per_step = ev.links_per_step;
        p.seed = eseed;
        sub = plan_decom_edge_scenario(replica, p);
        break;
      }
    }
    for (scenario_step& st : sub.steps) {
      scenario_step step;
      step.label = str_format("y%d/", ev.year) + ev.label + "/" + st.label;
      step.ops = std::move(st.ops);
      // Advance the lineage so the next event plans against the fabric
      // this one leaves behind (exact edge ids included).
      apply_scenario_step(replica, step);
      plan.scenario.steps.push_back(std::move(step));
    }
  }
  return plan;
}

sweep_results run_campaign(const campaign_plan& plan,
                           const campaign_run_options& ropt) {
  evaluation_options opt;
  opt.seed = plan.spec.seed;
  opt.run_repair_sim = plan.spec.repair;
  const auto strat = placement_strategy_from_name(plan.spec.strategy);
  PN_CHECK_MSG(strat.has_value(),
               "run_campaign on an uncompiled spec: unknown strategy "
                   << plan.spec.strategy);
  opt.strategy = *strat;

  network_graph g = plan.base;
  const std::vector<sweep_point> grid = scenario_sweep_points(plan.scenario);
  sweep_options sopt;
  sopt.cancel = ropt.cancel;
  sopt.cancel_after_points = ropt.cancel_after_points;
  sopt.checkpoint_path = ropt.checkpoint_path;
  sopt.resume = ropt.resume;
  sopt.scenario_graph = &g;
  sopt.delta_eval = ropt.delta;
  return run_sweep(grid, opt, sopt);
}

campaign_summary summarize_campaign(
    const campaign_plan& plan,
    const std::vector<deployability_report>& reports) {
  PN_CHECK_MSG(!reports.empty(), "cannot summarize an empty campaign run");
  campaign_summary s;
  s.campaign = plan.scenario.name;
  s.family = plan.spec.family;
  s.size = plan.spec.size;
  s.years = plan.spec.years;
  s.evaluations = reports.size();
  s.events = plan.spec.events.size();
  s.ops_added = plan.ops_added();
  s.ops_killed = plan.ops_killed();
  s.ops_revived = plan.ops_revived();

  const deployability_report& day1 = reports.front();
  const deployability_report& last = reports.back();
  s.day1_capex_usd = day1.capex().value();
  s.final_capex_usd = last.capex().value();
  s.day1_time_to_deploy_h = day1.time_to_deploy.value();
  s.final_time_to_deploy_h = last.time_to_deploy.value();
  s.day1_deploy_labor_h = day1.deploy_labor.value();
  s.final_deploy_labor_h = last.deploy_labor.value();
  s.day1_bisection_gbps_per_host = day1.bisection_gbps_per_host;
  s.final_bisection_gbps_per_host = last.bisection_gbps_per_host;
  s.min_bisection_gbps_per_host = day1.bisection_gbps_per_host;
  for (const deployability_report& r : reports) {
    s.min_bisection_gbps_per_host =
        std::min(s.min_bisection_gbps_per_host, r.bisection_gbps_per_host);
  }
  return s;
}

std::string campaign_summary_csv_header() {
  // pn_lint: allow(csv-comma) fixed header row — column names, no data
  return "campaign,family,size,years,evaluations,events,ops_added,"
         "ops_killed,ops_revived,day1_capex_usd,final_capex_usd,"
         "day1_time_to_deploy_h,final_time_to_deploy_h,"
         "day1_deploy_labor_h,final_deploy_labor_h,"
         "day1_bisection_gbps_per_host,min_bisection_gbps_per_host,"
         "final_bisection_gbps_per_host\n";
}

std::string campaign_summary_csv_row(const campaign_summary& s) {
  return csv_field(s.campaign) + ',' + csv_field(s.family) + ',' +
         str_format("%d,%d,%zu,%zu,%zu,%zu,%zu,%.2f,%.2f,%.3f,%.3f,%.3f,"
                    "%.3f,%.4f,%.4f,%.4f",
                    s.size, s.years, s.evaluations, s.events, s.ops_added,
                    s.ops_killed, s.ops_revived, s.day1_capex_usd,
                    s.final_capex_usd, s.day1_time_to_deploy_h,
                    s.final_time_to_deploy_h, s.day1_deploy_labor_h,
                    s.final_deploy_labor_h, s.day1_bisection_gbps_per_host,
                    s.min_bisection_gbps_per_host,
                    s.final_bisection_gbps_per_host) +
         "\n";
}

}  // namespace pn
