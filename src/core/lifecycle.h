// Lifecycle (total-cost-of-ownership) model — §5.4's "tradeoff between
// day-1 costs and longer-term costs", assembled from the library's
// simulators: day-1 capex + deployment labor, expansion campaigns over
// the service life, and the repair/availability opex stream.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/table.h"
#include "core/evaluator.h"
#include "deploy/expansion.h"

namespace pn {

struct lifecycle_options {
  evaluation_options evaluation;
  double service_years = 6.0;
  double labor_rate_per_hour = 120.0;
  // Expansion campaigns executed over the service life (each priced via
  // plan_clos_expansion with this wiring style). Empty = no growth.
  std::vector<clos_expansion_params> expansions;
  // Revenue-side weight of availability: dollars lost per (1 - A) per
  // host per year, to convert the repair sim's availability into money.
  double downtime_cost_per_host_year = 2000.0;
};

struct lifecycle_cost {
  std::string name;
  dollars day1_hardware;
  dollars day1_labor;
  dollars expansion_labor;
  dollars repair_labor;
  dollars downtime_cost;
  [[nodiscard]] dollars day1() const { return day1_hardware + day1_labor; }
  [[nodiscard]] dollars lifetime() const {
    return day1() + expansion_labor + repair_labor + downtime_cost;
  }
  double availability = 1.0;
  std::size_t hosts = 0;
};

// Evaluates the design, replays the configured expansion campaigns, and
// extrapolates the repair simulation to the service life.
[[nodiscard]] result<lifecycle_cost> compute_lifecycle_cost(
    const network_graph& g, const std::string& name,
    const lifecycle_options& opt);

// Comparison table over several lifecycle results.
[[nodiscard]] text_table lifecycle_table(
    const std::vector<lifecycle_cost>& costs);

}  // namespace pn
