// The deployability report: the paper's §5.4 metrics in one struct.
//
// "Internally, we use metrics such as 'time to deploy' (hours of effort),
// cost to deploy, and 'first-pass yield'" — plus the lifecycle metrics of
// Zhang et al. (re-wiring steps, re-wired links per panel) and the
// diversity/locality metrics §5.4 proposes. Everything a design review
// would put next to the traditional throughput numbers.
#pragma once

#include <string>

#include "common/units.h"

namespace pn {

struct deployability_report {
  // Identity.
  std::string name;
  std::string family;
  std::size_t switches = 0;
  std::size_t hosts = 0;
  std::size_t links = 0;

  // Abstract "goodness" (the traditional metrics).
  double mean_path_length = 0.0;
  int diameter = 0;
  double throughput_alpha_uniform = 0.0;  // ECMP uniform-TM scaling factor
  double bisection_gbps_per_host = 0.0;

  // Capital cost.
  dollars switch_cost;
  dollars cable_cost;
  dollars transceiver_cost;
  [[nodiscard]] dollars capex() const {
    return switch_cost + cable_cost + transceiver_cost;
  }
  dollars capex_per_host;

  // Power.
  watts switch_power;
  watts cable_power;

  // Physical deployment.
  hours time_to_deploy;       // makespan with the configured crew
  hours deploy_labor;         // technician hours
  double first_pass_yield = 1.0;
  double bundleability = 0.0;          // fraction of cables in viable bundles
  std::size_t distinct_bundle_skus = 0;
  double optics_fraction = 0.0;        // optical runs / all runs
  double mean_cable_length_m = 0.0;
  double p95_cable_length_m = 0.0;
  double max_tray_fill = 0.0;
  double max_plenum_fill = 0.0;

  // Operations.
  double availability = 1.0;
  hours mean_mttr{0.0};

  // Expansion (family-specific; links that must be physically rewired to
  // add one host-facing switch / unit of capacity).
  double rewires_per_added_switch = 0.0;

  // Wall time the staged evaluator spent producing this report, summed
  // over stages (see evaluation::trace for the per-stage breakdown).
  double eval_total_ms = 0.0;
};

}  // namespace pn
