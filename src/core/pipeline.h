// Staged-pipeline instrumentation for the design evaluator.
//
// evaluate_design is a fixed sequence of stages (topology metrics →
// floor sizing → placement → cabling → bundling → deployment sim →
// repair sim → report). The pipeline runner executes those stages in
// order and records, per stage: wall time, outcome (ok / failed /
// skipped / not_run), stage-specific counters, and the failing status.
// The resulting stage_trace rides on every evaluation, so sweeps can
// attribute both time and failures to a stage instead of reporting an
// opaque error string.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/table.h"

namespace pn {

// The fixed stages of evaluate_design, in execution order.
enum class eval_stage : std::uint8_t {
  topology_metrics,
  floor_sizing,
  placement,
  cabling,
  bundling,
  deploy_sim,
  repair_sim,
  report,
};

inline constexpr std::size_t eval_stage_count = 8;

[[nodiscard]] const char* eval_stage_name(eval_stage s);

// Inverse of eval_stage_name (for CLI fault specs / checkpoint parsing).
[[nodiscard]] std::optional<eval_stage> eval_stage_from_name(
    std::string_view name);

// All stages in execution order (for iteration / CSV headers).
[[nodiscard]] const std::array<eval_stage, eval_stage_count>&
all_eval_stages();

enum class stage_outcome : std::uint8_t {
  not_run,  // an earlier stage failed before this one started
  ok,
  failed,
  skipped,  // disabled by options (e.g. run_repair_sim = false)
};

[[nodiscard]] const char* stage_outcome_name(stage_outcome o);

// One named quantity a stage chose to record (e.g. cabling: "runs").
struct stage_counter {
  std::string name;
  double value = 0.0;
};

struct stage_record {
  eval_stage stage = eval_stage::topology_metrics;
  stage_outcome outcome = stage_outcome::not_run;
  status error;         // meaningful only when outcome == failed
  double wall_ms = 0.0; // > 0 for every stage that actually ran
  std::vector<stage_counter> counters;

  void add_counter(std::string name, double value);
};

// Per-stage trace for one evaluate_design call. Always holds exactly
// eval_stage_count records, one per stage, in execution order.
struct stage_trace {
  stage_trace();

  std::vector<stage_record> stages;

  [[nodiscard]] stage_record& at(eval_stage s);
  [[nodiscard]] const stage_record& at(eval_stage s) const;

  // Sum of wall time across stages that ran.
  [[nodiscard]] double total_ms() const;
  // True iff no stage failed.
  [[nodiscard]] bool ok() const;
  // The first (and only, since failures short-circuit) failing stage.
  [[nodiscard]] std::optional<eval_stage> failed_stage() const;
  // The failing stage's status (ok status when nothing failed).
  [[nodiscard]] status first_error() const;
};

// Pre-stage guards checked by stage_pipeline::run before every stage
// body: cooperative cancellation, a wall-clock deadline for the whole
// pipeline, and a fault hook for deterministic chaos testing. Each guard
// converts into an ordinary stage failure (outcome failed + status), so
// downstream failure handling — sweep_failure records, CSV rows, exit
// codes — needs no special cases.
struct stage_guards {
  // Polled before each stage; a cancelled token fails the next stage
  // with status_code::cancelled. Stages already running finish normally
  // (cooperative drain, never abort).
  cancel_token cancel;

  // Wall-clock budget for the whole pipeline, measured from pipeline
  // construction. 0 = unlimited. Expiry fails the next stage with
  // status_code::deadline_exceeded.
  double deadline_ms = 0.0;

  // Called before each stage; a non-ok return fails that stage with the
  // returned status, without running the stage body. Used by the sweep
  // fault-injection harness (see core/fault.h).
  std::function<status(eval_stage)> fault_hook;

  // Clock used for stage wall times and the deadline (common/clock.h).
  // Null = the real monotonic clock; tests inject a manual_clock to
  // exercise deadline trips without sleeping.
  clock_fn clock;
};

// Runs stages in order against a trace. After a stage fails, subsequent
// run() calls are no-ops (their records stay not_run), so the evaluator
// body can stay a straight line of run() calls with one exit check.
class stage_pipeline {
 public:
  explicit stage_pipeline(stage_trace* trace, stage_guards guards = {});

  // Executes fn (unless a previous stage failed or a guard trips),
  // timing it and storing the outcome. fn receives its stage_record to
  // attach counters.
  status run(eval_stage s, const std::function<status(stage_record&)>& fn);

  // Marks a stage disabled-by-options. Records outcome skipped, zero time.
  void skip(eval_stage s);

  [[nodiscard]] bool failed() const { return failed_; }

 private:
  // Returns the guard failure for stage s, if any guard trips.
  [[nodiscard]] std::optional<status> guard_failure(eval_stage s) const;

  stage_trace* trace_;
  stage_guards guards_;
  mono_ns deadline_ = 0;  // meaningful iff has_deadline_
  bool has_deadline_ = false;
  bool failed_ = false;
};

// Human-readable per-stage table (stage, outcome, wall ms, counters) for
// --trace output and bench timing summaries.
[[nodiscard]] text_table stage_trace_table(const stage_trace& t);

}  // namespace pn
