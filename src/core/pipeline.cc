#include "core/pipeline.h"

#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

const char* eval_stage_name(eval_stage s) {
  switch (s) {
    case eval_stage::topology_metrics:
      return "topology_metrics";
    case eval_stage::floor_sizing:
      return "floor_sizing";
    case eval_stage::placement:
      return "placement";
    case eval_stage::cabling:
      return "cabling";
    case eval_stage::bundling:
      return "bundling";
    case eval_stage::deploy_sim:
      return "deploy_sim";
    case eval_stage::repair_sim:
      return "repair_sim";
    case eval_stage::report:
      return "report";
  }
  return "unknown";
}

std::optional<eval_stage> eval_stage_from_name(std::string_view name) {
  for (const eval_stage s : all_eval_stages()) {
    if (name == eval_stage_name(s)) return s;
  }
  return std::nullopt;
}

const std::array<eval_stage, eval_stage_count>& all_eval_stages() {
  static const std::array<eval_stage, eval_stage_count> stages = {
      eval_stage::topology_metrics, eval_stage::floor_sizing,
      eval_stage::placement,        eval_stage::cabling,
      eval_stage::bundling,         eval_stage::deploy_sim,
      eval_stage::repair_sim,       eval_stage::report,
  };
  return stages;
}

const char* stage_outcome_name(stage_outcome o) {
  switch (o) {
    case stage_outcome::not_run:
      return "not_run";
    case stage_outcome::ok:
      return "ok";
    case stage_outcome::failed:
      return "failed";
    case stage_outcome::skipped:
      return "skipped";
  }
  return "unknown";
}

void stage_record::add_counter(std::string name, double value) {
  counters.push_back(stage_counter{std::move(name), value});
}

stage_trace::stage_trace() {
  stages.resize(eval_stage_count);
  for (std::size_t i = 0; i < eval_stage_count; ++i) {
    stages[i].stage = all_eval_stages()[i];
  }
}

stage_record& stage_trace::at(eval_stage s) {
  return stages[static_cast<std::size_t>(s)];
}

const stage_record& stage_trace::at(eval_stage s) const {
  return stages[static_cast<std::size_t>(s)];
}

double stage_trace::total_ms() const {
  double total = 0.0;
  for (const stage_record& r : stages) total += r.wall_ms;
  return total;
}

bool stage_trace::ok() const {
  for (const stage_record& r : stages) {
    if (r.outcome == stage_outcome::failed) return false;
  }
  return true;
}

std::optional<eval_stage> stage_trace::failed_stage() const {
  for (const stage_record& r : stages) {
    if (r.outcome == stage_outcome::failed) return r.stage;
  }
  return std::nullopt;
}

status stage_trace::first_error() const {
  for (const stage_record& r : stages) {
    if (r.outcome == stage_outcome::failed) return r.error;
  }
  return status::ok();
}

stage_pipeline::stage_pipeline(stage_trace* trace, stage_guards guards)
    : trace_(trace), guards_(std::move(guards)) {
  PN_CHECK(trace != nullptr);
  PN_CHECK(guards_.deadline_ms >= 0.0);
  if (!guards_.clock) guards_.clock = real_clock();
  if (guards_.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ = guards_.clock() + mono_ns_from_ms(guards_.deadline_ms);
  }
}

std::optional<status> stage_pipeline::guard_failure(eval_stage s) const {
  // Cancellation wins over the deadline: both messages are deterministic
  // (no wall times), so failure CSVs from equal runs stay byte-identical.
  if (guards_.cancel.cancelled()) {
    return cancelled_error(std::string("cancelled before stage ") +
                           eval_stage_name(s));
  }
  if (has_deadline_ && guards_.clock() >= deadline_) {
    return deadline_error(std::string("deadline exceeded before stage ") +
                          eval_stage_name(s));
  }
  if (guards_.fault_hook) {
    status injected = guards_.fault_hook(s);
    if (!injected.is_ok()) return injected;
  }
  return std::nullopt;
}

status stage_pipeline::run(eval_stage s,
                           const std::function<status(stage_record&)>& fn) {
  stage_record& rec = trace_->at(s);
  if (failed_) return trace_->first_error();  // record stays not_run

  if (std::optional<status> tripped = guard_failure(s)) {
    // The stage body never ran: outcome failed, zero wall time.
    rec.outcome = stage_outcome::failed;
    rec.error = *tripped;
    failed_ = true;
    return *tripped;
  }

  const mono_ns start = guards_.clock();
  status st = fn(rec);
  const double ms = mono_ms_between(start, guards_.clock());
  // The monotonic clock can legally tick coarser than the stage's
  // runtime; clamp so "this stage ran" is always visible in the trace.
  rec.wall_ms = ms > 0.0 ? ms : 1e-6;

  if (st.is_ok()) {
    rec.outcome = stage_outcome::ok;
  } else {
    rec.outcome = stage_outcome::failed;
    rec.error = st;
    failed_ = true;
  }
  return st;
}

void stage_pipeline::skip(eval_stage s) {
  if (failed_) return;
  trace_->at(s).outcome = stage_outcome::skipped;
}

text_table stage_trace_table(const stage_trace& t) {
  text_table tbl({"stage", "outcome", "wall_ms", "counters"});
  for (const stage_record& r : t.stages) {
    std::vector<std::string> parts;
    parts.reserve(r.counters.size());
    for (const stage_counter& c : r.counters) {
      parts.push_back(str_format("%s=%.0f", c.name.c_str(), c.value));
    }
    tbl.row()
        .cell(eval_stage_name(r.stage))
        .cell(stage_outcome_name(r.outcome))
        .cell(r.wall_ms, 3)
        .cell(join(parts, " "));
  }
  return tbl;
}

}  // namespace pn
