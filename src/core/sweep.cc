#include "core/sweep.h"

#include <sstream>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace pn {

std::string sweep_failure::to_string() const {
  return label + ": [" + eval_stage_name(stage) + "] " + error.to_string();
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::size_t point_index) {
  // splitmix64 finalizer over base + (index+1)·golden-gamma: index 0 must
  // not collapse onto the base seed itself.
  std::uint64_t z = base_seed + (static_cast<std::uint64_t>(point_index) + 1) *
                                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

sweep_results run_sweep(const std::vector<sweep_point>& grid,
                        const evaluation_options& opt,
                        const sweep_options& sopt) {
  // Each point writes only its own slot, so workers never contend;
  // ordering is restored by the assembly loop below.
  struct point_slot {
    bool ok = false;
    deployability_report report;
    stage_trace trace;
    sweep_failure failure;
  };
  std::vector<point_slot> slots(grid.size());

  const int jobs = sopt.jobs == 0 ? default_thread_count() : sopt.jobs;
  parallel_for(jobs, grid.size(), [&](std::size_t i) {
    const sweep_point& point = grid[i];
    evaluation_options popt = opt;
    popt.seed = sweep_point_seed(opt.seed, i);
    // A parallel sweep already keeps every core busy; nested distance-
    // cache warming would only oversubscribe. (Warm threads never affect
    // results, so jobs=N stays bit-identical to jobs=1.)
    if (jobs > 1) popt.distance_warm_threads = 1;
    const network_graph g = point.build();
    evaluation ev = evaluate_design_staged(g, point.label, popt);
    point_slot& slot = slots[i];
    if (ev.trace.ok()) {
      slot.ok = true;
      slot.report = std::move(ev.report);
      slot.trace = std::move(ev.trace);
    } else {
      slot.failure = sweep_failure{i, point.label, *ev.trace.failed_stage(),
                                   ev.trace.first_error()};
    }
  });

  sweep_results out;
  for (point_slot& slot : slots) {
    if (slot.ok) {
      out.reports.push_back(std::move(slot.report));
      out.traces.push_back(std::move(slot.trace));
    } else {
      out.failures.push_back(std::move(slot.failure));
    }
  }
  return out;
}

std::string sweep_to_csv(const sweep_results& results,
                         const sweep_csv_options& copt) {
  std::ostringstream out;
  out << "name,family,switches,hosts,links,mean_path,diameter,"
         "tput_alpha_uniform,bisection_gbps_per_host,switch_cost_usd,"
         "cable_cost_usd,transceiver_cost_usd,capex_usd,capex_per_host_usd,"
         "switch_power_w,cable_power_w,time_to_deploy_h,deploy_labor_h,"
         "first_pass_yield,bundleability,distinct_bundle_skus,"
         "optics_fraction,mean_cable_length_m,p95_cable_length_m,"
         "max_tray_fill,max_plenum_fill,availability,mean_mttr_h,"
         "rewires_per_added_switch";
  if (copt.stage_timings) {
    out << ",t_total_ms";
    for (const eval_stage s : all_eval_stages()) {
      out << ",t_" << eval_stage_name(s) << "_ms";
    }
  }
  out << "\n";
  for (std::size_t i = 0; i < results.reports.size(); ++i) {
    const deployability_report& r = results.reports[i];
    out << csv_field(r.name) << ',' << csv_field(r.family) << ','
        << str_format(
               "%zu,%zu,%zu,%.4f,%d,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,"
               "%.1f,%.1f,%.3f,%.3f,%.5f,%.4f,%zu,%.4f,%.2f,%.2f,%.4f,"
               "%.4f,%.6f,%.3f,%.2f",
               r.switches, r.hosts, r.links, r.mean_path_length, r.diameter,
               r.throughput_alpha_uniform, r.bisection_gbps_per_host,
               r.switch_cost.value(), r.cable_cost.value(),
               r.transceiver_cost.value(), r.capex().value(),
               r.capex_per_host.value(), r.switch_power.value(),
               r.cable_power.value(), r.time_to_deploy.value(),
               r.deploy_labor.value(), r.first_pass_yield, r.bundleability,
               r.distinct_bundle_skus, r.optics_fraction,
               r.mean_cable_length_m, r.p95_cable_length_m, r.max_tray_fill,
               r.max_plenum_fill, r.availability, r.mean_mttr.value(),
               r.rewires_per_added_switch);
    if (copt.stage_timings && i < results.traces.size()) {
      const stage_trace& t = results.traces[i];
      out << str_format(",%.3f", t.total_ms());
      for (const eval_stage s : all_eval_stages()) {
        out << str_format(",%.3f", t.at(s).wall_ms);
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string sweep_failures_to_csv(const sweep_results& results) {
  std::ostringstream out;
  out << "point_index,label,stage,status,message\n";
  for (const sweep_failure& f : results.failures) {
    out << f.point_index << ',' << csv_field(f.label) << ','
        << eval_stage_name(f.stage) << ','
        << status_code_name(f.error.code()) << ','
        << csv_field(f.error.message()) << "\n";
  }
  return out.str();
}

}  // namespace pn
