#include "core/sweep.h"

#include <atomic>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "topology/incremental.h"

namespace pn {

std::string sweep_failure::to_string() const {
  return label + ": [" + eval_stage_name(stage) + "] " + error.to_string();
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::size_t point_index) {
  // splitmix64 finalizer over base + (index+1)·golden-gamma: index 0 must
  // not collapse onto the base seed itself.
  std::uint64_t z = base_seed + (static_cast<std::uint64_t>(point_index) + 1) *
                                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

sweep_results run_sweep(const std::vector<sweep_point>& grid,
                        const evaluation_options& opt,
                        const sweep_options& sopt) {
  // Each point writes only its own slot, so workers never contend;
  // ordering is restored by the assembly loop below.
  struct point_slot {
    enum class state : std::uint8_t {
      pending,    // never dispatched (or drained before starting)
      ok,         // completed with a report
      failed,     // completed with a structured failure
      cancelled,  // interrupted between stages — a resume re-runs it
      restored,   // taken from the resume checkpoint, not re-evaluated
    };
    state st = state::pending;
    bool restored_ok = false;  // meaningful when st == restored
    deployability_report report;
    stage_trace trace;
    sweep_failure failure;
  };
  std::vector<point_slot> slots(grid.size());

  // Scenario mode: one evolving graph, strictly serial, optionally
  // delta-evaluated through a single persistent incremental_metrics.
  // Resume works here too: the caller passes the same base graph the
  // original run started from, restored points replay their mutations
  // (cheap) while skipping evaluation (expensive), so live points see
  // exactly the graph the original run would have handed them.
  const bool scenario_mode = sopt.scenario_graph != nullptr;
  std::optional<incremental_metrics> delta;
  if (scenario_mode && sopt.delta_eval) {
    delta.emplace(*sopt.scenario_graph, opt.traffic_per_host);
  }

  // Resume: splice previously completed points straight into their slots.
  if (sopt.resume != nullptr) {
    PN_CHECK_MSG(sopt.resume->base_seed == opt.seed,
                 "resume checkpoint seed " << sopt.resume->base_seed
                                           << " != sweep seed " << opt.seed);
    PN_CHECK_MSG(sopt.resume->point_count == grid.size(),
                 "resume checkpoint has " << sopt.resume->point_count
                                          << " points, grid has "
                                          << grid.size());
    for (const auto& [index, entry] : sopt.resume->entries) {
      const std::uint64_t expected =
          index < grid.size() && grid[index].seed.has_value()
              ? *grid[index].seed
              : sweep_point_seed(opt.seed, index);
      PN_CHECK_MSG(entry.seed == expected,
                   "checkpoint entry " << index
                                       << " has a foreign per-point seed");
      point_slot& slot = slots[index];
      slot.st = point_slot::state::restored;
      slot.restored_ok = entry.ok;
      if (entry.ok) {
        slot.report = entry.report;
      } else {
        slot.failure =
            sweep_failure{index, entry.label, entry.stage, entry.error};
      }
    }
  }

  sweep_checkpoint_writer checkpoint;
  if (!sopt.checkpoint_path.empty()) {
    const status st =
        checkpoint.open(sopt.checkpoint_path, opt.seed, grid.size());
    PN_CHECK_MSG(st.is_ok(), st.to_string());
  }

  const cancel_token& cancel = sopt.cancel;
  std::atomic<std::size_t> completed{0};
  const auto note_completion = [&] {
    const std::size_t done = completed.fetch_add(1) + 1;
    if (sopt.cancel_after_points > 0 && done >= sopt.cancel_after_points) {
      cancel.request_cancel();
    }
  };

  // Scenario points depend on each other's mutations: force the serial
  // inline path (parallel_for with threads <= 1 runs indices in ascending
  // order on the caller's thread).
  const int jobs = scenario_mode
                       ? 1
                       : (sopt.jobs == 0 ? default_thread_count() : sopt.jobs);
  parallel_for(
      jobs, grid.size(),
      [&](std::size_t i) {
        point_slot& slot = slots[i];
        if (slot.st == point_slot::state::restored) {
          // A restored scenario point still owns a graph edit that
          // every later point depends on (failed points included:
          // evolve ran before the evaluation failed). Replay it.
          if (scenario_mode && grid[i].evolve) {
            grid[i].evolve(*sopt.scenario_graph);
          }
          return;
        }
        if (cancel.cancelled()) return;  // slot stays pending

        const sweep_point& point = grid[i];
        evaluation_options popt = opt;
        popt.seed = point.seed.has_value() ? *point.seed
                                           : sweep_point_seed(opt.seed, i);
        // A parallel sweep already keeps every core busy; nested distance-
        // cache warming would only oversubscribe. (Warm threads never
        // affect results, so jobs=N stays bit-identical to jobs=1.)
        if (jobs > 1) popt.distance_warm_threads = 1;
        popt.cancel = cancel;
        popt.deadline_ms = sopt.point_deadline_ms;
        if (!sopt.faults.empty()) {
          const fault_plan& faults = sopt.faults;
          popt.fault_hook = [i, &faults](eval_stage s) -> status {
            if (faults.should_fail(i, s)) {
              return fault_plan::injected_status(i, s);
            }
            return status::ok();
          };
        }

        network_graph built;
        if (scenario_mode) {
          if (point.evolve) point.evolve(*sopt.scenario_graph);
          if (delta.has_value()) popt.delta = &*delta;
        } else {
          built = point.build();
        }
        const network_graph& g =
            scenario_mode ? *sopt.scenario_graph : built;
        evaluation ev = evaluate_design_staged(g, point.label, popt);
        if (ev.trace.ok()) {
          slot.st = point_slot::state::ok;
          slot.report = std::move(ev.report);
          slot.trace = std::move(ev.trace);
          if (checkpoint.is_open()) {
            checkpoint.append(sweep_checkpoint_entry{
                i, popt.seed, true, slot.report, slot.report.name,
                eval_stage::topology_metrics, status::ok()});
          }
          note_completion();
          return;
        }
        const status err = ev.trace.first_error();
        if (err.code() == status_code::cancelled) {
          // Interrupted between stages: not an outcome, just undone work.
          // Deliberately not checkpointed, so a resume re-runs the point.
          slot.st = point_slot::state::cancelled;
          return;
        }
        slot.st = point_slot::state::failed;
        slot.failure =
            sweep_failure{i, point.label, *ev.trace.failed_stage(), err};
        if (checkpoint.is_open()) {
          checkpoint.append(sweep_checkpoint_entry{
              i, popt.seed, false, deployability_report{}, slot.failure.label,
              slot.failure.stage, slot.failure.error});
        }
        note_completion();
      },
      cancel);

  sweep_results out;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    point_slot& slot = slots[i];
    switch (slot.st) {
      case point_slot::state::ok:
        out.reports.push_back(std::move(slot.report));
        out.traces.push_back(std::move(slot.trace));
        break;
      case point_slot::state::restored:
        ++out.resumed_points;
        if (slot.restored_ok) {
          out.reports.push_back(std::move(slot.report));
          out.traces.emplace_back();  // this run did not execute the stages
        } else {
          out.failures.push_back(std::move(slot.failure));
        }
        break;
      case point_slot::state::failed:
        out.failures.push_back(std::move(slot.failure));
        break;
      case point_slot::state::pending:
      case point_slot::state::cancelled:
        out.cancelled_points.push_back(i);
        break;
    }
  }
  out.cancelled = cancel.cancelled();
  return out;
}

std::vector<sweep_point> scenario_sweep_points(const deploy_scenario& sc) {
  std::vector<sweep_point> out;
  out.reserve(sc.steps.size());
  for (const scenario_step& step : sc.steps) {
    sweep_point pt;
    pt.label = step.label;
    pt.evolve = [step](network_graph& g) { apply_scenario_step(g, step); };
    out.push_back(std::move(pt));
  }
  return out;
}

std::string sweep_to_csv(const sweep_results& results,
                         const sweep_csv_options& copt) {
  std::ostringstream out;
  // pn_lint: allow(csv-comma) fixed header row — column names, no data fields
  out << "name,family,switches,hosts,links,mean_path,diameter,"
         "tput_alpha_uniform,bisection_gbps_per_host,switch_cost_usd,"
         "cable_cost_usd,transceiver_cost_usd,capex_usd,capex_per_host_usd,"
         "switch_power_w,cable_power_w,time_to_deploy_h,deploy_labor_h,"
         "first_pass_yield,bundleability,distinct_bundle_skus,"
         "optics_fraction,mean_cable_length_m,p95_cable_length_m,"
         "max_tray_fill,max_plenum_fill,availability,mean_mttr_h,"
         "rewires_per_added_switch";
  if (copt.stage_timings) {
    out << ",t_total_ms";  // pn_lint: allow(csv-comma) fixed header column
    for (const eval_stage s : all_eval_stages()) {
      // pn_lint: allow(csv-comma) stage names are [a-z_] identifiers
      out << ",t_" << eval_stage_name(s) << "_ms";
    }
  }
  out << "\n";
  for (std::size_t i = 0; i < results.reports.size(); ++i) {
    const deployability_report& r = results.reports[i];
    out << csv_field(r.name) << ',' << csv_field(r.family) << ','
        << str_format(
               "%zu,%zu,%zu,%.4f,%d,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,"
               "%.1f,%.1f,%.3f,%.3f,%.5f,%.4f,%zu,%.4f,%.2f,%.2f,%.4f,"
               "%.4f,%.6f,%.3f,%.2f",
               r.switches, r.hosts, r.links, r.mean_path_length, r.diameter,
               r.throughput_alpha_uniform, r.bisection_gbps_per_host,
               r.switch_cost.value(), r.cable_cost.value(),
               r.transceiver_cost.value(), r.capex().value(),
               r.capex_per_host.value(), r.switch_power.value(),
               r.cable_power.value(), r.time_to_deploy.value(),
               r.deploy_labor.value(), r.first_pass_yield, r.bundleability,
               r.distinct_bundle_skus, r.optics_fraction,
               r.mean_cable_length_m, r.p95_cable_length_m, r.max_tray_fill,
               r.max_plenum_fill, r.availability, r.mean_mttr.value(),
               r.rewires_per_added_switch);
    if (copt.stage_timings && i < results.traces.size()) {
      const stage_trace& t = results.traces[i];
      // pn_lint: allow(csv-comma) numeric-only fields, nothing to escape
      out << str_format(",%.3f", t.total_ms());
      for (const eval_stage s : all_eval_stages()) {
        // pn_lint: allow(csv-comma) numeric-only fields, nothing to escape
        out << str_format(",%.3f", t.at(s).wall_ms);
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string sweep_failures_to_csv(const sweep_results& results) {
  std::ostringstream out;
  // pn_lint: allow(csv-comma) fixed header row — column names, no data fields
  out << "point_index,label,stage,status,message\n";
  for (const sweep_failure& f : results.failures) {
    out << f.point_index << ',' << csv_field(f.label) << ','
        << eval_stage_name(f.stage) << ','
        << status_code_name(f.error.code()) << ','
        << csv_field(f.error.message()) << "\n";
  }
  return out.str();
}

}  // namespace pn
