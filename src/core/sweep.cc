#include "core/sweep.h"

#include <sstream>

#include "common/strings.h"

namespace pn {

sweep_results run_sweep(const std::vector<sweep_point>& grid,
                        const evaluation_options& opt) {
  sweep_results out;
  for (const sweep_point& point : grid) {
    const network_graph g = point.build();
    auto ev = evaluate_design(g, point.label, opt);
    if (ev.is_ok()) {
      out.reports.push_back(std::move(ev).value().report);
    } else {
      out.failures.push_back(point.label + ": " + ev.error().to_string());
    }
  }
  return out;
}

std::string sweep_to_csv(const sweep_results& results) {
  std::ostringstream out;
  out << "name,family,switches,hosts,links,mean_path,diameter,"
         "tput_alpha_uniform,bisection_gbps_per_host,switch_cost_usd,"
         "cable_cost_usd,transceiver_cost_usd,capex_usd,capex_per_host_usd,"
         "switch_power_w,cable_power_w,time_to_deploy_h,deploy_labor_h,"
         "first_pass_yield,bundleability,distinct_bundle_skus,"
         "optics_fraction,mean_cable_length_m,p95_cable_length_m,"
         "max_tray_fill,max_plenum_fill,availability,mean_mttr_h,"
         "rewires_per_added_switch\n";
  for (const deployability_report& r : results.reports) {
    out << str_format(
        "%s,%s,%zu,%zu,%zu,%.4f,%d,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,"
        "%.1f,%.1f,%.3f,%.3f,%.5f,%.4f,%zu,%.4f,%.2f,%.2f,%.4f,%.4f,"
        "%.6f,%.3f,%.2f\n",
        r.name.c_str(), r.family.c_str(), r.switches, r.hosts, r.links,
        r.mean_path_length, r.diameter, r.throughput_alpha_uniform,
        r.bisection_gbps_per_host, r.switch_cost.value(),
        r.cable_cost.value(), r.transceiver_cost.value(),
        r.capex().value(), r.capex_per_host.value(),
        r.switch_power.value(), r.cable_power.value(),
        r.time_to_deploy.value(), r.deploy_labor.value(),
        r.first_pass_yield, r.bundleability, r.distinct_bundle_skus,
        r.optics_fraction, r.mean_cable_length_m, r.p95_cable_length_m,
        r.max_tray_fill, r.max_plenum_fill, r.availability,
        r.mean_mttr.value(), r.rewires_per_added_switch);
  }
  return out.str();
}

}  // namespace pn
