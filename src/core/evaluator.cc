#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.h"
#include "common/stats.h"
#include "topology/incremental.h"
#include "topology/metrics.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {

const char* placement_strategy_name(placement_strategy s) {
  switch (s) {
    case placement_strategy::block:
      return "block";
    case placement_strategy::random:
      return "random";
    case placement_strategy::annealed:
      return "annealed";
  }
  return "unknown";
}

std::optional<placement_strategy> placement_strategy_from_name(
    std::string_view name) {
  for (const placement_strategy s :
       {placement_strategy::block, placement_strategy::random,
        placement_strategy::annealed}) {
    if (name == placement_strategy_name(s)) return s;
  }
  return std::nullopt;
}

floorplan_params auto_size_floor(const network_graph& g,
                                 const floorplan_params& base,
                                 double headroom) {
  PN_CHECK(headroom >= 0.0);
  // Racks are filled in block order by the placer, so estimate the count
  // by replaying that greedy packing — a pure RU sum undercounts when
  // large ToR+server footprints fragment racks.
  int racks = 1;
  int free_in_rack = base.rack_units;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const int ru = node_rack_units(g, node_id{i});
    PN_CHECK_MSG(ru <= base.rack_units,
                 "switch " << g.node(node_id{i}).name << " needs " << ru
                           << " RU, rack has " << base.rack_units);
    if (ru > free_in_rack) {
      ++racks;
      free_in_rack = base.rack_units;
    }
    free_in_rack -= ru;
  }
  const double racks_needed =
      std::ceil(static_cast<double>(racks) * (1.0 + headroom));
  // Near 2:1 aspect (rows of racks are long in real floors).
  const int rows = std::max(
      2, static_cast<int>(std::floor(std::sqrt(racks_needed / 2.0))));
  const int per_row = static_cast<int>(
      std::ceil(racks_needed / static_cast<double>(rows)));

  floorplan_params p = base;
  p.rows = rows;
  p.racks_per_row = std::max(per_row, 2);
  return p;
}

evaluation evaluate_design_staged(const network_graph& g,
                                  const std::string& name,
                                  const evaluation_options& opt) {
  PN_CHECK(g.node_count() > 0);

  // The evaluation owns its floorplan (tray occupancy is mutated by
  // cabling) and its catalog (cable runs point into it) — build
  // everything in place. The floor/placement here are templates; the
  // floor_sizing stage replaces them with the sized versions.
  evaluation ev{deployability_report{},
                opt.cat,
                floorplan(opt.floor),
                placement(g.node_count(), floorplan(opt.floor)),
                cabling_plan{},
                bundling_report{},
                tech_sim_result{},
                repair_sim_result{},
                stage_trace{}};
  deployability_report& rep = ev.report;
  stage_pipeline pipe(&ev.trace,
                      stage_guards{opt.cancel, opt.deadline_ms,
                                   opt.fault_hook, opt.clock});

  // One CSR snapshot + BFS distance cache for the whole evaluation: the
  // topology-metrics stage fills the host-facing rows once and every
  // later consumer (ECMP loads, bisection seeding, the repair sim's
  // reachability checks) reads them back instead of re-running BFS. In
  // delta mode the cache belongs to the caller's incremental evaluator —
  // rows repaired across evaluations instead of rebuilt.
  std::optional<distance_cache> local_dcache;
  if (opt.delta == nullptr) local_dcache.emplace(g);
  distance_cache& dcache =
      opt.delta != nullptr ? opt.delta->dcache() : *local_dcache;

  // Stage 1: abstract topology metrics (the traditional numbers the
  // paper wants deployability metrics to sit beside).
  // Every stage's status latches into the trace (a failed stage turns the
  // rest into no-ops), and evaluate() checks trace.first_error() once after
  // report assembly — so each run() discard below is the deliberate
  // fire-and-check-at-end idiom, not a dropped error.
  path_length_stats pls{};
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::topology_metrics, [&](stage_record& rec) -> status {
    if (opt.delta != nullptr) {
      PN_CHECK_MSG(&opt.delta->graph() == &g,
                   "delta evaluator is bound to a different graph");
      PN_CHECK_MSG(opt.delta->traffic_per_host().value() ==
                       opt.traffic_per_host.value(),
                   "delta evaluator traffic rate mismatch");
      pls = opt.delta->path_stats();
      if (opt.run_throughput) {
        rep.throughput_alpha_uniform = opt.delta->ecmp_throughput().alpha;
        rep.bisection_gbps_per_host =
            estimate_bisection(g, opt.seed, 32, dcache).per_host_gbps;
      }
      rec.add_counter("rows_kept",
                      static_cast<double>(dcache.rows_kept()));
      rec.add_counter("rows_dropped",
                      static_cast<double>(dcache.rows_dropped()));
    } else {
      const std::vector<node_id> host_facing = g.host_facing_nodes();
      dcache.warm_all(host_facing, opt.distance_warm_threads);
      pls = compute_path_length_stats(g, dcache);
      if (opt.run_throughput) {
        const traffic_matrix tm = uniform_traffic(g, opt.traffic_per_host);
        rep.throughput_alpha_uniform = ecmp_throughput(g, tm, dcache).alpha;
        rep.bisection_gbps_per_host =
            estimate_bisection(g, opt.seed, 32, dcache).per_host_gbps;
      }
    }
    rec.add_counter("switches", static_cast<double>(g.node_count()));
    rec.add_counter("links",
                    static_cast<double>(dcache.csr().live_edge_count()));
    rec.add_counter("bfs_rows", static_cast<double>(dcache.rows_cached()));
    return status::ok();
  });

  // Stage 2: size the floor and rebuild the physical substrate on it.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::floor_sizing, [&](stage_record& rec) -> status {
    const floorplan_params fpp =
        opt.auto_size_floor
            ? auto_size_floor(g, opt.floor, opt.floor_headroom)
            : opt.floor;
    ev.floor = floorplan(fpp);
    ev.place = placement(g.node_count(), ev.floor);
    rec.add_counter("racks", static_cast<double>(ev.floor.rack_count()));
    rec.add_counter("rows", static_cast<double>(fpp.rows));
    return status::ok();
  });

  // Stage 3: placement.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::placement, [&](stage_record& rec) -> status {
    result<placement> placed = [&]() -> result<placement> {
      switch (opt.strategy) {
        case placement_strategy::block:
          return block_placement(g, ev.floor);
        case placement_strategy::random:
          return random_placement(g, ev.floor, opt.seed);
        case placement_strategy::annealed: {
          auto start = block_placement(g, ev.floor);
          if (!start.is_ok()) return start.error();
          anneal_options a = opt.anneal;
          a.seed = opt.seed;
          return anneal_placement(g, ev.floor, ev.cat,
                                  std::move(start).value(), a);
        }
      }
      return invalid_argument_error("unknown placement strategy");
    }();
    if (!placed.is_ok()) return placed.error();
    ev.place = std::move(placed).value();

    std::vector<std::size_t> racks_used;
    racks_used.reserve(g.node_count());
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      racks_used.push_back(ev.place.rack_of(node_id{i}).index());
    }
    std::sort(racks_used.begin(), racks_used.end());
    racks_used.erase(std::unique(racks_used.begin(), racks_used.end()),
                     racks_used.end());
    rec.add_counter("racks_used", static_cast<double>(racks_used.size()));
    return status::ok();
  });

  // Stage 4: cabling.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::cabling, [&](stage_record& rec) -> status {
    auto plan = plan_cabling(g, ev.place, ev.floor, ev.cat, opt.cabling);
    if (!plan.is_ok()) return plan.error();
    ev.cables = std::move(plan).value();
    rec.add_counter("runs", static_cast<double>(ev.cables.runs.size()));
    rec.add_counter("optical_runs",
                    static_cast<double>(ev.cables.optical_runs));
    return status::ok();
  });

  // Stage 5: bundling.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::bundling, [&](stage_record& rec) -> status {
    ev.bundles = analyze_bundling(ev.cables, opt.deployment.bundling);
    rec.add_counter("distinct_skus",
                    static_cast<double>(ev.bundles.distinct_skus));
    return status::ok();
  });

  // Stage 6: deployment simulation.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::deploy_sim, [&](stage_record& rec) -> status {
    const work_order wo =
        build_deployment_order(g, ev.place, ev.floor, ev.cables,
                               opt.deployment);
    tech_sim_params tsp = opt.technicians;
    tsp.seed = opt.seed;
    auto deploy_result = simulate_deployment(wo, tsp);
    if (!deploy_result.is_ok()) return deploy_result.error();
    ev.deployment = deploy_result.value();
    rec.add_counter("tasks",
                    static_cast<double>(ev.deployment.tasks_executed));
    rec.add_counter("defects_introduced",
                    static_cast<double>(ev.deployment.defects_introduced));
    return status::ok();
  });

  // Stage 7: repair simulation (optional).
  if (opt.run_repair_sim) {
    // pn_lint: allow(unchecked-status) status latches into the trace
    (void)pipe.run(eval_stage::repair_sim, [&](stage_record& rec) -> status {
      repair_params rp = opt.repair;
      rp.seed = opt.seed + 17;
      ev.repairs = simulate_repairs(g, ev.place, ev.floor, ev.cables,
                                    ev.cat, rp, dcache);
      rec.add_counter("failures",
                      static_cast<double>(ev.repairs.switch_failures +
                                          ev.repairs.port_failures +
                                          ev.repairs.cable_failures +
                                          ev.repairs.feed_failures));
      rec.add_counter("partitioning",
                      static_cast<double>(ev.repairs.partitioning_repairs));
      return status::ok();
    });
  } else {
    pipe.skip(eval_stage::repair_sim);
  }

  // Stage 8: report assembly.
  // pn_lint: allow(unchecked-status) status latches into the trace
  (void)pipe.run(eval_stage::report, [&](stage_record&) -> status {
    rep.name = name;
    rep.family = g.family;
    rep.switches = g.node_count();
    rep.hosts = g.total_hosts();
    rep.links = g.live_edges().size();
    rep.mean_path_length = pls.mean;
    rep.diameter = pls.diameter;

    for (std::size_t i = 0; i < g.node_count(); ++i) {
      const node_info& n = g.node(node_id{i});
      rep.switch_cost += ev.cat.switches().cost(n.radix, n.port_rate);
      rep.switch_power += ev.cat.switches().power(n.radix, n.port_rate);
    }
    rep.cable_cost = ev.cables.cable_cost;
    rep.transceiver_cost = ev.cables.transceiver_cost;
    rep.cable_power = ev.cables.cable_power;
    rep.capex_per_host =
        rep.hosts > 0 ? rep.capex() / static_cast<double>(rep.hosts)
                      : dollars{0.0};

    rep.time_to_deploy = ev.deployment.makespan;
    rep.deploy_labor = ev.deployment.labor;
    rep.first_pass_yield = ev.deployment.first_pass_yield;
    rep.bundleability = ev.bundles.bundleability;
    rep.distinct_bundle_skus = ev.bundles.distinct_skus;
    rep.optics_fraction =
        !ev.cables.runs.empty()
            ? static_cast<double>(ev.cables.optical_runs) /
                  static_cast<double>(ev.cables.runs.size())
            : 0.0;

    sample_stats lengths;
    for (const cable_run& r : ev.cables.runs) {
      lengths.add(r.length.value());
    }
    if (!lengths.empty()) {
      rep.mean_cable_length_m = lengths.mean();
      rep.p95_cable_length_m = lengths.percentile(0.95);
    }
    rep.max_tray_fill = ev.cables.max_tray_fill;
    for (const auto& [rk, fill] : ev.cables.plenum_fill) {
      rep.max_plenum_fill = std::max(rep.max_plenum_fill, fill);
    }

    rep.availability = ev.repairs.availability;
    rep.mean_mttr = ev.repairs.mean_mttr;
    return status::ok();
  });

  rep.eval_total_ms = ev.trace.total_ms();
  return ev;
}

result<evaluation> evaluate_design(const network_graph& g,
                                   const std::string& name,
                                   const evaluation_options& opt) {
  evaluation ev = evaluate_design_staged(g, name, opt);
  if (ev.trace.ok()) return ev;
  const status err = ev.trace.first_error();
  return status(err.code(),
                std::string(eval_stage_name(*ev.trace.failed_stage())) +
                    ": " + err.message());
}

}  // namespace pn
