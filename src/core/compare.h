// Side-by-side design comparison — the table §4.2 implies when asking why
// expanders are not deployed: abstract wins in one column block, physical
// costs in the next.
#pragma once

#include <vector>

#include "common/table.h"
#include "core/report.h"

namespace pn {

// Abstract metrics: hosts, path length, diameter, throughput, bisection.
[[nodiscard]] text_table abstract_metrics_table(
    const std::vector<deployability_report>& reports);

// Capex/power: switch, cable, transceiver cost; $/host; watts.
[[nodiscard]] text_table cost_table(
    const std::vector<deployability_report>& reports);

// Physical deployability: time-to-deploy, labor, yield, bundleability,
// SKUs, optics share, cable lengths, tray/plenum fill.
[[nodiscard]] text_table deployability_table(
    const std::vector<deployability_report>& reports);

// Operations: availability, MTTR, expansion rewires.
[[nodiscard]] text_table operations_table(
    const std::vector<deployability_report>& reports);

}  // namespace pn
