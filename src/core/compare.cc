#include "core/compare.h"

#include "common/strings.h"

namespace pn {

text_table abstract_metrics_table(
    const std::vector<deployability_report>& reports) {
  text_table t({"design", "switches", "hosts", "links", "mean path", "diam",
                "tput alpha", "bisect Gbps/host"});
  for (const auto& r : reports) {
    t.row()
        .cell(r.name)
        .cell(r.switches)
        .cell(r.hosts)
        .cell(r.links)
        .cell(r.mean_path_length, 2)
        .cell(r.diameter)
        .cell(r.throughput_alpha_uniform, 2)
        .cell(r.bisection_gbps_per_host, 1);
  }
  return t;
}

text_table cost_table(const std::vector<deployability_report>& reports) {
  text_table t({"design", "switch capex", "cable capex", "optics capex",
                "total", "$/host", "switch kW", "cable kW"});
  for (const auto& r : reports) {
    t.row()
        .cell(r.name)
        .cell(human_dollars(r.switch_cost.value()))
        .cell(human_dollars(r.cable_cost.value()))
        .cell(human_dollars(r.transceiver_cost.value()))
        .cell(human_dollars(r.capex().value()))
        .cell(human_dollars(r.capex_per_host.value()))
        .cell(r.switch_power.value() / 1000.0, 1)
        .cell(r.cable_power.value() / 1000.0, 1);
  }
  return t;
}

text_table deployability_table(
    const std::vector<deployability_report>& reports) {
  text_table t({"design", "deploy h", "labor h", "yield", "bundleable",
                "SKUs", "optics", "mean len m", "p95 len m", "tray fill",
                "plenum fill"});
  for (const auto& r : reports) {
    t.row()
        .cell(r.name)
        .cell(r.time_to_deploy.value(), 1)
        .cell(r.deploy_labor.value(), 1)
        .cell_pct(r.first_pass_yield, 2)
        .cell_pct(r.bundleability)
        .cell(r.distinct_bundle_skus)
        .cell_pct(r.optics_fraction)
        .cell(r.mean_cable_length_m, 1)
        .cell(r.p95_cable_length_m, 1)
        .cell_pct(r.max_tray_fill)
        .cell_pct(r.max_plenum_fill);
  }
  return t;
}

text_table operations_table(
    const std::vector<deployability_report>& reports) {
  text_table t({"design", "availability", "mean MTTR h",
                "rewires/added switch"});
  for (const auto& r : reports) {
    t.row()
        .cell(r.name)
        .cell(str_format("%.5f", r.availability))
        .cell(r.mean_mttr.value(), 2)
        .cell(r.rewires_per_added_switch, 1);
  }
  return t;
}

}  // namespace pn
