// Design-space sweep driver: evaluate a family of designs across a
// parameter grid and emit the results as a table and as CSV — the raw
// material for the "well-specified objectives and metrics" the paper
// hopes researchers will optimize against (§5.4), without everyone
// re-writing the evaluation loop.
//
// Points are independent, so the driver fans them out over a thread pool
// (sweep_options::jobs). Each point evaluates under its own seed derived
// from (options.seed, point index); results are emitted in input order,
// so a parallel sweep is bit-identical to a serial one.
//
// The driver is production-robust: it can be cancelled cooperatively
// (sweep_options::cancel — running points drain at the next stage
// boundary, unstarted points are skipped), it can bound each point's
// wall time (point_deadline_ms), it persists completed points to an
// append-only checkpoint (checkpoint_path) and resumes from one
// (resume), and it converts injected stage faults (faults) into
// structured sweep_failure records instead of crashing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/evaluator.h"
#include "core/fault.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"

namespace pn {

struct sweep_point {
  std::string label;                        // e.g. "k=8"
  std::function<network_graph()> build;
  // Scenario mode (sweep_options::scenario_graph non-null): runs against
  // the shared evolving graph before this point is evaluated; `build` is
  // ignored. Points execute strictly in input order.
  std::function<void(network_graph&)> evolve;
  // When set, this point evaluates under exactly this seed instead of the
  // derived sweep_point_seed(options.seed, index). The search engine uses
  // it to keep a candidate's seed tied to its global discovery ordinal,
  // not its position inside whichever batch evaluates it, so an iterative
  // search replays identically however its batches are sliced. Checkpoint
  // entries record the effective seed either way, and a resume validates
  // against it.
  std::optional<std::uint64_t> seed;
};

// A failed sweep point, attributed to the pipeline stage that failed —
// structured so callers can aggregate by stage instead of parsing
// pre-formatted strings.
struct sweep_failure {
  std::size_t point_index = 0;              // position in the input grid
  std::string label;
  eval_stage stage = eval_stage::topology_metrics;
  status error;

  // "label: [stage] message" for logs.
  [[nodiscard]] std::string to_string() const;
};

struct sweep_results {
  std::vector<deployability_report> reports;  // completed points, input order
  std::vector<stage_trace> traces;            // parallel to `reports`
  std::vector<sweep_failure> failures;        // failed points, input order

  // True iff the sweep drained early (cancel token fired, or
  // cancel_after_points tripped). cancelled_points lists every grid
  // index that did not complete — never started, or interrupted between
  // stages — in input order; a resume re-runs exactly these.
  bool cancelled = false;
  std::vector<std::size_t> cancelled_points;

  // Points restored from sweep_options::resume instead of re-evaluated.
  std::size_t resumed_points = 0;
};

struct sweep_options {
  // Worker threads evaluating points concurrently. 1 = serial on the
  // caller's thread; 0 = one worker per hardware thread.
  int jobs = 1;

  // Cooperative cancellation: once the token fires, no new point starts
  // and points in flight stop at their next stage boundary (their
  // partial work is discarded, not checkpointed). The pool always drains
  // and joins — cancellation never leaks a thread or aborts mid-stage.
  cancel_token cancel;

  // Wall-clock budget per point, measured from the point's start.
  // 0 = unlimited. Expiry fails the point's next stage with
  // status_code::deadline_exceeded — a real (checkpointed) failure.
  double point_deadline_ms = 0.0;

  // Testing hook: request cancellation on `cancel` once this many points
  // have completed in this run (0 = off). Deterministic with jobs = 1.
  std::size_t cancel_after_points = 0;

  // Deterministic stage-fault injection (see core/fault.h). An injected
  // fault fails that stage exactly like a domain error: structured
  // sweep_failure, no crash, pool intact.
  fault_plan faults;

  // Non-empty: append each completed point (ok or failed) to this
  // checkpoint file as it finishes, flushing per entry.
  std::string checkpoint_path;

  // Resume from a previously loaded checkpoint: points present in it are
  // restored without re-evaluation, so the merged results — and their
  // CSVs — are byte-identical to an uninterrupted run at equal seeds and
  // jobs. The checkpoint's base seed and point count must match the
  // sweep's (PN_CHECKed). Must outlive run_sweep.
  const sweep_checkpoint* resume = nullptr;

  // ---- scenario mode ----------------------------------------------------
  // Non-null: the sweep evaluates ONE evolving graph instead of per-point
  // builds. Each point's `evolve` mutates this graph (steps of a
  // deploy_scenario, typically) and the mutated graph is evaluated in
  // place. Points run strictly serially in input order — `jobs` is
  // ignored — because step i+1's graph state depends on step i. Resume
  // composes with scenario mode: pass the same base graph the original
  // run started from; restored points replay their `evolve` mutations
  // but skip re-evaluation. Must outlive run_sweep.
  network_graph* scenario_graph = nullptr;

  // With scenario_graph: evaluate each point delta-aware through one
  // persistent incremental_metrics (row repair + per-destination ECMP
  // contribution caching; see topology/incremental.h) instead of cold.
  // Results are bit-identical to delta_eval = false by contract — the
  // delta machinery only skips work it can prove unchanged.
  bool delta_eval = false;
};

// Deterministic per-point seed: a splitmix64 mix of the sweep's base seed
// and the point index. Identical in serial and parallel mode, and distinct
// across points so repeated designs in one grid do not share RNG streams.
[[nodiscard]] std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                                             std::size_t point_index);

// Evaluates every point with the same options except the derived per-point
// seed. Results are in input order regardless of jobs.
[[nodiscard]] sweep_results run_sweep(const std::vector<sweep_point>& grid,
                                      const evaluation_options& opt,
                                      const sweep_options& sopt = {});

// One sweep point per scenario step (label = the step's label, evolve =
// apply that step). Pass the same graph the scenario was planned against
// as sweep_options::scenario_graph. Steps are copied into the closures,
// so the scenario need not outlive the grid.
[[nodiscard]] std::vector<sweep_point> scenario_sweep_points(
    const deploy_scenario& sc);

struct sweep_csv_options {
  // Append per-stage wall-time columns (t_total_ms, t_<stage>_ms...).
  // Off by default so CSVs of identical sweeps compare byte-for-byte
  // (wall times are nondeterministic).
  bool stage_timings = false;
};

// All report fields, machine-readable. One header row; one row per report.
// Free-form fields (name, family) are RFC-4180 escaped.
[[nodiscard]] std::string sweep_to_csv(const sweep_results& results,
                                       const sweep_csv_options& copt = {});

// Failed points as CSV: point_index,label,stage,status,message.
[[nodiscard]] std::string sweep_failures_to_csv(const sweep_results& results);

}  // namespace pn
