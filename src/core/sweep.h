// Design-space sweep driver: evaluate a family of designs across a
// parameter grid and emit the results as a table and as CSV — the raw
// material for the "well-specified objectives and metrics" the paper
// hopes researchers will optimize against (§5.4), without everyone
// re-writing the evaluation loop.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"

namespace pn {

struct sweep_point {
  std::string label;                        // e.g. "k=8"
  std::function<network_graph()> build;
};

struct sweep_results {
  std::vector<deployability_report> reports;  // one per completed point
  std::vector<std::string> failures;          // "label: error" for the rest
};

// Evaluates every point with the same options (seed fixed across points
// so differences are design differences, not noise).
[[nodiscard]] sweep_results run_sweep(const std::vector<sweep_point>& grid,
                                      const evaluation_options& opt);

// All report fields, machine-readable. One header row; one row per report.
[[nodiscard]] std::string sweep_to_csv(const sweep_results& results);

}  // namespace pn
