// Deterministic fault injection for the sweep engine.
//
// Production-robustness claims ("every stage failure becomes a structured
// sweep_failure, no crash, no leaked pool thread, nonzero CLI exit") are
// only testable if failures can be provoked on demand. A fault_plan
// describes which (point, stage) pairs must fail: an explicit target list
// ("fail the cabling stage at point 3"), a seeded Bernoulli rate over
// every (point, stage) pair, or both. The decision is a pure function of
// (plan, point_index, stage) — independent of thread schedule, job count,
// and wall clock — so an injected run is exactly reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"

namespace pn {

struct fault_target {
  std::size_t point_index = 0;
  eval_stage stage = eval_stage::topology_metrics;
};

struct fault_plan {
  // Explicit (point, stage) pairs that must fail.
  std::vector<fault_target> targets;

  // Additionally fail each (point, stage) pair with this probability,
  // decided by a hash of (seed, point_index, stage). 0 = off.
  double probability = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const {
    return targets.empty() && probability <= 0.0;
  }

  // True iff this plan injects a failure into `stage` of point
  // `point_index`. Deterministic.
  [[nodiscard]] bool should_fail(std::size_t point_index,
                                 eval_stage stage) const;

  // The status an injected failure carries; message is deterministic
  // ("injected fault (point N, stage S)") so failure CSVs of equal runs
  // compare byte-for-byte.
  [[nodiscard]] static status injected_status(std::size_t point_index,
                                              eval_stage stage);
};

// Parses a CLI fault spec: comma-separated POINT:STAGE pairs, e.g.
// "0:cabling,3:repair_sim". Fails with invalid_argument on malformed
// pairs or unknown stage names.
[[nodiscard]] result<std::vector<fault_target>> parse_fault_targets(
    std::string_view spec);

}  // namespace pn
