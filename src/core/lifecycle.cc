#include "core/lifecycle.h"

#include "common/check.h"
#include "common/strings.h"

namespace pn {

result<lifecycle_cost> compute_lifecycle_cost(const network_graph& g,
                                              const std::string& name,
                                              const lifecycle_options& opt) {
  PN_CHECK(opt.service_years > 0.0);
  evaluation_options eopt = opt.evaluation;
  eopt.run_repair_sim = true;
  eopt.repair.horizon = hours{opt.service_years * 365.0 * 24.0};
  auto ev = evaluate_design(g, name, eopt);
  if (!ev.is_ok()) return ev.error();
  const deployability_report& rep = ev.value().report;

  lifecycle_cost out;
  out.name = name;
  out.hosts = rep.hosts;
  out.availability = rep.availability;
  out.day1_hardware = rep.capex();
  out.day1_labor =
      dollars{rep.deploy_labor.value() * opt.labor_rate_per_hour};

  for (const clos_expansion_params& ex : opt.expansions) {
    const expansion_plan plan = plan_clos_expansion(ex);
    out.expansion_labor +=
        dollars{plan.labor.value() * opt.labor_rate_per_hour};
  }

  out.repair_labor = dollars{ev.value().repairs.technician_hours.value() *
                             opt.labor_rate_per_hour};
  out.downtime_cost =
      dollars{(1.0 - rep.availability) * opt.downtime_cost_per_host_year *
              static_cast<double>(rep.hosts) * opt.service_years};
  return out;
}

text_table lifecycle_table(const std::vector<lifecycle_cost>& costs) {
  text_table t({"design", "hosts", "day-1 hw", "day-1 labor",
                "expansion labor", "repair labor", "downtime",
                "lifetime total", "lifetime $/host"});
  for (const lifecycle_cost& c : costs) {
    t.row()
        .cell(c.name)
        .cell(c.hosts)
        .cell(human_dollars(c.day1_hardware.value()))
        .cell(human_dollars(c.day1_labor.value()))
        .cell(human_dollars(c.expansion_labor.value()))
        .cell(human_dollars(c.repair_labor.value()))
        .cell(human_dollars(c.downtime_cost.value()))
        .cell(human_dollars(c.lifetime().value()))
        .cell(human_dollars(c.lifetime().value() /
                            static_cast<double>(c.hosts)));
  }
  return t;
}

}  // namespace pn
