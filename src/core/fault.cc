#include "core/fault.h"

#include "common/strings.h"

namespace pn {

namespace {

// splitmix64 finalizer — the same mixer sweep_point_seed uses, applied to
// a combination of the plan seed, the point, and the stage so every
// (point, stage) pair draws an independent uniform.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool fault_plan::should_fail(std::size_t point_index,
                             eval_stage stage) const {
  for (const fault_target& t : targets) {
    if (t.point_index == point_index && t.stage == stage) return true;
  }
  if (probability > 0.0) {
    std::uint64_t z = seed;
    z = mix64(z + (static_cast<std::uint64_t>(point_index) + 1) *
                      0x9e3779b97f4a7c15ULL);
    z = mix64(z + (static_cast<std::uint64_t>(stage) + 1) *
                      0x9e3779b97f4a7c15ULL);
    // Same uniform-in-[0,1) construction as rng::next_double.
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    if (u < probability) return true;
  }
  return false;
}

status fault_plan::injected_status(std::size_t point_index,
                                   eval_stage stage) {
  return fault_injected_error(
      str_format("injected fault (point %zu, stage %s)", point_index,
                 eval_stage_name(stage)));
}

result<std::vector<fault_target>> parse_fault_targets(
    std::string_view spec) {
  std::vector<fault_target> out;
  for (const std::string& pair : split(spec, ',')) {
    if (pair.empty()) continue;
    const auto colon = pair.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= pair.size()) {
      return invalid_argument_error("fault spec pair must be POINT:STAGE: " +
                                    pair);
    }
    const std::string point_str = pair.substr(0, colon);
    if (point_str.find_first_not_of("0123456789") != std::string::npos) {
      return invalid_argument_error("fault spec point must be a number: " +
                                    pair);
    }
    const std::string stage_str = pair.substr(colon + 1);
    const std::optional<eval_stage> stage = eval_stage_from_name(stage_str);
    if (!stage.has_value()) {
      return invalid_argument_error("unknown stage in fault spec: " +
                                    stage_str);
    }
    out.push_back(fault_target{std::stoull(point_str), *stage});
  }
  if (out.empty()) {
    return invalid_argument_error("fault spec names no POINT:STAGE pairs");
  }
  return out;
}

}  // namespace pn
