// End-to-end design evaluator: topology -> placement -> cabling ->
// deployment simulation -> repair simulation -> deployability report.
//
// This is the top of the library: one call takes an abstract design and
// returns both the traditional metrics and the physical-deployability
// metrics the paper argues must sit beside them.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "deploy/plan_builder.h"
#include "deploy/repair_sim.h"
#include "deploy/tech_sim.h"
#include "physical/bundling.h"
#include "physical/cabling.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/graph.h"

namespace pn {

class incremental_metrics;  // topology/incremental.h

enum class placement_strategy { block, random, annealed };

[[nodiscard]] const char* placement_strategy_name(placement_strategy s);

// Inverse of placement_strategy_name (CLI flags, service wire options).
[[nodiscard]] std::optional<placement_strategy> placement_strategy_from_name(
    std::string_view name);

struct evaluation_options {
  catalog cat = catalog::standard();
  floorplan_params floor;         // geometry template; rack grid is sized
                                  // automatically unless auto_size = false
  bool auto_size_floor = true;
  double floor_headroom = 0.30;   // spare rack capacity when auto-sizing

  placement_strategy strategy = placement_strategy::block;
  anneal_options anneal;

  cabling_options cabling;
  deployment_plan_options deployment;
  tech_sim_params technicians;

  bool run_repair_sim = true;
  repair_params repair;

  bool run_throughput = true;
  gbps traffic_per_host{25.0};

  // Threads used to pre-fill the evaluation's shared BFS distance cache
  // (one row per host-facing switch; see topology/distance_cache.h).
  // 0 = one per hardware thread, 1 = inline. run_sweep forces 1 when the
  // sweep itself is parallel, so points never oversubscribe the machine.
  // The cached rows are deterministic, so this knob never changes results.
  int distance_warm_threads = 1;

  // Pre-stage guards (see core/pipeline.h): cooperative cancellation,
  // a wall-clock budget for the whole evaluation (0 = unlimited,
  // measured from the evaluate_design_staged call), and a fault hook for
  // deterministic chaos testing. A tripped guard fails the next stage
  // with status_code::cancelled / deadline_exceeded / the injected
  // status; stages already running finish normally.
  cancel_token cancel;
  double deadline_ms = 0.0;
  std::function<status(eval_stage)> fault_hook;
  // Time source for stage timing and the deadline (common/clock.h);
  // null = the real monotonic clock. Tests inject a manual_clock to make
  // deadline behavior deterministic.
  clock_fn clock;

  // Delta evaluation: non-null makes the topology-metrics stage compute
  // path stats and ECMP through this persistent incremental evaluator
  // (which must be bound to exactly the graph being evaluated and to the
  // same traffic_per_host) instead of from scratch, and every later
  // stage shares its repaired distance cache. Results are bit-identical
  // to the cold path by contract (tests/property/delta_eval_property_
  // test.cc). Owned by the caller — run_sweep's scenario mode keeps one
  // across all points of an evolving-graph sweep.
  incremental_metrics* delta = nullptr;

  std::uint64_t seed = 1;
};

// Everything produced along the way, for callers that need more than the
// summary numbers. Owns its own catalog copy: `cables` points into `cat`,
// so the evaluation is self-contained regardless of the options' lifetime.
struct evaluation {
  deployability_report report;
  catalog cat;
  floorplan floor;
  placement place;
  cabling_plan cables;
  bundling_report bundles;
  tech_sim_result deployment;
  repair_sim_result repairs;
  // Per-stage wall time, outcome, and counters for this evaluation.
  stage_trace trace;
};

// Sizes a floor for the design with headroom, preserving the template's
// per-rack parameters. Rows/racks-per-row are chosen near a 2:1 aspect.
[[nodiscard]] floorplan_params auto_size_floor(const network_graph& g,
                                               const floorplan_params& base,
                                               double headroom);

// Runs the staged pipeline (topology-metrics → floor-sizing → placement →
// cabling → bundling → deploy-sim → repair-sim → report) and always
// returns the evaluation with its stage trace populated. On failure the
// trace names the failing stage (trace.failed_stage()) and the partial
// results up to that stage remain valid; stages after it stay not_run.
[[nodiscard]] evaluation evaluate_design_staged(const network_graph& g,
                                                const std::string& name,
                                                const evaluation_options& opt);

// Convenience wrapper over evaluate_design_staged: errors out when any
// stage failed, with the stage name prefixed onto the status message.
[[nodiscard]] result<evaluation> evaluate_design(const network_graph& g,
                                                 const std::string& name,
                                                 const evaluation_options& opt);

}  // namespace pn
