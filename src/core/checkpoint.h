// Sweep checkpointing: crash/interrupt-safe persistence of completed
// sweep points.
//
// The paper's §2.3 arithmetic cuts both ways: a multi-hour design-space
// sweep that loses everything on a ^C is itself a deployability failure.
// The checkpoint file is line-oriented and append-only — one header line
// plus one line per *completed* point (success or real failure; points
// cancelled mid-run are deliberately not recorded, so a resume re-runs
// them). A crash can tear at most the final line, which the loader
// ignores.
//
//   physnet-sweep-checkpoint v1 seed <base_seed> points <grid_size>
//   ok <index> <point_seed> <report fields...>
//   fail <index> <point_seed> <label> <stage> <status_code> <message>
//
// points 0 means open-ended: the producer (an iterative search whose
// trajectory length is unknown up front) validates entry indices itself.
//
// Fields are space-separated; free-form strings are backslash-escaped
// (\s space, \n newline, \r CR, \t tab, \\ backslash, \e empty) and
// doubles are written as %.17g, which round-trips IEEE doubles exactly —
// that exactness is what makes a resumed sweep's merged CSV byte-identical
// to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "common/guarded.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace pn {

// One completed point: either a full report (ok) or a structured failure
// (label + failing stage + status). point seeds are stored so a resume
// can verify the checkpoint belongs to the sweep being resumed.
struct sweep_checkpoint_entry {
  std::size_t point_index = 0;
  std::uint64_t seed = 0;
  bool ok = false;
  deployability_report report;  // meaningful when ok
  // Failure fields, meaningful when !ok.
  std::string label;
  eval_stage stage = eval_stage::topology_metrics;
  status error;
};

struct sweep_checkpoint {
  std::uint64_t base_seed = 0;
  std::size_t point_count = 0;
  // Completed points by grid index. Duplicate lines (a point re-recorded
  // by an overlapping resume) keep the last occurrence.
  // pn_lint: allow(hot-assoc) resume splices by index order; last write wins
  std::map<std::size_t, sweep_checkpoint_entry> entries;

  [[nodiscard]] const sweep_checkpoint_entry* find(std::size_t index) const;
};

// Serialization of the header / one entry (newline-terminated).
[[nodiscard]] std::string sweep_checkpoint_header(std::uint64_t base_seed,
                                                  std::size_t point_count);
[[nodiscard]] std::string sweep_checkpoint_line(
    const sweep_checkpoint_entry& e);

// Parses one entry line (no trailing newline required). Exposed for the
// round-trip property tests.
[[nodiscard]] result<sweep_checkpoint_entry> parse_sweep_checkpoint_line(
    const std::string& line);

// Loads a checkpoint file. A malformed *final* line (torn by a crash
// mid-append) is ignored; malformed interior lines and a bad header are
// errors.
[[nodiscard]] result<sweep_checkpoint> load_sweep_checkpoint(
    const std::string& path);

// Appends completed-point entries as a sweep runs. Thread-safe: sweep
// workers finish points concurrently. Every append is flushed, so an
// interrupted run persists everything it completed.
class sweep_checkpoint_writer {
 public:
  sweep_checkpoint_writer() = default;
  sweep_checkpoint_writer(const sweep_checkpoint_writer&) = delete;
  sweep_checkpoint_writer& operator=(const sweep_checkpoint_writer&) = delete;

  // Opens `path` for append, writing the header first when the file is
  // new or empty. Resuming appends to the existing file (the loader
  // keeps the last duplicate of a point, so overlap is harmless).
  [[nodiscard]] status open(const std::string& path,
                            std::uint64_t base_seed,
                            std::size_t point_count);

  void append(const sweep_checkpoint_entry& e);

  // Lock-free by design: open() happens before workers start and nothing
  // ever closes the stream mid-sweep, so the flag is stable whenever a
  // caller can ask.
  [[nodiscard]] bool is_open() const PN_EXCLUDES(mu_) {
    return out_.is_open();
  }

 private:
  std::mutex mu_;
  std::ofstream out_ PN_GUARDED_BY(mu_);
};

}  // namespace pn
