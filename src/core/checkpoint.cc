#include "core/checkpoint.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace pn {

namespace {

// Token escaping lives in common/strings.h (escape_token/unescape_token):
// the service protocol shares the exact same one-token encoding, so the
// two formats cannot drift apart.

// %.17g round-trips IEEE doubles exactly; that exactness is load-bearing
// for byte-identical resumed CSVs.
std::string fmt_double(double v) { return str_format("%.17g", v); }

bool parse_double(const std::string& t, double& out) {
  if (t.empty()) return false;
  char* end = nullptr;
  out = std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}

bool parse_u64(const std::string& t, std::uint64_t& out) {
  if (t.empty() || t.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = std::strtoull(t.c_str(), nullptr, 10);
  return true;
}

bool parse_size(const std::string& t, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(t, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_int(const std::string& t, int& out) {
  double v = 0.0;
  if (!parse_double(t, v)) return false;
  out = static_cast<int>(v);
  return true;
}

constexpr char header_magic[] = "physnet-sweep-checkpoint";
constexpr char header_version[] = "v1";

// Token counts: "ok <index> <seed>" + 29 report fields, and
// "fail <index> <seed> <label> <stage> <code> <message>".
constexpr std::size_t ok_token_count = 3 + 29;
constexpr std::size_t fail_token_count = 7;

}  // namespace

const sweep_checkpoint_entry* sweep_checkpoint::find(
    std::size_t index) const {
  const auto it = entries.find(index);
  return it == entries.end() ? nullptr : &it->second;
}

std::string sweep_checkpoint_header(std::uint64_t base_seed,
                                    std::size_t point_count) {
  std::ostringstream out;
  out << header_magic << ' ' << header_version << " seed " << base_seed
      << " points " << point_count << "\n";
  return out.str();
}

std::string sweep_checkpoint_line(const sweep_checkpoint_entry& e) {
  std::ostringstream out;
  if (e.ok) {
    const deployability_report& r = e.report;
    out << "ok " << e.point_index << ' ' << e.seed << ' '
        << escape_token(r.name) << ' ' << escape_token(r.family) << ' '
        << r.switches << ' ' << r.hosts << ' ' << r.links << ' '
        << fmt_double(r.mean_path_length) << ' ' << r.diameter << ' '
        << fmt_double(r.throughput_alpha_uniform) << ' '
        << fmt_double(r.bisection_gbps_per_host) << ' '
        << fmt_double(r.switch_cost.value()) << ' '
        << fmt_double(r.cable_cost.value()) << ' '
        << fmt_double(r.transceiver_cost.value()) << ' '
        << fmt_double(r.capex_per_host.value()) << ' '
        << fmt_double(r.switch_power.value()) << ' '
        << fmt_double(r.cable_power.value()) << ' '
        << fmt_double(r.time_to_deploy.value()) << ' '
        << fmt_double(r.deploy_labor.value()) << ' '
        << fmt_double(r.first_pass_yield) << ' '
        << fmt_double(r.bundleability) << ' ' << r.distinct_bundle_skus
        << ' ' << fmt_double(r.optics_fraction) << ' '
        << fmt_double(r.mean_cable_length_m) << ' '
        << fmt_double(r.p95_cable_length_m) << ' '
        << fmt_double(r.max_tray_fill) << ' '
        << fmt_double(r.max_plenum_fill) << ' '
        << fmt_double(r.availability) << ' '
        << fmt_double(r.mean_mttr.value()) << ' '
        << fmt_double(r.rewires_per_added_switch) << ' '
        << fmt_double(r.eval_total_ms);
  } else {
    out << "fail " << e.point_index << ' ' << e.seed << ' '
        << escape_token(e.label) << ' ' << eval_stage_name(e.stage) << ' '
        << status_code_name(e.error.code()) << ' '
        << escape_token(e.error.message());
  }
  out << "\n";
  return out.str();
}

result<sweep_checkpoint_entry> parse_sweep_checkpoint_line(
    const std::string& line) {
  const std::vector<std::string> tok = split(line, ' ');
  auto fail = [](const std::string& why) {
    return corrupt_data_error("checkpoint entry: " + why);
  };
  if (tok.empty()) return fail("empty line");

  sweep_checkpoint_entry e;
  if (tok[0] == "ok") {
    if (tok.size() != ok_token_count) return fail("wrong ok field count");
    deployability_report& r = e.report;
    e.ok = true;
    double d = 0.0;
    std::size_t t = 1;
    const bool fields_ok =
        parse_size(tok[t++], e.point_index) &&          // index
        parse_u64(tok[t++], e.seed) &&                  // seed
        unescape_token(tok[t++], r.name) &&             // name
        unescape_token(tok[t++], r.family) &&           // family
        parse_size(tok[t++], r.switches) &&             //
        parse_size(tok[t++], r.hosts) &&                //
        parse_size(tok[t++], r.links) &&                //
        parse_double(tok[t++], r.mean_path_length) &&   //
        parse_int(tok[t++], r.diameter) &&              //
        parse_double(tok[t++], r.throughput_alpha_uniform) &&
        parse_double(tok[t++], r.bisection_gbps_per_host);
    if (!fields_ok) return fail("bad ok field");
    const auto money = [&](dollars& field) {
      if (!parse_double(tok[t++], d)) return false;
      field = dollars{d};
      return true;
    };
    const auto power = [&](watts& field) {
      if (!parse_double(tok[t++], d)) return false;
      field = watts{d};
      return true;
    };
    const auto dur = [&](hours& field) {
      if (!parse_double(tok[t++], d)) return false;
      field = hours{d};
      return true;
    };
    const bool units_ok = money(r.switch_cost) && money(r.cable_cost) &&
                          money(r.transceiver_cost) &&
                          money(r.capex_per_host) && power(r.switch_power) &&
                          power(r.cable_power) && dur(r.time_to_deploy) &&
                          dur(r.deploy_labor);
    if (!units_ok) return fail("bad ok unit field");
    const bool tail_ok =
        parse_double(tok[t++], r.first_pass_yield) &&
        parse_double(tok[t++], r.bundleability) &&
        parse_size(tok[t++], r.distinct_bundle_skus) &&
        parse_double(tok[t++], r.optics_fraction) &&
        parse_double(tok[t++], r.mean_cable_length_m) &&
        parse_double(tok[t++], r.p95_cable_length_m) &&
        parse_double(tok[t++], r.max_tray_fill) &&
        parse_double(tok[t++], r.max_plenum_fill) &&
        parse_double(tok[t++], r.availability) && dur(r.mean_mttr) &&
        parse_double(tok[t++], r.rewires_per_added_switch) &&
        parse_double(tok[t++], r.eval_total_ms);
    if (!tail_ok) return fail("bad ok tail field");
    e.label = r.name;
    return e;
  }

  if (tok[0] == "fail") {
    if (tok.size() != fail_token_count) return fail("wrong fail field count");
    e.ok = false;
    if (!parse_size(tok[1], e.point_index) || !parse_u64(tok[2], e.seed)) {
      return fail("bad fail index/seed");
    }
    if (!unescape_token(tok[3], e.label)) return fail("bad fail label");
    const std::optional<eval_stage> stage = eval_stage_from_name(tok[4]);
    if (!stage.has_value()) return fail("unknown stage " + tok[4]);
    e.stage = *stage;
    const std::optional<status_code> code = status_code_from_name(tok[5]);
    if (!code.has_value() || *code == status_code::ok) {
      return fail("bad status code " + tok[5]);
    }
    std::string message;
    if (!unescape_token(tok[6], message)) return fail("bad fail message");
    e.error = status(*code, std::move(message));
    return e;
  }

  return fail("unknown entry kind " + tok[0]);
}

result<sweep_checkpoint> load_sweep_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return not_found_error("cannot open checkpoint " + path);
  }

  sweep_checkpoint cp;
  std::string line;
  if (!std::getline(in, line)) {
    return corrupt_data_error("checkpoint is empty: " + path);
  }
  {
    const std::vector<std::string> tok = split(line, ' ');
    if (tok.size() != 6 || tok[0] != header_magic ||
        tok[1] != header_version || tok[2] != "seed" || tok[4] != "points" ||
        !parse_u64(tok[3], cp.base_seed) ||
        !parse_size(tok[5], cp.point_count)) {
      return corrupt_data_error("bad checkpoint header: " + path);
    }
  }

  // Entry lines. Only a malformed *final* line is forgiven (a crash can
  // tear the last append); bad interior lines mean the file is not ours.
  std::size_t line_no = 1;
  bool pending_error = false;
  std::string pending_message;
  while (std::getline(in, line)) {
    ++line_no;
    if (pending_error) {
      return corrupt_data_error(pending_message);
    }
    if (line.empty()) continue;
    auto entry = parse_sweep_checkpoint_line(line);
    if (!entry.is_ok()) {
      pending_error = true;
      pending_message = str_format("%s (line %zu of %s)",
                                   entry.error().message().c_str(), line_no,
                                   path.c_str());
      continue;
    }
    // point_count 0 = open-ended: the producer's trajectory length was
    // unknown when the header was written (iterative search), so any
    // index is in range.
    if (cp.point_count > 0 && entry.value().point_index >= cp.point_count) {
      return corrupt_data_error(
          str_format("checkpoint point %zu out of range (grid has %zu)",
                     entry.value().point_index, cp.point_count));
    }
    cp.entries[entry.value().point_index] = std::move(entry).value();
  }
  return cp;
}

status sweep_checkpoint_writer::open(const std::string& path,
                                     std::uint64_t base_seed,
                                     std::size_t point_count) {
  std::unique_lock<std::mutex> lock(mu_);
  bool fresh = true;
  {
    std::ifstream probe(path);
    fresh = !probe || probe.peek() == std::ifstream::traits_type::eof();
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    return io_error_status("cannot open checkpoint for append: " + path);
  }
  if (fresh) {
    out_ << sweep_checkpoint_header(base_seed, point_count);
    out_.flush();
  }
  return status::ok();
}

void sweep_checkpoint_writer::append(const sweep_checkpoint_entry& e) {
  const std::string line = sweep_checkpoint_line(e);
  std::unique_lock<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << line;
  out_.flush();
}

}  // namespace pn
