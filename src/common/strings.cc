#include "common/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace pn {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  PN_CHECK(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string csv_field(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out += '"';
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string escape_token(std::string_view s) {
  if (s.empty()) return "\\e";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape_token(std::string_view t, std::string& out) {
  if (t == "\\e") {
    out.clear();
    return true;
  }
  out.clear();
  out.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] != '\\') {
      out += t[i];
      continue;
    }
    if (i + 1 >= t.size()) return false;  // lone trailing backslash
    switch (t[++i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      default: return false;
    }
  }
  return true;
}

std::string human_count(double v) {
  const double a = std::fabs(v);
  if (a >= 1e9) return str_format("%.2fG", v / 1e9);
  if (a >= 1e6) return str_format("%.2fM", v / 1e6);
  if (a >= 1e4) return str_format("%.1fk", v / 1e3);
  if (a == std::floor(a)) return str_format("%.0f", v);
  return str_format("%.2f", v);
}

std::string human_dollars(double usd) {
  const double a = std::fabs(usd);
  if (a >= 1e9) return str_format("$%.2fB", usd / 1e9);
  if (a >= 1e6) return str_format("$%.2fM", usd / 1e6);
  if (a >= 1e3) return str_format("$%.1fk", usd / 1e3);
  return str_format("$%.0f", usd);
}

}  // namespace pn
