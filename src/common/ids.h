// Strongly-typed integer identifiers.
//
// physnet models several id spaces (nodes, ports, racks, trays, cables,
// work-order tasks, twin entities). Using a distinct type per space makes
// it impossible to index a rack table with a node id.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace pn {

template <typename Tag>
class id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type invalid_value =
      std::numeric_limits<value_type>::max();

  constexpr id() = default;
  constexpr explicit id(value_type v) : v_(v) {}
  constexpr explicit id(std::size_t v) : v_(static_cast<value_type>(v)) {}
  constexpr explicit id(int v) : v_(static_cast<value_type>(v)) {}

  [[nodiscard]] constexpr value_type value() const { return v_; }
  [[nodiscard]] constexpr std::size_t index() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != invalid_value; }

  friend constexpr auto operator<=>(id, id) = default;

 private:
  value_type v_ = invalid_value;
};

struct node_tag {};
struct port_tag {};
struct edge_tag {};
struct rack_tag {};
struct slot_tag {};
struct tray_tag {};
struct cable_tag {};
struct bundle_tag {};
struct task_tag {};
struct entity_tag {};
struct panel_tag {};

using node_id = id<node_tag>;
using port_id = id<port_tag>;
using edge_id = id<edge_tag>;
using rack_id = id<rack_tag>;
using slot_id = id<slot_tag>;
using tray_id = id<tray_tag>;
using cable_id = id<cable_tag>;
using bundle_id = id<bundle_tag>;
using task_id = id<task_tag>;
using entity_id = id<entity_tag>;
using panel_id = id<panel_tag>;

}  // namespace pn

namespace std {
template <typename Tag>
struct hash<pn::id<Tag>> {
  size_t operator()(pn::id<Tag> v) const noexcept {
    return std::hash<typename pn::id<Tag>::value_type>{}(v.value());
  }
};
}  // namespace std
