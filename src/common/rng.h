// Deterministic random number generation.
//
// Every stochastic component (Jellyfish wiring, technician error injection,
// failure arrivals, annealing moves) takes an explicit pn::rng so that runs
// are reproducible from a seed. The generator is xoshiro256** seeded via
// splitmix64 — fast, tiny state, and identical on every platform, unlike
// std::default_random_engine / std::*_distribution.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pn {

class rng {
 public:
  explicit rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    PN_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    PN_CHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in practice
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  std::size_t next_index(std::size_t size) {
    return static_cast<std::size_t>(next_below(size));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Standard normal via Box–Muller (deterministic; no cached spare).
  double next_normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
  }

  // Exponential with the given mean (inter-arrival times of failures).
  double next_exponential(double mean) {
    PN_CHECK(mean > 0.0);
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_index(i)]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    PN_CHECK(!v.empty());
    return v[next_index(v.size())];
  }

  // Derive an independent child stream (for per-component substreams).
  rng fork() { return rng{next_u64()}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace pn
