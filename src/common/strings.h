// Small string helpers shared by tables, reports, and twin attributes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pn {

// printf-style formatting into a std::string.
[[nodiscard]] std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

// RFC-4180 CSV field: returns the value quoted when it contains a comma,
// double quote, or newline (embedded quotes are doubled), verbatim
// otherwise. Use for any free-form string emitted into a CSV cell.
[[nodiscard]] std::string csv_field(std::string_view v);

// Escapes a free-form string into exactly one space-free, non-empty
// token (\s space, \n newline, \r CR, \t tab, \\ backslash, \e empty),
// so line-oriented formats (sweep checkpoints, the service protocol) can
// keep "one record per line, fields split on spaces" while carrying
// arbitrary labels. unescape_token returns false on malformed input
// (lone trailing backslash, unknown escape).
[[nodiscard]] std::string escape_token(std::string_view s);
[[nodiscard]] bool unescape_token(std::string_view t, std::string& out);

// Compact human formats used in printed tables: 12345 -> "12.3k", etc.
[[nodiscard]] std::string human_count(double v);
[[nodiscard]] std::string human_dollars(double usd);

}  // namespace pn
