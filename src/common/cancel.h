// Cooperative cancellation for long-running work.
//
// A cancel_token is a copyable handle onto one shared flag: every copy
// observes the same cancellation request. Work that wants to be
// interruptible (a multi-hour sweep, a staged evaluation) polls
// cancelled() at safe points — between pipeline stages, between sweep
// points — and drains cleanly instead of aborting. request_cancel() is a
// single relaxed atomic store, so it is safe to call from a signal
// handler once the token exists (the CLI's SIGINT handler does exactly
// that).
//
// Memory ordering: relaxed on both sides is deliberate and sufficient.
// The flag is monotonic (false -> true, never back) and is used purely
// as a "stop taking new work" signal — no other data is published
// through it, so there is nothing for acquire/release to order. Every
// cross-thread handoff of actual work results goes through thread_pool's
// mutex (or the sweep's per-slot writes joined by wait_idle), which
// already provides the needed synchronization. A reader observing the
// flag "late" only means one extra work item starts, which cooperative
// cancellation permits by design. Verified under -fsanitize=thread: the
// CI `tsan` job races the thread-pool, sweep-cancellation, and CSR
// suites and reports no ordering issues.
#pragma once

#include <atomic>
#include <memory>

namespace pn {

class cancel_token {
 public:
  cancel_token() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  // Requests cancellation on every copy of this token. Idempotent.
  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace pn
