// Cooperative cancellation for long-running work.
//
// A cancel_token is a copyable handle onto one shared flag: every copy
// observes the same cancellation request. Work that wants to be
// interruptible (a multi-hour sweep, a staged evaluation) polls
// cancelled() at safe points — between pipeline stages, between sweep
// points — and drains cleanly instead of aborting. request_cancel() is a
// single relaxed atomic store, so it is safe to call from a signal
// handler once the token exists (the CLI's SIGINT handler does exactly
// that).
#pragma once

#include <atomic>
#include <memory>

namespace pn {

class cancel_token {
 public:
  cancel_token() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  // Requests cancellation on every copy of this token. Idempotent.
  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace pn
