#include "common/units.h"

#include <ostream>

namespace pn {

std::ostream& operator<<(std::ostream& os, meters m) {
  return os << m.value() << "m";
}
std::ostream& operator<<(std::ostream& os, millimeters mm) {
  return os << mm.value() << "mm";
}
std::ostream& operator<<(std::ostream& os, gbps g) {
  return os << g.value() << "Gbps";
}
std::ostream& operator<<(std::ostream& os, dollars d) {
  return os << "$" << d.value();
}
std::ostream& operator<<(std::ostream& os, hours h) {
  return os << h.value() << "h";
}
std::ostream& operator<<(std::ostream& os, watts w) {
  return os << w.value() << "W";
}
std::ostream& operator<<(std::ostream& os, decibels db) {
  return os << db.value() << "dB";
}

}  // namespace pn
