// The one sanctioned home for monotonic wall-time reads.
//
// Everything in this library that times itself — stage traces, service
// latency histograms, deadlines — goes through mono_clock instead of
// touching std::chrono::steady_clock directly. That buys two things:
// pn_lint R1 can enforce that no other file reads a clock (wall time is
// a nondeterminism primitive like rand()), and tests can substitute a
// manual clock to exercise deadline / latency paths without sleeping.
//
// The clock hands out opaque monotonic nanosecond counts (mono_ns);
// durations are derived by subtraction, so a mono_ns is never meaningful
// across processes or runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

namespace pn {

// Nanoseconds on a monotonic timeline with an arbitrary origin.
using mono_ns = std::int64_t;

// Reads the process-wide monotonic clock.
[[nodiscard]] inline mono_ns mono_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// An injectable clock: any callable returning mono_ns. Components that
// time themselves accept one of these and default it to mono_now, so
// production reads the real clock and tests can drive time by hand.
using clock_fn = std::function<mono_ns()>;

[[nodiscard]] inline clock_fn real_clock() {
  return [] { return mono_now(); };
}

[[nodiscard]] inline double mono_ms_between(mono_ns start, mono_ns end) {
  return static_cast<double>(end - start) / 1e6;
}

[[nodiscard]] inline mono_ns mono_ns_from_ms(double ms) {
  return static_cast<mono_ns>(ms * 1e6);
}

// Blocks the calling thread for at least `ms` of real time. Lives here
// because sleeping is a wall-clock act like reading one: code that
// sleeps on a schedule should take an injected clock_fn (or a condition
// variable) instead, so legitimate callers are polling loops in tests
// and CLI backoff — places where real time is the thing under test.
inline void sleep_ms(double ms) {
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

// A hand-cranked clock for tests: starts at zero (or `origin`) and only
// moves when advanced. fn() returns a view onto this object, so the
// clock must outlive every component it was injected into. The count is
// atomic (relaxed — it is a monotonic counter, not a publication point)
// so a test can advance time while worker threads stamp latencies.
class manual_clock {
 public:
  explicit manual_clock(mono_ns origin = 0) : now_(origin) {}

  [[nodiscard]] mono_ns now() const {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_ns(mono_ns delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void advance_ms(double ms) { advance_ns(mono_ns_from_ms(ms)); }

  [[nodiscard]] clock_fn fn() {
    return [this] { return now(); };
  }

 private:
  std::atomic<mono_ns> now_;
};

}  // namespace pn
