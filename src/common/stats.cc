#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pn {

void sample_stats::add(double v) {
  PN_CHECK_MSG(std::isfinite(v), "sample_stats::add: nonfinite sample");
  samples_.push_back(v);
  sum_ += v;
}

void sample_stats::add_all(const std::vector<double>& vs) {
  for (double v : vs) add(v);
}

double sample_stats::mean() const {
  PN_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double sample_stats::min() const {
  PN_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double sample_stats::max() const {
  PN_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double sample_stats::stddev() const {
  PN_CHECK(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double sample_stats::percentile(double q) const {
  PN_CHECK(!samples_.empty());
  PN_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  PN_CHECK(bins > 0);
  PN_CHECK(hi > lo);
}

void histogram::add(double v) {
  if (!std::isfinite(v)) {
    // NaN fails every comparison below and casting it (or ±Inf) to an
    // integer is UB — count it aside instead of corrupting a bin.
    ++nonfinite_;
    return;
  }
  double raw = (v - lo_) / width_;
  if (raw < 0.0) raw = 0.0;
  auto bin = static_cast<std::size_t>(raw);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

std::size_t histogram::count(std::size_t bin) const {
  PN_CHECK(bin < counts_.size());
  return counts_[bin];
}

double histogram::bin_lo(std::size_t bin) const {
  PN_CHECK(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

}  // namespace pn
