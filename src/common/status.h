// Lightweight status / result types for expected, recoverable failures.
//
// Library APIs that can fail for domain reasons (a cable that cannot reach,
// a tray with no remaining capacity, an expansion that is infeasible) return
// pn::status or pn::result<T> instead of throwing. Throwing is reserved for
// programming errors (see check.h).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace pn {

enum class status_code {
  ok,
  invalid_argument,   // caller supplied a value outside the domain
  not_found,          // a referenced object does not exist
  out_of_range,       // an index/length exceeds a bound
  infeasible,         // no solution satisfies the constraints
  capacity_exceeded,  // a physical capacity (tray, plenum, power) overflows
  constraint_violated,// a twin constraint check failed
  unavailable,        // the operation cannot run in the current state
  cancelled,          // cooperative cancellation was requested mid-run
  deadline_exceeded,  // a wall-clock budget expired before completion
  fault_injected,     // a deterministic chaos-test fault (core/fault.h)
  io_error,           // a file/socket read or write failed
  corrupt_data,       // persisted data failed to parse (checkpoint, twin)
  bad_frame,          // a malformed wire frame (service/framing.h)
  overloaded,         // admission queue full — back off and retry
  shutting_down,      // the service is draining and rejects new work
};

[[nodiscard]] const char* status_code_name(status_code c);

// Inverse of status_code_name (for checkpoint/CSV re-parsing).
[[nodiscard]] std::optional<status_code> status_code_from_name(
    std::string_view name);

// A success-or-error value. Cheap to copy on success (empty message).
class status {
 public:
  status() = default;  // ok
  status(status_code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == status_code::ok; }
  [[nodiscard]] status_code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

 private:
  status_code code_ = status_code::ok;
  std::string message_;
};

[[nodiscard]] inline status invalid_argument_error(std::string msg) {
  return {status_code::invalid_argument, std::move(msg)};
}
[[nodiscard]] inline status not_found_error(std::string msg) {
  return {status_code::not_found, std::move(msg)};
}
[[nodiscard]] inline status out_of_range_error(std::string msg) {
  return {status_code::out_of_range, std::move(msg)};
}
[[nodiscard]] inline status infeasible_error(std::string msg) {
  return {status_code::infeasible, std::move(msg)};
}
[[nodiscard]] inline status capacity_error(std::string msg) {
  return {status_code::capacity_exceeded, std::move(msg)};
}
[[nodiscard]] inline status constraint_error(std::string msg) {
  return {status_code::constraint_violated, std::move(msg)};
}
[[nodiscard]] inline status unavailable_error(std::string msg) {
  return {status_code::unavailable, std::move(msg)};
}
[[nodiscard]] inline status cancelled_error(std::string msg) {
  return {status_code::cancelled, std::move(msg)};
}
[[nodiscard]] inline status deadline_error(std::string msg) {
  return {status_code::deadline_exceeded, std::move(msg)};
}
[[nodiscard]] inline status fault_injected_error(std::string msg) {
  return {status_code::fault_injected, std::move(msg)};
}
[[nodiscard]] inline status io_error_status(std::string msg) {
  return {status_code::io_error, std::move(msg)};
}
[[nodiscard]] inline status corrupt_data_error(std::string msg) {
  return {status_code::corrupt_data, std::move(msg)};
}
[[nodiscard]] inline status bad_frame_error(std::string msg) {
  return {status_code::bad_frame, std::move(msg)};
}
[[nodiscard]] inline status overloaded_error(std::string msg) {
  return {status_code::overloaded, std::move(msg)};
}
[[nodiscard]] inline status shutting_down_error(std::string msg) {
  return {status_code::shutting_down, std::move(msg)};
}

// A value or an error status. value() PN_CHECKs on error, so call sites
// that have already tested is_ok() stay terse.
template <typename T>
class result {
 public:
  result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  result(status s) : status_(std::move(s)) {     // NOLINT: implicit by design
    PN_CHECK_MSG(!status_.is_ok(), "result constructed from ok status");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const status& error() const { return status_; }

  [[nodiscard]] const T& value() const& {
    PN_CHECK_MSG(value_.has_value(),
                 "result::value() on error: " << status_.to_string());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    PN_CHECK_MSG(value_.has_value(),
                 "result::value() on error: " << status_.to_string());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    PN_CHECK_MSG(value_.has_value(),
                 "result::value() on error: " << status_.to_string());
    return std::move(*value_);
  }
  [[nodiscard]] const T& value_or(const T& fallback) const {
    return value_.has_value() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  status status_;
};

}  // namespace pn
