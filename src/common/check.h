// Precondition / invariant checking.
//
// PN_CHECK fires on programming errors (bad arguments, broken invariants)
// and always stays on, including in release builds: a deployability model
// that silently computes nonsense is worse than one that stops. Expected,
// recoverable failures use pn::status / pn::result instead (status.h).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pn::internal {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace pn::internal

#define PN_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::pn::internal::check_failed(#expr, __FILE__, __LINE__, {});  \
    }                                                               \
  } while (false)

#define PN_CHECK_MSG(expr, ...)                                   \
  do {                                                            \
    if (!(expr)) {                                                \
      ::std::ostringstream pn_check_oss;                          \
      pn_check_oss << __VA_ARGS__;                                \
      ::pn::internal::check_failed(#expr, __FILE__, __LINE__,     \
                                   pn_check_oss.str());           \
    }                                                             \
  } while (false)
