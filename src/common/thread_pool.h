// A from-scratch fixed-size worker pool for CPU-bound fan-out.
//
// The sweep driver evaluates independent design points; each point is
// seconds of pure computation, so a plain mutex-guarded queue is more than
// fast enough and keeps the implementation auditable. No third-party
// dependency, no thread-local state: determinism comes from the work
// items themselves (each point derives its own seed), not from scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/guarded.h"

namespace pn {

// Hardware concurrency, clamped to at least 1 (the standard allows 0).
[[nodiscard]] int default_thread_count();

class thread_pool {
 public:
  // Spawns `threads` workers (clamped to at least 1). Pass
  // default_thread_count() to match the machine.
  explicit thread_pool(int threads);
  // Drains the queue, then joins every worker.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished and the queue is empty.
  void wait_idle();

  // Discards every queued-but-unstarted task (clean drain: tasks already
  // running finish normally, nothing new starts). Returns how many tasks
  // were dropped. Safe to call concurrently with submit/wait_idle.
  std::size_t cancel_pending();

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait_idle: queue empty and nothing running
  std::deque<std::function<void()>> queue_ PN_GUARDED_BY(mu_);
  std::size_t in_flight_ PN_GUARDED_BY(mu_) = 0;
  bool stop_ PN_GUARDED_BY(mu_) = false;
  // Filled in the constructor, joined in the destructor; no worker touches
  // the vector itself, so it lives outside mu_'s footprint.
  std::vector<std::thread> workers_ PN_EXCLUDES(mu_);
};

// Runs fn(i) for every i in [0, n), spreading iterations over `threads`
// workers via an atomic cursor. threads <= 1 (or n <= 1) runs inline on
// the caller's thread — the parallel and serial paths execute the same
// per-item code, so results are identical whenever fn(i) depends only
// on i.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

// Cancellable variant: checks `cancel` before dispatching each index and
// stops handing out new work once cancellation is requested. Indices
// already in flight run to completion (cooperative drain, never abort);
// indices never dispatched are simply skipped — callers that need to know
// which ones track it themselves.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  const cancel_token& cancel);

}  // namespace pn
