#include "common/status.h"

namespace pn {

const char* status_code_name(status_code c) {
  switch (c) {
    case status_code::ok:
      return "ok";
    case status_code::invalid_argument:
      return "invalid_argument";
    case status_code::not_found:
      return "not_found";
    case status_code::out_of_range:
      return "out_of_range";
    case status_code::infeasible:
      return "infeasible";
    case status_code::capacity_exceeded:
      return "capacity_exceeded";
    case status_code::constraint_violated:
      return "constraint_violated";
    case status_code::unavailable:
      return "unavailable";
    case status_code::cancelled:
      return "cancelled";
    case status_code::deadline_exceeded:
      return "deadline_exceeded";
    case status_code::fault_injected:
      return "fault_injected";
    case status_code::io_error:
      return "io_error";
    case status_code::corrupt_data:
      return "corrupt_data";
    case status_code::bad_frame:
      return "bad_frame";
    case status_code::overloaded:
      return "overloaded";
    case status_code::shutting_down:
      return "shutting_down";
  }
  return "unknown";
}

std::optional<status_code> status_code_from_name(std::string_view name) {
  static constexpr status_code all[] = {
      status_code::ok,
      status_code::invalid_argument,
      status_code::not_found,
      status_code::out_of_range,
      status_code::infeasible,
      status_code::capacity_exceeded,
      status_code::constraint_violated,
      status_code::unavailable,
      status_code::cancelled,
      status_code::deadline_exceeded,
      status_code::fault_injected,
      status_code::io_error,
      status_code::corrupt_data,
      status_code::bad_frame,
      status_code::overloaded,
      status_code::shutting_down,
  };
  for (const status_code c : all) {
    if (name == status_code_name(c)) return c;
  }
  return std::nullopt;
}

std::string status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pn
