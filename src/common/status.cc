#include "common/status.h"

namespace pn {

const char* status_code_name(status_code c) {
  switch (c) {
    case status_code::ok:
      return "ok";
    case status_code::invalid_argument:
      return "invalid_argument";
    case status_code::not_found:
      return "not_found";
    case status_code::out_of_range:
      return "out_of_range";
    case status_code::infeasible:
      return "infeasible";
    case status_code::capacity_exceeded:
      return "capacity_exceeded";
    case status_code::constraint_violated:
      return "constraint_violated";
    case status_code::unavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pn
