// Concurrency-discipline annotations, checked by pn_lint (R8/R9).
//
// These expand to nothing — they are vocabulary, not mechanism. pn_lint's
// declaration tracker parses them at token level and enforces:
//
//   PN_GUARDED_BY(mu)  on a data member: every read or write must happen
//                      with `mu` visibly held — a lock_guard / unique_lock /
//                      scoped_lock of `mu` in an enclosing scope, or a
//                      PN_REQUIRES(mu) on the enclosing function.
//   PN_REQUIRES(mu)    on a function: callers hold `mu` across the call,
//                      so the body may touch mu-guarded members without a
//                      visible guard. The lock-order pass (R9) also treats
//                      `mu` as held for every acquisition the body makes.
//   PN_EXCLUDES(mu)    on a function: the function manages `mu` itself
//                      (callers must NOT hold it); any lock-free read it
//                      makes of mu-guarded state is a documented, deliberate
//                      relaxed read — not an oversight.
//   PN_EXCLUDES(mu)    on a data member of a mutex-bearing class: the
//                      member is deliberately outside mu's footprint —
//                      immutable after construction, internally
//                      synchronized, or handed off before publication.
//
// Every non-exempt member of a class that declares a std::mutex (in the
// directories R8 designates) must carry exactly one of PN_GUARDED_BY /
// PN_EXCLUDES, so the locking contract is written down where the data
// lives. Members that are atomics, condition variables, const, static, or
// references are exempt by type.
//
// The spellings mirror clang's -Wthread-safety attribute names on purpose:
// if the toolchain ever grows real thread-safety analysis, these defines
// can forward to __attribute__((guarded_by(...))) and friends unchanged.
#pragma once

#define PN_GUARDED_BY(mu)
#define PN_REQUIRES(mu)
#define PN_EXCLUDES(mu)
