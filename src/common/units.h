// Strongly-typed physical quantities used throughout physnet.
//
// The paper's whole argument is that abstract network design ignores
// physical quantities (lengths, diameters, dollars, hours, watts, dB).
// Mixing those up silently is exactly the class of bug a deployability
// framework must not have, so each quantity gets its own type. Arithmetic
// is closed within a unit (add/sub/scale); cross-unit products that make
// sense (e.g. $/m * m) are expressed explicitly at call sites via value().
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace pn {

// A one-dimensional quantity tagged by its unit. Tag types are empty
// structs; they exist only to make, say, meters and dollars incompatible.
template <typename Tag>
class quantity {
 public:
  constexpr quantity() = default;
  constexpr explicit quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr quantity& operator+=(quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr quantity& operator-=(quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr quantity operator+(quantity a, quantity b) {
    return quantity{a.v_ + b.v_};
  }
  friend constexpr quantity operator-(quantity a, quantity b) {
    return quantity{a.v_ - b.v_};
  }
  friend constexpr quantity operator-(quantity a) { return quantity{-a.v_}; }
  friend constexpr quantity operator*(quantity a, double s) {
    return quantity{a.v_ * s};
  }
  friend constexpr quantity operator*(double s, quantity a) {
    return quantity{a.v_ * s};
  }
  friend constexpr quantity operator/(quantity a, double s) {
    return quantity{a.v_ / s};
  }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(quantity a, quantity b) {
    return a.v_ / b.v_;
  }
  friend constexpr auto operator<=>(quantity a, quantity b) = default;

 private:
  double v_ = 0.0;
};

struct meters_tag {};
struct millimeters_tag {};
struct square_millimeters_tag {};
struct gbps_tag {};
struct dollars_tag {};
struct hours_tag {};
struct watts_tag {};
struct decibels_tag {};

using meters = quantity<meters_tag>;
using millimeters = quantity<millimeters_tag>;
using square_millimeters = quantity<square_millimeters_tag>;
using gbps = quantity<gbps_tag>;
using dollars = quantity<dollars_tag>;
using hours = quantity<hours_tag>;
using watts = quantity<watts_tag>;
using decibels = quantity<decibels_tag>;

// Conversions that are unambiguous.
[[nodiscard]] constexpr millimeters to_millimeters(meters m) {
  return millimeters{m.value() * 1000.0};
}
[[nodiscard]] constexpr meters to_meters(millimeters mm) {
  return meters{mm.value() / 1000.0};
}
[[nodiscard]] constexpr hours hours_from_minutes(double minutes) {
  return hours{minutes / 60.0};
}
[[nodiscard]] constexpr double minutes(hours h) { return h.value() * 60.0; }

// Cross-sectional area of a round cable of outside diameter `od`.
[[nodiscard]] inline square_millimeters circle_area(millimeters od) {
  const double r = od.value() / 2.0;
  return square_millimeters{M_PI * r * r};
}

// User-defined literals for readable constants in tests and catalogs.
namespace literals {
constexpr meters operator""_m(long double v) {
  return meters{static_cast<double>(v)};
}
constexpr meters operator""_m(unsigned long long v) {
  return meters{static_cast<double>(v)};
}
constexpr millimeters operator""_mm(long double v) {
  return millimeters{static_cast<double>(v)};
}
constexpr millimeters operator""_mm(unsigned long long v) {
  return millimeters{static_cast<double>(v)};
}
constexpr gbps operator""_gbps(unsigned long long v) {
  return gbps{static_cast<double>(v)};
}
constexpr dollars operator""_usd(long double v) {
  return dollars{static_cast<double>(v)};
}
constexpr dollars operator""_usd(unsigned long long v) {
  return dollars{static_cast<double>(v)};
}
constexpr hours operator""_h(long double v) {
  return hours{static_cast<double>(v)};
}
constexpr hours operator""_h(unsigned long long v) {
  return hours{static_cast<double>(v)};
}
constexpr watts operator""_w(long double v) {
  return watts{static_cast<double>(v)};
}
constexpr watts operator""_w(unsigned long long v) {
  return watts{static_cast<double>(v)};
}
constexpr decibels operator""_db(long double v) {
  return decibels{static_cast<double>(v)};
}
}  // namespace literals

std::ostream& operator<<(std::ostream& os, meters m);
std::ostream& operator<<(std::ostream& os, millimeters mm);
std::ostream& operator<<(std::ostream& os, gbps g);
std::ostream& operator<<(std::ostream& os, dollars d);
std::ostream& operator<<(std::ostream& os, hours h);
std::ostream& operator<<(std::ostream& os, watts w);
std::ostream& operator<<(std::ostream& os, decibels db);

}  // namespace pn
