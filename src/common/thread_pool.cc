#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pn {

int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

thread_pool::thread_pool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void thread_pool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t thread_pool::cancel_pending() {
  std::deque<std::function<void()>> dropped;
  {
    std::unique_lock<std::mutex> lock(mu_);
    dropped.swap(queue_);
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  // Destroy the dropped tasks outside the lock (they may own captures
  // with nontrivial destructors).
  return dropped.size();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  // The pool never outlives this frame, so capturing locals is safe.
  const int spawned =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), n));
  thread_pool pool(spawned);
  for (int t = 0; t < spawned; ++t) {
    pool.submit(drain);
  }
  pool.wait_idle();
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  const cancel_token& cancel) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel.cancelled()) return;
      fn(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      if (cancel.cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  const int spawned =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), n));
  thread_pool pool(spawned);
  for (int t = 0; t < spawned; ++t) {
    pool.submit(drain);
  }
  pool.wait_idle();
}

}  // namespace pn
