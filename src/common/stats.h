// Summary statistics over samples (cable lengths, task times, MTTR, ...).
#pragma once

#include <cstddef>
#include <vector>

namespace pn {

// Accumulates doubles and answers mean / percentile / extrema queries.
// Percentile queries sort a copy lazily; fine at the sample counts we use.
// Samples must be finite: one NaN would silently poison sum/mean/stddev
// and make percentile's sort order unspecified, so add() PN_CHECKs.
class sample_stats {
 public:
  void add(double v);
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Population standard deviation.
  [[nodiscard]] double stddev() const;
  // q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

// Fixed-width histogram over [lo, hi); finite values outside clamp to
// end bins. NaN and ±Inf have no meaningful bin — casting them to an
// index is undefined behavior — so they are tallied separately under
// nonfinite() and excluded from total().
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double v);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  // Finite samples only; nonfinite() counts the NaN/Inf ones.
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t nonfinite() const { return nonfinite_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nonfinite_ = 0;
};

}  // namespace pn
