#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PN_CHECK(!headers_.empty());
}

text_table& text_table::row() {
  PN_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
               "previous row has " << rows_.back().size() << " cells, want "
                                   << headers_.size());
  rows_.emplace_back();
  return *this;
}

text_table& text_table::cell(std::string v) {
  PN_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  PN_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(std::move(v));
  return *this;
}

text_table& text_table::cell(const char* v) { return cell(std::string(v)); }

text_table& text_table::cell(double v, int precision) {
  return cell(str_format("%.*f", precision, v));
}

text_table& text_table::cell(long long v) {
  return cell(str_format("%lld", v));
}

text_table& text_table::cell_pct(double fraction, int precision) {
  return cell(str_format("%.*f%%", precision, fraction * 100.0));
}

std::string text_table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    oss << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      oss << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    oss << "\n";
  };
  auto emit_rule = [&] {
    oss << "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      oss << std::string(widths[c] + 2, '-') << "+";
    }
    oss << "\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& r : rows_) emit_row(r);
  emit_rule();
  return oss.str();
}

void text_table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "\n== " << title << " ==\n";
  os << to_string();
}

}  // namespace pn
