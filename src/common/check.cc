#include "common/check.h"

namespace pn::internal {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "PN_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

}  // namespace pn::internal
