// ASCII table rendering for experiment benches and reports.
//
// Every experiment binary prints the rows the paper (or the claim it cites)
// would tabulate; this keeps that output uniform and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pn {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  // Start a new row; subsequent add_* calls fill it left to right.
  text_table& row();
  text_table& cell(std::string v);
  text_table& cell(const char* v);
  text_table& cell(double v, int precision = 2);
  text_table& cell(long long v);
  text_table& cell(int v) { return cell(static_cast<long long>(v)); }
  text_table& cell(std::size_t v) { return cell(static_cast<long long>(v)); }
  // Percentage with a trailing %.
  text_table& cell_pct(double fraction, int precision = 1);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pn
