#include "service/client.h"

#include <algorithm>
#include <utility>

namespace pn {

bool is_retryable_backpressure(const status& s) {
  return s.code() == status_code::overloaded ||
         s.code() == status_code::shutting_down;
}

double retry_delay_ms(const retry_policy& policy, int attempt, rng& jitter) {
  double bound = policy.backoff_ms;
  for (int i = 0; i < attempt && bound < policy.backoff_cap_ms; ++i) {
    bound *= 2.0;
  }
  bound = std::min(bound, policy.backoff_cap_ms);
  return jitter.next_double() * std::max(0.0, bound);
}

result<eval_client> eval_client::connect(const std::string& endpoint_spec,
                                         std::size_t max_frame_payload) {
  auto ep = parse_endpoint(endpoint_spec);
  if (!ep.is_ok()) return ep.error();
  auto fd = connect_to(ep.value());
  if (!fd.is_ok()) return fd.error();
  return eval_client(std::move(fd).value(), max_frame_payload);
}

result<parsed_response> eval_client::round_trip(const std::string& payload,
                                                request_kind expect) {
  const status wrote = write_frame(fd_.get(), payload, max_frame_);
  if (!wrote.is_ok()) return wrote;
  auto frame = read_frame(fd_.get(), max_frame_);
  if (!frame.is_ok()) return frame.error();
  if (!frame.value().has_value()) {
    return io_error_status("server closed the connection mid-request");
  }
  auto response = parse_response(*frame.value());
  if (!response.is_ok()) return response.error();
  if (!response.value().error.is_ok()) {
    return response.value().error;  // the server's own answer
  }
  if (response.value().kind != expect) {
    return invalid_argument_error(
        std::string("response kind mismatch: expected ") +
        request_kind_name(expect) + ", got " +
        request_kind_name(response.value().kind));
  }
  return response;
}

result<deployability_report> eval_client::evaluate(const eval_request& req) {
  // The wire form carries advisory hint lines (e.g. delta_hint); the
  // server re-encodes canonically before any cache lookup.
  auto response =
      round_trip(encode_eval_request_wire(req), request_kind::evaluate);
  if (!response.is_ok()) return response.error();
  return std::move(response).value().eval.report;
}

result<deployability_report> eval_client::evaluate_with_retry(
    const eval_request& req, const retry_policy& policy,
    const std::function<void(double)>& sleeper) {
  rng jitter(policy.jitter_seed);
  for (int attempt = 0;; ++attempt) {
    auto report = evaluate(req);
    if (report.is_ok() || attempt >= policy.retries ||
        !is_retryable_backpressure(report.error())) {
      return report;
    }
    sleeper(retry_delay_ms(policy, attempt, jitter));
  }
}

result<stats_list> eval_client::stats() {
  auto response = round_trip(encode_plain_request(request_kind::stats),
                             request_kind::stats);
  if (!response.is_ok()) return response.error();
  return std::move(response).value().stats;
}

status eval_client::ping() {
  auto response = round_trip(encode_plain_request(request_kind::ping),
                             request_kind::ping);
  return response.is_ok() ? status::ok() : response.error();
}

result<std::uint64_t> eval_client::invalidate() {
  auto response = round_trip(encode_plain_request(request_kind::invalidate),
                             request_kind::invalidate);
  if (!response.is_ok()) return response.error();
  return response.value().cache_epoch;
}

}  // namespace pn
