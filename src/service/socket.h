// Thin RAII + setup helpers over BSD sockets (Unix-domain and TCP).
//
// Endpoints are strings: "unix:/path/to.sock" or "tcp:host:port"
// (host may be empty for the server side, meaning 0.0.0.0). Everything
// returns pn::status/result — no exceptions, no global state. Blocking
// I/O on the accepted fds is handled by framing.h (which polls with a
// cancel token); these helpers only create, bind, listen, accept, and
// connect.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/cancel.h"
#include "common/status.h"

namespace pn {

// Owning file descriptor. Move-only; closes on destruction.
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) : fd_(fd) {}
  ~unique_fd() { reset(); }

  unique_fd(unique_fd&& o) noexcept : fd_(o.release()) {}
  unique_fd& operator=(unique_fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

// Parsed endpoint string.
struct endpoint {
  bool is_unix = false;
  std::string path;  // unix socket path
  std::string host;  // tcp host (empty = all interfaces / loopback)
  int port = 0;      // tcp port
};

// "unix:<path>" or "tcp:<host>:<port>"; invalid_argument otherwise.
[[nodiscard]] result<endpoint> parse_endpoint(std::string_view spec);

// Creates a listening socket for the endpoint. For unix endpoints any
// stale socket file is unlinked first (the standard daemon dance). For
// tcp, SO_REUSEADDR is set and an empty host binds all interfaces.
[[nodiscard]] result<unique_fd> listen_on(const endpoint& ep,
                                          int backlog = 64);

// Blocking accept with a poll loop so a cancel request interrupts it.
// Returns nullopt when cancelled (clean shutdown path), io_error on a
// real failure.
[[nodiscard]] result<std::optional<unique_fd>> accept_on(
    int listen_fd, const cancel_token& cancel);

// Blocking connect. An empty tcp host connects to 127.0.0.1.
[[nodiscard]] result<unique_fd> connect_to(const endpoint& ep);

}  // namespace pn
