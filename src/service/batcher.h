// Admission control + request coalescing + batched evaluation.
//
// Connection handlers call evaluate() and block until their answer is
// ready. Behind that call:
//
//   1. The request is canonicalized (encode_eval_request) and probed
//      against the result cache — a hit returns the stored response
//      bytes without touching the queue.
//   2. On a miss, requests already in flight for the same cache key are
//      *coalesced*: the new caller attaches to the existing slot and
//      shares its answer. Coalesced waiters never consume queue space.
//   3. A genuinely new request must win a slot in the bounded admission
//      queue. A full queue answers status_code::overloaded immediately —
//      backpressure is explicit, nothing is silently dropped. Once
//      draining (shutdown()), new requests answer shutting_down instead.
//   4. A single dispatcher (its own one-thread pool) pops up to
//      max_batch slots at a time and fans the batch out over the eval
//      pool — batched parallel evaluation on the existing thread_pool,
//      exactly like a miniature sweep. Each slot publishes its response
//      and wakes its waiters the moment it finishes; the dispatcher
//      paces batches with wait_idle.
//
// Drain guarantee: every request admitted to the queue is evaluated and
// answered, even after shutdown() — the dispatcher exits only once the
// queue is empty. That is what lets the server promise "zero dropped
// in-flight requests" on SIGTERM.
//
// Caching: only successful evaluations are cached (an error response is
// cheap to recompute and may be transient, e.g. deadline_exceeded).
// Inserts carry the epoch observed at lookup time, so an invalidate()
// racing a long evaluation can never repopulate the cache with a
// pre-invalidate result (see result_cache.h).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/guarded.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "topology/graph.h"

namespace pn {

struct batcher_config {
  int eval_threads = 0;        // workers in the eval pool; 0 = one per core
  std::size_t queue_limit = 64;  // bounded admission queue (slots, not waiters)
  std::size_t max_batch = 8;     // slots dispatched per batch
  // Server-side evaluation template; wire_options overlay onto this.
  evaluation_options base_options;
  clock_fn clock;              // injectable time source; null = real clock
};

class eval_batcher {
 public:
  // `cache` and `metrics` must outlive the batcher.
  eval_batcher(batcher_config cfg, result_cache* cache,
               service_metrics* metrics);
  ~eval_batcher();  // shutdown() + drain

  eval_batcher(const eval_batcher&) = delete;
  eval_batcher& operator=(const eval_batcher&) = delete;

  struct outcome {
    std::string response;  // complete response payload (ok or error)
    bool cached = false;   // answered from the result cache
  };

  // Blocking: validates, admits, waits for the evaluation, and returns
  // the response payload bytes. Never throws for domain errors — every
  // failure (bad design, overloaded, shutting_down, evaluation error)
  // comes back as an encoded error response.
  [[nodiscard]] outcome evaluate(const eval_request& req);

  // Rejects new evaluate() admissions and blocks until every already
  // admitted request has been answered. Idempotent; safe to call from
  // multiple threads.
  void shutdown();

 private:
  struct slot {
    // The request snapshot is written once by the admitting thread before
    // the slot is published to the queue, then only read — outside mu's
    // footprint by construction.
    std::string name PN_EXCLUDES(mu);
    evaluation_options options PN_EXCLUDES(mu);  // resolved (wire over base)
    std::uint64_t wire_seed PN_EXCLUDES(mu) = 1;
    network_graph graph PN_EXCLUDES(mu);
    cache_key key PN_EXCLUDES(mu);
    std::uint64_t cache_epoch PN_EXCLUDES(mu) = 0;
    mono_ns enqueued_at PN_EXCLUDES(mu) = 0;

    std::mutex mu;
    std::condition_variable cv;
    bool done PN_GUARDED_BY(mu) = false;
    std::string response PN_GUARDED_BY(mu);
  };

  void dispatch_loop();
  void run_one(const std::shared_ptr<slot>& s);
  [[nodiscard]] static std::string wait_for(slot& s);

  // Construction-time wiring: set in the constructor, immutable after.
  batcher_config cfg_ PN_EXCLUDES(mu_);
  result_cache* cache_ PN_EXCLUDES(mu_);
  service_metrics* metrics_ PN_EXCLUDES(mu_);
  clock_fn clock_ PN_EXCLUDES(mu_);

  std::mutex mu_;  // guards queue_, inflight_, draining_
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<slot>> queue_ PN_GUARDED_BY(mu_);
  // key.lo -> in-flight slot (full key compared on probe; see
  // result_cache.h for why two lanes make collisions implausible).
  std::unordered_map<std::uint64_t, std::shared_ptr<slot>> inflight_
      PN_GUARDED_BY(mu_);
  bool draining_ PN_GUARDED_BY(mu_) = false;

  // Pools are internally synchronized (common/thread_pool.h).
  thread_pool eval_pool_ PN_EXCLUDES(mu_);
  thread_pool dispatch_pool_ PN_EXCLUDES(mu_);  // one thread: the dispatcher
};

}  // namespace pn
