#include "service/batcher.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {

eval_batcher::eval_batcher(batcher_config cfg, result_cache* cache,
                           service_metrics* metrics)
    : cfg_(std::move(cfg)),
      cache_(cache),
      metrics_(metrics),
      clock_(cfg_.clock ? cfg_.clock : real_clock()),
      eval_pool_(cfg_.eval_threads > 0 ? cfg_.eval_threads
                                       : default_thread_count()),
      dispatch_pool_(1) {
  PN_CHECK(cache_ != nullptr);
  PN_CHECK(metrics_ != nullptr);
  PN_CHECK(cfg_.queue_limit > 0);
  PN_CHECK(cfg_.max_batch > 0);
  dispatch_pool_.submit([this] { dispatch_loop(); });
}

eval_batcher::~eval_batcher() { shutdown(); }

void eval_batcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  // The dispatcher task returns only once the queue is empty, so this
  // wait is the drain barrier: afterwards every admitted request has
  // published its response.
  dispatch_pool_.wait_idle();
  eval_pool_.wait_idle();
}

std::string eval_batcher::wait_for(slot& s) {
  std::unique_lock<std::mutex> lock(s.mu);
  s.cv.wait(lock, [&] { return s.done; });
  return s.response;
}

eval_batcher::outcome eval_batcher::evaluate(const eval_request& req) {
  // Canonicalize first: the *server-side* re-encoding is the cache-key
  // material, so differently-formatted but semantically equal client
  // payloads still share a cache line.
  const std::string canonical = encode_eval_request(req);
  const cache_key key = cache_key_of(canonical);

  const cache_lookup probe = cache_->lookup(key);
  if (probe.hit.has_value()) {
    return outcome{probe.hit->response, /*cached=*/true};
  }

  // Validate before admission: a malformed design or bad options should
  // answer immediately without costing a queue slot.
  auto sl = std::make_shared<slot>();
  sl->name = req.name;
  sl->wire_seed = req.options.seed;
  sl->key = key;
  sl->cache_epoch = probe.epoch;
  {
    auto opts = req.options.apply_to(cfg_.base_options);
    if (!opts.is_ok()) {
      metrics_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      return outcome{encode_error_response(opts.error()), false};
    }
    sl->options = std::move(opts).value();
  }
  {
    auto twin = parse_twin(req.design_twin);
    if (!twin.is_ok()) {
      metrics_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      return outcome{encode_error_response(twin.error()), false};
    }
    auto graph = design_from_twin(twin.value());
    if (!graph.is_ok()) {
      metrics_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      return outcome{encode_error_response(graph.error()), false};
    }
    sl->graph = std::move(graph).value();
  }

  std::shared_ptr<slot> waiting_on;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      metrics_->rejected_shutting_down.fetch_add(1,
                                                 std::memory_order_relaxed);
      return outcome{encode_error_response(shutting_down_error(
                         "service is draining; not accepting work")),
                     false};
    }
    const auto it = inflight_.find(key.lo);
    if (it != inflight_.end() && it->second->key == key) {
      // Same canonical request already admitted: share its answer.
      waiting_on = it->second;
    } else if (const cache_lookup again =
                   cache_->lookup(key, /*count_miss=*/false);
               again.hit.has_value()) {
      // The winner for this key may have finished between the lock-free
      // probe above and this lock: run_one() inserts into the cache
      // *before* erasing its inflight entry, and the erase is mu_-
      // ordered, so when the entry is gone this re-probe sees the
      // cached response. That closes the window that would otherwise
      // duplicate an evaluation. The miss side is uncounted — this
      // request already charged its miss on the first probe.
      return outcome{again.hit->response, /*cached=*/true};
    } else if (queue_.size() >= cfg_.queue_limit) {
      metrics_->rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
      return outcome{encode_error_response(overloaded_error(str_format(
                         "admission queue full (%zu waiting); retry later",
                         queue_.size()))),
                     false};
    } else {
      sl->cache_epoch = again.epoch;
      sl->enqueued_at = clock_();
      queue_.push_back(sl);
      inflight_.emplace(key.lo, sl);
      metrics_->requests_admitted.fetch_add(1, std::memory_order_relaxed);
      metrics_->queue_depth.fetch_add(1, std::memory_order_relaxed);
      waiting_on = sl;
    }
  }
  if (waiting_on != sl) {
    metrics_->coalesced.fetch_add(1, std::memory_order_relaxed);
  } else {
    queue_cv_.notify_one();
  }
  return outcome{wait_for(*waiting_on), false};
}

void eval_batcher::dispatch_loop() {
  for (;;) {
    std::vector<std::shared_ptr<slot>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and fully drained
      while (!queue_.empty() && batch.size() < cfg_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    metrics_->batches.fetch_add(1, std::memory_order_relaxed);
    metrics_->queue_depth.fetch_sub(
        static_cast<std::int64_t>(batch.size()), std::memory_order_relaxed);
    metrics_->batch_size.record(static_cast<double>(batch.size()));
    const mono_ns dispatched_at = clock_();
    for (const auto& s : batch) {
      metrics_->queue_wait_ms.record(
          mono_ms_between(s->enqueued_at, dispatched_at));
    }
    // Fan the batch out; only the dispatcher submits into eval_pool_,
    // so wait_idle is exactly "this batch finished". Each slot publishes
    // (and wakes its waiters) as soon as it is done — the barrier only
    // paces the *next* batch.
    for (const auto& s : batch) {
      eval_pool_.submit([this, s] { run_one(s); });
    }
    eval_pool_.wait_idle();
  }
}

void eval_batcher::run_one(const std::shared_ptr<slot>& s) {
  const mono_ns start = clock_();
  auto res = evaluate_design(s->graph, s->name, s->options);
  metrics_->eval_ms.record(mono_ms_between(start, clock_()));

  std::string response;
  if (res.is_ok()) {
    metrics_->eval_ok.fetch_add(1, std::memory_order_relaxed);
    response = encode_eval_response(res.value().report, s->wire_seed);
    // Stale-epoch inserts are dropped inside the cache; see header.
    cache_->insert(s->key, response, s->cache_epoch);
  } else {
    metrics_->eval_error.fetch_add(1, std::memory_order_relaxed);
    response = encode_error_response(res.error());
  }

  {
    // Erase *after* the cache insert above: a later request for the
    // same key that finds no inflight entry re-probes the cache under
    // mu_ (see evaluate()), so a successful evaluation is never
    // repeated. On an error response (not cached) a later request
    // evaluates afresh, which is the desired retry semantics.
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(s->key.lo);
    if (it != inflight_.end() && it->second == s) inflight_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->response = std::move(response);
    s->done = true;
  }
  s->cv.notify_all();
}

}  // namespace pn
