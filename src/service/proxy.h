// Consistent-hashing front proxy for a fleet of physnet_serve workers.
//
// The proxy speaks the same physnet/1 framed protocol as the workers on
// both sides. Each client connection gets one handler task (per-
// connection request ordering is therefore preserved by construction);
// the handler re-encodes every evaluate request canonically, hashes the
// canonical bytes with the result cache's dual-lane FNV-1a key, and
// routes the *original* payload bytes to the worker the hash ring picks.
// Responses are relayed verbatim, so a proxied response is byte-
// identical to what the chosen worker would have answered directly —
// the canonical re-encode is used for routing only. Since the cache key
// inside each worker is the same hash of the same canonical bytes,
// consistent hashing also partitions the fleet's caches: every distinct
// request has exactly one home worker and therefore exactly one cache
// line fleet-wide (aggregate capacity scales with worker count).
//
// Worker death: a connect/write/read failure marks the worker dead and
// starts a capped exponential reconnect backoff; the request fails over
// to the next worker in the ring's preference order (deterministic
// survivor rehash — only the dead worker's keys move). When no worker
// can answer, the client gets a retryable `overloaded` error, the same
// backpressure contract physnet_serve itself uses. Backend reads carry
// a stall timeout instead of a cancel token, so an admitted request is
// never abandoned mid-drain and a wedged worker cannot pin a handler.
//
// Invalidation: an `invalidate` request bumps the proxy's generation
// and broadcasts an epoch bump to every reachable worker. Workers that
// were unreachable stay behind on acked generation, and any handler
// about to forward an evaluate to such a worker first resyncs it
// (sends the missed invalidate) — so a worker can never serve a stale
// cached result after the proxy acknowledged an invalidation, even
// across worker crashes and reconnects. Redundant bumps from racing
// handlers only over-invalidate, which is safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "service/framing.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/ring.h"
#include "service/socket.h"

namespace pn {

struct proxy_config {
  std::string listen;                // "unix:<path>" or "tcp:<host>:<port>"
  std::vector<std::string> workers;  // backend endpoint specs, >= 1
  int conn_threads = 8;              // concurrent client handlers
  int vnodes = 64;                   // ring points per worker
  double backoff_base_ms = 50.0;     // first reconnect delay after a death
  double backoff_cap_ms = 2'000.0;
  int stall_timeout_ms = 120'000;    // backend silence budget per frame
  std::size_t max_frame_payload = default_max_frame_payload;
  clock_fn clock;                    // injectable; defaults to mono_now
};

struct proxy_metrics {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_active{0};
  std::atomic<std::uint64_t> requests_forwarded{0};  // answered by a worker
  std::atomic<std::uint64_t> failovers{0};     // retried on another worker
  std::atomic<std::uint64_t> worker_failures{0};  // dead-marks
  std::atomic<std::uint64_t> no_worker_available{0};  // overloaded answers
  std::atomic<std::uint64_t> invalidate_broadcasts{0};
  std::atomic<std::uint64_t> invalidate_resyncs{0};  // lazy catch-ups
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> bad_requests{0};
  metric_series forward_ms{60'000.0, 240};  // client-observed, per request
};

class eval_proxy {
 public:
  explicit eval_proxy(proxy_config cfg);
  ~eval_proxy();

  eval_proxy(const eval_proxy&) = delete;
  eval_proxy& operator=(const eval_proxy&) = delete;

  // Parses endpoints and starts listening. Call once, before serve().
  [[nodiscard]] status bind();

  // Accept loop on the calling thread until `cancel` fires; then drains
  // handlers (in-flight backend round trips complete, bounded by the
  // stall timeout) and returns.
  [[nodiscard]] status serve(const cancel_token& cancel);

  // Observability.
  [[nodiscard]] proxy_metrics& metrics() { return metrics_; }
  [[nodiscard]] const endpoint& bound_endpoint() const { return ep_; }
  [[nodiscard]] const hash_ring& ring() const { return ring_; }
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool worker_alive(std::size_t i) const;

 private:
  struct worker_state {
    std::string spec;
    endpoint ep;
    std::atomic<bool> alive{true};
    std::atomic<int> failures{0};          // consecutive, for backoff
    std::atomic<mono_ns> retry_at{0};      // next probe time when dead
    std::atomic<std::uint64_t> acked_generation{1};
    std::atomic<std::uint64_t> forwarded{0};  // evaluates this worker answered
  };
  // One lazily-connected backend fd per worker, owned by one handler.
  struct backend_conns {
    std::vector<unique_fd> fds;
  };

  void handle_connection(int fd, const cancel_token& cancel);
  [[nodiscard]] std::string handle_payload(backend_conns& conns,
                                           const std::string& payload);
  [[nodiscard]] std::string handle_evaluate(backend_conns& conns,
                                            const eval_request& req,
                                            const std::string& payload);
  [[nodiscard]] std::string handle_stats(backend_conns& conns);
  [[nodiscard]] std::string handle_invalidate(backend_conns& conns);

  // True when worker w may be tried now: alive, or dead with an expired
  // backoff window (a probe).
  [[nodiscard]] bool routable(std::size_t w) const;
  void mark_failure(std::size_t w);
  void mark_alive(std::size_t w);

  // One framed round trip on this handler's connection to worker w,
  // connecting (and resyncing a missed invalidation generation, unless
  // `resync` is false because this IS the invalidate) first. Any
  // failure marks the worker dead and resets the connection.
  [[nodiscard]] result<std::string> worker_round_trip(
      backend_conns& conns, std::size_t w, const std::string& payload,
      bool resync = true);

  proxy_config cfg_;
  endpoint ep_;
  unique_fd listen_fd_;
  hash_ring ring_;
  std::vector<std::unique_ptr<worker_state>> workers_;
  std::atomic<std::uint64_t> generation_{1};
  proxy_metrics metrics_;
  thread_pool conn_pool_;
};

}  // namespace pn
