#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace pn {

void unique_fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

status errno_error(const std::string& what) {
  return io_error_status(what + ": " + std::strerror(errno));
}

}  // namespace

result<endpoint> parse_endpoint(std::string_view spec) {
  endpoint ep;
  if (starts_with(spec, "unix:")) {
    ep.is_unix = true;
    ep.path = std::string(spec.substr(5));
    if (ep.path.empty()) {
      return invalid_argument_error("unix endpoint needs a path");
    }
    // sun_path is a fixed-size buffer; reject instead of truncating.
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return invalid_argument_error("unix socket path too long: " + ep.path);
    }
    return ep;
  }
  if (starts_with(spec, "tcp:")) {
    const std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos) {
      return invalid_argument_error(
          "tcp endpoint must be tcp:<host>:<port>");
    }
    ep.host = std::string(rest.substr(0, colon));
    const std::string port_str(rest.substr(colon + 1));
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end != port_str.c_str() + port_str.size() ||
        port < 1 || port > 65535) {
      return invalid_argument_error("bad tcp port: " + port_str);
    }
    ep.port = static_cast<int>(port);
    return ep;
  }
  return invalid_argument_error(
      "endpoint must be unix:<path> or tcp:<host>:<port>, got: " +
      std::string(spec));
}

result<unique_fd> listen_on(const endpoint& ep, int backlog) {
  if (ep.is_unix) {
    unique_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return errno_error("socket(AF_UNIX)");
    // A path left behind by a crashed daemon must be unlinked before
    // bind — but unlinking unconditionally would let a second daemon
    // silently steal a live daemon's socket. Probe with a connect
    // first: acceptance means someone is serving there, so refuse.
    if (auto live = connect_to(ep); live.is_ok()) {
      return io_error_status("refusing to listen on " + ep.path +
                             ": another process is already serving "
                             "on this socket");
    }
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return errno_error("bind(" + ep.path + ")");
    }
    if (::listen(fd.get(), backlog) != 0) {
      return errno_error("listen(" + ep.path + ")");
    }
    return fd;
  }

  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (ep.host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument_error("bad tcp host (need an IPv4 address): " +
                                  ep.host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errno_error(str_format("bind(port %d)", ep.port));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return errno_error(str_format("listen(port %d)", ep.port));
  }
  return fd;
}

result<std::optional<unique_fd>> accept_on(int listen_fd,
                                           const cancel_token& cancel) {
  for (;;) {
    if (cancel.cancelled()) return std::optional<unique_fd>{};
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int rv = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (rv < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the token
      return errno_error("poll(listen)");
    }
    if (rv == 0) continue;  // timeout: re-check the cancel token
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return errno_error("accept");
    }
    return std::optional<unique_fd>{unique_fd(conn)};
  }
}

result<unique_fd> connect_to(const endpoint& ep) {
  if (ep.is_unix) {
    unique_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return errno_error("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return errno_error("connect(" + ep.path + ")");
    }
    return fd;
  }

  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument_error("bad tcp host (need an IPv4 address): " +
                                  host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return errno_error(str_format("connect(%s:%d)", host.c_str(), ep.port));
  }
  return fd;
}

}  // namespace pn
