#include "service/proxy.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "service/protocol.h"
#include "service/result_cache.h"

namespace pn {

namespace {

// Worker stat keys the proxy sums into its aggregated stats response.
// Gauges that don't add meaningfully across processes (cache.epoch,
// queue.depth, latency percentiles) are deliberately absent; hit_ratio
// is recomputed from the summed hits/misses.
constexpr const char* kSummedWorkerStats[] = {
    "batch.batches",
    "cache.entries",
    "cache.hits",
    "cache.misses",
    "connections.accepted",
    "eval.coalesced",
    "eval.error",
    "eval.ok",
    "requests.admitted",
    "requests.bad_frames",
    "requests.bad_requests",
    "requests.rejected_overloaded",
    "requests.rejected_shutting_down",
};

std::string fmt_u64(std::uint64_t v) {
  return str_format("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

eval_proxy::eval_proxy(proxy_config cfg)
    : cfg_(std::move(cfg)),
      ring_(cfg_.workers, cfg_.vnodes),
      conn_pool_(cfg_.conn_threads > 0 ? cfg_.conn_threads : 1) {
  PN_CHECK_MSG(!cfg_.workers.empty(), "proxy needs at least one worker");
  if (!cfg_.clock) cfg_.clock = real_clock();
  workers_.reserve(cfg_.workers.size());
  for (const std::string& spec : cfg_.workers) {
    auto w = std::make_unique<worker_state>();
    w->spec = spec;
    workers_.push_back(std::move(w));
  }
}

eval_proxy::~eval_proxy() = default;

status eval_proxy::bind() {
  PN_CHECK_MSG(!listen_fd_.valid(), "bind() called twice");
  for (auto& w : workers_) {
    auto ep = parse_endpoint(w->spec);
    if (!ep.is_ok()) return ep.error();
    w->ep = std::move(ep).value();
  }
  auto ep = parse_endpoint(cfg_.listen);
  if (!ep.is_ok()) return ep.error();
  ep_ = std::move(ep).value();
  auto fd = listen_on(ep_);
  if (!fd.is_ok()) return fd.error();
  listen_fd_ = std::move(fd).value();
  return status::ok();
}

status eval_proxy::serve(const cancel_token& cancel) {
  PN_CHECK_MSG(listen_fd_.valid(), "serve() before bind()");
  status listen_failure = status::ok();
  for (;;) {
    auto accepted = accept_on(listen_fd_.get(), cancel);
    if (!accepted.is_ok()) {
      listen_failure = accepted.error();
      break;
    }
    if (!accepted.value().has_value()) break;  // cancelled: clean shutdown
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto fd = std::make_shared<unique_fd>(
        std::move(accepted.value().value()));
    conn_pool_.submit([this, fd, cancel] {
      metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
      handle_connection(fd->get(), cancel);
      metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  listen_fd_.reset();
  if (ep_.is_unix) ::unlink(ep_.path.c_str());
  conn_pool_.wait_idle();
  return listen_failure;
}

bool eval_proxy::worker_alive(std::size_t i) const {
  PN_CHECK(i < workers_.size());
  return workers_[i]->alive.load(std::memory_order_acquire);
}

bool eval_proxy::routable(std::size_t w) const {
  const worker_state& ws = *workers_[w];
  if (ws.alive.load(std::memory_order_acquire)) return true;
  return cfg_.clock() >= ws.retry_at.load(std::memory_order_acquire);
}

void eval_proxy::mark_failure(std::size_t w) {
  worker_state& ws = *workers_[w];
  const int failures = ws.failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  double backoff = cfg_.backoff_base_ms;
  for (int i = 1; i < failures && backoff < cfg_.backoff_cap_ms; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, cfg_.backoff_cap_ms);
  ws.retry_at.store(cfg_.clock() + mono_ns_from_ms(backoff),
                    std::memory_order_release);
  ws.alive.store(false, std::memory_order_release);
  metrics_.worker_failures.fetch_add(1, std::memory_order_relaxed);
}

void eval_proxy::mark_alive(std::size_t w) {
  worker_state& ws = *workers_[w];
  ws.failures.store(0, std::memory_order_release);
  ws.retry_at.store(0, std::memory_order_release);
  ws.alive.store(true, std::memory_order_release);
}

result<std::string> eval_proxy::worker_round_trip(backend_conns& conns,
                                                  std::size_t w,
                                                  const std::string& payload,
                                                  bool resync) {
  worker_state& ws = *workers_[w];
  unique_fd& fd = conns.fds[w];
  if (!fd.valid()) {
    auto connected = connect_to(ws.ep);
    if (!connected.is_ok()) {
      mark_failure(w);
      return connected.error();
    }
    fd = std::move(connected).value();
  }

  // A worker that missed an invalidate broadcast (it was down, or it
  // restarted mid-broadcast) must bump its cache epoch before it may
  // serve an evaluate — otherwise it could answer from a cache line the
  // proxy already told clients was invalidated.
  if (resync) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (ws.acked_generation.load(std::memory_order_acquire) < gen) {
      auto synced = worker_round_trip(
          conns, w, encode_plain_request(request_kind::invalidate),
          /*resync=*/false);
      if (!synced.is_ok()) return synced.error();
      metrics_.invalidate_resyncs.fetch_add(1, std::memory_order_relaxed);
      // fetch_max: another handler may have acked a newer generation.
      std::uint64_t seen =
          ws.acked_generation.load(std::memory_order_acquire);
      while (seen < gen && !ws.acked_generation.compare_exchange_weak(
                               seen, gen, std::memory_order_acq_rel)) {
      }
    }
  }

  const status wrote = write_frame(fd.get(), payload, cfg_.max_frame_payload);
  if (!wrote.is_ok()) {
    fd.reset();
    mark_failure(w);
    return wrote;
  }
  // No cancel token on purpose: once a request is in flight to a worker
  // the proxy waits for the answer (the worker drains admitted work on
  // shutdown), bounded only by the stall timeout.
  auto frame = read_frame(fd.get(), cfg_.max_frame_payload,
                          /*cancel=*/nullptr, cfg_.stall_timeout_ms);
  if (!frame.is_ok()) {
    fd.reset();
    mark_failure(w);
    return frame.error();
  }
  if (!frame.value().has_value()) {
    fd.reset();
    mark_failure(w);
    return io_error_status("worker closed the connection mid-request");
  }
  mark_alive(w);
  return std::move(*frame.value());
}

std::string eval_proxy::handle_evaluate(backend_conns& conns,
                                        const eval_request& req,
                                        const std::string& payload) {
  // Canonical bytes (hint lines stripped, options in fixed order) are the
  // routing material — the same bytes every worker hashes for its cache —
  // but the *original* payload is what gets forwarded, so the response
  // relayed back is byte-identical to a direct round trip.
  const cache_key key = cache_key_of(encode_eval_request(req));

  const mono_ns started = cfg_.clock();
  bool tried_any = false;
  for (const std::uint32_t w : ring_.preference(key)) {
    if (!routable(w)) continue;
    if (tried_any) {
      metrics_.failovers.fetch_add(1, std::memory_order_relaxed);
    }
    tried_any = true;
    auto response = worker_round_trip(conns, w, payload);
    if (response.is_ok()) {
      workers_[w]->forwarded.fetch_add(1, std::memory_order_relaxed);
      metrics_.requests_forwarded.fetch_add(1, std::memory_order_relaxed);
      metrics_.forward_ms.record(mono_ms_between(started, cfg_.clock()));
      return std::move(response).value();
    }
  }
  metrics_.no_worker_available.fetch_add(1, std::memory_order_relaxed);
  return encode_error_response(overloaded_error(
      "no live worker available for this request; back off and retry"));
}

std::string eval_proxy::handle_stats(backend_conns& conns) {
  // Aggregate: the proxy's own counters under proxy.*, plus the sum of
  // each worker's additive counters. Unreachable workers are skipped
  // (and visible via workers.alive).
  std::vector<std::pair<std::string, std::uint64_t>> sums;
  for (const char* key : kSummedWorkerStats) sums.emplace_back(key, 0);
  std::size_t reachable = 0;
  const std::string stats_req = encode_plain_request(request_kind::stats);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!routable(w)) continue;
    auto response = worker_round_trip(conns, w, stats_req);
    if (!response.is_ok()) continue;
    auto parsed = parse_response(response.value());
    if (!parsed.is_ok() || parsed.value().kind != request_kind::stats) {
      continue;
    }
    ++reachable;
    for (auto& [key, total] : sums) {
      if (const std::string* v = stats_get(parsed.value().stats, key)) {
        total += std::strtoull(v->c_str(), nullptr, 10);
      }
    }
  }

  stats_list out;
  out.reserve(sums.size() + 16);
  for (const auto& [key, total] : sums) {
    out.emplace_back(key, fmt_u64(total));
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& [key, total] : sums) {
    if (key == "cache.hits") hits = total;
    if (key == "cache.misses") misses = total;
  }
  const std::uint64_t lookups = hits + misses;
  out.emplace_back("cache.hit_ratio",
                   str_format("%.6f", lookups == 0
                                          ? 0.0
                                          : static_cast<double>(hits) /
                                                static_cast<double>(lookups)));
  out.emplace_back("proxy.connections.accepted",
                   fmt_u64(metrics_.connections_accepted.load()));
  out.emplace_back("proxy.failovers", fmt_u64(metrics_.failovers.load()));
  out.emplace_back("proxy.generation", fmt_u64(generation()));
  out.emplace_back("proxy.invalidate.broadcasts",
                   fmt_u64(metrics_.invalidate_broadcasts.load()));
  out.emplace_back("proxy.invalidate.resyncs",
                   fmt_u64(metrics_.invalidate_resyncs.load()));
  out.emplace_back("proxy.no_worker_available",
                   fmt_u64(metrics_.no_worker_available.load()));
  out.emplace_back("proxy.requests.bad_requests",
                   fmt_u64(metrics_.bad_requests.load()));
  out.emplace_back("proxy.requests.forwarded",
                   fmt_u64(metrics_.requests_forwarded.load()));
  out.emplace_back("proxy.worker_failures",
                   fmt_u64(metrics_.worker_failures.load()));
  const auto fwd = metrics_.forward_ms.snapshot();
  out.emplace_back("proxy.forward_ms.count", fmt_u64(fwd.count));
  out.emplace_back("proxy.forward_ms.mean", str_format("%.3f", fwd.mean()));
  out.emplace_back("proxy.forward_ms.p50", str_format("%.3f", fwd.p50));
  out.emplace_back("proxy.forward_ms.p95", str_format("%.3f", fwd.p95));
  out.emplace_back("proxy.forward_ms.p99", str_format("%.3f", fwd.p99));
  std::size_t alive = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const bool w_alive = workers_[w]->alive.load(std::memory_order_acquire);
    if (w_alive) ++alive;
    // Per-worker routing breakdown: a skewed fleet shows up here even
    // when every aggregate counter looks healthy.
    out.emplace_back(str_format("worker.%zu.alive", w), w_alive ? "1" : "0");
    out.emplace_back(str_format("worker.%zu.forwarded", w),
                     fmt_u64(workers_[w]->forwarded.load(
                         std::memory_order_relaxed)));
  }
  out.emplace_back("workers.alive", fmt_u64(alive));
  out.emplace_back("workers.reachable", fmt_u64(reachable));
  out.emplace_back("workers.total", fmt_u64(workers_.size()));
  std::sort(out.begin(), out.end());
  return encode_stats_response(out);
}

std::string eval_proxy::handle_invalidate(backend_conns& conns) {
  // Bump first: any evaluate that races this broadcast either reaches a
  // worker that already bumped (fine) or finds the worker's acked
  // generation behind and resyncs before forwarding.
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  metrics_.invalidate_broadcasts.fetch_add(1, std::memory_order_relaxed);
  const std::string payload =
      encode_plain_request(request_kind::invalidate);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    auto response =
        worker_round_trip(conns, w, payload, /*resync=*/false);
    if (!response.is_ok()) continue;  // stays behind; resynced on demand
    std::uint64_t seen =
        workers_[w]->acked_generation.load(std::memory_order_acquire);
    while (seen < gen && !workers_[w]->acked_generation.compare_exchange_weak(
                             seen, gen, std::memory_order_acq_rel)) {
    }
  }
  // The epoch in the response is the proxy's own generation: worker
  // epochs may drift apart across restarts, but the proxy guarantees
  // every post-invalidate evaluate sees post-invalidate caches.
  return encode_invalidate_response(gen);
}

std::string eval_proxy::handle_payload(backend_conns& conns,
                                       const std::string& payload) {
  auto parsed = parse_request(payload);
  if (!parsed.is_ok()) {
    metrics_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return encode_error_response(parsed.error());
  }
  switch (parsed.value().kind) {
    case request_kind::evaluate:
      return handle_evaluate(conns, parsed.value().eval, payload);
    case request_kind::stats:
      return handle_stats(conns);
    case request_kind::ping:
      return encode_ping_response();
    case request_kind::invalidate:
      return handle_invalidate(conns);
  }
  return encode_error_response(
      invalid_argument_error("unhandled request kind"));
}

void eval_proxy::handle_connection(int fd, const cancel_token& cancel) {
  backend_conns conns;
  conns.fds.resize(workers_.size());
  for (;;) {
    auto frame = read_frame(fd, cfg_.max_frame_payload, &cancel);
    if (!frame.is_ok()) {
      if (frame.error().code() == status_code::bad_frame) {
        metrics_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        // pn_lint: allow(unchecked-status) best-effort reply; peer may be gone
        (void)write_frame(fd, encode_error_response(frame.error()),
                          cfg_.max_frame_payload);
      }
      return;  // bad_frame / io_error / cancelled-while-idle: close
    }
    if (!frame.value().has_value()) return;  // clean EOF
    const std::string response = handle_payload(conns, *frame.value());
    if (!write_frame(fd, response, cfg_.max_frame_payload).is_ok()) {
      return;  // client went away mid-response
    }
  }
}

}  // namespace pn
