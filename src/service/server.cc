#include "service/server.h"

#include <unistd.h>

#include <utility>

#include "common/check.h"
#include "service/protocol.h"

namespace pn {

eval_server::eval_server(server_config cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_capacity),
      conn_pool_(cfg_.conn_threads > 0 ? cfg_.conn_threads : 1) {
  batcher_config bc;
  bc.eval_threads = cfg_.eval_threads;
  bc.queue_limit = cfg_.queue_limit;
  bc.max_batch = cfg_.max_batch;
  bc.base_options = cfg_.base_options;
  bc.clock = cfg_.clock;
  batcher_ = std::make_unique<eval_batcher>(bc, &cache_, &metrics_);
}

status eval_server::bind() {
  PN_CHECK_MSG(!listen_fd_.valid(), "bind() called twice");
  auto ep = parse_endpoint(cfg_.listen);
  if (!ep.is_ok()) return ep.error();
  ep_ = std::move(ep).value();
  auto fd = listen_on(ep_);
  if (!fd.is_ok()) return fd.error();
  listen_fd_ = std::move(fd).value();
  return status::ok();
}

status eval_server::serve(const cancel_token& cancel) {
  PN_CHECK_MSG(listen_fd_.valid(), "serve() before bind()");
  status listen_failure = status::ok();
  for (;;) {
    auto accepted = accept_on(listen_fd_.get(), cancel);
    if (!accepted.is_ok()) {
      listen_failure = accepted.error();
      break;
    }
    if (!accepted.value().has_value()) break;  // cancelled: clean shutdown
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    // std::function must be copyable, so the move-only fd rides in a
    // shared_ptr until the handler takes over.
    auto fd = std::make_shared<unique_fd>(
        std::move(accepted.value().value()));
    conn_pool_.submit([this, fd, cancel] {
      metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
      handle_connection(fd->get(), cancel);
      metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Drain: no new connections; handlers notice the cancel token when
  // idle and finish the request they are on (the batcher answers every
  // admitted request before shutdown() returns).
  listen_fd_.reset();
  if (ep_.is_unix) ::unlink(ep_.path.c_str());
  conn_pool_.wait_idle();
  batcher_->shutdown();
  return listen_failure;
}

void eval_server::handle_connection(int fd, const cancel_token& cancel) {
  for (;;) {
    auto frame = read_frame(fd, cfg_.max_frame_payload, &cancel);
    if (!frame.is_ok()) {
      if (frame.error().code() == status_code::bad_frame) {
        metrics_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        // pn_lint: allow(unchecked-status) best-effort reply; peer may be gone
        (void)write_frame(fd, encode_error_response(frame.error()),
                          cfg_.max_frame_payload);
      }
      return;  // bad_frame / io_error / cancelled-while-idle: close
    }
    if (!frame.value().has_value()) return;  // clean EOF
    const std::string response = handle_payload(*frame.value());
    if (!write_frame(fd, response, cfg_.max_frame_payload).is_ok()) {
      return;  // peer went away mid-response
    }
  }
}

std::string eval_server::handle_payload(const std::string& payload) {
  auto parsed = parse_request(payload);
  if (!parsed.is_ok()) {
    metrics_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return encode_error_response(parsed.error());
  }
  switch (parsed.value().kind) {
    case request_kind::evaluate:
      return batcher_->evaluate(parsed.value().eval).response;
    case request_kind::stats: {
      const cache_stats cs = cache_.stats();
      return encode_stats_response(metrics_.to_stats(
          cs.hits, cs.misses, cs.entries, cs.epoch));
    }
    case request_kind::ping:
      return encode_ping_response();
    case request_kind::invalidate:
      return encode_invalidate_response(cache_.invalidate());
  }
  return encode_error_response(
      invalid_argument_error("unhandled request kind"));
}

}  // namespace pn
