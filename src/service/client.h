// Client side of the evaluation service: one connection, synchronous
// request/response round trips. Used by the physnet_client CLI, the
// smoke script, and the end-to-end tests.
//
// Server-sent error responses come back as their original status (e.g.
// overloaded, shutting_down, deadline_exceeded), so callers can
// distinguish "the service said no" from transport failures (io_error /
// bad_frame).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "core/report.h"
#include "service/framing.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace pn {

class eval_client {
 public:
  // Connects to "unix:<path>" or "tcp:<host>:<port>".
  [[nodiscard]] static result<eval_client> connect(
      const std::string& endpoint_spec,
      std::size_t max_frame_payload = default_max_frame_payload);

  eval_client(eval_client&&) = default;
  eval_client& operator=(eval_client&&) = default;

  // Round-trips an evaluate request; the report in the reply is
  // bit-identical to a local evaluate_design under the server's options
  // (modulo eval_total_ms, which the wire zeroes — see protocol.h).
  [[nodiscard]] result<deployability_report> evaluate(
      const eval_request& req);

  [[nodiscard]] result<std::map<std::string, std::string>> stats();
  [[nodiscard]] status ping();
  // Bumps the server's cache epoch; returns the new epoch.
  [[nodiscard]] result<std::uint64_t> invalidate();

 private:
  explicit eval_client(unique_fd fd, std::size_t max_frame_payload)
      : fd_(std::move(fd)), max_frame_(max_frame_payload) {}

  // Sends `payload` and returns the parsed response, surfacing
  // server-sent error responses as their status.
  [[nodiscard]] result<parsed_response> round_trip(
      const std::string& payload, request_kind expect);

  unique_fd fd_;
  std::size_t max_frame_;
};

}  // namespace pn
