// Client side of the evaluation service: one connection, synchronous
// request/response round trips. Used by the physnet_client CLI, the
// smoke script, and the end-to-end tests.
//
// Server-sent error responses come back as their original status (e.g.
// overloaded, shutting_down, deadline_exceeded), so callers can
// distinguish "the service said no" from transport failures (io_error /
// bad_frame).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/report.h"
#include "service/framing.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace pn {

// Retry policy for the service's retryable backpressure answers
// (overloaded / shutting_down): exponential backoff with full jitter,
// capped. The sequence of delays is a pure function of the seed, so
// tests can predict it exactly and fleets of clients with distinct
// seeds never thundering-herd in lockstep.
struct retry_policy {
  int retries = 0;            // extra attempts after the first (0 = off)
  double backoff_ms = 100.0;  // base bound for the first retry's delay
  double backoff_cap_ms = 5'000.0;
  std::uint64_t jitter_seed = 1;
};

// True for the statuses a client may transparently retry: the server
// answered, but explicitly asked the client to come back later.
[[nodiscard]] bool is_retryable_backpressure(const status& s);

// Delay before 0-based retry `attempt`: uniform in
// [0, min(cap, backoff_ms * 2^attempt)), consuming one draw from
// `jitter`. Exposed so the jitter/cap contract is unit-testable.
[[nodiscard]] double retry_delay_ms(const retry_policy& policy, int attempt,
                                    rng& jitter);

class eval_client {
 public:
  // Connects to "unix:<path>" or "tcp:<host>:<port>".
  [[nodiscard]] static result<eval_client> connect(
      const std::string& endpoint_spec,
      std::size_t max_frame_payload = default_max_frame_payload);

  eval_client(eval_client&&) = default;
  eval_client& operator=(eval_client&&) = default;

  // Round-trips an evaluate request; the report in the reply is
  // bit-identical to a local evaluate_design under the server's options
  // (modulo eval_total_ms, which the wire zeroes — see protocol.h).
  [[nodiscard]] result<deployability_report> evaluate(
      const eval_request& req);

  // evaluate(), retried per `policy` while the server keeps answering
  // with retryable backpressure. Sleeping goes through `sleeper`
  // (milliseconds) so tests inject a recording stub instead of waiting;
  // production callers pass pn::sleep_ms. Non-backpressure failures and
  // exhausted retries surface the last status unchanged.
  [[nodiscard]] result<deployability_report> evaluate_with_retry(
      const eval_request& req, const retry_policy& policy,
      const std::function<void(double)>& sleeper);

  [[nodiscard]] result<stats_list> stats();
  [[nodiscard]] status ping();
  // Bumps the server's cache epoch; returns the new epoch.
  [[nodiscard]] result<std::uint64_t> invalidate();

 private:
  explicit eval_client(unique_fd fd, std::size_t max_frame_payload)
      : fd_(std::move(fd)), max_frame_(max_frame_payload) {}

  // Sends `payload` and returns the parsed response, surfacing
  // server-sent error responses as their status.
  [[nodiscard]] result<parsed_response> round_trip(
      const std::string& payload, request_kind expect);

  unique_fd fd_;
  std::size_t max_frame_;
};

}  // namespace pn
