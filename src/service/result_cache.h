// Sharded LRU cache of evaluation responses, keyed by a content hash of
// the canonical request payload bytes (see protocol.h: encode_eval_request
// is canonical, so byte-equal payloads are semantically equal requests).
//
// Keys are 128-bit hashes of the payload; the payload itself is not
// stored. Values are complete response payloads, so a cache hit replays
// the cold response byte-for-byte (only the `cached` flag on the status
// line differs, and the server rewrites that before framing).
//
// Epoch-based invalidation: `invalidate()` bumps a global epoch and
// logically empties the cache (entries from older epochs are evicted
// lazily on lookup). An evaluation that *started* before an invalidate
// must not poison the cache afterwards, so lookup() hands back the epoch
// it ran under and insert() refuses when that epoch has since expired.
//
// Thread-safety: all methods are safe to call concurrently; each shard
// has its own mutex, and the epoch is a shared atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/guarded.h"

namespace pn {

// 128-bit content hash (two independent 64-bit lanes; see cache_hash in
// result_cache.cc). Collisions across both lanes are treated as
// impossible for cache purposes.
struct cache_key {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] bool operator==(const cache_key& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

// Hashes the canonical request payload into a cache key.
[[nodiscard]] cache_key cache_key_of(std::string_view payload);

struct cache_hit {
  std::string response;  // complete response payload bytes
};

struct cache_lookup {
  std::optional<cache_hit> hit;
  std::uint64_t epoch = 0;  // epoch the lookup observed; pass to insert()
};

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;       // capacity evictions only
  std::uint64_t stale_inserts = 0;   // inserts dropped by an invalidate
  std::uint64_t epoch = 0;
  std::size_t entries = 0;
};

class result_cache {
 public:
  // `capacity` is the total entry budget, split evenly across shards.
  // capacity == 0 disables caching (lookups miss, inserts drop).
  explicit result_cache(std::size_t capacity, std::size_t shards = 8);

  result_cache(const result_cache&) = delete;
  result_cache& operator=(const result_cache&) = delete;

  // Looks up `key`; always reports the current epoch, which insert()
  // needs to reject results computed against a since-invalidated cache.
  // `count_miss = false` keeps a miss out of the stats — for re-probes
  // by a caller that already charged its miss on a first lookup (hits
  // are always counted; a hit answers the request).
  [[nodiscard]] cache_lookup lookup(const cache_key& key,
                                    bool count_miss = true);

  // Inserts unless `epoch` is stale (an invalidate happened after the
  // corresponding lookup). Returns true when the entry was stored.
  bool insert(const cache_key& key, std::string response,
              std::uint64_t epoch);

  // Bumps the epoch: every existing entry becomes invisible and every
  // in-flight insert against an older epoch is dropped. Returns the new
  // epoch.
  std::uint64_t invalidate();

  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // Snapshot contract: each shard is summed under its own mu, but the
  // shards are visited one after another — the totals are per-shard
  // consistent, not a single global instant. epoch is an acquire load of
  // the atomic counter. Good enough for operator gauges; do not use the
  // sums to reason about cross-shard invariants.
  [[nodiscard]] cache_stats stats() const;

 private:
  struct entry {
    cache_key key;
    std::string response;
    std::uint64_t epoch = 0;
  };
  struct shard {
    mutable std::mutex mu;
    // MRU at front; map points into the list for O(1) touch/evict.
    std::list<entry> lru PN_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::list<entry>::iterator> index
        PN_GUARDED_BY(mu);
    std::uint64_t hits PN_GUARDED_BY(mu) = 0;
    std::uint64_t misses PN_GUARDED_BY(mu) = 0;
    std::uint64_t insertions PN_GUARDED_BY(mu) = 0;
    std::uint64_t evictions PN_GUARDED_BY(mu) = 0;
    std::uint64_t stale_inserts PN_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] shard& shard_for(const cache_key& key);

  std::size_t per_shard_capacity_;
  std::atomic<std::uint64_t> epoch_{1};
  std::vector<std::unique_ptr<shard>> shards_;
};

}  // namespace pn
