#include "service/framing.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

// How long a cancelled handler keeps waiting for the rest of a frame
// whose prefix already arrived before giving up on the peer.
constexpr int cancelled_stall_budget_ms = 1000;
constexpr int poll_interval_ms = 50;

}  // namespace

std::string encode_frame(std::string_view payload, std::size_t max_payload) {
  PN_CHECK_MSG(payload.size() <= max_payload,
               "frame payload " << payload.size() << " exceeds max "
                                << max_payload);
  std::string out;
  out.reserve(frame_header_bytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out.append(payload);
  return out;
}

void frame_decoder::feed(std::string_view bytes) {
  if (failed()) return;  // a lying stream has no recoverable boundary
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (!in_payload_) {
      while (header_fill_ < frame_header_bytes && pos < bytes.size()) {
        header_[header_fill_++] = static_cast<unsigned char>(bytes[pos++]);
      }
      if (header_fill_ < frame_header_bytes) return;
      payload_len_ = (static_cast<std::size_t>(header_[0]) << 24) |
                     (static_cast<std::size_t>(header_[1]) << 16) |
                     (static_cast<std::size_t>(header_[2]) << 8) |
                     static_cast<std::size_t>(header_[3]);
      if (payload_len_ > max_payload_) {
        error_ = bad_frame_error(
            str_format("frame length %zu exceeds max payload %zu",
                       payload_len_, max_payload_));
        return;
      }
      in_payload_ = true;
      payload_.assign(payload_len_, '\0');
      payload_fill_ = 0;
      header_fill_ = 0;
    }
    const std::size_t want = payload_len_ - payload_fill_;
    const std::size_t take = std::min(want, bytes.size() - pos);
    std::memcpy(payload_.data() + payload_fill_, bytes.data() + pos, take);
    payload_fill_ += take;
    pos += take;
    if (payload_fill_ == payload_len_) {
      ready_.push_back(std::move(payload_));
      payload_.clear();
      payload_fill_ = 0;
      payload_len_ = 0;
      in_payload_ = false;
    }
  }
}

std::optional<std::string> frame_decoder::next() {
  if (ready_.empty()) return std::nullopt;
  std::string out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

status write_frame(int fd, std::string_view payload,
                   std::size_t max_payload) {
  const std::string frame = encode_frame(payload, max_payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: writing to a peer that died must surface as EPIPE
    // (an io_error the caller handles — the proxy fails over on it),
    // not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_status(str_format("write_frame: %s",
                                        std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return status::ok();
}

result<std::optional<std::string>> read_frame(int fd,
                                              std::size_t max_payload,
                                              const cancel_token* cancel,
                                              int stall_timeout_ms) {
  frame_decoder dec(max_payload);
  char buf[4096];
  int stalled_ms = 0;
  for (;;) {
    if (std::optional<std::string> payload = dec.next()) {
      return std::optional<std::string>(std::move(*payload));
    }
    if (dec.failed()) return dec.error();

    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return io_error_status(str_format("poll: %s", std::strerror(errno)));
    }
    if (pr == 0) {
      stalled_ms += poll_interval_ms;
      if (cancel != nullptr && cancel->cancelled()) {
        if (dec.idle()) {
          return cancelled_error("cancelled while idle between frames");
        }
        if (stalled_ms >= cancelled_stall_budget_ms) {
          return cancelled_error("cancelled mid-frame and peer stalled");
        }
      }
      if (stall_timeout_ms > 0 && stalled_ms >= stall_timeout_ms) {
        return io_error_status(
            str_format("peer sent no bytes for %d ms", stalled_ms));
      }
      continue;
    }
    const ssize_t n =
        ::read(fd, buf, std::min(dec.want(), sizeof(buf)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_status(str_format("read: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (dec.idle()) return std::optional<std::string>(std::nullopt);
      return bad_frame_error("torn frame: connection closed mid-frame");
    }
    stalled_ms = 0;
    dec.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace pn
