// Live service counters and latency histograms, exposed by the `stats`
// request (protocol.h) and printed by physnet_serve on shutdown.
//
// Counters are relaxed atomics — they are operator telemetry, not
// synchronization. Histograms take a short mutex per record; the service
// records a handful of samples per request, so contention is noise next
// to an evaluation.
//
// Built on common/stats: each latency series is a fixed-width
// pn::histogram plus exact count/sum/min/max, and percentiles are read
// from the bins (upper bin edge at the target rank), which bounds the
// error by one bin width without retaining samples.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/guarded.h"
#include "common/stats.h"

namespace pn {

// The wire shape of a stats response: (key, value) pairs sorted by key.
// A sorted vector, not std::map — a stats snapshot is assembled once and
// then only iterated or binary-searched, and src/service is covered by
// pn_lint R7's hot-path associative-container ban.
using stats_list = std::vector<std::pair<std::string, std::string>>;

// Binary search over a sorted stats_list; nullptr when the key is absent.
[[nodiscard]] const std::string* stats_get(const stats_list& stats,
                                           std::string_view key);

// One latency/size series: histogram bins plus exact moments.
class metric_series {
 public:
  // Bins span [0, hi) with `bins` equal widths; values at or above hi
  // clamp into the last bin (pn::histogram semantics).
  metric_series(double hi, std::size_t bins);

  void record(double v);

  struct snapshot_t {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    // Samples outside the histogram's resolution. `overflow` counts
    // values at or past hi (all collapsed into the last bin);
    // `sub_bin` counts values below one bin width (their percentile
    // can't resolve finer than the first bin edge). `clamped` is true
    // when a reported percentile landed in the overflow bin, i.e. its
    // value was pinned to the observed max instead of a bin edge.
    std::uint64_t overflow = 0;
    std::uint64_t sub_bin = 0;
    bool clamped = false;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] snapshot_t snapshot() const;

 private:
  // q in [0,1]: upper edge of the bin holding the rank-q sample. Sets
  // `clamped` when that bin is the overflow bin, where the edge is a
  // lie and the value is pinned to the observed max.
  [[nodiscard]] double percentile_locked(double q, bool& clamped) const
      PN_REQUIRES(mu_);

  mutable std::mutex mu_;
  histogram hist_ PN_GUARDED_BY(mu_);
  const double hi_;     // bin geometry: fixed at construction
  const double width_;
  std::uint64_t count_ PN_GUARDED_BY(mu_) = 0;
  std::uint64_t overflow_ PN_GUARDED_BY(mu_) = 0;
  std::uint64_t sub_bin_ PN_GUARDED_BY(mu_) = 0;
  double sum_ PN_GUARDED_BY(mu_) = 0.0;
  double min_ PN_GUARDED_BY(mu_) = 0.0;
  double max_ PN_GUARDED_BY(mu_) = 0.0;
};

struct service_metrics {
  // Connection lifecycle.
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_active{0};

  // Request admission.
  std::atomic<std::uint64_t> requests_admitted{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> rejected_shutting_down{0};
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> bad_requests{0};  // framed fine, parse failed

  // Evaluation outcomes.
  std::atomic<std::uint64_t> eval_ok{0};
  std::atomic<std::uint64_t> eval_error{0};
  std::atomic<std::uint64_t> coalesced{0};  // waiters attached to in-flight

  // Batching.
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::int64_t> queue_depth{0};  // live gauge

  // Latency series (milliseconds) and batch shape.
  metric_series queue_wait_ms{10'000.0, 200};
  metric_series eval_ms{60'000.0, 240};
  metric_series batch_size{256.0, 256};

  // Flattens everything (plus the caller-supplied cache numbers) into the
  // sorted key/value list the stats response carries. Keys are stable;
  // values are decimal strings.
  //
  // Snapshot contract: the counters above are relaxed atomics read one at
  // a time, and each metric_series snapshots under its own mu_ — the list
  // is *not* a single consistent cut. A request counted in
  // requests_admitted may not yet appear in eval_ok/eval_error, and gauges
  // (connections_active, queue_depth) move while the list is assembled.
  // That is deliberate: telemetry must never contend with the serving
  // path. Consumers diff counters across scrapes; they must not assume
  // cross-key invariants hold within one snapshot.
  [[nodiscard]] stats_list to_stats(std::uint64_t cache_hits,
                                    std::uint64_t cache_misses,
                                    std::uint64_t cache_entries,
                                    std::uint64_t cache_epoch) const;
};

}  // namespace pn
