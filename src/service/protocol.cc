#include "service/protocol.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "core/checkpoint.h"

namespace pn {

namespace {

constexpr char protocol_magic[] = "physnet/1";

std::string fmt_double(double v) { return str_format("%.17g", v); }

bool parse_double(const std::string& t, double& out) {
  if (t.empty()) return false;
  char* end = nullptr;
  out = std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}

bool parse_u64(const std::string& t, std::uint64_t& out) {
  if (t.empty() || t.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = std::strtoull(t.c_str(), nullptr, 10);
  return true;
}

bool parse_bool01(const std::string& t, bool& out) {
  if (t == "0") {
    out = false;
    return true;
  }
  if (t == "1") {
    out = true;
    return true;
  }
  return false;
}

// Splits the payload's leading lines until (and excluding) `design`;
// returns the byte offset just past the "design\n" line, or npos.
struct request_lines {
  std::vector<std::string> head;
  std::size_t design_offset = std::string::npos;
};

request_lines split_head(std::string_view payload) {
  request_lines out;
  std::size_t pos = 0;
  while (pos <= payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    const std::string_view line =
        nl == std::string_view::npos ? payload.substr(pos)
                                     : payload.substr(pos, nl - pos);
    if (line == "design") {
      out.design_offset =
          nl == std::string_view::npos ? payload.size() : nl + 1;
      return out;
    }
    out.head.emplace_back(line);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

}  // namespace

const char* request_kind_name(request_kind k) {
  switch (k) {
    case request_kind::evaluate:
      return "evaluate";
    case request_kind::stats:
      return "stats";
    case request_kind::ping:
      return "ping";
    case request_kind::invalidate:
      return "invalidate";
  }
  return "unknown";
}

result<evaluation_options> wire_options::apply_to(
    const evaluation_options& base) const {
  evaluation_options opt = base;
  opt.seed = seed;
  const auto strat = placement_strategy_from_name(strategy);
  if (!strat.has_value()) {
    return invalid_argument_error("unknown placement strategy: " + strategy);
  }
  opt.strategy = *strat;
  opt.run_repair_sim = run_repair_sim;
  opt.run_throughput = run_throughput;
  opt.traffic_per_host = gbps{traffic_per_host_gbps};
  opt.floor_headroom = floor_headroom;
  opt.auto_size_floor = auto_size_floor;
  opt.deadline_ms = deadline_ms;
  return opt;
}

std::string encode_eval_request(const eval_request& req) {
  const wire_options& o = req.options;
  std::ostringstream out;
  out << protocol_magic << " evaluate " << escape_token(req.name) << "\n";
  // Canonical option order (alphabetical); these bytes key the cache.
  out << "opt auto_size_floor " << (o.auto_size_floor ? 1 : 0) << "\n";
  out << "opt deadline_ms " << fmt_double(o.deadline_ms) << "\n";
  out << "opt floor_headroom " << fmt_double(o.floor_headroom) << "\n";
  out << "opt run_repair_sim " << (o.run_repair_sim ? 1 : 0) << "\n";
  out << "opt run_throughput " << (o.run_throughput ? 1 : 0) << "\n";
  out << "opt seed " << o.seed << "\n";
  out << "opt strategy " << o.strategy << "\n";
  out << "opt traffic_per_host_gbps " << fmt_double(o.traffic_per_host_gbps)
      << "\n";
  out << "design\n";
  out << req.design_twin;
  return out.str();
}

std::string encode_eval_request_wire(const eval_request& req) {
  std::string out = encode_eval_request(req);
  if (!req.options.delta_hint) return out;
  // Hints sit between the options and the design section: re-find the
  // "design\n" marker and splice the hint line in front of it.
  const std::size_t at = out.find("design\n");
  out.insert(at == std::string::npos ? out.size() : at, "hint delta 1\n");
  return out;
}

std::string encode_plain_request(request_kind k) {
  return std::string(protocol_magic) + " " + request_kind_name(k) + "\n";
}

result<parsed_request> parse_request(std::string_view payload) {
  auto fail = [](const std::string& why) {
    return invalid_argument_error("request: " + why);
  };
  const request_lines lines = split_head(payload);
  if (lines.head.empty()) return fail("empty payload");
  const std::vector<std::string> first = split(lines.head[0], ' ');
  if (first.size() < 2 || first[0] != protocol_magic) {
    return fail("bad protocol line");
  }

  parsed_request out;
  if (first[1] == "stats" || first[1] == "ping" || first[1] == "invalidate") {
    if (first.size() != 2) return fail("trailing tokens on " + first[1]);
    out.kind = first[1] == "stats"
                   ? request_kind::stats
                   : (first[1] == "ping" ? request_kind::ping
                                         : request_kind::invalidate);
    return out;
  }
  if (first[1] != "evaluate") return fail("unknown verb " + first[1]);
  if (first.size() != 3 ||
      !unescape_token(first[2], out.eval.name)) {
    return fail("bad evaluate name");
  }
  out.kind = request_kind::evaluate;
  if (lines.design_offset == std::string::npos) {
    return fail("evaluate without design section");
  }

  wire_options& o = out.eval.options;
  for (std::size_t i = 1; i < lines.head.size(); ++i) {
    const std::vector<std::string> tok = split(lines.head[i], ' ');
    if (tok.size() == 3 && tok[0] == "hint") {
      // Hints are advisory by contract: known keys are recorded, unknown
      // keys are skipped (a newer client must not break an older server,
      // and ignoring a hint is always correct).
      if (tok[1] == "delta") {
        bool v = false;
        if (!parse_bool01(tok[2], v)) {
          return fail("bad value for hint delta");
        }
        o.delta_hint = v;
      }
      continue;
    }
    if (tok.size() != 3 || tok[0] != "opt") {
      return fail("bad option line: " + lines.head[i]);
    }
    const std::string& key = tok[1];
    const std::string& val = tok[2];
    bool ok = true;
    if (key == "auto_size_floor") {
      ok = parse_bool01(val, o.auto_size_floor);
    } else if (key == "deadline_ms") {
      ok = parse_double(val, o.deadline_ms) && o.deadline_ms >= 0.0;
    } else if (key == "floor_headroom") {
      ok = parse_double(val, o.floor_headroom) && o.floor_headroom >= 0.0;
    } else if (key == "run_repair_sim") {
      ok = parse_bool01(val, o.run_repair_sim);
    } else if (key == "run_throughput") {
      ok = parse_bool01(val, o.run_throughput);
    } else if (key == "seed") {
      ok = parse_u64(val, o.seed);
    } else if (key == "strategy") {
      ok = placement_strategy_from_name(val).has_value();
      if (ok) o.strategy = val;
    } else if (key == "traffic_per_host_gbps") {
      ok = parse_double(val, o.traffic_per_host_gbps) &&
           o.traffic_per_host_gbps >= 0.0;
    } else {
      return fail("unknown option " + key);
    }
    if (!ok) return fail("bad value for option " + key);
  }
  out.eval.design_twin = std::string(payload.substr(lines.design_offset));
  return out;
}

// --- responses ---------------------------------------------------------

std::string encode_eval_response(const deployability_report& report,
                                 std::uint64_t seed) {
  sweep_checkpoint_entry entry;
  entry.point_index = 0;
  entry.seed = seed;
  entry.ok = true;
  entry.report = report;
  // Wall time is nondeterministic; the service promises deterministic
  // response bytes (timing is observable via the stats request instead).
  entry.report.eval_total_ms = 0.0;
  std::ostringstream out;
  out << protocol_magic << " ok evaluate\n";
  out << "report " << sweep_checkpoint_line(entry);  // newline-terminated
  return out.str();
}

std::string encode_stats_response(const stats_list& stats) {
  std::ostringstream out;
  out << protocol_magic << " ok stats\n";
  for (const auto& [key, value] : stats) {
    out << "stat " << escape_token(key) << ' ' << escape_token(value)
        << "\n";
  }
  return out.str();
}

std::string encode_ping_response() {
  return std::string(protocol_magic) + " ok ping\n";
}

std::string encode_invalidate_response(std::uint64_t epoch) {
  std::ostringstream out;
  out << protocol_magic << " ok invalidate epoch " << epoch << "\n";
  return out.str();
}

std::string encode_error_response(const status& error) {
  std::ostringstream out;
  out << protocol_magic << " error " << status_code_name(error.code()) << ' '
      << escape_token(error.message()) << "\n";
  return out.str();
}

result<parsed_response> parse_response(std::string_view payload) {
  auto fail = [](const std::string& why) {
    return invalid_argument_error("response: " + why);
  };
  std::vector<std::string> lines;
  {
    std::size_t pos = 0;
    while (pos < payload.size()) {
      const std::size_t nl = payload.find('\n', pos);
      const std::size_t end = nl == std::string_view::npos ? payload.size()
                                                           : nl;
      lines.emplace_back(payload.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  if (lines.empty()) return fail("empty payload");
  const std::vector<std::string> first = split(lines[0], ' ');
  if (first.size() < 2 || first[0] != protocol_magic) {
    return fail("bad protocol line");
  }

  parsed_response out;
  if (first[1] == "error") {
    if (first.size() != 4) return fail("bad error line");
    const auto code = status_code_from_name(first[2]);
    std::string message;
    if (!code.has_value() || *code == status_code::ok ||
        !unescape_token(first[3], message)) {
      return fail("bad error code/message");
    }
    out.error = status(*code, std::move(message));
    return out;
  }
  if (first[1] != "ok" || first.size() < 3) return fail("bad status line");

  if (first[2] == "ping") {
    out.kind = request_kind::ping;
    return out;
  }
  if (first[2] == "invalidate") {
    if (first.size() != 5 || first[3] != "epoch" ||
        !parse_u64(first[4], out.cache_epoch)) {
      return fail("bad invalidate line");
    }
    out.kind = request_kind::invalidate;
    return out;
  }
  if (first[2] == "stats") {
    out.kind = request_kind::stats;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::vector<std::string> tok = split(lines[i], ' ');
      std::string key;
      std::string value;
      if (tok.size() != 3 || tok[0] != "stat" ||
          !unescape_token(tok[1], key) || !unescape_token(tok[2], value)) {
        return fail("bad stat line: " + lines[i]);
      }
      out.stats.emplace_back(std::move(key), std::move(value));
    }
    return out;
  }
  if (first[2] == "evaluate") {
    if (first.size() != 3) return fail("bad evaluate status line");
    if (lines.size() < 2 || !starts_with(lines[1], "report ")) {
      return fail("evaluate response without report line");
    }
    auto entry = parse_sweep_checkpoint_line(lines[1].substr(7));
    if (!entry.is_ok()) {
      return fail("bad report line: " + entry.error().message());
    }
    out.kind = request_kind::evaluate;
    out.eval.report = std::move(entry).value().report;
    return out;
  }
  return fail("unknown response kind " + first[2]);
}

}  // namespace pn
