// Consistent-hash ring over backend worker endpoints.
//
// Each worker contributes `vnodes` points on a 64-bit ring; a request is
// routed by walking clockwise from its cache key's position and taking
// workers in first-encountered order. Two properties are load-bearing:
//
//   - Determinism: points are hashed from the endpoint spec strings with
//     the same dual-lane FNV-1a the result cache uses (cache_key_of), so
//     every proxy instance — across processes, restarts, and runs —
//     routes byte-equal canonical request bytes to the same worker.
//   - Consistency under death: preference order is a pure function of
//     the full worker set. Skipping dead workers in that fixed order
//     means a death only remaps the keys that were on the dead worker
//     (they shift to their next preference); every other key keeps its
//     worker and therefore its warm cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/result_cache.h"

namespace pn {

class hash_ring {
 public:
  // `workers` are endpoint specs (or any stable identity strings); index
  // i in the routing API refers to workers[i]. vnodes is the number of
  // ring points per worker — more points, smoother key distribution.
  explicit hash_ring(const std::vector<std::string>& workers,
                     int vnodes = 64);

  [[nodiscard]] std::size_t worker_count() const { return workers_; }

  // All distinct worker indices in clockwise ring order starting at
  // `key`'s position: preference(key)[0] is the home worker, [1] the
  // first failover, and so on. Deterministic (see header comment).
  [[nodiscard]] std::vector<std::uint32_t> preference(
      const cache_key& key) const;

  // Convenience: the home worker for `key`, skipping workers for which
  // `alive[i]` is zero. Returns worker_count() when no worker is
  // available.
  [[nodiscard]] std::uint32_t pick(const cache_key& key,
                                   const std::vector<std::uint8_t>& alive)
      const;

 private:
  // (ring position, worker index), sorted by position then index so the
  // walk order is total even on the astronomically unlikely collision.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
  std::uint32_t workers_ = 0;
};

}  // namespace pn
