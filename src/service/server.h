// The evaluation server: accept loop + per-connection frame handlers,
// wired onto the batcher, the result cache, and the metrics registry.
//
// Threading (no raw std::thread anywhere — see tools/pn_lint R2):
//   - serve() runs the accept loop on the *calling* thread, polling the
//     cancel token so SIGINT/SIGTERM interrupts it.
//   - Each accepted connection becomes a task on a handler pool; the
//     handler loops read-frame -> handle -> write-frame until EOF or
//     cancellation.
//   - Evaluations happen inside eval_batcher (its own dispatcher + eval
//     pool); handler threads block in eval_batcher::evaluate().
//
// Shutdown sequence on cancel: stop accepting; handlers finish the
// request they are on (admitted work is always answered — the batcher
// drains) and then notice the token the next time they are idle between
// frames; the batcher drains its queue; serve() returns. New evaluate
// requests that arrive mid-drain answer status_code::shutting_down.
//
// A connection whose stream turns out to be garbage (bad_frame) gets one
// error response frame on a best-effort basis and is closed: after a
// framing error the byte stream has no trustworthy frame boundary left.
// Malformed *payloads* in well-formed frames are answered and the
// connection stays open — framing is still in sync.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "service/batcher.h"
#include "service/framing.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/socket.h"

namespace pn {

struct server_config {
  std::string listen;  // "unix:<path>" or "tcp:<host>:<port>"
  int conn_threads = 8;          // concurrent connection handlers
  int eval_threads = 0;          // eval pool width; 0 = one per core
  std::size_t queue_limit = 64;  // admission queue bound
  std::size_t max_batch = 8;     // evaluations dispatched per batch
  std::size_t cache_capacity = 256;  // total cached responses (0 = off)
  std::size_t max_frame_payload = default_max_frame_payload;
  evaluation_options base_options;  // server-side evaluation template
  clock_fn clock;                   // injectable time source for tests
};

class eval_server {
 public:
  explicit eval_server(server_config cfg);

  eval_server(const eval_server&) = delete;
  eval_server& operator=(const eval_server&) = delete;

  // Parses cfg.listen, binds, and starts listening. Call once, before
  // serve().
  [[nodiscard]] status bind();

  // Runs the accept loop on the calling thread until `cancel` fires,
  // then performs the drain described above and returns. ok on a clean
  // shutdown; io_error if the listen socket itself failed.
  [[nodiscard]] status serve(const cancel_token& cancel);

  // Observability (valid any time; used by tests and the stats handler).
  [[nodiscard]] service_metrics& metrics() { return metrics_; }
  [[nodiscard]] result_cache& cache() { return cache_; }
  [[nodiscard]] const endpoint& bound_endpoint() const { return ep_; }

 private:
  void handle_connection(int fd, const cancel_token& cancel);
  [[nodiscard]] std::string handle_payload(const std::string& payload);

  server_config cfg_;
  endpoint ep_;
  unique_fd listen_fd_;
  service_metrics metrics_;
  result_cache cache_;
  std::unique_ptr<eval_batcher> batcher_;
  thread_pool conn_pool_;
};

}  // namespace pn
