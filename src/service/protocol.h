// Request/response payloads for the evaluation service.
//
// Payloads (the bytes inside a frame, see framing.h) are line-oriented
// text. Requests:
//
//   physnet/1 evaluate <escaped name>
//   opt <key> <value>          (every option, fixed alphabetical order)
//   design
//   <twin serialization of the design, to end of payload>
//
//   physnet/1 stats | ping | invalidate
//
// Responses:
//
//   physnet/1 ok evaluate
//   report <sweep-checkpoint ok line for the report>
//
//   physnet/1 ok stats            (+ "stat <key> <value>" lines)
//   physnet/1 ok ping
//   physnet/1 ok invalidate epoch <n>
//   physnet/1 error <status_code> <escaped message>
//
// Two properties are load-bearing:
//   - encode_eval_request is *canonical*: options always serialize in the
//     same order and doubles as %.17g, so the request payload bytes are
//     the cache-key material — two semantically equal requests produce
//     byte-equal payloads (see result_cache.h).
//   - the report rides on the sweep checkpoint entry line (%.17g, escaped
//     tokens), which round-trips IEEE doubles exactly. That is what makes
//     a served report bit-identical to a local evaluate_design and a
//     cached response byte-identical to the cold one. Whether an answer
//     came from the cache is deliberately NOT on the evaluate response
//     (it would break that byte identity); it is visible in the stats
//     counters instead.
//
// Served reports carry eval_total_ms = 0: wall time is nondeterministic,
// and the service promises deterministic response bytes (timing lives in
// the stats counters instead).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/report.h"
#include "service/metrics.h"

namespace pn {

enum class request_kind : std::uint8_t { evaluate, stats, ping, invalidate };

[[nodiscard]] const char* request_kind_name(request_kind k);

// The evaluation_options subset that crosses the wire. Everything else
// (catalog, floorplan template, guards) is server-side configuration: a
// client names *what* to evaluate, the operator controls *how*.
struct wire_options {
  std::uint64_t seed = 1;
  std::string strategy = "block";  // placement_strategy_name
  bool run_repair_sim = true;
  bool run_throughput = true;
  double traffic_per_host_gbps = 25.0;
  double floor_headroom = 0.30;
  bool auto_size_floor = true;
  double deadline_ms = 0.0;  // per-request evaluation budget, 0 = none

  // Transport-only hint: the client believes this design is a small
  // edit of one it submitted recently, so the server may prioritize or
  // batch it accordingly. Hints must never change the answer — this
  // field rides in a `hint` line on the wire and is deliberately
  // EXCLUDED from the canonical encoding, so a hinted and an unhinted
  // copy of the same request share one cache key and one byte-identical
  // response (see eval_batcher's server-side re-encoding).
  bool delta_hint = false;

  // Overlays these options onto `base` (the server's evaluation_options
  // template). Fails on an unknown strategy name.
  [[nodiscard]] result<evaluation_options> apply_to(
      const evaluation_options& base) const;
};

struct eval_request {
  std::string name;         // design name (free-form, escaped on the wire)
  wire_options options;
  std::string design_twin;  // serialize_twin(design_to_twin(g))
};

struct parsed_request {
  request_kind kind = request_kind::ping;
  eval_request eval;  // meaningful when kind == evaluate
};

// Canonical encoding: options in fixed alphabetical order, no hint
// lines. These bytes are the cache-key material.
[[nodiscard]] std::string encode_eval_request(const eval_request& req);

// Wire encoding: canonical bytes plus `hint <key> <value>` lines (only
// `hint delta 1` today, emitted when options.delta_hint is set). This is
// what clients send; servers re-encode canonically before cache lookup.
[[nodiscard]] std::string encode_eval_request_wire(const eval_request& req);

[[nodiscard]] std::string encode_plain_request(request_kind k);

// Fails with invalid_argument on malformed payloads (the frame itself
// was fine; the contents are not a request).
[[nodiscard]] result<parsed_request> parse_request(std::string_view payload);

// --- responses ---------------------------------------------------------

struct eval_reply {
  deployability_report report;
};

struct parsed_response {
  request_kind kind = request_kind::ping;
  status error;  // non-ok: the server answered with an error response
  eval_reply eval;                // kind == evaluate
  stats_list stats;               // kind == stats, in wire order
  std::uint64_t cache_epoch = 0;  // kind == invalidate
};

[[nodiscard]] std::string encode_eval_response(
    const deployability_report& report, std::uint64_t seed);
[[nodiscard]] std::string encode_stats_response(const stats_list& stats);
[[nodiscard]] std::string encode_ping_response();
[[nodiscard]] std::string encode_invalidate_response(std::uint64_t epoch);
[[nodiscard]] std::string encode_error_response(const status& error);

[[nodiscard]] result<parsed_response> parse_response(
    std::string_view payload);

}  // namespace pn
