// Open-loop load generator for the evaluation service (worker or proxy).
//
// Methodology (the part that makes the numbers honest):
//
//   - Open loop: arrivals follow a precomputed schedule at the target
//     QPS (Poisson inter-arrivals from the seeded rng). A slow service
//     does not slow the arrival process down — requests queue behind
//     their scheduled times instead — so saturation shows up as latency
//     and backpressure, not as a silently reduced offered load
//     (coordinated omission).
//   - Deterministic schedule: the arrival offsets, the request mix, and
//     every request's bytes are a pure function of the config. Two runs
//     against the same service differ only in service behavior. Wall
//     time enters only during execution (send/receive timestamps).
//   - Latency is measured from the request's *scheduled* arrival, so
//     time spent queued behind a saturated connection counts.
//
// Request mix: each request draws a design family/size/strategy from
// `mix` and is either hot — one of `hot_variants` recurring requests,
// visited round-robin (a cyclic scan is the LRU-adversarial access
// pattern, making cache-capacity effects visible and reproducible) — or
// cold, a never-repeated request that can only miss. Hot and cold
// requests for one mix entry share the design bytes and differ in the
// wire seed option, so distinct cache keys cost nothing to build.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "service/framing.h"
#include "service/metrics.h"

namespace pn {

struct load_mix_entry {
  std::string family = "fat_tree";
  int size = 4;
  std::string strategy = "block";
};

struct loadgen_config {
  std::string connect;         // endpoint spec of the service under load
  double offered_qps = 200.0;  // target arrival rate
  double duration_s = 5.0;     // schedule length; sent = qps * duration
  int connections = 4;         // concurrent client connections
  std::uint64_t seed = 1;      // drives arrivals and mix draws
  std::vector<load_mix_entry> mix{load_mix_entry{}};
  double hot_fraction = 1.0;   // probability a request is from the hot set
  int hot_variants = 16;       // distinct requests in the hot working set
  bool run_repair_sim = false; // keep cold evals cheap unless asked
  std::size_t max_frame_payload = default_max_frame_payload;
  clock_fn clock;              // injectable; defaults to mono_now
};

// One scheduled request. Payloads are shared: hot variants reuse one
// string per variant, cold requests own theirs.
struct load_request {
  mono_ns offset = 0;  // scheduled arrival, relative to run start
  std::shared_ptr<const std::string> payload;
  bool hot = false;
};

// Builds the full deterministic schedule (arrival offsets strictly
// non-decreasing). Fails if a mix entry names an unknown family.
[[nodiscard]] result<std::vector<load_request>> build_schedule(
    const loadgen_config& cfg);

struct load_report {
  // Request outcomes. sent = ok + retryable_rejected + server_error +
  // transport_error once the run drains.
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t retryable_rejected = 0;  // overloaded / shutting_down
  std::uint64_t server_error = 0;        // other error responses
  std::uint64_t transport_error = 0;     // connect/write/read/parse failed
  std::uint64_t hot_sent = 0;
  std::uint64_t cold_sent = 0;

  double offered_qps = 0.0;
  double elapsed_s = 0.0;           // first scheduled arrival -> last answer
  double achieved_qps_ok = 0.0;     // ok answers per elapsed second
  double achieved_qps_answered = 0.0;  // any answer per elapsed second

  // Per-request latency of ok answers, milliseconds, measured from the
  // scheduled arrival (see header comment).
  metric_series::snapshot_t latency_ms;
};

// Executes the schedule against cfg.connect with cfg.connections
// workers. Blocks until every request is answered or failed.
[[nodiscard]] result<load_report> run_load(
    const loadgen_config& cfg, const std::vector<load_request>& schedule);

// One JSON object describing a run (a "leg" of BENCH_serve.json).
// `label` and `workers` identify the leg in a sweep.
[[nodiscard]] std::string load_report_json(const load_report& report,
                                           const std::string& label,
                                           int workers);

}  // namespace pn
