// Length-prefixed wire framing for the evaluation service.
//
// A frame is a 4-byte big-endian payload length followed by exactly that
// many payload bytes. The decoder is a pure incremental state machine
// over byte chunks — no I/O — so the fuzz suite can feed it torn frames,
// oversized prefixes, truncated payloads, and garbage without touching a
// socket. Every malformed input maps to status_code::bad_frame; nothing
// crashes, hangs, or silently resynchronizes (after an error the decoder
// stays failed — a stream that lied about a length has no trustworthy
// frame boundary to recover at).
//
// The fd read/write helpers below wrap the decoder for blocking sockets,
// polling in short intervals so a cooperative cancel_token can interrupt
// a handler that is idle between requests.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "common/cancel.h"
#include "common/status.h"

namespace pn {

// Frames above this are rejected as bad_frame on both sides: a length
// prefix of, say, 2^31 must not make a server try to buffer 2 GiB.
inline constexpr std::size_t default_max_frame_payload = 64u << 20;

inline constexpr std::size_t frame_header_bytes = 4;

// Header + payload, ready to write. PN_CHECKs payload <= max (callers
// build payloads; an oversized one is a programming error locally, and a
// protocol error only when claimed by a peer).
[[nodiscard]] std::string encode_frame(
    std::string_view payload,
    std::size_t max_payload = default_max_frame_payload);

class frame_decoder {
 public:
  explicit frame_decoder(std::size_t max_payload = default_max_frame_payload)
      : max_payload_(max_payload) {}

  // Consumes a chunk of stream bytes. Once a frame's length prefix
  // exceeds max_payload the decoder latches failed() and ignores further
  // input. Safe to call with empty chunks.
  void feed(std::string_view bytes);

  // Pops the next completely received payload, if any.
  [[nodiscard]] std::optional<std::string> next();

  [[nodiscard]] bool failed() const { return !error_.is_ok(); }
  [[nodiscard]] const status& error() const { return error_; }

  // True when no partial frame is buffered — i.e. the stream could end
  // here without tearing a frame. EOF while !idle() is a torn frame.
  [[nodiscard]] bool idle() const {
    return header_fill_ == 0 && payload_fill_ == 0 && !in_payload_;
  }

  // Bytes still needed to complete the frame in progress (or the next
  // header). read_frame reads at most this much per syscall so bytes of
  // a pipelined follow-up frame stay in the kernel buffer for the next
  // read_frame call — this decoder is per-call and must not eat them.
  [[nodiscard]] std::size_t want() const {
    return in_payload_ ? payload_len_ - payload_fill_
                       : frame_header_bytes - header_fill_;
  }

 private:
  std::size_t max_payload_;
  status error_;
  unsigned char header_[frame_header_bytes] = {};
  std::size_t header_fill_ = 0;
  bool in_payload_ = false;
  std::string payload_;
  std::size_t payload_fill_ = 0;
  std::size_t payload_len_ = 0;
  std::deque<std::string> ready_;
};

// Writes one frame, retrying partial writes. Fails with io_error.
[[nodiscard]] status write_frame(int fd, std::string_view payload,
                                 std::size_t max_payload =
                                     default_max_frame_payload);

// Reads one frame from a blocking socket. Returns:
//   - the payload on success,
//   - nullopt on clean EOF at a frame boundary (peer closed),
//   - bad_frame on a torn frame / oversized prefix,
//   - io_error on a failed read,
//   - cancelled when `cancel` fires while waiting between frames (a
//     frame already in progress is still read to completion, bounded by
//     a short stall timeout so a dead peer cannot pin the handler).
//
// `stall_timeout_ms > 0` additionally bounds how long the peer may go
// without delivering a single byte before the read fails with io_error —
// how the proxy keeps a wedged backend (accepted the connection, never
// answers) from pinning a client handler forever. 0 keeps the historic
// wait-forever behavior for trusted local peers.
[[nodiscard]] result<std::optional<std::string>> read_frame(
    int fd, std::size_t max_payload = default_max_frame_payload,
    const cancel_token* cancel = nullptr, int stall_timeout_ms = 0);

}  // namespace pn
