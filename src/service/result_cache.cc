#include "service/result_cache.h"

#include <algorithm>

#include "common/check.h"

namespace pn {

namespace {

// FNV-1a 64-bit, with a second lane seeded differently so the combined
// 128 bits make accidental collisions on real payloads implausible.
constexpr std::uint64_t fnv_offset = 1469598103934665603ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= fnv_prime;
  }
  return h;
}

}  // namespace

cache_key cache_key_of(std::string_view payload) {
  cache_key key;
  key.lo = fnv1a(payload, fnv_offset);
  // Second lane: different seed, and fold the length in so payloads that
  // collide on lane one still need to collide under a distinct stream.
  key.hi = fnv1a(payload, fnv_offset ^ 0x9e3779b97f4a7c15ull) ^
           (static_cast<std::uint64_t>(payload.size()) * fnv_prime);
  return key;
}

result_cache::result_cache(std::size_t capacity, std::size_t shards)
    : per_shard_capacity_(0) {
  PN_CHECK(shards > 0);
  per_shard_capacity_ = capacity == 0 ? 0 : std::max<std::size_t>(
                                                1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

result_cache::shard& result_cache::shard_for(const cache_key& key) {
  return *shards_[key.hi % shards_.size()];
}

cache_lookup result_cache::lookup(const cache_key& key, bool count_miss) {
  cache_lookup out;
  // Read the epoch *before* probing: if an invalidate lands between the
  // probe and the insert, the insert sees a newer epoch and drops.
  out.epoch = epoch_.load(std::memory_order_acquire);
  if (per_shard_capacity_ == 0) return out;

  shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key.lo);
  if (it == sh.index.end() || !(it->second->key == key)) {
    if (count_miss) ++sh.misses;
    return out;
  }
  if (it->second->epoch != out.epoch) {
    // Lazily evict an entry stranded by an invalidate.
    sh.lru.erase(it->second);
    sh.index.erase(it);
    if (count_miss) ++sh.misses;
    return out;
  }
  // Touch: move to MRU position.
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  ++sh.hits;
  out.hit = cache_hit{it->second->response};
  return out;
}

bool result_cache::insert(const cache_key& key, std::string response,
                          std::uint64_t epoch) {
  if (per_shard_capacity_ == 0) return false;
  shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (epoch != epoch_.load(std::memory_order_acquire)) {
    ++sh.stale_inserts;
    return false;
  }
  const auto it = sh.index.find(key.lo);
  if (it != sh.index.end()) {
    // Same canonical request re-evaluated concurrently: refresh in place
    // (responses are deterministic, so the bytes match anyway).
    it->second->response = std::move(response);
    it->second->epoch = epoch;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return true;
  }
  while (sh.lru.size() >= per_shard_capacity_) {
    sh.index.erase(sh.lru.back().key.lo);
    sh.lru.pop_back();
    ++sh.evictions;
  }
  sh.lru.push_front(entry{key, std::move(response), epoch});
  sh.index.emplace(key.lo, sh.lru.begin());
  ++sh.insertions;
  return true;
}

std::uint64_t result_cache::invalidate() {
  return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

cache_stats result_cache::stats() const {
  cache_stats out;
  out.epoch = epoch_.load(std::memory_order_acquire);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    out.hits += sh->hits;
    out.misses += sh->misses;
    out.insertions += sh->insertions;
    out.evictions += sh->evictions;
    out.stale_inserts += sh->stale_inserts;
    // Entries stranded by an invalidate still count until lazily evicted;
    // good enough for an operator gauge.
    out.entries += sh->lru.size();
  }
  return out;
}

}  // namespace pn
