#include "service/ring.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

// FNV-1a diffuses the *low* bits of similar inputs poorly — canonical
// request bytes that differ only in a seed digit land on the same arc
// of the ring and one worker inherits nearly every key. Finalizing both
// point and query positions with a 64-bit avalanche mix (splitmix64's
// finalizer) restores a uniform spread without touching the cache key
// itself.
std::uint64_t ring_position(const cache_key& k) {
  std::uint64_t x = k.lo ^ k.hi;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

hash_ring::hash_ring(const std::vector<std::string>& workers, int vnodes) {
  PN_CHECK(vnodes >= 1);
  workers_ = static_cast<std::uint32_t>(workers.size());
  points_.reserve(workers.size() * static_cast<std::size_t>(vnodes));
  for (std::uint32_t w = 0; w < workers_; ++w) {
    for (int v = 0; v < vnodes; ++v) {
      // Both hash lanes feed the ring so two specs would need a full
      // 128-bit collision to share every point.
      const cache_key k =
          cache_key_of(workers[w] + "#" + str_format("%d", v));
      points_.emplace_back(ring_position(k), w);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::uint32_t> hash_ring::preference(const cache_key& key) const {
  std::vector<std::uint32_t> order;
  order.reserve(workers_);
  if (points_.empty()) return order;
  std::vector<std::uint8_t> seen(workers_, 0);
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(ring_position(key), std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t step = 0;
       step < points_.size() && order.size() < workers_; ++step, ++it) {
    if (it == points_.end()) it = points_.begin();
    const std::uint32_t w = it->second;
    if (seen[w] != 0) continue;
    seen[w] = 1;
    order.push_back(w);
  }
  return order;
}

std::uint32_t hash_ring::pick(const cache_key& key,
                              const std::vector<std::uint8_t>& alive) const {
  PN_CHECK(alive.size() == workers_);
  for (const std::uint32_t w : preference(key)) {
    if (alive[w] != 0) return w;
  }
  return workers_;
}

}  // namespace pn
