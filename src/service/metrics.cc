#include "service/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

metric_series::metric_series(double hi, std::size_t bins)
    : hist_(0.0, hi, bins),
      hi_(hi),
      width_(hi / static_cast<double>(bins)) {
  PN_CHECK(hi > 0.0);
}

void metric_series::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.add(v);
  if (v >= hi_) {
    ++overflow_;  // collapsed into the last bin
  } else if (v < width_) {
    ++sub_bin_;  // finer than one bin; percentile can't resolve it
  }
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

double metric_series::percentile_locked(double q, bool& clamped) const {
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < hist_.bin_count(); ++b) {
    seen += hist_.count(b);
    if (seen > rank) {
      if (b + 1 == hist_.bin_count() && overflow_ > 0) clamped = true;
      // Clamp the synthetic edge to the true extrema so tiny samples
      // don't report a p99 past the largest observed value.
      return std::min(std::max(hist_.bin_hi(b), min_), max_);
    }
  }
  clamped = overflow_ > 0;
  return max_;
}

metric_series::snapshot_t metric_series::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_t out;
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  out.overflow = overflow_;
  out.sub_bin = sub_bin_;
  out.p50 = percentile_locked(0.50, out.clamped);
  out.p90 = percentile_locked(0.90, out.clamped);
  out.p95 = percentile_locked(0.95, out.clamped);
  out.p99 = percentile_locked(0.99, out.clamped);
  return out;
}

const std::string* stats_get(const stats_list& stats, std::string_view key) {
  const auto it = std::lower_bound(
      stats.begin(), stats.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it == stats.end() || it->first != key) return nullptr;
  return &it->second;
}

namespace {

std::string fmt_u64(std::uint64_t v) {
  return str_format("%llu", static_cast<unsigned long long>(v));
}

std::string fmt_i64(std::int64_t v) {
  return str_format("%lld", static_cast<long long>(v));
}

std::string fmt_ms(double v) { return str_format("%.3f", v); }

void put_series(stats_list& out, const std::string& prefix,
                const metric_series::snapshot_t& s) {
  out.emplace_back(prefix + ".count", fmt_u64(s.count));
  out.emplace_back(prefix + ".mean", fmt_ms(s.mean()));
  out.emplace_back(prefix + ".min", fmt_ms(s.count == 0 ? 0.0 : s.min));
  out.emplace_back(prefix + ".max", fmt_ms(s.count == 0 ? 0.0 : s.max));
  out.emplace_back(prefix + ".p50", fmt_ms(s.p50));
  out.emplace_back(prefix + ".p90", fmt_ms(s.p90));
  out.emplace_back(prefix + ".p95", fmt_ms(s.p95));
  out.emplace_back(prefix + ".p99", fmt_ms(s.p99));
  out.emplace_back(prefix + ".overflow", fmt_u64(s.overflow));
  out.emplace_back(prefix + ".sub_bin", fmt_u64(s.sub_bin));
  out.emplace_back(prefix + ".clamped", s.clamped ? "1" : "0");
}

}  // namespace

stats_list service_metrics::to_stats(std::uint64_t cache_hits,
                                     std::uint64_t cache_misses,
                                     std::uint64_t cache_entries,
                                     std::uint64_t cache_epoch) const {
  stats_list out;
  out.reserve(48);
  out.emplace_back("connections.accepted", fmt_u64(connections_accepted.load()));
  out.emplace_back("connections.active", fmt_i64(connections_active.load()));

  out.emplace_back("requests.admitted", fmt_u64(requests_admitted.load()));
  out.emplace_back("requests.rejected_overloaded",
                   fmt_u64(rejected_overloaded.load()));
  out.emplace_back("requests.rejected_shutting_down",
                   fmt_u64(rejected_shutting_down.load()));
  out.emplace_back("requests.bad_frames", fmt_u64(bad_frames.load()));
  out.emplace_back("requests.bad_requests", fmt_u64(bad_requests.load()));

  out.emplace_back("eval.ok", fmt_u64(eval_ok.load()));
  out.emplace_back("eval.error", fmt_u64(eval_error.load()));
  out.emplace_back("eval.coalesced", fmt_u64(coalesced.load()));

  out.emplace_back("batch.batches", fmt_u64(batches.load()));
  out.emplace_back("queue.depth", fmt_i64(queue_depth.load()));

  const std::uint64_t lookups = cache_hits + cache_misses;
  out.emplace_back("cache.hits", fmt_u64(cache_hits));
  out.emplace_back("cache.misses", fmt_u64(cache_misses));
  out.emplace_back("cache.hit_ratio",
                   str_format("%.6f", lookups == 0
                                          ? 0.0
                                          : static_cast<double>(cache_hits) /
                                                static_cast<double>(lookups)));
  out.emplace_back("cache.entries", fmt_u64(cache_entries));
  out.emplace_back("cache.epoch", fmt_u64(cache_epoch));

  put_series(out, "latency.queue_wait_ms", queue_wait_ms.snapshot());
  put_series(out, "latency.eval_ms", eval_ms.snapshot());
  put_series(out, "batch.size", batch_size.snapshot());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pn
