#include "service/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "service/protocol.h"
#include "service/socket.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {

namespace {

// Cold requests start their wire seeds far above any hot variant's so
// the two populations can never collide on a cache key.
constexpr std::uint64_t kColdSeedBase = 1'000'000'001ull;

// How long a load connection waits on a silent service before counting
// the request as a transport error instead of hanging the run.
constexpr int kLoadStallTimeoutMs = 120'000;

std::string encode_request(const load_mix_entry& entry,
                           const std::string& design_twin,
                           std::uint64_t wire_seed, bool run_repair_sim) {
  eval_request req;
  req.name = entry.family + "/" + str_format("%d", entry.size);
  req.options.seed = wire_seed;
  req.options.strategy = entry.strategy;
  req.options.run_repair_sim = run_repair_sim;
  req.design_twin = design_twin;
  return encode_eval_request_wire(req);
}

}  // namespace

result<std::vector<load_request>> build_schedule(const loadgen_config& cfg) {
  PN_CHECK(cfg.offered_qps > 0.0);
  PN_CHECK(cfg.duration_s > 0.0);
  PN_CHECK(cfg.hot_variants >= 1);
  PN_CHECK(!cfg.mix.empty());

  // One design per mix entry; hot variants and cold requests reuse its
  // bytes and differ only in the wire seed option (distinct canonical
  // bytes, distinct cache keys, identical build cost).
  std::vector<std::string> twins;
  twins.reserve(cfg.mix.size());
  for (const load_mix_entry& entry : cfg.mix) {
    auto g = build_family(entry.family, entry.size, cfg.seed);
    if (!g.is_ok()) return g.error();
    twins.push_back(serialize_twin(design_to_twin(g.value())));
  }

  // Hot payloads are shared across the schedule; build them up front.
  std::vector<std::vector<std::shared_ptr<const std::string>>> hot;
  hot.resize(cfg.mix.size());
  for (std::size_t m = 0; m < cfg.mix.size(); ++m) {
    hot[m].reserve(static_cast<std::size_t>(cfg.hot_variants));
    for (int v = 0; v < cfg.hot_variants; ++v) {
      hot[m].push_back(std::make_shared<const std::string>(encode_request(
          cfg.mix[m], twins[m], static_cast<std::uint64_t>(v) + 1,
          cfg.run_repair_sim)));
    }
  }

  const auto count = static_cast<std::size_t>(
      std::max(1.0, std::llround(cfg.offered_qps * cfg.duration_s) * 1.0));
  rng arrivals(cfg.seed);
  rng draws(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  const double mean_gap_ns = 1e9 / cfg.offered_qps;

  std::vector<load_request> schedule;
  schedule.reserve(count);
  double at_ns = 0.0;
  std::uint64_t cold_serial = 0;
  std::vector<std::size_t> hot_cursor(cfg.mix.size(), 0);
  for (std::size_t i = 0; i < count; ++i) {
    at_ns += arrivals.next_exponential(mean_gap_ns);
    load_request r;
    r.offset = static_cast<mono_ns>(at_ns);
    const std::size_t m =
        cfg.mix.size() == 1 ? 0 : draws.next_index(cfg.mix.size());
    r.hot = draws.next_double() < cfg.hot_fraction;
    if (r.hot) {
      // Round-robin over the hot set: a cyclic scan is deterministic
      // and adversarial to LRU when the set exceeds cache capacity.
      const std::size_t v = hot_cursor[m]++ %
                            static_cast<std::size_t>(cfg.hot_variants);
      r.payload = hot[m][v];
    } else {
      r.payload = std::make_shared<const std::string>(
          encode_request(cfg.mix[m], twins[m],
                         kColdSeedBase + cold_serial++,
                         cfg.run_repair_sim));
    }
    schedule.push_back(std::move(r));
  }
  return schedule;
}

result<load_report> run_load(const loadgen_config& cfg,
                             const std::vector<load_request>& schedule) {
  PN_CHECK(cfg.connections >= 1);
  clock_fn tick = cfg.clock ? cfg.clock : real_clock();
  auto ep = parse_endpoint(cfg.connect);
  if (!ep.is_ok()) return ep.error();

  struct shared_state {
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> retryable{0};
    std::atomic<std::uint64_t> server_error{0};
    std::atomic<std::uint64_t> transport_error{0};
    std::atomic<std::uint64_t> hot_sent{0};
    std::atomic<std::uint64_t> cold_sent{0};
    std::atomic<mono_ns> last_done{0};
    // 1ms bins: percentile error is bounded by one bin, and a load run
    // cares about the 0.5ms-vs-50ms distinction the server's coarse
    // 250ms eval bins would erase.
    metric_series latency{10'000.0, 10'000};
  } state;

  // A short lead so the first scheduled arrivals are in the future for
  // every connection, not already late before the pool spins up.
  const mono_ns start = tick() + mono_ns_from_ms(50.0);

  auto worker = [&] {
    unique_fd fd;
    for (;;) {
      const std::size_t i =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= schedule.size()) break;
      const load_request& r = schedule[i];
      const mono_ns target = start + r.offset;
      const mono_ns now = tick();
      if (now < target) sleep_ms(mono_ms_between(now, target));
      (r.hot ? state.hot_sent : state.cold_sent)
          .fetch_add(1, std::memory_order_relaxed);

      auto fail_transport = [&] {
        state.transport_error.fetch_add(1, std::memory_order_relaxed);
        fd.reset();
      };
      if (!fd.valid()) {
        auto connected = connect_to(ep.value());
        if (!connected.is_ok()) {
          fail_transport();
          continue;
        }
        fd = std::move(connected).value();
      }
      if (!write_frame(fd.get(), *r.payload, cfg.max_frame_payload)
               .is_ok()) {
        fail_transport();
        continue;
      }
      auto frame = read_frame(fd.get(), cfg.max_frame_payload,
                              /*cancel=*/nullptr, kLoadStallTimeoutMs);
      if (!frame.is_ok() || !frame.value().has_value()) {
        fail_transport();
        continue;
      }
      auto response = parse_response(*frame.value());
      if (!response.is_ok()) {
        fail_transport();
        continue;
      }
      const mono_ns done = tick();
      mono_ns seen = state.last_done.load(std::memory_order_relaxed);
      while (seen < done && !state.last_done.compare_exchange_weak(
                                seen, done, std::memory_order_relaxed)) {
      }
      const status& err = response.value().error;
      if (err.is_ok()) {
        state.ok.fetch_add(1, std::memory_order_relaxed);
        state.latency.record(mono_ms_between(target, done));
      } else if (err.code() == status_code::overloaded ||
                 err.code() == status_code::shutting_down) {
        state.retryable.fetch_add(1, std::memory_order_relaxed);
      } else {
        state.server_error.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  {
    thread_pool pool(cfg.connections);
    for (int c = 0; c < cfg.connections; ++c) pool.submit(worker);
    pool.wait_idle();
  }

  load_report report;
  report.sent = schedule.size();
  report.ok = state.ok.load();
  report.retryable_rejected = state.retryable.load();
  report.server_error = state.server_error.load();
  report.transport_error = state.transport_error.load();
  report.hot_sent = state.hot_sent.load();
  report.cold_sent = state.cold_sent.load();
  report.offered_qps = cfg.offered_qps;
  const mono_ns last = state.last_done.load();
  report.elapsed_s =
      last > start ? mono_ms_between(start, last) / 1000.0 : 0.0;
  if (report.elapsed_s > 0.0) {
    report.achieved_qps_ok =
        static_cast<double>(report.ok) / report.elapsed_s;
    report.achieved_qps_answered =
        static_cast<double>(report.ok + report.retryable_rejected +
                            report.server_error) /
        report.elapsed_s;
  }
  report.latency_ms = state.latency.snapshot();
  return report;
}

std::string load_report_json(const load_report& r, const std::string& label,
                             int workers) {
  std::string out;
  out += "{\n";
  out += str_format("      \"label\": \"%s\",\n", label.c_str());
  out += str_format("      \"workers\": %d,\n", workers);
  out += str_format("      \"offered_qps\": %.2f,\n", r.offered_qps);
  out += str_format("      \"achieved_qps_ok\": %.2f,\n", r.achieved_qps_ok);
  out += str_format("      \"achieved_qps_answered\": %.2f,\n",
                    r.achieved_qps_answered);
  out += str_format("      \"elapsed_s\": %.3f,\n", r.elapsed_s);
  out += str_format(
      "      \"requests\": {\"sent\": %llu, \"ok\": %llu, "
      "\"retryable_rejected\": %llu, \"server_error\": %llu, "
      "\"transport_error\": %llu, \"hot\": %llu, \"cold\": %llu},\n",
      static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.retryable_rejected),
      static_cast<unsigned long long>(r.server_error),
      static_cast<unsigned long long>(r.transport_error),
      static_cast<unsigned long long>(r.hot_sent),
      static_cast<unsigned long long>(r.cold_sent));
  // overflow/sub_bin/clamped surface histogram-resolution limits:
  // sub-bin samples resolve no finer than the first bin edge, and when
  // a percentile fell in the overflow bin its value is pinned to the
  // observed max, so `clamped: true` marks percentiles to distrust.
  out += str_format(
      "      \"latency_ms\": {\"count\": %llu, \"mean\": %.3f, "
      "\"min\": %.3f, \"max\": %.3f, \"p50\": %.3f, \"p90\": %.3f, "
      "\"p95\": %.3f, \"p99\": %.3f, \"overflow\": %llu, "
      "\"sub_bin\": %llu, \"clamped\": %s}\n",
      static_cast<unsigned long long>(r.latency_ms.count),
      r.latency_ms.mean(), r.latency_ms.count == 0 ? 0.0 : r.latency_ms.min,
      r.latency_ms.count == 0 ? 0.0 : r.latency_ms.max, r.latency_ms.p50,
      r.latency_ms.p90, r.latency_ms.p95, r.latency_ms.p99,
      static_cast<unsigned long long>(r.latency_ms.overflow),
      static_cast<unsigned long long>(r.latency_ms.sub_bin),
      r.latency_ms.clamped ? "true" : "false");
  out += "    }";
  return out;
}

}  // namespace pn
