#include "deploy/drain_scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

result<drain_schedule> schedule_drains(const std::vector<drain_item>& items,
                                       const drain_schedule_params& p) {
  PN_CHECK(p.capacity_floor >= 0.0 && p.capacity_floor < 1.0);
  PN_CHECK(p.technicians_available > 0);
  const double budget = 1.0 - p.capacity_floor;

  for (const drain_item& item : items) {
    PN_CHECK(item.capacity_share >= 0.0 && item.capacity_share <= 1.0);
    PN_CHECK(item.technicians_needed >= 0);
    if (item.capacity_share > budget + 1e-12) {
      return infeasible_error(str_format(
          "item '%s' drains %.0f%% alone but the floor allows %.0f%%",
          item.name.c_str(), item.capacity_share * 100.0, budget * 100.0));
    }
    if (item.technicians_needed > p.technicians_available) {
      return infeasible_error(str_format(
          "item '%s' needs %d technicians, have %d", item.name.c_str(),
          item.technicians_needed, p.technicians_available));
    }
  }

  // Greedy: longest items first; each opens a new wave or joins the first
  // existing wave with enough capacity and technician budget. Packing
  // long items together keeps short ones from stretching a wave.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return items[a].duration > items[b].duration;
                   });

  drain_schedule out;
  for (const std::size_t idx : order) {
    const drain_item& item = items[idx];
    drain_wave* target = nullptr;
    for (drain_wave& wave : out.waves) {
      if (wave.drained_share + item.capacity_share <= budget + 1e-12 &&
          wave.technicians_used + item.technicians_needed <=
              p.technicians_available) {
        target = &wave;
        break;
      }
    }
    if (target == nullptr) {
      out.waves.emplace_back();
      target = &out.waves.back();
    }
    target->items.push_back(idx);
    target->drained_share += item.capacity_share;
    target->technicians_used += item.technicians_needed;
    target->duration = std::max(target->duration, item.duration);
  }

  for (const drain_wave& wave : out.waves) {
    out.makespan += wave.duration;
    out.peak_drained_share =
        std::max(out.peak_drained_share, wave.drained_share);
  }
  return out;
}

}  // namespace pn
