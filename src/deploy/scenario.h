// Edge-level deployment scenarios: scripted mutate-then-evaluate.
//
// The lifecycle events the paper cares about — expansion (§4.1), repair
// (§3.3), migration (§4.3), decommissioning (§2.1) — are all, at the
// fabric-graph level, sequences of edge mutations: links land, links
// drain, links move. A deploy_scenario captures one such sequence as
// replayable steps so the sweep driver can evolve ONE graph through the
// whole lifecycle and re-evaluate after every step, delta-aware
// (topology/incremental.h) or cold — with bit-identical results either
// way.
//
// Scenarios are planned against a graph lineage: generators replay their
// ops on a private copy so every `add` op records the exact edge id the
// real replay will assign, and every kill is connectivity-guarded (no
// step may cut host-facing switches off — a disconnected fabric is an
// outage, not a scenario).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

enum class edge_op_kind : std::uint8_t {
  add,     // land a brand-new link (a, b, capacity)
  kill,    // drain a live link (edge)
  revive,  // un-drain a dead link (edge)
};

[[nodiscard]] const char* edge_op_kind_name(edge_op_kind k);

struct edge_op {
  edge_op_kind kind = edge_op_kind::kill;
  // kill/revive: the target edge. add: the id this op will create —
  // recorded at plan time and PN_CHECKed at replay time, so a scenario
  // applied to the wrong graph lineage fails loudly.
  edge_id edge;
  node_id a;  // endpoints (denormalized for kill/revive; inputs for add)
  node_id b;
  gbps capacity{0.0};  // add only
};

struct scenario_step {
  std::string label;
  std::vector<edge_op> ops;
};

struct deploy_scenario {
  std::string name;
  std::vector<scenario_step> steps;

  [[nodiscard]] std::size_t op_count() const;
};

// Applies one step's ops in order. Adds PN_CHECK that the id the graph
// assigns matches the planned one.
void apply_scenario_step(network_graph& g, const scenario_step& step);

// True iff every host-facing switch can reach every other over live
// edges — the guard scenario generators apply before committing a kill.
[[nodiscard]] bool hosts_connected(const network_graph& g);

}  // namespace pn
