// Builds deployment work orders from a cabling plan.
//
// Encodes the process shape of §2.3/§3.1: racks are positioned, switches
// mounted, inter-rack cables pulled (loose, or as pre-built bundles per
// Singh et al.), connectors seated, and every link validated by automated
// test. Task times are explicit parameters so E1 can sweep the "extra 5
// minutes per thing" overhead.
#pragma once

#include "deploy/workorder.h"
#include "physical/bundling.h"
#include "physical/cabling.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/graph.h"

namespace pn {

struct deployment_task_times {
  // Hands-on minutes.
  double position_rack = 30.0;
  double mount_switch = 12.0;
  double pull_bundle_fixed = 18.0;       // land one pre-built bundle
  double pull_bundle_per_meter = 0.15;
  double pull_cable_fixed = 5.0;         // pull one loose cable
  double pull_cable_per_meter = 0.30;
  double connect_port = 1.2;             // seat + dress one connector
  double test_link = 0.3;                // operator share of automated test
  // §2.3: "An extra 5 minutes per thing adds up quickly" — applied to
  // every physical task when > 0 (bad tooling, unclear instructions).
  double per_task_overhead = 0.0;

  // Defect injection.
  double connect_error_probability = 0.01;   // miswire / bad seat
  double pull_damage_probability = 0.002;    // cable damaged during pull
  double rework_minutes = 25.0;              // diagnose + redo when caught
};

struct deployment_plan_options {
  deployment_task_times times;
  // Use pre-built bundles for rack pairs with >= bundling.min_bundle_size
  // cables; otherwise every inter-rack cable is pulled individually.
  bool use_bundles = true;
  bundling_params bundling;
  // §3.1: intra-rack cables are often pre-installed before delivery; when
  // true they need no pull/connect on the floor, only the link test.
  bool prewired_intra_rack = false;
};

// The full greenfield deployment: position every used rack, mount every
// switch, pull/connect/test every cable run.
[[nodiscard]] work_order build_deployment_order(
    const network_graph& g, const placement& pl, const floorplan& fp,
    const cabling_plan& plan, const deployment_plan_options& opt);

}  // namespace pn
