// OCS topology engineering (§4.1 / Poutievski et al.).
//
// "Replacing these patch panels with a relatively slow optical circuit
// switch not only further eases expansions, but also supports frequent
// changes to the capacity between aggregation blocks, to respond to
// changing and uneven inter-block traffic demands." Given a direct-mode
// Jupiter and an inter-block demand matrix, this module computes a
// demand-proportional mesh (a maximum-weight degree-constrained
// b-matching, greedily), rebuilds the fabric, and counts the OCS
// cross-connect retunes — the zero-floor-labor reconfiguration that is
// the whole point of the indirection layer.
#pragma once

#include <vector>

#include "common/status.h"
#include "topology/generators/jupiter.h"
#include "topology/traffic.h"

namespace pn {

// Aggregates a switch-level traffic matrix to block level (symmetrized:
// demand between blocks i and j in either direction).
[[nodiscard]] std::vector<std::vector<double>> block_demand_matrix(
    const jupiter_fabric& f, const traffic_matrix& tm);

struct engineered_mesh {
  jupiter_fabric fabric;
  std::vector<std::vector<int>> pair_links;  // upper-triangular
  // Cross-connects moved relative to the uniform mesh (each is one OCS
  // software operation; no humans involved).
  int ocs_retunes = 0;
};

// Allocates each block's uplinks across peers proportionally to demand
// (greedy max-weight: repeatedly grant a link to the block pair with the
// highest demand per already-granted link), on top of a guaranteed base
// mesh of `min_links_per_pair` between every pair — without the floor, a
// hot pair would absorb whole blocks' budgets and partition the fabric,
// which no production traffic engineer would install. Fails with
// invalid_argument when the uplink budget cannot fund the base mesh.
[[nodiscard]] result<engineered_mesh> engineer_jupiter_mesh(
    const jupiter_params& params,
    const std::vector<std::vector<double>>& block_demand,
    int min_links_per_pair = 1);

}  // namespace pn
