// Incremental-expansion planners and the §5.4 lifecycle metrics.
//
// §4.1 / Zhao et al.: a patch-panel layer between aggregation and spine
// turns expansion from floor-wide cable pulls into localized jumper moves;
// an OCS layer turns it into software. This module computes, for a Clos
// expansion from P to P' pods, exactly how many links must move and what
// that costs under each wiring style — plus the §5.4 metrics: re-wiring
// steps, re-wired links per panel, panels touched, and drain windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "deploy/scenario.h"

namespace pn {

enum class spine_wiring {
  direct,       // agg cables run straight to spine switches
  patch_panel,  // both sides terminate on panels; links are jumpers
  ocs,          // links are OCS cross-connects (software)
};

[[nodiscard]] const char* spine_wiring_name(spine_wiring w);

struct clos_expansion_params {
  int spine_groups = 4;
  int spines_per_group = 4;
  // Pod-facing ports per spine switch (sized for the max build-out).
  int ports_per_spine = 32;
  int from_pods = 4;
  int to_pods = 8;
  spine_wiring wiring = spine_wiring::direct;
  // Patch-panel sizing (ports per panel; panels are per spine group).
  int panel_ports = 64;

  // Labor model (minutes).
  double floor_pull_minutes = 30.0;     // pull one new long cable
  double floor_remove_minutes = 15.0;   // extract one old cable (§2.1:
                                        // risky; often skipped — see
                                        // leave_dead_cables)
  double jumper_move_minutes = 2.0;     // re-patch at a panel
  double ocs_reconfig_minutes = 0.0;    // software
  double drain_window_minutes = 20.0;   // per drain/undrain cycle
  // §2.1: "when we must add cables ... we seldom remove old ones."
  bool leave_dead_cables = true;
};

struct expansion_plan {
  // §5.4 metrics.
  int links_added = 0;        // brand-new pod->fabric links
  int links_rewired = 0;      // existing links whose far end moves
  int floor_cable_pulls = 0;  // new cables pulled across the floor
  int floor_cable_removals = 0;
  int jumper_moves = 0;
  int ocs_reconfigs = 0;
  int panels_touched = 0;
  double rewired_links_per_panel = 0.0;
  int drain_windows = 0;      // distinct drain/undrain cycles
  hours labor{0.0};
  // Dead cable cross-section left in trays (future §2.1 headroom cost).
  int dead_cables_left = 0;
};

// Fails only via PN_CHECK on invalid parameters (to_pods > max the spine
// ports can serve, etc.). Striping distributes each spine group's ports
// over pods as evenly as integers allow; the rewired count is the minimal
// number of links whose pod-side endpoint must change (Zhao et al.'s
// "minimal rewiring" objective for one group, summed over groups).
[[nodiscard]] expansion_plan plan_clos_expansion(
    const clos_expansion_params& p);

// The per-pod allocation of one spine group's `total_ports` among `pods`
// (largest-remainder striping). Exposed for tests and for the benches'
// tables.
[[nodiscard]] std::vector<int> stripe_ports(int total_ports, int pods);

// ---- edge-level expansion scenario --------------------------------------

struct edge_expansion_params {
  int steps = 8;
  int links_per_step = 4;
  // Capacity expansion instead of structural growth: each added link
  // parallels a randomly chosen *existing* adjacency (the links_per_pair
  // pattern — second trunk between switches already wired together)
  // rather than opening a new switch pair. Parallel links never change
  // hop distances, only capacity, which is what makes this the
  // best case for delta evaluation.
  bool parallel_links = false;
  std::uint64_t seed = 1;
};

// Plans an incremental-expansion scenario over `g`'s lineage: each step
// lands `links_per_step` new inter-switch links between random switch
// pairs that both have free ports and no existing direct link
// (Jellyfish-style incremental growth — the §4.1 case where expansion is
// jumper moves, not floor pulls), or — with parallel_links — doubles up
// random existing adjacencies. Ops record the exact edge ids replay
// will assign; drive the steps through run_sweep's scenario mode to
// re-evaluate after every landing, delta-aware or cold.
[[nodiscard]] deploy_scenario plan_expansion_edge_scenario(
    const network_graph& g, const edge_expansion_params& p);

}  // namespace pn
