// Live-migration planner for the §4.3 case study: converting a Jupiter
// fabric from fat-tree (aggregation blocks -> spine blocks via OCS) to
// direct-connect (aggregation blocks -> aggregation blocks via OCS).
//
// The physical procedure the paper describes: drain one OCS rack, have
// technicians move its fibers ("the complex task of moving a lot of
// fibers without breaking or mis-connecting any of them" — multiple hours
// of human labor per rack), run automated wiring tests, un-drain, repeat.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "deploy/scenario.h"
#include "topology/generators/jupiter.h"

namespace pn {

struct migration_params {
  // Minutes per fiber disconnect or connect at the OCS shelf.
  double minutes_per_fiber_op = 3.0;
  double drain_minutes = 20.0;     // software drain of one OCS
  double undrain_minutes = 10.0;
  double validate_minutes = 25.0;  // automated wiring test per OCS
  int technicians_per_rack = 2;
  // How many OCS racks may be drained concurrently. 1 preserves the most
  // capacity; higher trades availability for calendar time.
  int concurrent_drains = 1;
  // Probability a fiber ends up in the wrong port; the automated test
  // catches it and the fix costs rework_minutes.
  double miswire_probability = 0.01;
  double rework_minutes = 15.0;
  std::uint64_t seed = 1;
};

struct migration_report {
  int ocs_racks = 0;
  int fiber_disconnects = 0;   // spine-side fibers removed
  int fiber_connects = 0;      // new agg-side fibers landed
  int miswires_caught = 0;
  hours labor{0.0};            // total technician hours
  hours labor_per_rack{0.0};   // mean per OCS rack (the §4.3 anecdote)
  hours elapsed{0.0};          // calendar time with concurrency
  // Worst-case fraction of inter-block capacity still up during the
  // migration (1 - largest drained OCS share).
  double min_residual_capacity = 1.0;
};

// Plans the conversion of `from` (must be fat_tree mode). The direct
// fabric it converts to reuses the same aggregation uplinks, so each OCS
// keeps its agg-side fibers and sheds its spine-side fibers; any capacity
// previously consumed by the spine hop is recovered as direct links via
// internal OCS cross-connects (software). Fiber connects arise only when
// `extra_uplinks_per_block` adds net-new capacity.
[[nodiscard]] migration_report plan_jupiter_migration(
    const jupiter_fabric& from, const migration_params& p,
    int extra_uplinks_per_block = 0);

// ---- edge-level migration scenario --------------------------------------

struct edge_migration_params {
  int steps = 8;
  int moves_per_step = 4;
  std::uint64_t seed = 1;
};

// Plans a live-rewiring scenario over `g`'s lineage: each move drains one
// live link and lands a replacement from one of its endpoints to a new
// peer with free ports — the edge-level shape of the §4.3 fiber moves
// (drain, move fibers, validate, un-drain). Moves that would partition
// the host-facing switches are skipped. Ops record exact edge ids; drive
// through run_sweep's scenario mode.
[[nodiscard]] deploy_scenario plan_migration_edge_scenario(
    const network_graph& g, const edge_migration_params& p);

}  // namespace pn
