// Technician discrete-event simulator.
//
// Executes a work_order with a crew of technicians: list scheduling over
// the dependency DAG, walking time between task locations, defect
// injection on manual tasks and detection at test_link tasks. Produces
// the §2-internal metrics: time-to-deploy (makespan), labor hours, and
// first-pass yield.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "deploy/workorder.h"

namespace pn {

struct tech_sim_params {
  int technicians = 8;
  double walk_speed_m_per_min = 70.0;  // ~1.2 m/s on a crowded floor
  // Probability a test actually catches an existing defect; misses become
  // latent faults that surface as early-life failures post-deployment.
  double test_detection_probability = 0.95;
  // §3.2: "how many people at a time can work on one rack" — tasks at the
  // same location serialize beyond this limit. 0 = unlimited.
  int max_workers_per_location = 2;
  std::uint64_t seed = 1;
};

struct tech_sim_result {
  hours makespan;          // wall-clock time to finish the order
  hours labor;             // summed busy time (hands-on + walking + rework)
  hours walking;           // walking share of labor
  hours rework;            // rework share of labor
  std::size_t tasks_executed = 0;
  std::size_t defects_introduced = 0;
  std::size_t defects_caught = 0;   // found by tests, fixed via rework
  std::size_t defects_escaped = 0;  // latent faults shipped
  std::size_t links_tested = 0;
  // Fraction of tested links that passed their first test (§2's
  // "first-pass yield").
  double first_pass_yield = 1.0;
  // Busy time by task kind, in hours.
  std::map<std::string, double> hours_by_kind;
};

// Fails (invalid_argument) only on a cyclic work order. Seeds a fresh
// generator from p.seed.
[[nodiscard]] result<tech_sim_result> simulate_deployment(
    const work_order& wo, const tech_sim_params& p);

// Same, drawing randomness from an injected stream: callers running many
// simulations (sweeps, lifecycle models) hand each one its own substream
// instead of round-tripping through a seed field.
[[nodiscard]] result<tech_sim_result> simulate_deployment(
    const work_order& wo, const tech_sim_params& p, rng& r);

}  // namespace pn
