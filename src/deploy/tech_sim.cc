#include "deploy/tech_sim.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

result<tech_sim_result> simulate_deployment(const work_order& wo,
                                            const tech_sim_params& p) {
  rng r(p.seed);
  return simulate_deployment(wo, p, r);
}

result<tech_sim_result> simulate_deployment(const work_order& wo,
                                            const tech_sim_params& p,
                                            rng& r) {
  PN_CHECK(p.technicians > 0);
  PN_CHECK(p.walk_speed_m_per_min > 0.0);
  auto order_or = wo.topological_order();
  if (!order_or.is_ok()) return order_or.error();
  const std::vector<task_id>& order = order_or.value();

  tech_sim_result out;

  struct tech_state {
    double available_at = 0.0;  // minutes
    point location{0.0, 0.0};   // everyone starts at the floor entrance
  };
  std::vector<tech_state> techs(static_cast<std::size_t>(p.technicians));

  // Per-location occupancy slots (§3.2: limited workers per rack). Each
  // heap holds the end times of the tasks currently occupying that
  // location's worker slots.
  using slot_heap =
      std::priority_queue<double, std::vector<double>, std::greater<>>;
  std::map<std::pair<long long, long long>, slot_heap> location_slots;
  auto location_key = [](point pt) {
    return std::make_pair(static_cast<long long>(pt.x * 1000.0),
                          static_cast<long long>(pt.y * 1000.0));
  };

  std::vector<double> finish(wo.task_count(), 0.0);
  // Subjects with an uncaught defect.
  std::set<std::string> defective;

  double total_walk = 0.0;
  double total_rework = 0.0;
  double total_busy = 0.0;
  double makespan = 0.0;

  for (const task_id tid : order) {
    const work_task& t = wo.task(tid);
    double ready_at = 0.0;
    for (task_id dep : t.depends_on) {
      ready_at = std::max(ready_at, finish[dep.index()]);
    }

    const double minutes = t.base_minutes;
    double rework_minutes = 0.0;

    // Defect mechanics.
    if (t.kind == task_kind::test_link) {
      ++out.links_tested;
      if (defective.contains(t.subject) &&
          r.next_bool(p.test_detection_probability)) {
        ++out.defects_caught;
        defective.erase(t.subject);
        // A failing test dispatches a technician: diagnose, redo the bad
        // work, re-test. Rework budget comes from the work order (falls
        // back to a generic 25 min).
        rework_minutes =
            (t.rework_minutes > 0.0 ? t.rework_minutes : 25.0) +
            t.base_minutes;
      }
    } else if (t.error_probability > 0.0 &&
               r.next_bool(t.error_probability)) {
      ++out.defects_introduced;
      defective.insert(t.subject);
    }

    // Software-only steps need no technician: drains/undrains, and link
    // tests that pass (the test harness is automated; only a failure puts
    // a human on the floor).
    const bool software_only =
        t.kind == task_kind::drain || t.kind == task_kind::undrain ||
        // exact-zero sentinel — rework_minutes is either literally 0.0
        // (test passed) or a positive draw. pn_lint: allow(float-eq)
        (t.kind == task_kind::test_link && rework_minutes == 0.0);
    if (software_only) {
      finish[tid.index()] = ready_at + minutes;
      makespan = std::max(makespan, finish[tid.index()]);
      ++out.tasks_executed;
      out.hours_by_kind[task_kind_name(t.kind)] += minutes / 60.0;
      continue;
    }

    // Pick the technician with the earliest possible finish.
    std::size_t best = 0;
    double best_start = std::numeric_limits<double>::infinity();
    double best_walk = 0.0;
    for (std::size_t i = 0; i < techs.size(); ++i) {
      const double walk_min =
          manhattan_distance(techs[i].location, t.location).value() /
          p.walk_speed_m_per_min;
      const double start = std::max(ready_at, techs[i].available_at) +
                           walk_min;
      if (start < best_start) {
        best_start = start;
        best = i;
        best_walk = walk_min;
      }
    }

    // Respect the per-location worker cap: if every slot at this rack is
    // taken, wait for the earliest one to free up.
    double start = best_start;
    if (p.max_workers_per_location > 0) {
      slot_heap& slots = location_slots[location_key(t.location)];
      while (!slots.empty() && slots.top() <= start) {
        slots.pop();  // already vacated
      }
      if (static_cast<int>(slots.size()) >= p.max_workers_per_location) {
        start = std::max(start, slots.top());
        slots.pop();
      }
    }

    const double work_minutes = minutes + rework_minutes;
    const double end = start + work_minutes;
    if (p.max_workers_per_location > 0) {
      location_slots[location_key(t.location)].push(end);
    }
    techs[best].available_at = end;
    techs[best].location = t.location;
    finish[tid.index()] = end;
    makespan = std::max(makespan, end);

    total_walk += best_walk;
    total_rework += rework_minutes;
    total_busy += best_walk + work_minutes;
    out.hours_by_kind[task_kind_name(t.kind)] += work_minutes / 60.0;
    ++out.tasks_executed;
  }

  out.defects_escaped = defective.size();
  out.makespan = hours_from_minutes(makespan);
  out.labor = hours_from_minutes(total_busy);
  out.walking = hours_from_minutes(total_walk);
  out.rework = hours_from_minutes(total_rework);
  out.first_pass_yield =
      out.links_tested > 0
          ? 1.0 - static_cast<double>(out.defects_introduced) /
                      static_cast<double>(out.links_tested)
          : 1.0;
  return out;
}

}  // namespace pn
