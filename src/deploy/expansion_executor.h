// Turns an expansion plan into an executable work order (§2's pipeline:
// plan -> instruct humans -> validate). The planner (expansion.h) counts
// what must move; this executor lays those moves out as located, timed,
// dependency-ordered tasks so the technician simulator can answer the
// §2-internal questions — time-to-deploy and first-pass yield — for an
// *expansion*, not just a greenfield build.
#pragma once

#include "deploy/expansion.h"
#include "deploy/workorder.h"
#include "physical/floorplan.h"

namespace pn {

struct expansion_execution_options {
  // Where the work happens: spine rows sit at the floor's far end; new
  // pods land at increasing rack positions. Only coarse locations are
  // needed — they drive technician walking, not correctness.
  double pull_error_probability = 0.01;
  double jumper_error_probability = 0.003;  // panel work is tidier
  double rework_minutes = 25.0;
  double test_minutes = 0.3;
};

// Builds the work order for one planned expansion on the given floor.
// Task structure per drain window: drain -> (pulls | jumper moves |
// software reconfigs in that window) -> test -> undrain; windows are
// serialized (the §4.3 discipline: one low-impact chunk at a time).
[[nodiscard]] work_order build_expansion_order(
    const expansion_plan& plan, const clos_expansion_params& params,
    const floorplan& fp, const expansion_execution_options& opt = {});

}  // namespace pn
