#include "deploy/expansion_executor.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

work_order build_expansion_order(const expansion_plan& plan,
                                 const clos_expansion_params& params,
                                 const floorplan& fp,
                                 const expansion_execution_options& opt) {
  PN_CHECK(plan.drain_windows >= 1);
  work_order wo;

  // Distribute the physical work items evenly over the drain windows.
  const int windows = plan.drain_windows;
  auto share = [&](int total, int window) {
    return total / windows + (window < total % windows ? 1 : 0);
  };

  // Coarse locations: spine/panel work near the floor origin row, new-pod
  // pulls spread along the last row.
  const point spine_loc = fp.rack_at(rack_id{0}).position;
  const point pod_loc =
      fp.rack_at(rack_id{fp.rack_count() - 1}).position;

  task_id previous_undrain{};
  bool have_previous = false;
  for (int w = 0; w < windows; ++w) {
    work_task drain;
    drain.kind = task_kind::drain;
    drain.subject = str_format("window%d", w);
    drain.location = spine_loc;
    drain.base_minutes = params.drain_window_minutes / 2.0;
    if (have_previous) drain.depends_on = {previous_undrain};
    const task_id drain_id = wo.add_task(std::move(drain));

    std::vector<task_id> work_ids;
    auto add_work = [&](task_kind kind, int count, double minutes,
                        double error_p, point loc) {
      for (int i = 0; i < count; ++i) {
        work_task t;
        t.kind = kind;
        // The window's automated test covers every item in the window,
        // so work items share the window subject (coarse defect model).
        t.subject = str_format("window%d", w);
        t.location = loc;
        t.base_minutes = minutes;
        t.error_probability = error_p;
        t.rework_minutes = opt.rework_minutes;
        t.depends_on = {drain_id};
        work_ids.push_back(wo.add_task(std::move(t)));
      }
    };
    add_work(task_kind::pull_cable, share(plan.floor_cable_pulls, w),
             params.floor_pull_minutes, opt.pull_error_probability,
             pod_loc);
    add_work(task_kind::remove_cable, share(plan.floor_cable_removals, w),
             params.floor_remove_minutes, opt.pull_error_probability,
             spine_loc);
    add_work(task_kind::move_fiber, share(plan.jumper_moves, w),
             params.jumper_move_minutes, opt.jumper_error_probability,
             spine_loc);
    // OCS reconfigs are software: fold each window's batch into one
    // zero-error drain-scoped task.
    if (share(plan.ocs_reconfigs, w) > 0) {
      work_task t;
      t.kind = task_kind::drain;  // software step, no floor presence
      t.subject = str_format("ocs_retune_w%d", w);
      t.location = spine_loc;
      t.base_minutes = params.ocs_reconfig_minutes *
                       share(plan.ocs_reconfigs, w);
      t.depends_on = {drain_id};
      work_ids.push_back(wo.add_task(std::move(t)));
    }

    // Per-window automated test covering this window's work.
    work_task test;
    test.kind = task_kind::test_link;
    test.subject = str_format("window%d", w);
    test.location = spine_loc;
    test.base_minutes = opt.test_minutes;
    test.rework_minutes = opt.rework_minutes;
    test.depends_on = work_ids.empty() ? std::vector<task_id>{drain_id}
                                       : std::move(work_ids);
    const task_id test_id = wo.add_task(std::move(test));

    work_task undrain;
    undrain.kind = task_kind::undrain;
    undrain.subject = str_format("window%d", w);
    undrain.location = spine_loc;
    undrain.base_minutes = params.drain_window_minutes / 2.0;
    undrain.depends_on = {test_id};
    previous_undrain = wo.add_task(std::move(undrain));
    have_previous = true;
  }
  return wo;
}

}  // namespace pn
