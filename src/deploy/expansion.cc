#include "deploy/expansion.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

const char* spine_wiring_name(spine_wiring w) {
  switch (w) {
    case spine_wiring::direct:
      return "direct";
    case spine_wiring::patch_panel:
      return "patch_panel";
    case spine_wiring::ocs:
      return "ocs";
  }
  return "unknown";
}

std::vector<int> stripe_ports(int total_ports, int pods) {
  PN_CHECK(total_ports >= 0 && pods > 0);
  std::vector<int> out(static_cast<std::size_t>(pods), total_ports / pods);
  const int rem = total_ports % pods;
  for (int i = 0; i < rem; ++i) {
    ++out[static_cast<std::size_t>(i)];
  }
  return out;
}

expansion_plan plan_clos_expansion(const clos_expansion_params& p) {
  PN_CHECK(p.spine_groups > 0 && p.spines_per_group > 0);
  PN_CHECK(p.ports_per_spine > 0);
  PN_CHECK(p.from_pods > 0 && p.to_pods > p.from_pods);
  PN_CHECK(p.panel_ports > 0);

  expansion_plan out;

  const int group_ports = p.spines_per_group * p.ports_per_spine;
  PN_CHECK_MSG(p.to_pods <= group_ports,
               "more pods than spine ports per group");

  const std::vector<int> before = stripe_ports(group_ports, p.from_pods);
  const std::vector<int> after = stripe_ports(group_ports, p.to_pods);

  int rewired_per_group = 0;
  int added_per_group = 0;
  for (int pod = 0; pod < p.to_pods; ++pod) {
    const int b = pod < p.from_pods ? before[static_cast<std::size_t>(pod)]
                                    : 0;
    const int a = after[static_cast<std::size_t>(pod)];
    if (pod < p.from_pods) {
      // Existing pod: links above the new share move away.
      rewired_per_group += std::max(0, b - a);
    } else {
      added_per_group += a;
    }
  }

  out.links_rewired = rewired_per_group * p.spine_groups;
  out.links_added = added_per_group * p.spine_groups;
  // Every moved link re-attaches at a new pod, so moves cover part of the
  // new pods' needs; the remaining additions are brand-new capacity links.
  // (links_added already counts all new-pod links; rewired links satisfy
  // links_rewired of them, pulled cables cover the rest.)
  const int new_cables_needed =
      std::max(0, out.links_added - out.links_rewired);

  double minutes = 0.0;
  switch (p.wiring) {
    case spine_wiring::direct: {
      // A rewired link's cable physically runs pod<->spine: the old cable
      // cannot be reused for a different pod without re-pulling.
      out.floor_cable_pulls = out.links_added;
      if (p.leave_dead_cables) {
        out.dead_cables_left = out.links_rewired;
      } else {
        out.floor_cable_removals = out.links_rewired;
      }
      // Each spine switch whose striping changes needs one drain window.
      out.drain_windows = p.spine_groups * p.spines_per_group;
      minutes += out.floor_cable_pulls * p.floor_pull_minutes;
      minutes += out.floor_cable_removals * p.floor_remove_minutes;
      break;
    }
    case spine_wiring::patch_panel: {
      // Pod->panel cables for new pods are new pulls; all striping changes
      // are jumper moves at the panels.
      out.floor_cable_pulls = new_cables_needed;
      out.jumper_moves = out.links_rewired + out.links_added;
      const int panels_per_group =
          (2 * group_ports + p.panel_ports - 1) / p.panel_ports;
      const int total_panels = panels_per_group * p.spine_groups;
      // Jumper moves spread across the group's panels; every panel with at
      // least one move is "touched" (§5.4's locality metric).
      const int moves_per_group = out.jumper_moves / p.spine_groups;
      const int touched_per_group = std::min(panels_per_group,
                                             moves_per_group);
      out.panels_touched =
          std::min(touched_per_group * p.spine_groups, total_panels);
      out.rewired_links_per_panel =
          out.panels_touched > 0
              ? static_cast<double>(out.jumper_moves) /
                    static_cast<double>(out.panels_touched)
              : 0.0;
      // Drains are per panel being re-jumpered.
      out.drain_windows = out.panels_touched;
      minutes += out.floor_cable_pulls * p.floor_pull_minutes;
      minutes += out.jumper_moves * p.jumper_move_minutes;
      break;
    }
    case spine_wiring::ocs: {
      out.floor_cable_pulls = new_cables_needed;
      out.ocs_reconfigs = out.links_rewired + out.links_added;
      out.drain_windows = 1;  // one software-coordinated drain sweep
      minutes += out.floor_cable_pulls * p.floor_pull_minutes;
      minutes += out.ocs_reconfigs * p.ocs_reconfig_minutes;
      break;
    }
  }
  minutes += out.drain_windows * p.drain_window_minutes;
  out.labor = hours_from_minutes(minutes);
  return out;
}

deploy_scenario plan_expansion_edge_scenario(const network_graph& g,
                                             const edge_expansion_params& p) {
  PN_CHECK(p.steps > 0 && p.links_per_step > 0);
  deploy_scenario sc;
  sc.name = "expansion";
  network_graph replay = g;
  rng r(p.seed);
  const std::size_t n = replay.node_count();
  PN_CHECK_MSG(n >= 2, "expansion scenario needs at least two switches");

  for (int step = 0; step < p.steps; ++step) {
    scenario_step st;
    st.label = "expand+" + std::to_string((step + 1) * p.links_per_step);
    int attempts = 0;
    const int max_attempts = 64 * p.links_per_step;
    while (static_cast<int>(st.ops.size()) < p.links_per_step &&
           attempts < max_attempts) {
      ++attempts;
      node_id a, b;
      if (p.parallel_links) {
        // Capacity expansion: trunk up a random live adjacency.
        const auto& live = replay.live_edges();
        if (live.empty()) break;
        const edge_id e = live[r.next_index(live.size())];
        a = replay.edge(e).a;
        b = replay.edge(e).b;
      } else {
        a = node_id{r.next_index(n)};
        b = node_id{r.next_index(n)};
        if (a == b) continue;
        if (replay.has_edge_between(a, b)) continue;
      }
      if (replay.free_ports(a) <= 0 || replay.free_ports(b) <= 0) continue;
      const gbps cap{std::min(replay.node(a).port_rate.value(),
                              replay.node(b).port_rate.value())};
      const edge_id id = replay.add_edge(a, b, cap);
      st.ops.push_back(edge_op{edge_op_kind::add, id, a, b, cap});
    }
    PN_CHECK_MSG(!st.ops.empty(),
                 "no free ports left for expansion step " << step);
    sc.steps.push_back(std::move(st));
  }
  return sc;
}

}  // namespace pn
