// Failure / repair process simulator.
//
// §3.3: "network availability depends on mean time to repair (MTTR), an
// inherently physical problem," and the size of the physical unit of
// repair decides how much capacity one repair drains (a whole high-radix
// switch for one bad port). §2.2/§3.3: parts fungibility converts vendor
// stockouts from long outages into non-events. This simulator draws
// component failures from FIT rates, walks a technician to the failure,
// models spares availability, and accounts capacity-weighted downtime.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "deploy/scenario.h"
#include "physical/cabling.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/distance_cache.h"
#include "topology/graph.h"

namespace pn {

// What must be drained to repair one failed port.
enum class repair_unit {
  port,       // ideal: only the failed link drains
  line_card,  // the card's port group drains (correlated downtime, §2.1)
  chassis,    // the whole switch drains
};

[[nodiscard]] const char* repair_unit_name(repair_unit u);

struct repair_params {
  hours horizon{3.0 * 365.0 * 24.0};
  repair_unit unit = repair_unit::line_card;
  int ports_per_line_card = 8;

  // MTTR components (minutes).
  double detection_minutes = 5.0;        // automation localizes the fault
  double dispatch_minutes = 20.0;        // get a tech to the floor
  double replace_switch_minutes = 45.0;
  double replace_line_card_minutes = 25.0;
  double replace_port_minutes = 12.0;    // reseat/replace one pluggable
  double replace_cable_minutes = 35.0;
  double validate_minutes = 10.0;        // automated re-test + undrain
  double walk_speed_m_per_min = 70.0;    // depot at floor origin

  // Spares: probability the exact part is out of stock, and the resulting
  // wait. Fungible designs can substitute a compatible part immediately.
  double stockout_probability = 0.08;
  hours stockout_delay{72.0};
  bool fungible_parts = true;

  // Per-port failure rate (FIT); switch- and cable-level FITs come from
  // the catalog.
  double port_fit = 150.0;

  // Power-feed (busway segment) failures: every switch in every rack on
  // the feed goes dark at once — §3.3's concealed failure domain. Set to
  // 0 to disable.
  double feed_fit = 200.0;
  double replace_feed_minutes = 120.0;

  // On-call repair technicians. 0 = unlimited (every failure is worked
  // immediately); small crews queue concurrent failures, inflating MTTR —
  // the staffing knob behind §3.3's "availability depends on MTTR".
  int repair_technicians = 0;

  std::uint64_t seed = 1;
};

struct repair_sim_result {
  std::size_t switch_failures = 0;
  std::size_t port_failures = 0;
  std::size_t cable_failures = 0;
  std::size_t feed_failures = 0;
  hours mean_mttr{0.0};
  hours p95_mttr{0.0};
  // Capacity-weighted availability: 1 - lost Gbps-hours / total Gbps-hours.
  double availability = 1.0;
  // Failures whose drain domain (whole switch or power feed) partitioned
  // the surviving host-facing switches — repairs that did not just cost
  // capacity but cut some racks off entirely. Checked by masked BFS over
  // the evaluation's shared CSR snapshot.
  std::size_t partitioning_repairs = 0;
  // Gbps-hours drained beyond the failed element itself (the §3.3
  // correlated-downtime cost of a big unit of repair).
  double collateral_gbps_hours = 0.0;
  double lost_gbps_hours = 0.0;
  hours technician_hours{0.0};
  // Time failures spent waiting for a free technician (0 when unlimited).
  hours queueing_hours{0.0};
};

// Seeds a fresh generator from p.seed.
[[nodiscard]] repair_sim_result simulate_repairs(const network_graph& g,
                                                 const placement& pl,
                                                 const floorplan& fp,
                                                 const cabling_plan& plan,
                                                 const catalog& cat,
                                                 const repair_params& p);

// Same, drawing randomness from an injected stream (see tech_sim.h).
[[nodiscard]] repair_sim_result simulate_repairs(const network_graph& g,
                                                 const placement& pl,
                                                 const floorplan& fp,
                                                 const cabling_plan& plan,
                                                 const catalog& cat,
                                                 const repair_params& p,
                                                 rng& r);

// Same again, sharing a distance cache with the caller (the evaluator
// passes the one its topology-metrics stage already filled, so the
// reachability checks reuse that CSR snapshot instead of rebuilding).
// Results are identical across all overloads for equal seeds.
[[nodiscard]] repair_sim_result simulate_repairs(const network_graph& g,
                                                 const placement& pl,
                                                 const floorplan& fp,
                                                 const cabling_plan& plan,
                                                 const catalog& cat,
                                                 const repair_params& p,
                                                 distance_cache& dcache);

[[nodiscard]] repair_sim_result simulate_repairs(const network_graph& g,
                                                 const placement& pl,
                                                 const floorplan& fp,
                                                 const cabling_plan& plan,
                                                 const catalog& cat,
                                                 const repair_params& p,
                                                 rng& r,
                                                 distance_cache& dcache);

// ---- edge-level failure/repair scenario ---------------------------------

struct edge_repair_params {
  int steps = 16;
  int kills_per_step = 2;
  // A killed link is revived this many steps later (the MTTR analogue:
  // larger lag = more concurrently drained capacity).
  int repair_lag_steps = 2;
  std::uint64_t seed = 1;
};

// Plans a failure/repair churn scenario over `g`'s lineage: each step
// first revives the links whose repair came due, then kills
// `kills_per_step` random live links whose loss keeps the host-facing
// switches connected (a kill that would partition is skipped — that is
// an outage, not churn). Drive through run_sweep's scenario mode to
// measure evaluation under §3.3-style rolling failures.
[[nodiscard]] deploy_scenario plan_repair_edge_scenario(
    const network_graph& g, const edge_repair_params& p);

}  // namespace pn
