#include "deploy/migration.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

migration_report plan_jupiter_migration(const jupiter_fabric& from,
                                        const migration_params& p,
                                        int extra_uplinks_per_block) {
  PN_CHECK_MSG(from.params.mode == jupiter_mode::fat_tree,
               "migration source must be a fat-tree Jupiter");
  PN_CHECK(p.technicians_per_rack > 0);
  PN_CHECK(p.concurrent_drains > 0);
  PN_CHECK(extra_uplinks_per_block >= 0);

  rng r(p.seed);
  migration_report out;
  const auto fibers = ocs_fiber_counts(from);
  out.ocs_racks = static_cast<int>(fibers.size());

  std::size_t total_fibers = 0;
  std::size_t max_fibers = 0;
  for (std::size_t f : fibers) {
    total_fibers += f;
    max_fibers = std::max(max_fibers, f);
  }
  PN_CHECK_MSG(total_fibers > 0, "fabric has no OCS fibers");

  // New agg-side fibers, striped over OCSes like the originals.
  const int new_fibers_total =
      extra_uplinks_per_block * from.params.agg_blocks;
  const int new_per_ocs = new_fibers_total / out.ocs_racks;

  double total_labor_minutes = 0.0;
  std::vector<double> rack_elapsed;
  rack_elapsed.reserve(fibers.size());

  for (std::size_t k = 0; k < fibers.size(); ++k) {
    // Each fat-tree link through this OCS has one spine-side fiber to
    // disconnect; its agg-side fiber stays and is re-mapped in software.
    const int disconnects = static_cast<int>(fibers[k]);
    const int connects = new_per_ocs;
    out.fiber_disconnects += disconnects;
    out.fiber_connects += connects;

    int rework_ops = 0;
    for (int i = 0; i < disconnects + connects; ++i) {
      if (r.next_bool(p.miswire_probability)) {
        ++out.miswires_caught;
        ++rework_ops;
      }
    }

    const double hands_on =
        (disconnects + connects) * p.minutes_per_fiber_op +
        rework_ops * p.rework_minutes;
    const double rack_labor = hands_on + p.validate_minutes;
    total_labor_minutes += rack_labor;

    // Elapsed per rack: drain + parallelized hands-on + validate + undrain.
    rack_elapsed.push_back(p.drain_minutes +
                           hands_on /
                               static_cast<double>(p.technicians_per_rack) +
                           p.validate_minutes + p.undrain_minutes);
  }

  out.labor = hours_from_minutes(total_labor_minutes);
  out.labor_per_rack =
      hours_from_minutes(total_labor_minutes /
                         static_cast<double>(out.ocs_racks));

  // Calendar time: racks processed in waves of `concurrent_drains`.
  double elapsed_minutes = 0.0;
  for (std::size_t i = 0; i < rack_elapsed.size();
       i += static_cast<std::size_t>(p.concurrent_drains)) {
    double wave = 0.0;
    for (std::size_t j = i;
         j < std::min(rack_elapsed.size(),
                      i + static_cast<std::size_t>(p.concurrent_drains));
         ++j) {
      wave = std::max(wave, rack_elapsed[j]);
    }
    elapsed_minutes += wave;
  }
  out.elapsed = hours_from_minutes(elapsed_minutes);

  // Residual capacity: with c concurrent drains, worst case is the c
  // largest OCS shares out simultaneously.
  std::vector<std::size_t> sorted = fibers;
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t worst_out = 0;
  for (int i = 0; i < p.concurrent_drains &&
                  i < static_cast<int>(sorted.size());
       ++i) {
    worst_out += sorted[static_cast<std::size_t>(i)];
  }
  out.min_residual_capacity =
      1.0 - static_cast<double>(worst_out) /
                static_cast<double>(total_fibers);
  return out;
}

deploy_scenario plan_migration_edge_scenario(const network_graph& g,
                                             const edge_migration_params& p) {
  PN_CHECK(p.steps > 0 && p.moves_per_step > 0);
  deploy_scenario sc;
  sc.name = "migration";
  network_graph replay = g;
  rng r(p.seed);
  const std::size_t n = replay.node_count();
  PN_CHECK_MSG(n >= 3, "migration scenario needs at least three switches");

  for (int step = 0; step < p.steps; ++step) {
    scenario_step st;
    st.label = "migrate_step=" + std::to_string(step);
    int moved = 0;
    int attempts = 0;
    const int max_attempts = 64 * p.moves_per_step;
    while (moved < p.moves_per_step && attempts < max_attempts) {
      ++attempts;
      const std::vector<edge_id> live = replay.live_edges();
      if (live.empty()) break;
      const edge_id e = live[r.next_index(live.size())];
      const edge_info info = replay.edge(e);  // copy: edge() ref may move
      // The surviving endpoint keeps the fiber; the far end moves.
      const node_id keep = r.next_bool(0.5) ? info.a : info.b;
      replay.remove_edge(e);
      if (!hosts_connected(replay)) {
        replay.revive_edge(e);
        continue;
      }
      // Land the replacement on a random new peer with a free port.
      node_id peer;
      for (int t = 0; t < 32; ++t) {
        const node_id c{r.next_index(n)};
        if (c == keep || replay.free_ports(c) <= 0 ||
            replay.has_edge_between(keep, c)) {
          continue;
        }
        peer = c;
        break;
      }
      if (!peer.valid()) {
        replay.revive_edge(e);  // nowhere to land: undo the drain
        continue;
      }
      const edge_id added = replay.add_edge(keep, peer, info.capacity);
      st.ops.push_back(
          edge_op{edge_op_kind::kill, e, info.a, info.b, info.capacity});
      st.ops.push_back(
          edge_op{edge_op_kind::add, added, keep, peer, info.capacity});
      ++moved;
    }
    PN_CHECK_MSG(!st.ops.empty(),
                 "migration scenario step " << step << " found no movable "
                                            << "links");
    sc.steps.push_back(std::move(st));
  }
  return sc;
}

}  // namespace pn
