#include "deploy/degradation.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "topology/metrics.h"
#include "topology/routing.h"

namespace pn {

degradation_report analyze_degradation(const network_graph& g,
                                       const traffic_matrix& tm,
                                       const degradation_params& p) {
  PN_CHECK(p.samples > 0);
  PN_CHECK(p.concurrent_switch_failures >= 0);
  PN_CHECK(p.concurrent_link_failures >= 0);
  PN_CHECK(p.concurrent_switch_failures <
           static_cast<int>(g.node_count()));

  const double baseline = ecmp_throughput(g, tm).alpha;
  PN_CHECK_MSG(baseline > 0.0, "baseline fabric carries no traffic");

  rng r(p.seed);
  degradation_report out;
  double retention_sum = 0.0;
  int connected_samples = 0;
  int partitions = 0;

  for (int s = 0; s < p.samples; ++s) {
    network_graph degraded = g;

    // Fail switches: remove every incident link.
    std::vector<std::size_t> switches(g.node_count());
    for (std::size_t i = 0; i < switches.size(); ++i) switches[i] = i;
    r.shuffle(switches);
    std::vector<bool> failed_switch(g.node_count(), false);
    for (int f = 0; f < p.concurrent_switch_failures; ++f) {
      const node_id victim{switches[static_cast<std::size_t>(f)]};
      failed_switch[victim.index()] = true;
      // Copy the adjacency list: removal mutates it.
      std::vector<edge_id> incident;
      for (const auto& adj : degraded.neighbors(victim)) {
        incident.push_back(adj.edge);
      }
      for (edge_id e : incident) {
        if (degraded.edge_alive(e)) degraded.remove_edge(e);
      }
    }

    // Fail additional random links.
    for (int f = 0; f < p.concurrent_link_failures; ++f) {
      const auto live = degraded.live_edges();
      if (live.empty()) break;
      degraded.remove_edge(live[r.next_index(live.size())]);
    }

    // Surviving demand: drop flows touching failed switches.
    traffic_matrix surviving(tm.endpoints());
    const auto& eps = tm.endpoints();
    double surviving_demand = 0.0;
    for (std::size_t a = 0; a < eps.size(); ++a) {
      if (failed_switch[eps[a].index()]) continue;
      for (std::size_t b = 0; b < eps.size(); ++b) {
        if (a == b || failed_switch[eps[b].index()]) continue;
        const double d = tm.demand(a, b);
        if (d > 0.0) {
          surviving.set_demand(a, b, d);
          surviving_demand += d;
        }
      }
    }
    if (surviving_demand <= 0.0) {
      ++partitions;  // nothing left to carry: count as a dead sample
      continue;
    }

    // Check reachability of every surviving demand pair.
    bool partitioned = false;
    for (std::size_t a = 0; a < eps.size() && !partitioned; ++a) {
      if (failed_switch[eps[a].index()]) continue;
      bool sources_from_a = false;
      for (std::size_t b = 0; b < eps.size(); ++b) {
        if (surviving.demand(a, b) > 0.0) {
          sources_from_a = true;
          break;
        }
      }
      if (!sources_from_a) continue;
      const auto dist = bfs_distances(degraded, eps[a]);
      for (std::size_t b = 0; b < eps.size(); ++b) {
        if (surviving.demand(a, b) > 0.0 && dist[eps[b].index()] < 0) {
          partitioned = true;
          break;
        }
      }
    }
    if (partitioned) {
      ++partitions;
      continue;
    }

    const double alpha = ecmp_throughput(degraded, surviving).alpha;
    const double retention = std::min(1.0, alpha / baseline);
    retention_sum += retention;
    out.worst_capacity_retention =
        std::min(out.worst_capacity_retention, retention);
    ++connected_samples;
  }

  out.samples_evaluated = p.samples;
  out.partition_probability =
      static_cast<double>(partitions) / static_cast<double>(p.samples);
  out.mean_capacity_retention =
      connected_samples > 0
          ? retention_sum / static_cast<double>(connected_samples)
          : 0.0;
  if (connected_samples == 0) out.worst_capacity_retention = 0.0;
  return out;
}

}  // namespace pn
