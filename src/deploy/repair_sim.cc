#include "deploy/repair_sim.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pn {

const char* repair_unit_name(repair_unit u) {
  switch (u) {
    case repair_unit::port:
      return "port";
    case repair_unit::line_card:
      return "line_card";
    case repair_unit::chassis:
      return "chassis";
  }
  return "unknown";
}

namespace {

// Poisson arrivals over the horizon for one component.
template <typename OnFailure>
void draw_failures(rng& r, double fit, hours horizon, OnFailure&& on_failure) {
  if (fit <= 0.0) return;
  const double rate_per_hour = fit * 1e-9;
  double t = r.next_exponential(1.0 / rate_per_hour);
  while (t < horizon.value()) {
    on_failure(t);
    t += r.next_exponential(1.0 / rate_per_hour);
  }
}

struct repair_event {
  double time_h = 0.0;       // failure instant
  double replace_minutes = 0.0;
  double stock_hours = 0.0;  // supply-chain delay (drawn at failure time)
  point where;
  double drained_gbps = 0.0;
  double failed_gbps = 0.0;
};

}  // namespace

repair_sim_result simulate_repairs(const network_graph& g,
                                   const placement& pl, const floorplan& fp,
                                   const cabling_plan& plan,
                                   const catalog& cat,
                                   const repair_params& p) {
  rng r(p.seed);
  distance_cache dcache(g);
  return simulate_repairs(g, pl, fp, plan, cat, p, r, dcache);
}

repair_sim_result simulate_repairs(const network_graph& g,
                                   const placement& pl, const floorplan& fp,
                                   const cabling_plan& plan,
                                   const catalog& cat,
                                   const repair_params& p, rng& r) {
  distance_cache dcache(g);
  return simulate_repairs(g, pl, fp, plan, cat, p, r, dcache);
}

repair_sim_result simulate_repairs(const network_graph& g,
                                   const placement& pl, const floorplan& fp,
                                   const cabling_plan& plan,
                                   const catalog& cat,
                                   const repair_params& p,
                                   distance_cache& dcache) {
  rng r(p.seed);
  return simulate_repairs(g, pl, fp, plan, cat, p, r, dcache);
}

repair_sim_result simulate_repairs(const network_graph& g,
                                   const placement& pl, const floorplan& fp,
                                   const cabling_plan& plan,
                                   const catalog& cat,
                                   const repair_params& p, rng& r,
                                   distance_cache& dcache) {
  PN_CHECK(p.horizon.value() > 0.0);
  PN_CHECK(p.repair_technicians >= 0);
  repair_sim_result out;

  // Incident link capacity per node (what a chassis drain takes out).
  std::vector<double> incident_gbps(g.node_count(), 0.0);
  double total_gbps = 0.0;
  for (edge_id e : g.live_edges()) {
    const edge_info& info = g.edge(e);
    incident_gbps[info.a.index()] += info.capacity.value();
    incident_gbps[info.b.index()] += info.capacity.value();
    total_gbps += info.capacity.value();
  }
  PN_CHECK_MSG(total_gbps > 0.0, "graph has no link capacity");

  // Post-drain reachability: does taking a drain domain (a whole switch,
  // or every switch on a power feed) out of the fabric leave any two
  // surviving host-facing switches disconnected? Checked by masked BFS
  // over the shared CSR snapshot; the answer depends only on the domain,
  // so it is memoized per node and computed once per feed. Draws no
  // randomness — results of the other counters are unaffected.
  const csr_graph& csr = dcache.csr();
  const std::vector<node_id> host_facing = g.host_facing_nodes();
  bfs_workspace reach_ws;
  std::vector<int> reach_dist;
  std::vector<std::uint8_t> node_mask(g.node_count(), 0);
  std::vector<signed char> node_partitions(g.node_count(), -1);

  const auto mask_partitions =
      [&](const std::vector<std::uint8_t>& mask) -> bool {
    node_id start;
    for (node_id h : host_facing) {
      if (mask[h.index()] == 0) {
        start = h;
        break;
      }
    }
    if (!start.valid()) return false;  // no survivors to disconnect
    reach_ws.distances_masked(csr, static_cast<std::uint32_t>(start.index()),
                              mask, reach_dist);
    for (node_id h : host_facing) {
      if (mask[h.index()] == 0 && reach_dist[h.index()] < 0) return true;
    }
    return false;
  };
  const auto node_drain_partitions = [&](std::size_t i) -> bool {
    if (node_partitions[i] < 0) {
      node_mask[i] = 1;
      node_partitions[i] = mask_partitions(node_mask) ? 1 : 0;
      node_mask[i] = 0;
    }
    return node_partitions[i] == 1;
  };

  std::vector<repair_event> events;
  auto enqueue = [&](double t, double replace_minutes, point where,
                     double drained, double failed) {
    repair_event ev;
    ev.time_h = t;
    ev.replace_minutes = replace_minutes;
    if (!p.fungible_parts && r.next_bool(p.stockout_probability)) {
      ev.stock_hours = p.stockout_delay.value();
    }
    ev.where = where;
    ev.drained_gbps = drained;
    ev.failed_gbps = failed;
    events.push_back(ev);
  };

  const double switch_fit = cat.switches().fit;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_id n{i};
    const node_info& info = g.node(n);
    const point where = fp.rack_at(pl.rack_of(n)).position;

    // Whole-switch failures: everything incident drains regardless of the
    // repair unit.
    draw_failures(r, switch_fit, p.horizon, [&](double t) {
      ++out.switch_failures;
      if (node_drain_partitions(i)) ++out.partitioning_repairs;
      enqueue(t, p.replace_switch_minutes, where, incident_gbps[i],
              incident_gbps[i]);
    });

    // Per-port failures: the repair unit decides the drain domain.
    const double all_ports_fit =
        p.port_fit * static_cast<double>(info.radix);
    draw_failures(r, all_ports_fit, p.horizon, [&](double t) {
      ++out.port_failures;
      const double per_port_gbps =
          static_cast<double>(g.degree(n)) > 0
              ? incident_gbps[i] / static_cast<double>(g.degree(n))
              : 0.0;
      double drained = per_port_gbps;
      double replace = p.replace_port_minutes;
      switch (p.unit) {
        case repair_unit::port:
          break;
        case repair_unit::line_card:
          drained = std::min(incident_gbps[i],
                             per_port_gbps *
                                 static_cast<double>(p.ports_per_line_card));
          replace = p.replace_line_card_minutes;
          break;
        case repair_unit::chassis:
          drained = incident_gbps[i];
          replace = p.replace_switch_minutes;
          if (node_drain_partitions(i)) ++out.partitioning_repairs;
          break;
      }
      enqueue(t, replace, where, drained, per_port_gbps);
    });
  }

  // Cable failures (cable FIT + 2x transceiver FIT where applicable).
  for (const cable_run& run : plan.runs) {
    const edge_info& info = g.edge(run.edge);
    double fit = run.choice.cable->fit;
    if (run.choice.transceiver != nullptr) {
      fit += 2.0 * run.choice.transceiver->fit;
    }
    const point where = fp.rack_at(run.rack_a).position;
    draw_failures(r, fit, p.horizon, [&](double t) {
      ++out.cable_failures;
      enqueue(t, p.replace_cable_minutes, where, info.capacity.value(),
              info.capacity.value());
    });
  }

  // Power-feed failures: the whole busway segment's switches drain.
  if (p.feed_fit > 0.0) {
    for (int feed = 0; feed < fp.feed_count(); ++feed) {
      double feed_gbps = 0.0;
      point where{0.0, 0.0};
      bool any = false;
      std::vector<std::uint8_t> on_feed(g.node_count(), 0);
      for (rack_id rk : fp.racks_on_feed(feed)) {
        for (node_id n : pl.nodes_in(rk)) {
          on_feed[n.index()] = 1;
        }
        where = fp.rack_at(rk).position;
      }
      for (edge_id e : g.live_edges()) {
        const edge_info& info = g.edge(e);
        if (on_feed[info.a.index()] != 0 || on_feed[info.b.index()] != 0) {
          feed_gbps += info.capacity.value();
          any = true;
        }
      }
      if (!any) continue;
      const bool feed_partitions = mask_partitions(on_feed);
      draw_failures(r, p.feed_fit, p.horizon, [&](double t) {
        ++out.feed_failures;
        if (feed_partitions) ++out.partitioning_repairs;
        enqueue(t, p.replace_feed_minutes, where, feed_gbps, 0.0);
      });
    }
  }

  // Work the failures in arrival order, optionally through a finite
  // repair crew: a busy crew means failures wait, and waiting is
  // capacity-down time.
  std::stable_sort(events.begin(), events.end(),
                   [](const repair_event& a, const repair_event& b) {
                     return a.time_h < b.time_h;
                   });
  // Min-heap of technician next-free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> crew;
  for (int i = 0; i < p.repair_technicians; ++i) {
    crew.push(0.0);
  }

  sample_stats mttr_samples;
  for (const repair_event& ev : events) {
    const double walk =
        2.0 * manhattan_distance(point{0.0, 0.0}, ev.where).value() /
        p.walk_speed_m_per_min;
    const double hands_on_h =
        (p.dispatch_minutes + walk + ev.replace_minutes +
         p.validate_minutes) /
        60.0;
    const double ready_at = ev.time_h + p.detection_minutes / 60.0;

    double waiting = 0.0;
    if (p.repair_technicians > 0) {
      const double free_at = crew.top();
      crew.pop();
      const double start = std::max(ready_at, free_at);
      waiting = start - ready_at;
      crew.push(start + hands_on_h);
    }

    const double mttr = p.detection_minutes / 60.0 + waiting +
                        ev.stock_hours + hands_on_h;
    mttr_samples.add(mttr);
    out.lost_gbps_hours += ev.drained_gbps * mttr;
    out.collateral_gbps_hours +=
        std::max(0.0, ev.drained_gbps - ev.failed_gbps) * mttr;
    out.technician_hours += hours{hands_on_h};
    out.queueing_hours += hours{waiting};
  }

  if (!mttr_samples.empty()) {
    out.mean_mttr = hours{mttr_samples.mean()};
    out.p95_mttr = hours{mttr_samples.percentile(0.95)};
  }
  out.availability =
      1.0 - out.lost_gbps_hours / (total_gbps * p.horizon.value());
  return out;
}

deploy_scenario plan_repair_edge_scenario(const network_graph& g,
                                          const edge_repair_params& p) {
  PN_CHECK(p.steps > 0 && p.kills_per_step > 0 && p.repair_lag_steps >= 1);
  deploy_scenario sc;
  sc.name = "repair";
  network_graph replay = g;
  rng r(p.seed);
  // (step index at which the repair lands, edge), FIFO by kill order.
  std::deque<std::pair<int, edge_id>> outstanding;

  for (int step = 0; step < p.steps; ++step) {
    scenario_step st;
    st.label = "repair_step=" + std::to_string(step);

    while (!outstanding.empty() && outstanding.front().first <= step) {
      const edge_id e = outstanding.front().second;
      outstanding.pop_front();
      replay.revive_edge(e);
      const edge_info& info = replay.edge(e);
      st.ops.push_back(
          edge_op{edge_op_kind::revive, e, info.a, info.b, info.capacity});
    }

    const std::vector<edge_id> live = replay.live_edges();
    int killed = 0;
    int attempts = 0;
    const int max_attempts = 64 * p.kills_per_step;
    while (killed < p.kills_per_step && attempts < max_attempts &&
           !live.empty()) {
      ++attempts;
      const edge_id e = live[r.next_index(live.size())];
      if (!replay.edge_alive(e)) continue;  // killed earlier this step
      replay.remove_edge(e);
      if (!hosts_connected(replay)) {
        replay.revive_edge(e);  // would partition: not a survivable failure
        continue;
      }
      const edge_info& info = replay.edge(e);
      st.ops.push_back(
          edge_op{edge_op_kind::kill, e, info.a, info.b, info.capacity});
      outstanding.emplace_back(step + p.repair_lag_steps, e);
      ++killed;
    }
    PN_CHECK_MSG(!st.ops.empty(),
                 "repair scenario step " << step << " found no survivable "
                                         << "failures");
    sc.steps.push_back(std::move(st));
  }
  return sc;
}

}  // namespace pn
