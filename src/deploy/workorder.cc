#include "deploy/workorder.h"

#include <queue>

#include "common/check.h"

namespace pn {

const char* task_kind_name(task_kind k) {
  switch (k) {
    case task_kind::position_rack:
      return "position_rack";
    case task_kind::mount_switch:
      return "mount_switch";
    case task_kind::pull_bundle:
      return "pull_bundle";
    case task_kind::pull_cable:
      return "pull_cable";
    case task_kind::connect_port:
      return "connect_port";
    case task_kind::test_link:
      return "test_link";
    case task_kind::drain:
      return "drain";
    case task_kind::undrain:
      return "undrain";
    case task_kind::move_fiber:
      return "move_fiber";
    case task_kind::remove_cable:
      return "remove_cable";
    case task_kind::remove_switch:
      return "remove_switch";
  }
  return "unknown";
}

task_id work_order::add_task(work_task t) {
  t.id = task_id{tasks_.size()};
  for (task_id dep : t.depends_on) {
    PN_CHECK_MSG(dep.index() < tasks_.size(),
                 "dependency on not-yet-added task");
  }
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

void work_order::add_dependency(task_id task, task_id prerequisite) {
  PN_CHECK(task.index() < tasks_.size());
  PN_CHECK(prerequisite.index() < tasks_.size());
  tasks_[task.index()].depends_on.push_back(prerequisite);
}

const work_task& work_order::task(task_id t) const {
  PN_CHECK(t.index() < tasks_.size());
  return tasks_[t.index()];
}

double work_order::total_base_minutes() const {
  double total = 0.0;
  for (const work_task& t : tasks_) total += t.base_minutes;
  return total;
}

result<std::vector<task_id>> work_order::topological_order() const {
  std::vector<int> indegree(tasks_.size(), 0);
  std::vector<std::vector<task_id>> dependents(tasks_.size());
  for (const work_task& t : tasks_) {
    for (task_id dep : t.depends_on) {
      ++indegree[t.id.index()];
      dependents[dep.index()].push_back(t.id);
    }
  }
  std::queue<task_id> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push(task_id{i});
  }
  std::vector<task_id> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const task_id t = ready.front();
    ready.pop();
    order.push_back(t);
    for (task_id d : dependents[t.index()]) {
      if (--indegree[d.index()] == 0) ready.push(d);
    }
  }
  if (order.size() != tasks_.size()) {
    return invalid_argument_error("work order dependency graph has a cycle");
  }
  return order;
}

}  // namespace pn
