// Decommissioning planners (§2.1).
//
// "It is surprisingly hard to automate a decom procedure, because it can
// be hard to know for sure what cannot be removed." Two planners over the
// digital twin: a naive one that removes equipment in request order (what
// an operator without a twin might schedule), and a safe one that derives
// the dependency-respecting order from the twin's relations. E10 replays
// both through the dry-run engine: the naive plan's violations are
// exactly the outages a twin-less decom risks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/scenario.h"
#include "twin/dryrun.h"
#include "twin/model.h"

namespace pn {

// Decommission the named switches. The naive plan issues remove_entity
// for each switch immediately, then cleans up cables — which the twin
// rejects because live cables still terminate on the switch (and in the
// physical world would have yanked in-service links).
[[nodiscard]] std::vector<twin_op> naive_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names);

// The safe plan: for each switch, first remove every cable terminating on
// it (relation removals then entity removal), skipping cables whose other
// end is NOT being decommissioned and is still carrying service — those
// must be drained; the plan marks the peer switch drained first.
[[nodiscard]] std::vector<twin_op> safe_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names);

// Cables that cannot be removed yet because an endpoint outside the decom
// set still serves traffic (§2.1's "we can only remove a cable bundle
// once none of the affected ports are still in service").
[[nodiscard]] std::vector<std::string> blocking_cables(
    const twin_model& m, const std::vector<std::string>& switch_names);

// ---- edge-level decommission scenario -----------------------------------

struct edge_decom_params {
  int switches = 2;        // non-host-facing switches to retire
  int links_per_step = 4;  // incident links drained per step
  std::uint64_t seed = 1;
};

// Plans the graph-level side of a decommission over `g`'s lineage:
// retires `switches` random non-host-facing switches by draining their
// incident links `links_per_step` at a time, in ascending edge-id order.
// A link whose removal would cut host-facing switches off is skipped —
// the §2.1 "cannot be removed yet" case blocking_cables() reports at the
// twin level. Drive through run_sweep's scenario mode.
[[nodiscard]] deploy_scenario plan_decom_edge_scenario(
    const network_graph& g, const edge_decom_params& p);

}  // namespace pn
