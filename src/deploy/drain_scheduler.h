// Drain-window scheduling (§4.3).
//
// "An SDN control plane can do more than update flow tables; it can also
// coordinate between demand forecasts, availability requirements, manual
// operations segmented into low-impact chunks, the necessary drains /
// undrains, and automated testing." Given a set of maintenance items —
// each draining some fraction of fabric capacity for some duration — and
// an availability floor, the scheduler packs items into concurrent waves
// so the floor is never violated, technicians are never oversubscribed,
// and calendar time is minimized (greedy longest-first packing).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace pn {

struct drain_item {
  std::string name;
  // Fraction of fabric capacity unavailable while this item is open.
  double capacity_share = 0.0;
  hours duration{1.0};
  int technicians_needed = 1;
};

struct drain_schedule_params {
  // The availability floor: total concurrently drained share must stay
  // at or below 1 - floor.
  double capacity_floor = 0.75;
  int technicians_available = 4;
};

struct drain_wave {
  std::vector<std::size_t> items;  // indices into the input
  hours duration{0.0};             // longest item in the wave
  double drained_share = 0.0;
  int technicians_used = 0;
};

struct drain_schedule {
  std::vector<drain_wave> waves;
  hours makespan{0.0};
  // The worst concurrent drained share across waves (<= 1 - floor).
  double peak_drained_share = 0.0;
};

// Fails with infeasible if any single item alone violates the floor or
// needs more technicians than exist.
[[nodiscard]] result<drain_schedule> schedule_drains(
    const std::vector<drain_item>& items, const drain_schedule_params& p);

}  // namespace pn
