// Work orders: the unit of physical deployment labor.
//
// §2: large-scale physical processes are "managed by complex automation
// systems, which plan the placement and connectivity ... order the correct
// materials ... instruct the humans or robots where and when to place and
// connect equipment; and validate that everything is in its proper place."
// A work_order is that plan: a DAG of located, timed tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "geom/point.h"

namespace pn {

enum class task_kind : std::uint8_t {
  position_rack,    // roll a rack into place
  mount_switch,     // rack a switch, power it, load firmware
  pull_bundle,      // land one pre-built cable bundle between two racks
  pull_cable,       // pull one loose inter-rack cable
  connect_port,     // seat one connector (both ends of an intra-rack cable
                    // or one end of an inter-rack run)
  test_link,        // automated validation of one link
  drain,            // software drain (no on-floor time, blocks others)
  undrain,
  move_fiber,       // re-patch one fiber at a panel/OCS (§4.3)
  remove_cable,
  remove_switch,
};

[[nodiscard]] const char* task_kind_name(task_kind k);

struct work_task {
  task_id id;
  task_kind kind = task_kind::connect_port;
  std::string subject;           // what is being acted on
  point location;                // where the technician must stand
  double base_minutes = 0.0;     // hands-on time, excluding walking
  // A defect introduced with this probability (wrong port, damaged
  // connector, ...) — discovered by a later test_link covering the same
  // subject, forcing rework. Only meaningful for manual task kinds.
  double error_probability = 0.0;
  // Rework cost if this task's defect is caught.
  double rework_minutes = 0.0;
  std::vector<task_id> depends_on;
};

class work_order {
 public:
  task_id add_task(work_task t);
  // Convenience: add a dependency after creation.
  void add_dependency(task_id task, task_id prerequisite);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] const work_task& task(task_id t) const;
  [[nodiscard]] const std::vector<work_task>& tasks() const { return tasks_; }

  // Total hands-on minutes, ignoring parallelism and walking — the naive
  // lower bound on labor.
  [[nodiscard]] double total_base_minutes() const;

  // Tasks in a topological order; fails if the DAG has a cycle.
  [[nodiscard]] result<std::vector<task_id>> topological_order() const;

 private:
  std::vector<work_task> tasks_;
};

}  // namespace pn
