#include "deploy/scenario.h"

#include <queue>

#include "common/check.h"

namespace pn {

const char* edge_op_kind_name(edge_op_kind k) {
  switch (k) {
    case edge_op_kind::add:
      return "add";
    case edge_op_kind::kill:
      return "kill";
    case edge_op_kind::revive:
      return "revive";
  }
  return "unknown";
}

std::size_t deploy_scenario::op_count() const {
  std::size_t n = 0;
  for (const scenario_step& s : steps) n += s.ops.size();
  return n;
}

void apply_scenario_step(network_graph& g, const scenario_step& step) {
  for (const edge_op& op : step.ops) {
    switch (op.kind) {
      case edge_op_kind::add: {
        const edge_id assigned = g.add_edge(op.a, op.b, op.capacity);
        PN_CHECK_MSG(assigned == op.edge,
                     "scenario add assigned edge "
                         << assigned.value() << ", planned "
                         << op.edge.value()
                         << " — scenario applied to a foreign lineage");
        break;
      }
      case edge_op_kind::kill:
        g.remove_edge(op.edge);
        break;
      case edge_op_kind::revive:
        g.revive_edge(op.edge);
        break;
    }
  }
}

bool hosts_connected(const network_graph& g) {
  const std::vector<node_id> hosts = g.host_facing_nodes();
  if (hosts.size() < 2) return true;
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  std::queue<node_id> q;
  seen[hosts.front().index()] = 1;
  q.push(hosts.front());
  while (!q.empty()) {
    const node_id u = q.front();
    q.pop();
    for (const auto& e : g.neighbors(u)) {
      if (seen[e.neighbor.index()] == 0) {
        seen[e.neighbor.index()] = 1;
        q.push(e.neighbor);
      }
    }
  }
  for (const node_id h : hosts) {
    if (seen[h.index()] == 0) return false;
  }
  return true;
}

}  // namespace pn
