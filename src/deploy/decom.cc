#include "deploy/decom.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

namespace {

// Cables terminating on a switch entity.
std::vector<entity_id> cables_on(const twin_model& m, entity_id sw) {
  return m.related_in(sw, "terminates_on");
}

std::set<entity_id> resolve_switches(
    const twin_model& m, const std::vector<std::string>& names) {
  std::set<entity_id> out;
  for (const std::string& n : names) {
    const auto e = m.find("switch", n);
    PN_CHECK_MSG(e.has_value(), "no live switch named " << n);
    out.insert(*e);
  }
  return out;
}

}  // namespace

std::vector<twin_op> naive_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  // Remove switches first, cables afterwards: the ordering a spreadsheet-
  // driven decom tends to produce (per-asset, not per-dependency).
  std::vector<twin_op> plan;
  const auto switches = resolve_switches(m, switch_names);
  for (entity_id sw : switches) {
    plan.push_back(op_remove_entity("switch", m.entity(sw).name,
                                    "decom switch " + m.entity(sw).name));
  }
  std::set<entity_id> seen;
  for (entity_id sw : switches) {
    for (entity_id c : cables_on(m, sw)) {
      if (!seen.insert(c).second) continue;
      plan.push_back(op_remove_entity("cable", m.entity(c).name,
                                      "pull cable " + m.entity(c).name));
    }
  }
  return plan;
}

std::vector<std::string> blocking_cables(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  const auto switches = resolve_switches(m, switch_names);
  std::vector<std::string> out;
  std::set<entity_id> seen;
  for (entity_id sw : switches) {
    for (entity_id c : cables_on(m, sw)) {
      if (!seen.insert(c).second) continue;
      for (entity_id peer : m.related(c, "terminates_on")) {
        if (!switches.contains(peer)) {
          // Peer stays in service: this cable needs a drain first.
          out.push_back(m.entity(c).name);
          break;
        }
      }
    }
  }
  return out;
}

std::vector<twin_op> safe_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  const auto switches = resolve_switches(m, switch_names);
  std::vector<twin_op> plan;
  std::set<entity_id> handled_cables;

  for (entity_id sw : switches) {
    const std::string& sw_name = m.entity(sw).name;
    for (entity_id c : cables_on(m, sw)) {
      if (!handled_cables.insert(c).second) continue;
      const std::string& cable_name = m.entity(c).name;
      // Drain any still-in-service peer port before touching the cable.
      for (entity_id peer : m.related(c, "terminates_on")) {
        if (!switches.contains(peer)) {
          plan.push_back(op_set_attr("switch", m.entity(peer).name,
                                     "drained", true,
                                     "drain peer port on " +
                                         m.entity(peer).name));
        }
      }
      // Detach both ends, then remove the cable entity.
      for (entity_id peer : m.related(c, "terminates_on")) {
        plan.push_back(op_remove_relation(
            "terminates_on", "cable", cable_name, "switch",
            m.entity(peer).name,
            "disconnect " + cable_name + " from " + m.entity(peer).name));
      }
      plan.push_back(
          op_remove_entity("cable", cable_name, "pull cable " + cable_name));
    }
    // Unplace and remove the switch itself.
    for (entity_id rk : m.related(sw, "placed_in")) {
      plan.push_back(op_remove_relation("placed_in", "switch", sw_name,
                                        "rack", m.entity(rk).name,
                                        "unrack " + sw_name));
    }
    plan.push_back(
        op_remove_entity("switch", sw_name, "decom switch " + sw_name));
  }
  return plan;
}

deploy_scenario plan_decom_edge_scenario(const network_graph& g,
                                         const edge_decom_params& p) {
  PN_CHECK(p.switches > 0 && p.links_per_step > 0);
  deploy_scenario sc;
  sc.name = "decom";
  network_graph replay = g;
  rng r(p.seed);

  // Retire only non-host-facing switches: decommissioning a ToR retires
  // its servers, which is a different (capacity-planning) decision.
  std::vector<std::uint8_t> host_facing(replay.node_count(), 0);
  for (const node_id h : replay.host_facing_nodes()) {
    host_facing[h.index()] = 1;
  }
  std::vector<node_id> candidates;
  for (std::size_t i = 0; i < replay.node_count(); ++i) {
    if (host_facing[i] == 0) candidates.push_back(node_id{i});
  }
  PN_CHECK_MSG(!candidates.empty(),
               "no non-host-facing switches to decommission");
  r.shuffle(candidates);
  const std::size_t retire =
      std::min(static_cast<std::size_t>(p.switches), candidates.size());
  std::vector<std::uint8_t> retiring(replay.node_count(), 0);
  for (std::size_t i = 0; i < retire; ++i) {
    retiring[candidates[i].index()] = 1;
  }

  // Incident live links, ascending edge id (live_edges() order).
  std::vector<edge_id> targets;
  for (const edge_id e : replay.live_edges()) {
    const edge_info& info = replay.edge(e);
    if (retiring[info.a.index()] != 0 || retiring[info.b.index()] != 0) {
      targets.push_back(e);
    }
  }

  scenario_step st;
  int step_index = 0;
  const auto flush = [&] {
    if (st.ops.empty()) return;
    st.label = "decom_step=" + std::to_string(step_index++);
    sc.steps.push_back(std::move(st));
    st = scenario_step{};
  };
  for (const edge_id e : targets) {
    replay.remove_edge(e);
    if (!hosts_connected(replay)) {
      replay.revive_edge(e);  // blocked: an endpoint still carries service
      continue;
    }
    const edge_info& info = replay.edge(e);
    st.ops.push_back(
        edge_op{edge_op_kind::kill, e, info.a, info.b, info.capacity});
    if (static_cast<int>(st.ops.size()) >= p.links_per_step) flush();
  }
  flush();
  PN_CHECK_MSG(!sc.steps.empty(), "decommission drained no links");
  return sc;
}

}  // namespace pn
