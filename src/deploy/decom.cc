#include "deploy/decom.h"

#include <set>

#include "common/check.h"

namespace pn {

namespace {

// Cables terminating on a switch entity.
std::vector<entity_id> cables_on(const twin_model& m, entity_id sw) {
  return m.related_in(sw, "terminates_on");
}

std::set<entity_id> resolve_switches(
    const twin_model& m, const std::vector<std::string>& names) {
  std::set<entity_id> out;
  for (const std::string& n : names) {
    const auto e = m.find("switch", n);
    PN_CHECK_MSG(e.has_value(), "no live switch named " << n);
    out.insert(*e);
  }
  return out;
}

}  // namespace

std::vector<twin_op> naive_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  // Remove switches first, cables afterwards: the ordering a spreadsheet-
  // driven decom tends to produce (per-asset, not per-dependency).
  std::vector<twin_op> plan;
  const auto switches = resolve_switches(m, switch_names);
  for (entity_id sw : switches) {
    plan.push_back(op_remove_entity("switch", m.entity(sw).name,
                                    "decom switch " + m.entity(sw).name));
  }
  std::set<entity_id> seen;
  for (entity_id sw : switches) {
    for (entity_id c : cables_on(m, sw)) {
      if (!seen.insert(c).second) continue;
      plan.push_back(op_remove_entity("cable", m.entity(c).name,
                                      "pull cable " + m.entity(c).name));
    }
  }
  return plan;
}

std::vector<std::string> blocking_cables(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  const auto switches = resolve_switches(m, switch_names);
  std::vector<std::string> out;
  std::set<entity_id> seen;
  for (entity_id sw : switches) {
    for (entity_id c : cables_on(m, sw)) {
      if (!seen.insert(c).second) continue;
      for (entity_id peer : m.related(c, "terminates_on")) {
        if (!switches.contains(peer)) {
          // Peer stays in service: this cable needs a drain first.
          out.push_back(m.entity(c).name);
          break;
        }
      }
    }
  }
  return out;
}

std::vector<twin_op> safe_decom_plan(
    const twin_model& m, const std::vector<std::string>& switch_names) {
  const auto switches = resolve_switches(m, switch_names);
  std::vector<twin_op> plan;
  std::set<entity_id> handled_cables;

  for (entity_id sw : switches) {
    const std::string& sw_name = m.entity(sw).name;
    for (entity_id c : cables_on(m, sw)) {
      if (!handled_cables.insert(c).second) continue;
      const std::string& cable_name = m.entity(c).name;
      // Drain any still-in-service peer port before touching the cable.
      for (entity_id peer : m.related(c, "terminates_on")) {
        if (!switches.contains(peer)) {
          plan.push_back(op_set_attr("switch", m.entity(peer).name,
                                     "drained", true,
                                     "drain peer port on " +
                                         m.entity(peer).name));
        }
      }
      // Detach both ends, then remove the cable entity.
      for (entity_id peer : m.related(c, "terminates_on")) {
        plan.push_back(op_remove_relation(
            "terminates_on", "cable", cable_name, "switch",
            m.entity(peer).name,
            "disconnect " + cable_name + " from " + m.entity(peer).name));
      }
      plan.push_back(
          op_remove_entity("cable", cable_name, "pull cable " + cable_name));
    }
    // Unplace and remove the switch itself.
    for (entity_id rk : m.related(sw, "placed_in")) {
      plan.push_back(op_remove_relation("placed_in", "switch", sw_name,
                                        "rack", m.entity(rk).name,
                                        "unrack " + sw_name));
    }
    plan.push_back(
        op_remove_entity("switch", sw_name, "decom switch " + sw_name));
  }
  return plan;
}

}  // namespace pn
