#include "deploy/plan_builder.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

work_order build_deployment_order(const network_graph& g, const placement& pl,
                                  const floorplan& fp,
                                  const cabling_plan& plan,
                                  const deployment_plan_options& opt) {
  PN_CHECK_MSG(pl.complete(), "deployment needs a complete placement");
  const deployment_task_times& tt = opt.times;
  work_order wo;

  // Racks actually in use.
  std::set<rack_id> used_racks;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    used_racks.insert(pl.rack_of(node_id{i}));
  }

  std::map<rack_id, task_id> rack_ready;
  for (rack_id r : used_racks) {
    work_task t;
    t.kind = task_kind::position_rack;
    t.subject = fp.rack_at(r).name;
    t.location = fp.rack_at(r).position;
    t.base_minutes = tt.position_rack + tt.per_task_overhead;
    rack_ready[r] = wo.add_task(std::move(t));
  }

  std::vector<task_id> switch_ready(g.node_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_id n{i};
    const rack_id r = pl.rack_of(n);
    work_task t;
    t.kind = task_kind::mount_switch;
    t.subject = g.node(n).name;
    t.location = fp.rack_at(r).position;
    t.base_minutes = tt.mount_switch + tt.per_task_overhead;
    t.depends_on = {rack_ready.at(r)};
    switch_ready[i] = wo.add_task(std::move(t));
  }

  // Decide which rack pairs ship as pre-built bundles.
  std::map<std::pair<rack_id, rack_id>, std::size_t> pair_counts;
  if (opt.use_bundles) {
    for (const cable_run& run : plan.runs) {
      if (run.rack_a != run.rack_b) {
        ++pair_counts[std::minmax(run.rack_a, run.rack_b)];
      }
    }
  }
  std::map<std::pair<rack_id, rack_id>, task_id> bundle_tasks;

  for (const cable_run& run : plan.runs) {
    const edge_info& einfo = g.edge(run.edge);
    const std::string cable_name = str_format("cable%u", run.edge.value());
    const bool intra = run.rack_a == run.rack_b;
    const point loc_a = fp.rack_at(run.rack_a).position;
    const point loc_b = fp.rack_at(run.rack_b).position;

    task_id pulled;  // task after which the cable is physically in place
    bool have_pull = false;

    if (intra) {
      if (!opt.prewired_intra_rack) {
        work_task t;
        t.kind = task_kind::pull_cable;
        t.subject = cable_name;
        t.location = loc_a;
        t.base_minutes = tt.pull_cable_fixed +
                         tt.pull_cable_per_meter * run.length.value() +
                         tt.per_task_overhead;
        t.error_probability = tt.pull_damage_probability;
        t.rework_minutes = tt.rework_minutes;
        t.depends_on = {rack_ready.at(run.rack_a)};
        pulled = wo.add_task(std::move(t));
        have_pull = true;
      }
    } else {
      const auto key = std::minmax(run.rack_a, run.rack_b);
      const bool bundled =
          opt.use_bundles &&
          pair_counts[key] >= opt.bundling.min_bundle_size;
      if (bundled) {
        auto it = bundle_tasks.find(key);
        if (it == bundle_tasks.end()) {
          work_task t;
          t.kind = task_kind::pull_bundle;
          t.subject = str_format("bundle %s-%s",
                                 fp.rack_at(key.first).name.c_str(),
                                 fp.rack_at(key.second).name.c_str());
          t.location = loc_a;
          t.base_minutes = tt.pull_bundle_fixed +
                           tt.pull_bundle_per_meter * run.length.value() +
                           tt.per_task_overhead;
          t.error_probability = tt.pull_damage_probability;
          t.rework_minutes = tt.rework_minutes;
          t.depends_on = {rack_ready.at(run.rack_a),
                          rack_ready.at(run.rack_b)};
          it = bundle_tasks.emplace(key, wo.add_task(std::move(t))).first;
        }
        pulled = it->second;
        have_pull = true;
      } else {
        work_task t;
        t.kind = task_kind::pull_cable;
        t.subject = cable_name;
        t.location = loc_a;
        t.base_minutes = tt.pull_cable_fixed +
                         tt.pull_cable_per_meter * run.length.value() +
                         tt.per_task_overhead;
        t.error_probability = tt.pull_damage_probability;
        t.rework_minutes = tt.rework_minutes;
        t.depends_on = {rack_ready.at(run.rack_a), rack_ready.at(run.rack_b)};
        pulled = wo.add_task(std::move(t));
        have_pull = true;
      }
    }

    std::vector<task_id> test_deps;
    if (!(intra && opt.prewired_intra_rack)) {
      // Connect both ends; each needs the cable in place plus its switch.
      for (int end = 0; end < 2; ++end) {
        const node_id sw = end == 0 ? einfo.a : einfo.b;
        work_task t;
        t.kind = task_kind::connect_port;
        t.subject = cable_name;
        t.location = end == 0 ? loc_a : loc_b;
        t.base_minutes = tt.connect_port + tt.per_task_overhead;
        t.error_probability = tt.connect_error_probability;
        t.rework_minutes = tt.rework_minutes;
        t.depends_on = {switch_ready[sw.index()]};
        if (have_pull) t.depends_on.push_back(pulled);
        test_deps.push_back(wo.add_task(std::move(t)));
      }
    } else {
      test_deps = {switch_ready[einfo.a.index()],
                   switch_ready[einfo.b.index()]};
    }

    work_task t;
    t.kind = task_kind::test_link;
    t.subject = cable_name;
    t.location = loc_b;
    t.base_minutes = tt.test_link;
    t.depends_on = std::move(test_deps);
    wo.add_task(std::move(t));
  }

  return wo;
}

}  // namespace pn
