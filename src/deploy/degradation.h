// Concurrent-failure degradation analysis (§3.3).
//
// "Mitigation techniques generally cannot tolerate large numbers of
// concurrent failures. Therefore, network availability depends on mean
// time to repair." This module samples failure states — k switches and/or
// cables down at once, the world a slow repair pipeline lives in — and
// measures the surviving ECMP throughput, including the probability the
// fabric partitions outright. Crossed with MTTR (repair_sim), it shows
// *why* the paper calls repair speed an availability parameter.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "topology/graph.h"
#include "topology/traffic.h"

namespace pn {

struct degradation_params {
  int concurrent_switch_failures = 1;
  int concurrent_link_failures = 0;
  int samples = 50;
  std::uint64_t seed = 1;
};

struct degradation_report {
  // Throughput alpha of the degraded fabric / alpha of the intact one,
  // over samples that remained connected (host-facing demand reachable).
  double mean_capacity_retention = 0.0;
  double worst_capacity_retention = 1.0;
  // Fraction of samples where some surviving host pair with demand was
  // disconnected (retention counted as 0 and excluded from the means).
  double partition_probability = 0.0;
  int samples_evaluated = 0;
};

// Draws `samples` random failure states (failed switches lose all their
// links; failed links just disappear), re-runs the ECMP throughput proxy
// on the survivors with demands of failed host-facing switches removed,
// and compares to the intact fabric.
[[nodiscard]] degradation_report analyze_degradation(
    const network_graph& g, const traffic_matrix& tm,
    const degradation_params& p);

}  // namespace pn
