#include "deploy/topology_engineering.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

std::vector<std::vector<double>> block_demand_matrix(
    const jupiter_fabric& f, const traffic_matrix& tm) {
  const auto n = static_cast<std::size_t>(f.params.agg_blocks);
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  const auto& eps = tm.endpoints();
  for (std::size_t s = 0; s < eps.size(); ++s) {
    const int bs = f.graph.node(eps[s]).block;
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      const int bt = f.graph.node(eps[t]).block;
      if (bs == bt) continue;  // intra-block traffic never hits the mesh
      const auto i = static_cast<std::size_t>(std::min(bs, bt));
      const auto j = static_cast<std::size_t>(std::max(bs, bt));
      out[i][j] += tm.demand(s, t);
    }
  }
  return out;
}

result<engineered_mesh> engineer_jupiter_mesh(
    const jupiter_params& params,
    const std::vector<std::vector<double>>& block_demand,
    int min_links_per_pair) {
  const int n = params.agg_blocks;
  const auto un = static_cast<std::size_t>(n);
  if (block_demand.size() != un) {
    return invalid_argument_error("block_demand has wrong dimension");
  }
  PN_CHECK(min_links_per_pair >= 0);
  const int block_uplinks = params.mbs_per_block * params.uplinks_per_mb;
  if (min_links_per_pair * (n - 1) > block_uplinks) {
    return invalid_argument_error(str_format(
        "base mesh needs %d uplinks per block but only %d exist",
        min_links_per_pair * (n - 1), block_uplinks));
  }

  std::vector<std::vector<int>> w(un, std::vector<int>(un, 0));
  std::vector<int> remaining(un, block_uplinks);
  // Connectivity floor first.
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = i + 1; j < un; ++j) {
      w[i][j] = min_links_per_pair;
    }
    remaining[i] -= min_links_per_pair * (n - 1);
  }

  // Total links to place: floor(n * uplinks / 2).
  const int total_links =
      n * block_uplinks / 2 - min_links_per_pair * n * (n - 1) / 2;

  // Phase 1 (demand-driven): grant links to the pair with the largest
  // demand per granted link, while both endpoints have budget. Phase 2
  // (connectivity/leftovers): same greedy with demand floored at epsilon
  // so zero-demand pairs still absorb spare uplinks.
  for (int phase = 0; phase < 2; ++phase) {
    const double floor_demand = phase == 0 ? 0.0 : 1e-9;
    for (int placed = 0; placed < total_links; ++placed) {
      double best_score = 0.0;
      int bi = -1, bj = -1;
      for (int i = 0; i < n; ++i) {
        if (remaining[static_cast<std::size_t>(i)] == 0) continue;
        for (int j = i + 1; j < n; ++j) {
          if (remaining[static_cast<std::size_t>(j)] == 0) continue;
          const double d =
              std::max(block_demand[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(j)],
                       floor_demand);
          if (d <= 0.0) continue;
          const double score =
              d / (1.0 + w[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)]);
          if (score > best_score) {
            best_score = score;
            bi = i;
            bj = j;
          }
        }
      }
      if (bi < 0) break;  // nothing placeable this phase
      ++w[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)];
      --remaining[static_cast<std::size_t>(bi)];
      --remaining[static_cast<std::size_t>(bj)];
    }
  }

  auto fabric = build_jupiter_direct_with_pairs(params, w);
  if (!fabric.is_ok()) return fabric.error();

  engineered_mesh out{std::move(fabric).value(), std::move(w), 0};
  const auto uniform = uniform_pair_links(params);
  int moved = 0;
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = i + 1; j < un; ++j) {
      moved += std::max(0, out.pair_links[i][j] - uniform[i][j]);
    }
  }
  out.ocs_retunes = moved;  // each surplus link was re-pointed from a
                            // deficit pair: one cross-connect change
  return out;
}

}  // namespace pn
