#include "twin/inference.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

std::string inferred_rule::describe() const {
  switch (kind) {
    case rule_kind::attr_range:
      return str_format("%s.%s in [%g, %g]", entity_kind.c_str(),
                        subject.c_str(), lo, hi);
    case rule_kind::attr_vocabulary: {
      std::string vals;
      for (const auto& v : vocabulary) {
        if (!vals.empty()) vals += "|";
        vals += v;
      }
      return str_format("%s.%s in {%s}", entity_kind.c_str(),
                        subject.c_str(), vals.c_str());
    }
    case rule_kind::out_degree:
      return str_format("%s --%s--> count in [%g, %g]", entity_kind.c_str(),
                        subject.c_str(), lo, hi);
    case rule_kind::in_degree:
      return str_format("%s <--%s-- count in [%g, %g]", entity_kind.c_str(),
                        subject.c_str(), lo, hi);
  }
  return "unknown rule";
}

namespace {

struct numeric_track {
  double lo = 0.0, hi = 0.0;
  std::size_t n = 0;
  void add(double v) {
    if (n == 0) {
      lo = hi = v;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    ++n;
  }
};

std::optional<double> numeric_of(const attr_value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

void widen(inferred_rule& r, double slack) {
  const double margin = std::max(std::fabs(r.hi), 1.0) * slack;
  r.lo -= margin;
  r.hi += margin;
}

}  // namespace

std::vector<inferred_rule> infer_rules(const twin_model& m,
                                       const inference_params& p) {
  PN_CHECK(p.min_support >= 1);

  // (kind, attr) -> numeric range / text values.
  std::map<std::pair<std::string, std::string>, numeric_track> numerics;
  std::map<std::pair<std::string, std::string>, std::map<std::string, int>>
      texts;
  std::map<std::string, std::size_t> kind_counts;

  for (const twin_entity& e : m.all_entities()) {
    if (!e.alive) continue;
    ++kind_counts[e.kind];
    for (const auto& [key, value] : e.attrs) {
      if (const auto num = numeric_of(value)) {
        numerics[{e.kind, key}].add(*num);
      } else if (const auto* s = std::get_if<std::string>(&value)) {
        ++texts[{e.kind, key}][*s];
      }
    }
  }

  // (kind, relation) -> per-entity degree; tracked via id -> count maps.
  std::map<std::pair<std::string, std::string>, std::map<entity_id, int>>
      out_deg, in_deg;
  for (const twin_relation& r : m.all_relations()) {
    if (!r.alive) continue;
    if (!m.entity_alive(r.from) || !m.entity_alive(r.to)) continue;
    ++out_deg[{m.entity(r.from).kind, r.kind}][r.from];
    ++in_deg[{m.entity(r.to).kind, r.kind}][r.to];
  }

  std::vector<inferred_rule> rules;

  for (const auto& [key, track] : numerics) {
    if (track.n < p.min_support) continue;
    inferred_rule r;
    r.kind = inferred_rule::rule_kind::attr_range;
    r.entity_kind = key.first;
    r.subject = key.second;
    r.lo = track.lo;
    r.hi = track.hi;
    r.support = track.n;
    widen(r, p.range_slack);
    rules.push_back(std::move(r));
  }

  for (const auto& [key, values] : texts) {
    std::size_t n = 0;
    for (const auto& [unused, c] : values) {
      n += static_cast<std::size_t>(c);
    }
    if (n < p.min_support) continue;
    if (values.size() > p.max_vocabulary || values.size() * 2 > n) continue;
    inferred_rule r;
    r.kind = inferred_rule::rule_kind::attr_vocabulary;
    r.entity_kind = key.first;
    r.subject = key.second;
    r.support = n;
    for (const auto& [v, unused] : values) {
      r.vocabulary.insert(v);
    }
    rules.push_back(std::move(r));
  }

  auto degree_rules = [&](const auto& table,
                          inferred_rule::rule_kind kind) {
    for (const auto& [key, per_entity] : table) {
      // Entities of the kind with zero relations count too.
      const std::size_t population = kind_counts[key.first];
      if (population < p.min_support) continue;
      numeric_track track;
      for (const auto& [unused, c] : per_entity) {
        track.add(c);
      }
      for (std::size_t i = per_entity.size(); i < population; ++i) {
        track.add(0.0);
      }
      inferred_rule r;
      r.kind = kind;
      r.entity_kind = key.first;
      r.subject = key.second;
      r.lo = track.lo;
      r.hi = track.hi;
      r.support = population;
      rules.push_back(std::move(r));
    }
  };
  degree_rules(out_deg, inferred_rule::rule_kind::out_degree);
  degree_rules(in_deg, inferred_rule::rule_kind::in_degree);
  return rules;
}

std::vector<rule_violation> check_against_rules(
    const twin_model& m, const std::vector<inferred_rule>& rules) {
  std::vector<rule_violation> out;

  for (const twin_entity& e : m.all_entities()) {
    if (!e.alive) continue;
    for (const inferred_rule& r : rules) {
      if (r.entity_kind != e.kind) continue;
      switch (r.kind) {
        case inferred_rule::rule_kind::attr_range: {
          const auto it = e.attrs.find(r.subject);
          if (it == e.attrs.end()) break;
          const auto num = numeric_of(it->second);
          if (!num) break;
          if (*num < r.lo || *num > r.hi) {
            out.push_back({e.name,
                           str_format("%s = %g violates %s",
                                      r.subject.c_str(), *num,
                                      r.describe().c_str())});
          }
          break;
        }
        case inferred_rule::rule_kind::attr_vocabulary: {
          const auto it = e.attrs.find(r.subject);
          if (it == e.attrs.end()) break;
          const auto* s = std::get_if<std::string>(&it->second);
          if (s == nullptr) break;
          if (!r.vocabulary.contains(*s)) {
            out.push_back({e.name,
                           str_format("%s = '%s' violates %s",
                                      r.subject.c_str(), s->c_str(),
                                      r.describe().c_str())});
          }
          break;
        }
        case inferred_rule::rule_kind::out_degree:
        case inferred_rule::rule_kind::in_degree: {
          int count = 0;
          for (const twin_relation* rel : m.relations_of(e.id)) {
            if (rel->kind != r.subject) continue;
            const bool outgoing = rel->from == e.id;
            if (outgoing ==
                (r.kind == inferred_rule::rule_kind::out_degree)) {
              ++count;
            }
          }
          if (count < r.lo || count > r.hi) {
            out.push_back({e.name,
                           str_format("%d x %s violates %s", count,
                                      r.subject.c_str(),
                                      r.describe().c_str())});
          }
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace pn
