#include "twin/views.h"

#include "common/check.h"
#include "common/strings.h"

namespace pn {

result<rollup_result> roll_up(const twin_model& detailed,
                              const rollup_spec& spec) {
  PN_CHECK(!spec.source_kind.empty());
  PN_CHECK(!spec.group_by_attr.empty());
  PN_CHECK(!spec.aggregate_kind.empty());
  for (const twin_entity& e : detailed.all_entities()) {
    if (e.alive && e.kind == spec.aggregate_kind) {
      return invalid_argument_error("aggregate kind '" +
                                    spec.aggregate_kind +
                                    "' already exists in the model");
    }
  }

  rollup_result out;

  // Group the source entities.
  std::map<std::string, std::vector<const twin_entity*>> groups;
  for (const twin_entity& e : detailed.all_entities()) {
    if (!e.alive || e.kind != spec.source_kind) continue;
    const auto it = e.attrs.find(spec.group_by_attr);
    const std::string group_value =
        it != e.attrs.end() ? attr_to_string(it->second)
                            : "solo_" + e.name;
    groups[group_value].push_back(&e);
  }

  // Aggregates first, then pass-through entities.
  std::map<entity_id, entity_id> remap;  // detailed id -> rolled id
  std::map<std::string, entity_id> aggregate_by_group;
  for (const auto& [group_value, members] : groups) {
    const std::string agg_name = spec.aggregate_kind + group_value;
    const entity_id agg = out.model.add_entity(spec.aggregate_kind,
                                               agg_name);
    aggregate_by_group[group_value] = agg;
    out.model.set_attr(agg, "members",
                       static_cast<std::int64_t>(members.size()));
    for (const std::string& key : spec.sum_attrs) {
      double sum = 0.0;
      bool any = false;
      for (const twin_entity* m : members) {
        const auto it = m->attrs.find(key);
        if (it == m->attrs.end()) continue;
        if (const auto* d = std::get_if<double>(&it->second)) {
          sum += *d;
          any = true;
        } else if (const auto* i =
                       std::get_if<std::int64_t>(&it->second)) {
          sum += static_cast<double>(*i);
          any = true;
        }
      }
      if (any) out.model.set_attr(agg, key, sum);
    }
    for (const twin_entity* m : members) {
      remap[m->id] = agg;
      out.member_of[m->name] = agg_name;
    }
    ++out.aggregates;
  }

  for (const twin_entity& e : detailed.all_entities()) {
    if (!e.alive || e.kind == spec.source_kind) continue;
    const entity_id copy = out.model.add_entity(e.kind, e.name);
    for (const auto& [key, value] : e.attrs) {
      out.model.set_attr(copy, key, value);
    }
    remap[e.id] = copy;
  }

  // Relations: re-point, drop aggregate self-loops but count them.
  std::map<std::pair<entity_id, std::string>, std::int64_t> internal;
  for (const twin_relation& r : detailed.all_relations()) {
    if (!r.alive) continue;
    if (!detailed.entity_alive(r.from) || !detailed.entity_alive(r.to)) {
      continue;
    }
    const auto from_it = remap.find(r.from);
    const auto to_it = remap.find(r.to);
    PN_CHECK(from_it != remap.end() && to_it != remap.end());
    if (from_it->second == to_it->second) {
      ++internal[{from_it->second, r.kind}];
      continue;
    }
    PN_CHECK(out.model
                 .add_relation(r.kind, from_it->second, to_it->second)
                 .is_ok());
  }
  for (const auto& [key, count] : internal) {
    out.model.set_attr(key.first, "internal_" + key.second, count);
  }
  return out;
}

}  // namespace pn
