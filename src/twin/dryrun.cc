#include "twin/dryrun.h"

#include "common/check.h"

namespace pn {

twin_op op_add_entity(std::string kind, std::string name,
                      std::vector<std::pair<std::string, attr_value>> attrs,
                      std::string description) {
  twin_op op;
  op.kind = twin_op::op_kind::add_entity;
  op.entity_kind = std::move(kind);
  op.entity_name = std::move(name);
  op.attrs = std::move(attrs);
  op.description = description.empty()
                       ? "add " + op.entity_kind + " " + op.entity_name
                       : std::move(description);
  return op;
}

twin_op op_remove_entity(std::string kind, std::string name,
                         std::string description) {
  twin_op op;
  op.kind = twin_op::op_kind::remove_entity;
  op.entity_kind = std::move(kind);
  op.entity_name = std::move(name);
  op.description = description.empty()
                       ? "remove " + op.entity_kind + " " + op.entity_name
                       : std::move(description);
  return op;
}

twin_op op_add_relation(std::string rel, std::string from_kind,
                        std::string from_name, std::string to_kind,
                        std::string to_name, std::string description) {
  twin_op op;
  op.kind = twin_op::op_kind::add_relation;
  op.relation_kind = std::move(rel);
  op.from_kind = std::move(from_kind);
  op.from_name = std::move(from_name);
  op.to_kind = std::move(to_kind);
  op.to_name = std::move(to_name);
  op.description = description.empty()
                       ? "relate " + op.from_name + " -" + op.relation_kind +
                             "-> " + op.to_name
                       : std::move(description);
  return op;
}

twin_op op_remove_relation(std::string rel, std::string from_kind,
                           std::string from_name, std::string to_kind,
                           std::string to_name, std::string description) {
  twin_op op = op_add_relation(std::move(rel), std::move(from_kind),
                               std::move(from_name), std::move(to_kind),
                               std::move(to_name), std::move(description));
  op.kind = twin_op::op_kind::remove_relation;
  if (description.empty()) {
    op.description = "unrelate " + op.from_name + " -" + op.relation_kind +
                     "-> " + op.to_name;
  }
  return op;
}

twin_op op_set_attr(std::string kind, std::string name, std::string key,
                    attr_value value, std::string description) {
  twin_op op;
  op.kind = twin_op::op_kind::set_attr;
  op.entity_kind = std::move(kind);
  op.entity_name = std::move(name);
  op.attrs.emplace_back(std::move(key), std::move(value));
  op.description = description.empty()
                       ? "set " + op.entity_name + "." + op.attrs[0].first
                       : std::move(description);
  return op;
}

dry_run_engine::dry_run_engine(twin_model snapshot, const twin_schema* schema)
    : model_(std::move(snapshot)), schema_(schema) {
  PN_CHECK(schema_ != nullptr);
}

status dry_run_engine::apply(const twin_op& op) {
  switch (op.kind) {
    case twin_op::op_kind::add_entity: {
      if (model_.find(op.entity_kind, op.entity_name).has_value()) {
        return invalid_argument_error("entity already exists: " +
                                      op.entity_name);
      }
      const entity_id e = model_.add_entity(op.entity_kind, op.entity_name);
      for (const auto& [k, v] : op.attrs) {
        model_.set_attr(e, k, v);
      }
      return status::ok();
    }
    case twin_op::op_kind::remove_entity: {
      const auto e = model_.find(op.entity_kind, op.entity_name);
      if (!e.has_value()) {
        return not_found_error("no live entity " + op.entity_name);
      }
      return model_.remove_entity(*e);
    }
    case twin_op::op_kind::add_relation:
    case twin_op::op_kind::remove_relation: {
      const auto from = model_.find(op.from_kind, op.from_name);
      const auto to = model_.find(op.to_kind, op.to_name);
      if (!from.has_value() || !to.has_value()) {
        return not_found_error("relation endpoint missing: " +
                               (from.has_value() ? op.to_name : op.from_name));
      }
      if (op.kind == twin_op::op_kind::add_relation) {
        return model_.add_relation(op.relation_kind, *from, *to);
      }
      return model_.remove_relation(op.relation_kind, *from, *to);
    }
    case twin_op::op_kind::set_attr: {
      const auto e = model_.find(op.entity_kind, op.entity_name);
      if (!e.has_value()) {
        return not_found_error("no live entity " + op.entity_name);
      }
      for (const auto& [k, v] : op.attrs) {
        model_.set_attr(*e, k, v);
      }
      return status::ok();
    }
  }
  return invalid_argument_error("unknown op kind");
}

dry_run_report dry_run_engine::run(const std::vector<twin_op>& ops,
                                   const dry_run_options& opt) {
  dry_run_report report;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const status s = apply(ops[i]);
    std::vector<schema_violation> violations;
    if (opt.validate_each_step) {
      violations = schema_->validate(model_);
    }
    if (!s.is_ok() || !violations.empty()) {
      report.ok = false;
      report.failures.push_back(
          {i, ops[i].description, s, std::move(violations)});
      if (!opt.continue_after_failure) {
        report.steps_executed = i + 1;
        return report;
      }
    }
    report.steps_executed = i + 1;
  }
  if (!opt.validate_each_step) {
    auto violations = schema_->validate(model_);
    if (!violations.empty()) {
      report.ok = false;
      report.failures.push_back({ops.size(), "final validation", status::ok(),
                                 std::move(violations)});
    }
  }
  return report;
}

}  // namespace pn
