#include "twin/model.h"

#include "common/check.h"
#include "common/strings.h"

namespace pn {

std::string attr_to_string(const attr_value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else if constexpr (std::is_same_v<T, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          return str_format("%g", x);
        } else {
          return str_format("%lld", static_cast<long long>(x));
        }
      },
      v);
}

entity_id twin_model::add_entity(std::string kind, std::string name) {
  PN_CHECK(!kind.empty() && !name.empty());
  const entity_id id{entities_.size()};
  by_name_[{kind, name}] = id;
  entities_.push_back({id, std::move(kind), std::move(name), {}, true});
  return id;
}

status twin_model::remove_entity(entity_id e) {
  PN_CHECK(e.index() < entities_.size());
  twin_entity& ent = entities_[e.index()];
  if (!ent.alive) {
    return unavailable_error("entity already removed: " + ent.name);
  }
  const auto rels = relations_of(e);
  if (!rels.empty()) {
    return unavailable_error(str_format(
        "%s '%s' still has %zu live relation(s) (first: %s)",
        ent.kind.c_str(), ent.name.c_str(), rels.size(),
        rels.front()->kind.c_str()));
  }
  ent.alive = false;
  return status::ok();
}

status twin_model::add_relation(std::string kind, entity_id from,
                                entity_id to) {
  PN_CHECK(!kind.empty());
  if (!entity_alive(from) || !entity_alive(to)) {
    return not_found_error("relation endpoint is not a live entity");
  }
  relations_.push_back({std::move(kind), from, to, true});
  return status::ok();
}

status twin_model::remove_relation(std::string kind, entity_id from,
                                   entity_id to) {
  for (twin_relation& r : relations_) {
    if (r.alive && r.kind == kind && r.from == from && r.to == to) {
      r.alive = false;
      return status::ok();
    }
  }
  return not_found_error("no live relation " + kind + " between entities");
}

void twin_model::set_attr(entity_id e, const std::string& key, attr_value v) {
  PN_CHECK(entity_alive(e));
  entities_[e.index()].attrs[key] = std::move(v);
}

std::optional<attr_value> twin_model::attr(entity_id e,
                                           const std::string& key) const {
  PN_CHECK(e.index() < entities_.size());
  const auto& attrs = entities_[e.index()].attrs;
  const auto it = attrs.find(key);
  if (it == attrs.end()) return std::nullopt;
  return it->second;
}

std::optional<double> twin_model::attr_number(entity_id e,
                                              const std::string& key) const {
  const auto v = attr(e, key);
  if (!v.has_value()) return std::nullopt;
  if (const auto* d = std::get_if<double>(&*v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&*v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

bool twin_model::entity_alive(entity_id e) const {
  return e.index() < entities_.size() && entities_[e.index()].alive;
}

const twin_entity& twin_model::entity(entity_id e) const {
  PN_CHECK(e.index() < entities_.size());
  return entities_[e.index()];
}

std::optional<entity_id> twin_model::find(const std::string& kind,
                                          const std::string& name) const {
  const auto it = by_name_.find({kind, name});
  if (it == by_name_.end() || !entity_alive(it->second)) return std::nullopt;
  return it->second;
}

std::vector<entity_id> twin_model::entities_of_kind(
    const std::string& kind) const {
  std::vector<entity_id> out;
  for (const twin_entity& e : entities_) {
    if (e.alive && e.kind == kind) out.push_back(e.id);
  }
  return out;
}

std::vector<const twin_relation*> twin_model::relations_of(
    entity_id e) const {
  std::vector<const twin_relation*> out;
  for (const twin_relation& r : relations_) {
    if (r.alive && (r.from == e || r.to == e)) out.push_back(&r);
  }
  return out;
}

std::vector<const twin_relation*> twin_model::relations_of_kind(
    const std::string& kind) const {
  std::vector<const twin_relation*> out;
  for (const twin_relation& r : relations_) {
    if (r.alive && r.kind == kind) out.push_back(&r);
  }
  return out;
}

std::vector<entity_id> twin_model::related(entity_id e,
                                           const std::string& kind) const {
  std::vector<entity_id> out;
  for (const twin_relation& r : relations_) {
    if (r.alive && r.kind == kind && r.from == e) out.push_back(r.to);
  }
  return out;
}

std::vector<entity_id> twin_model::related_in(entity_id e,
                                              const std::string& kind) const {
  std::vector<entity_id> out;
  for (const twin_relation& r : relations_) {
    if (r.alive && r.kind == kind && r.to == e) out.push_back(r.from);
  }
  return out;
}

std::size_t twin_model::live_entity_count() const {
  std::size_t n = 0;
  for (const auto& e : entities_) {
    if (e.alive) ++n;
  }
  return n;
}

std::size_t twin_model::live_relation_count() const {
  std::size_t n = 0;
  for (const auto& r : relations_) {
    if (r.alive) ++n;
  }
  return n;
}

}  // namespace pn
