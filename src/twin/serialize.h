// Textual serialization of twin models.
//
// §5.2/§5.3: the value of the declarative representation is that it can
// be exchanged, diffed, and validated outside the automation code — the
// antidote to "a variety of ad hoc, poorly-documented, and ambiguous
// formats". The format is line-oriented and append-only friendly:
//
//   entity <kind> <name>
//   attr <kind> <name> <key> <int|num|str|bool> <value...>
//   relation <relkind> <from_kind> <from_name> <to_kind> <to_name>
//
// Kinds, names and keys must be whitespace-free; string attribute values
// may contain spaces (they extend to end of line). Backslash, newline and
// carriage return inside string values are escaped as \\, \n and \r on
// write and unescaped on parse, so serialize(parse(serialize(m))) is
// byte-identical for any value. The parser also strips the trailing \r of
// CRLF line endings before tokenizing.
#pragma once

#include <string>

#include "common/status.h"
#include "twin/model.h"

namespace pn {

// Serializes live entities/relations. Deterministic: entities in id
// order, attributes in key order, relations in insertion order.
[[nodiscard]] std::string serialize_twin(const twin_model& m);

// Parses a serialized twin. Fails with invalid_argument on malformed
// lines, unknown directives, duplicate entities, or relations to missing
// entities (with the line number in the message).
[[nodiscard]] result<twin_model> parse_twin(const std::string& text);

}  // namespace pn
