// Design-rule inference over twin models (§5.3).
//
// "We would greatly benefit from new methods to validate such data,
// perhaps by inferring design rules that were never formally stated
// (analogous to prior work on bug-finding [Engler et al.])." Given a
// model believed to be mostly correct, infer the latent invariants —
// attribute ranges, categorical vocabularies, relation cardinalities —
// then hold any model (the same one, or a proposed change) against them.
// Deviants are either data errors or genuinely novel designs; both are
// exactly what §5.2 wants surfaced early.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "twin/model.h"

namespace pn {

struct inferred_rule {
  enum class rule_kind {
    attr_range,       // numeric attribute of a kind stays within [lo, hi]
    attr_vocabulary,  // text attribute takes one of few observed values
    out_degree,       // entities of a kind have out-relations in [lo, hi]
    in_degree,        // ... in-relations in [lo, hi]
  };
  rule_kind kind = rule_kind::attr_range;
  std::string entity_kind;
  std::string subject;  // attribute key or relation kind
  double lo = 0.0;
  double hi = 0.0;
  std::set<std::string> vocabulary;
  std::size_t support = 0;  // observations backing the rule

  [[nodiscard]] std::string describe() const;
};

struct inference_params {
  // Rules need at least this many observations to be stated at all.
  std::size_t min_support = 5;
  // A text attribute becomes a vocabulary rule only if the distinct
  // values are at most this many (and fewer than half the observations).
  std::size_t max_vocabulary = 4;
  // Numeric ranges are widened by this fraction on both sides so that
  // ordinary variation does not trip the checker.
  double range_slack = 0.10;
};

[[nodiscard]] std::vector<inferred_rule> infer_rules(
    const twin_model& m, const inference_params& p = {});

struct rule_violation {
  std::string entity;
  std::string detail;
};

// Checks every live entity of `m` against the rules. Entities of kinds
// with no rules pass silently.
[[nodiscard]] std::vector<rule_violation> check_against_rules(
    const twin_model& m, const std::vector<inferred_rule>& rules);

}  // namespace pn
