#include "twin/builder.h"

#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

twin_model build_network_twin(const network_graph& g, const placement& pl,
                              const floorplan& fp, const cabling_plan& plan,
                              const catalog& cat) {
  twin_model m;

  std::vector<entity_id> rack_entities;
  rack_entities.reserve(fp.rack_count());
  for (const rack& r : fp.racks()) {
    const entity_id e = m.add_entity("rack", r.name);
    m.set_attr(e, "rack_units", static_cast<std::int64_t>(r.rack_units));
    m.set_attr(e, "power_budget_w", r.power_budget.value());
    m.set_attr(e, "row", static_cast<std::int64_t>(r.row));
    rack_entities.push_back(e);
  }

  std::vector<entity_id> switch_entities;
  switch_entities.reserve(g.node_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_id n{i};
    const node_info& info = g.node(n);
    const entity_id e = m.add_entity("switch", info.name);
    m.set_attr(e, "radix", static_cast<std::int64_t>(info.radix));
    m.set_attr(e, "port_rate_gbps", info.port_rate.value());
    m.set_attr(e, "rack_units", static_cast<std::int64_t>(
                                    switch_cost_model::rack_units(info.radix)));
    m.set_attr(e, "power_w",
               cat.switches().power(info.radix, info.port_rate).value());
    switch_entities.push_back(e);
    if (pl.is_assigned(n)) {
      PN_CHECK(m.add_relation("placed_in", e,
                              rack_entities[pl.rack_of(n).index()])
                   .is_ok());
    }
  }

  // Power feeds (busway segments) and which racks they serve.
  std::vector<entity_id> feed_entities;
  for (int feed = 0; feed < fp.feed_count(); ++feed) {
    const entity_id e = m.add_entity("power_feed", str_format("feed%d", feed));
    double capacity = 0.0;
    for (rack_id r : fp.racks_on_feed(feed)) {
      capacity += fp.rack_at(r).power_budget.value();
    }
    m.set_attr(e, "capacity_w", capacity);
    feed_entities.push_back(e);
  }
  for (const rack& r : fp.racks()) {
    PN_CHECK(m.add_relation("feeds",
                            feed_entities[static_cast<std::size_t>(
                                fp.feed_of(r.id))],
                            rack_entities[r.id.index()])
                 .is_ok());
  }

  for (const cable_run& run : plan.runs) {
    const edge_info& einfo = g.edge(run.edge);
    const entity_id c =
        m.add_entity("cable", str_format("cable%u", run.edge.value()));
    m.set_attr(c, "rate_gbps", einfo.capacity.value());
    m.set_attr(c, "length_m", run.length.value());
    m.set_attr(c, "diameter_mm", run.choice.diameter.value());
    m.set_attr(c, "medium",
               std::string(cable_medium_name(run.choice.cable->medium)));
    PN_CHECK(m.add_relation("terminates_on", c,
                            switch_entities[einfo.a.index()])
                 .is_ok());
    PN_CHECK(m.add_relation("terminates_on", c,
                            switch_entities[einfo.b.index()])
                 .is_ok());
  }
  return m;
}

}  // namespace pn
