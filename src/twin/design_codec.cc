#include "twin/design_codec.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace pn {
namespace {

// Typed attribute readers: a design twin is machine-written, so a missing
// or mistyped attribute means the payload is corrupt, not merely odd.
status read_int(const twin_model& m, entity_id e, const char* key,
                std::int64_t& out) {
  const auto v = m.attr(e, key);
  if (!v.has_value()) {
    return corrupt_data_error(str_format("design twin: %s '%s' missing %s",
                                         m.entity(e).kind.c_str(),
                                         m.entity(e).name.c_str(), key));
  }
  const auto* i = std::get_if<std::int64_t>(&*v);
  if (i == nullptr) {
    return corrupt_data_error(str_format("design twin: %s '%s' %s not int",
                                         m.entity(e).kind.c_str(),
                                         m.entity(e).name.c_str(), key));
  }
  out = *i;
  return status::ok();
}

status read_num(const twin_model& m, entity_id e, const char* key,
                double& out) {
  const auto v = m.attr(e, key);
  const auto* d = v.has_value() ? std::get_if<double>(&*v) : nullptr;
  if (d == nullptr) {
    return corrupt_data_error(str_format("design twin: %s '%s' %s not num",
                                         m.entity(e).kind.c_str(),
                                         m.entity(e).name.c_str(), key));
  }
  out = *d;
  return status::ok();
}

status read_str(const twin_model& m, entity_id e, const char* key,
                std::string& out) {
  const auto v = m.attr(e, key);
  const auto* s = v.has_value() ? std::get_if<std::string>(&*v) : nullptr;
  if (s == nullptr) {
    return corrupt_data_error(str_format("design twin: %s '%s' %s not str",
                                         m.entity(e).kind.c_str(),
                                         m.entity(e).name.c_str(), key));
  }
  out = *s;
  return status::ok();
}

status read_bool(const twin_model& m, entity_id e, const char* key,
                 bool& out) {
  const auto v = m.attr(e, key);
  const auto* b = v.has_value() ? std::get_if<bool>(&*v) : nullptr;
  if (b == nullptr) {
    return corrupt_data_error(str_format("design twin: %s '%s' %s not bool",
                                         m.entity(e).kind.c_str(),
                                         m.entity(e).name.c_str(), key));
  }
  out = *b;
  return status::ok();
}

// Orders entities of `kind` by their "index" attribute and checks the
// indices are exactly 0..n-1 (the codec's order-preservation invariant).
result<std::vector<entity_id>> by_index(const twin_model& m,
                                        const std::string& kind) {
  const std::vector<entity_id> raw = m.entities_of_kind(kind);
  std::vector<entity_id> ordered(raw.size());
  std::vector<bool> seen(raw.size(), false);
  for (const entity_id e : raw) {
    std::int64_t idx = 0;
    if (status st = read_int(m, e, "index", idx); !st.is_ok()) return st;
    if (idx < 0 || static_cast<std::size_t>(idx) >= raw.size() ||
        seen[static_cast<std::size_t>(idx)]) {
      return corrupt_data_error(
          str_format("design twin: %s indices not a permutation of 0..%zu",
                     kind.c_str(), raw.size() - 1));
    }
    seen[static_cast<std::size_t>(idx)] = true;
    ordered[static_cast<std::size_t>(idx)] = e;
  }
  return ordered;
}

}  // namespace

twin_model design_to_twin(const network_graph& g) {
  twin_model m;

  const entity_id fab = m.add_entity("fabric", "fabric");
  m.set_attr(fab, "family", g.family);
  m.set_attr(fab, "nodes", static_cast<std::int64_t>(g.node_count()));
  m.set_attr(fab, "links", static_cast<std::int64_t>(g.edge_count()));

  std::vector<entity_id> switches;
  switches.reserve(g.node_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_info& info = g.node(node_id{i});
    const entity_id e = m.add_entity("switch", info.name);
    m.set_attr(e, "index", static_cast<std::int64_t>(i));
    m.set_attr(e, "kind", std::string(node_kind_name(info.kind)));
    m.set_attr(e, "radix", static_cast<std::int64_t>(info.radix));
    m.set_attr(e, "port_rate_gbps", info.port_rate.value());
    m.set_attr(e, "host_ports", static_cast<std::int64_t>(info.host_ports));
    m.set_attr(e, "layer", static_cast<std::int64_t>(info.layer));
    m.set_attr(e, "block", static_cast<std::int64_t>(info.block));
    switches.push_back(e);
  }

  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    const edge_id eid{static_cast<std::uint32_t>(i)};
    const edge_info& info = g.edge(eid);
    const entity_id e = m.add_entity("link", str_format("link%zu", i));
    m.set_attr(e, "index", static_cast<std::int64_t>(i));
    m.set_attr(e, "a", static_cast<std::int64_t>(info.a.index()));
    m.set_attr(e, "b", static_cast<std::int64_t>(info.b.index()));
    m.set_attr(e, "capacity_gbps", info.capacity.value());
    m.set_attr(e, "via_indirection", info.via_indirection);
    m.set_attr(e, "indirection_unit",
               static_cast<std::int64_t>(info.indirection_unit));
    m.set_attr(e, "alive", g.edge_alive(eid));
    PN_CHECK(m.add_relation("connects", e, switches[info.a.index()]).is_ok());
    PN_CHECK(m.add_relation("connects", e, switches[info.b.index()]).is_ok());
  }
  return m;
}

result<network_graph> design_from_twin(const twin_model& m) {
  const auto fab = m.find("fabric", "fabric");
  if (!fab.has_value()) {
    return corrupt_data_error("design twin: no fabric entity");
  }

  network_graph g;
  if (status st = read_str(m, *fab, "family", g.family); !st.is_ok()) {
    return st;
  }
  std::int64_t want_nodes = 0;
  std::int64_t want_links = 0;
  if (status st = read_int(m, *fab, "nodes", want_nodes); !st.is_ok()) {
    return st;
  }
  if (status st = read_int(m, *fab, "links", want_links); !st.is_ok()) {
    return st;
  }

  auto switches = by_index(m, "switch");
  if (!switches.is_ok()) return switches.error();
  auto links = by_index(m, "link");
  if (!links.is_ok()) return links.error();
  if (static_cast<std::int64_t>(switches.value().size()) != want_nodes ||
      static_cast<std::int64_t>(links.value().size()) != want_links) {
    return corrupt_data_error(
        "design twin: fabric counts disagree with entities");
  }

  for (const entity_id e : switches.value()) {
    node_info info;
    info.name = m.entity(e).name;
    std::string kind;
    std::int64_t radix = 0;
    std::int64_t host_ports = 0;
    std::int64_t layer = 0;
    std::int64_t block = 0;
    double rate = 0.0;
    if (status st = read_str(m, e, "kind", kind); !st.is_ok()) return st;
    if (status st = read_int(m, e, "radix", radix); !st.is_ok()) return st;
    if (status st = read_num(m, e, "port_rate_gbps", rate); !st.is_ok()) {
      return st;
    }
    if (status st = read_int(m, e, "host_ports", host_ports); !st.is_ok()) {
      return st;
    }
    if (status st = read_int(m, e, "layer", layer); !st.is_ok()) return st;
    if (status st = read_int(m, e, "block", block); !st.is_ok()) return st;
    const auto k = node_kind_from_name(kind);
    if (!k.has_value()) {
      return corrupt_data_error("design twin: unknown switch kind " + kind);
    }
    info.kind = *k;
    if (radix <= 0 || host_ports < 0 || host_ports > radix) {
      return corrupt_data_error("design twin: switch '" + info.name +
                                "' port counts out of range");
    }
    info.radix = static_cast<int>(radix);
    info.port_rate = gbps{rate};
    info.host_ports = static_cast<int>(host_ports);
    info.layer = static_cast<int>(layer);
    info.block = static_cast<int>(block);
    g.add_node(std::move(info));
  }

  std::vector<edge_id> dead;
  for (const entity_id e : links.value()) {
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t unit = 0;
    double capacity = 0.0;
    bool via = false;
    bool alive = true;
    if (status st = read_int(m, e, "a", a); !st.is_ok()) return st;
    if (status st = read_int(m, e, "b", b); !st.is_ok()) return st;
    if (status st = read_num(m, e, "capacity_gbps", capacity); !st.is_ok()) {
      return st;
    }
    if (status st = read_bool(m, e, "via_indirection", via); !st.is_ok()) {
      return st;
    }
    if (status st = read_int(m, e, "indirection_unit", unit); !st.is_ok()) {
      return st;
    }
    if (status st = read_bool(m, e, "alive", alive); !st.is_ok()) return st;
    const auto n = static_cast<std::int64_t>(g.node_count());
    if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
      return corrupt_data_error(
          str_format("design twin: link '%s' endpoints invalid",
                     m.entity(e).name.c_str()));
    }
    edge_info info;
    info.a = node_id{static_cast<std::size_t>(a)};
    info.b = node_id{static_cast<std::size_t>(b)};
    info.capacity = gbps{capacity};
    info.via_indirection = via;
    info.indirection_unit = static_cast<int>(unit);
    const edge_id eid = g.add_edge(info);
    if (!alive) dead.push_back(eid);
  }
  // Dead edges are replayed after all adds so edge ids match the source
  // graph exactly (ids are stable across remove_edge).
  for (const edge_id eid : dead) g.remove_edge(eid);
  return g;
}

}  // namespace pn
