#include "twin/diff.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

using entity_key = std::pair<std::string, std::string>;  // kind, name

std::string key_str(const entity_key& k) {
  return k.first + "/" + k.second;
}

std::map<entity_key, const twin_entity*> live_entities(
    const twin_model& m) {
  std::map<entity_key, const twin_entity*> out;
  for (const twin_entity& e : m.all_entities()) {
    if (e.alive) out[{e.kind, e.name}] = &e;
  }
  return out;
}

// Relation multiset keyed by (relkind, from key, to key).
using relation_key = std::tuple<std::string, entity_key, entity_key>;

std::map<relation_key, int> live_relations(const twin_model& m) {
  std::map<relation_key, int> out;
  for (const twin_relation& r : m.all_relations()) {
    if (!r.alive) continue;
    if (!m.entity_alive(r.from) || !m.entity_alive(r.to)) continue;
    const twin_entity& from = m.entity(r.from);
    const twin_entity& to = m.entity(r.to);
    ++out[{r.kind, {from.kind, from.name}, {to.kind, to.name}}];
  }
  return out;
}

std::string relation_str(const relation_key& k, int multiplicity) {
  std::string s = std::get<0>(k) + ": " + key_str(std::get<1>(k)) +
                  " -> " + key_str(std::get<2>(k));
  if (multiplicity > 1) s += str_format(" x%d", multiplicity);
  return s;
}

}  // namespace

twin_diff diff_twins(const twin_model& current, const twin_model& proposed) {
  twin_diff out;
  const auto cur = live_entities(current);
  const auto pro = live_entities(proposed);

  for (const auto& [key, e] : pro) {
    if (!cur.contains(key)) {
      out.added_entities.push_back(key_str(key));
      continue;
    }
    // Attribute deltas on entities present in both.
    const twin_entity* old_e = cur.at(key);
    std::set<std::string> attr_keys;
    for (const auto& [k, unused] : old_e->attrs) attr_keys.insert(k);
    for (const auto& [k, unused] : e->attrs) attr_keys.insert(k);
    for (const std::string& attr : attr_keys) {
      const auto oit = old_e->attrs.find(attr);
      const auto nit = e->attrs.find(attr);
      const std::string old_v =
          oit == old_e->attrs.end() ? "(unset)"
                                    : attr_to_string(oit->second);
      const std::string new_v =
          nit == e->attrs.end() ? "(unset)" : attr_to_string(nit->second);
      if (old_v != new_v) {
        out.changed_attrs.push_back(key_str(key) + "." + attr + ": " +
                                    old_v + " -> " + new_v);
      }
    }
  }
  for (const auto& [key, unused] : cur) {
    if (!pro.contains(key)) {
      out.removed_entities.push_back(key_str(key));
    }
  }

  const auto cur_rel = live_relations(current);
  const auto pro_rel = live_relations(proposed);
  for (const auto& [key, count] : pro_rel) {
    const auto it = cur_rel.find(key);
    const int old_count = it == cur_rel.end() ? 0 : it->second;
    if (count > old_count) {
      out.added_relations.push_back(relation_str(key, count - old_count));
    }
  }
  for (const auto& [key, count] : cur_rel) {
    const auto it = pro_rel.find(key);
    const int new_count = it == pro_rel.end() ? 0 : it->second;
    if (count > new_count) {
      out.removed_relations.push_back(
          relation_str(key, count - new_count));
    }
  }
  return out;
}

std::vector<twin_op> diff_to_ops(const twin_model& current,
                                 const twin_model& proposed) {
  std::vector<twin_op> plan;
  const auto cur = live_entities(current);
  const auto pro = live_entities(proposed);
  const auto cur_rel = live_relations(current);
  const auto pro_rel = live_relations(proposed);

  // 1. Add new entities with their attributes.
  for (const auto& [key, e] : pro) {
    if (cur.contains(key)) continue;
    std::vector<std::pair<std::string, attr_value>> attrs(e->attrs.begin(),
                                                          e->attrs.end());
    plan.push_back(op_add_entity(key.first, key.second, std::move(attrs)));
  }

  // 2. Attribute updates on surviving entities.
  for (const auto& [key, e] : pro) {
    const auto it = cur.find(key);
    if (it == cur.end()) continue;
    for (const auto& [attr, value] : e->attrs) {
      const auto oit = it->second->attrs.find(attr);
      if (oit == it->second->attrs.end() ||
          attr_to_string(oit->second) != attr_to_string(value)) {
        plan.push_back(op_set_attr(key.first, key.second, attr, value));
      }
    }
  }

  // 3. Add new relations (multiplicity deltas).
  for (const auto& [key, count] : pro_rel) {
    const auto it = cur_rel.find(key);
    const int old_count = it == cur_rel.end() ? 0 : it->second;
    for (int i = old_count; i < count; ++i) {
      plan.push_back(op_add_relation(
          std::get<0>(key), std::get<1>(key).first,
          std::get<1>(key).second, std::get<2>(key).first,
          std::get<2>(key).second));
    }
  }

  // 4. Remove dead relations, then 5. dead entities.
  for (const auto& [key, count] : cur_rel) {
    const auto it = pro_rel.find(key);
    const int new_count = it == pro_rel.end() ? 0 : it->second;
    for (int i = new_count; i < count; ++i) {
      plan.push_back(op_remove_relation(
          std::get<0>(key), std::get<1>(key).first,
          std::get<1>(key).second, std::get<2>(key).first,
          std::get<2>(key).second));
    }
  }
  for (const auto& [key, unused] : cur) {
    if (!pro.contains(key)) {
      plan.push_back(op_remove_entity(key.first, key.second));
    }
  }
  return plan;
}

}  // namespace pn
