// Physical-constraint checkers over a complete design.
//
// §5.3: the goal of a twin is "to be able to rapidly test whether an
// abstract design violates physical-world constraints," including the
// subtle ones ("a space that is just a little too small to accommodate
// the safe bending radius of the cable"). Each checker inspects one
// constraint family; run_all_checks is the plan-time gate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "physical/cabling.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/graph.h"

namespace pn {

// Everything a checker may inspect. All pointers non-owning, non-null.
struct physical_design {
  const network_graph* graph = nullptr;
  const placement* place = nullptr;
  const floorplan* floor = nullptr;
  const cabling_plan* cables = nullptr;
  const catalog* cat = nullptr;
};

enum class violation_severity { warning, error };

struct constraint_violation {
  std::string check;
  violation_severity severity = violation_severity::error;
  std::string subject;
  std::string detail;
};

class constraint_checker {
 public:
  virtual ~constraint_checker() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void run(const physical_design& d,
                   std::vector<constraint_violation>& out) const = 0;
};

// Built-in checkers.
//
// rack_space:      per-rack RU occupancy vs. capacity.
// rack_power:      switch power draw vs. rack power budget.
// tray_capacity:   tray segment fill <= 100% (warning above 80%).
// plenum:          per-rack cable cross-section vs. plenum (§3.1's 256-
//                  cables-in-a-rack problem; warning above 70%: airflow).
// bend_radius:     cable min bend radius vs. the rack's entry geometry.
// reach:           routed length within the selected medium's reach.
// loss_budget:     optical loss (fiber + connectors + indirections) within
//                  the transceiver budget.
// path_diversity:  parallel links between the same switch pair should not
//                  all ride one tray segment (physical SPOF, §3.1).
[[nodiscard]] std::vector<std::unique_ptr<constraint_checker>>
standard_checkers();

[[nodiscard]] std::vector<constraint_violation> run_all_checks(
    const physical_design& d);

// Convenience: errors only.
[[nodiscard]] std::size_t count_errors(
    const std::vector<constraint_violation>& v);

}  // namespace pn
