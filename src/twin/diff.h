// Twin-model diffing and change-plan generation (§5.2).
//
// The change-management practice the paper describes (Al-Fares et al.,
// ATC'23) reviews *declarative deltas*: the proposed network is a model,
// the current network is a model, and the change is their diff. This
// module computes that diff (entities and relations added, removed,
// re-attributed) and compiles it into the twin_op sequence that would
// transform current into proposed — orderable, dry-runnable, and
// reviewable before anything physical happens.
#pragma once

#include <string>
#include <vector>

#include "twin/dryrun.h"
#include "twin/model.h"

namespace pn {

struct twin_diff {
  // Entity names by kind+name key ("kind/name").
  std::vector<std::string> added_entities;
  std::vector<std::string> removed_entities;
  // "kind/name.attr: old -> new" (including attrs only on one side).
  std::vector<std::string> changed_attrs;
  // "relkind: from -> to" strings.
  std::vector<std::string> added_relations;
  std::vector<std::string> removed_relations;

  [[nodiscard]] bool empty() const {
    return added_entities.empty() && removed_entities.empty() &&
           changed_attrs.empty() && added_relations.empty() &&
           removed_relations.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return added_entities.size() + removed_entities.size() +
           changed_attrs.size() + added_relations.size() +
           removed_relations.size();
  }
};

// Structural diff keyed by (kind, name); ids are irrelevant. Parallel
// relations diff by multiplicity.
[[nodiscard]] twin_diff diff_twins(const twin_model& current,
                                   const twin_model& proposed);

// Compiles the diff into an executable change plan, safely ordered:
// adds (entities, then relations, then attrs) before removals (relations
// before entities) — so a dry run flags anything the ordering cannot
// fix (e.g. removing a switch whose cables are NOT in the plan).
[[nodiscard]] std::vector<twin_op> diff_to_ops(const twin_model& current,
                                               const twin_model& proposed);

}  // namespace pn
