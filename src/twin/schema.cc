#include "twin/schema.h"

#include <map>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

const char* attr_type_name(attr_type t) {
  switch (t) {
    case attr_type::integer:
      return "integer";
    case attr_type::number:
      return "number";
    case attr_type::text:
      return "text";
    case attr_type::boolean:
      return "boolean";
  }
  return "unknown";
}

bool type_matches(const attr_value& v, attr_type t) {
  switch (t) {
    case attr_type::integer:
      return std::holds_alternative<std::int64_t>(v);
    case attr_type::number:
      return std::holds_alternative<double>(v) ||
             std::holds_alternative<std::int64_t>(v);
    case attr_type::text:
      return std::holds_alternative<std::string>(v);
    case attr_type::boolean:
      return std::holds_alternative<bool>(v);
  }
  return false;
}

std::optional<double> numeric_of(const attr_value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

}  // namespace

void twin_schema::add_entity_spec(entity_spec s) {
  PN_CHECK(!s.kind.empty());
  entities_[s.kind] = std::move(s);
}

void twin_schema::add_relation_spec(relation_spec s) {
  PN_CHECK(!s.kind.empty());
  relations_[s.kind] = std::move(s);
}

bool twin_schema::knows_entity_kind(const std::string& kind) const {
  return entities_.contains(kind);
}

bool twin_schema::knows_relation_kind(const std::string& kind) const {
  return relations_.contains(kind);
}

std::vector<schema_violation> twin_schema::validate(
    const twin_model& m) const {
  std::vector<schema_violation> out;

  // Entities: known kind, required attributes present, typed, in range.
  for (const twin_entity& ent : m.all_entities()) {
    if (!ent.alive) continue;
    const auto spec_it = entities_.find(ent.kind);
    if (spec_it == entities_.end()) {
      out.push_back({"unknown_entity_kind", ent.name,
                     str_format("kind '%s' is not in the schema",
                                ent.kind.c_str())});
      continue;
    }
    const entity_spec& spec = spec_it->second;
    {
      const std::string& kind = ent.kind;
      for (const attr_spec& a : spec.attrs) {
        const auto it = ent.attrs.find(a.key);
        if (it == ent.attrs.end()) {
          if (a.required) {
            out.push_back({"missing_attr", ent.name,
                           str_format("%s requires attribute '%s'",
                                      kind.c_str(), a.key.c_str())});
          }
          continue;
        }
        if (!type_matches(it->second, a.type)) {
          out.push_back({"attr_type", ent.name,
                         str_format("'%s' must be %s, got '%s'",
                                    a.key.c_str(), attr_type_name(a.type),
                                    attr_to_string(it->second).c_str())});
          continue;
        }
        const auto num = numeric_of(it->second);
        if (num.has_value()) {
          if (a.min.has_value() && *num < *a.min) {
            out.push_back({"attr_range", ent.name,
                           str_format("'%s' = %g below schema minimum %g",
                                      a.key.c_str(), *num, *a.min)});
          }
          if (a.max.has_value() && *num > *a.max) {
            out.push_back({"attr_range", ent.name,
                           str_format("'%s' = %g above schema maximum %g",
                                      a.key.c_str(), *num, *a.max)});
          }
        }
      }
    }
  }

  // Unknown relation kinds — the "cannot represent it" signal.
  for (const twin_relation& r : m.all_relations()) {
    if (r.alive && !relations_.contains(r.kind)) {
      out.push_back({"unknown_relation_kind", r.kind,
                     str_format("relation kind '%s' is not in the schema",
                                r.kind.c_str())});
    }
  }

  // Relations: legal endpoint kinds, cardinality.
  std::map<std::pair<std::string, entity_id>, int> out_counts;
  std::map<std::pair<std::string, entity_id>, int> in_counts;
  for (const auto& [kind, spec] : relations_) {
    for (const twin_relation* r : m.relations_of_kind(kind)) {
      const twin_entity& from = m.entity(r->from);
      const twin_entity& to = m.entity(r->to);
      if (from.kind != spec.from_kind || to.kind != spec.to_kind) {
        out.push_back({"relation_endpoints", kind,
                       str_format("%s(%s -> %s) must be %s -> %s",
                                  kind.c_str(), from.kind.c_str(),
                                  to.kind.c_str(), spec.from_kind.c_str(),
                                  spec.to_kind.c_str())});
      }
      ++out_counts[{kind, r->from}];
      ++in_counts[{kind, r->to}];
    }
    for (const auto& [key, count] : out_counts) {
      if (key.first == kind && spec.max_out >= 0 && count > spec.max_out) {
        out.push_back({"cardinality", m.entity(key.second).name,
                       str_format("%d out-relations '%s', max %d", count,
                                  kind.c_str(), spec.max_out)});
      }
    }
    for (const auto& [key, count] : in_counts) {
      if (key.first == kind && spec.max_in >= 0 && count > spec.max_in) {
        out.push_back({"cardinality", m.entity(key.second).name,
                       str_format("%d in-relations '%s', max %d", count,
                                  kind.c_str(), spec.max_in)});
      }
    }
  }
  return out;
}

twin_schema twin_schema::network_schema() {
  twin_schema s;
  s.add_entity_spec(
      {"rack",
       {{"rack_units", attr_type::integer, true, 1.0, 60.0},
        {"power_budget_w", attr_type::number, true, 0.0, 40000.0},
        {"row", attr_type::integer, false, 0.0, std::nullopt}}});
  s.add_entity_spec(
      {"switch",
       {{"radix", attr_type::integer, true, 1.0, 512.0},
        {"port_rate_gbps", attr_type::number, true, 1.0, 800.0},
        {"rack_units", attr_type::integer, true, 1.0, 16.0},
        {"power_w", attr_type::number, true, 0.0, 5000.0},
        {"drained", attr_type::boolean, false, std::nullopt, std::nullopt}}});
  s.add_entity_spec(
      {"cable",
       {{"rate_gbps", attr_type::number, true, 1.0, 800.0},
        {"length_m", attr_type::number, true, 0.0, 2000.0},
        {"diameter_mm", attr_type::number, true, 0.5, 20.0},
        {"medium", attr_type::text, true, std::nullopt, std::nullopt}}});
  s.add_entity_spec(
      {"patch_panel",
       {{"ports", attr_type::integer, true, 1.0, 4096.0},
        {"insertion_loss_db", attr_type::number, true, 0.0, 2.0}}});
  s.add_entity_spec(
      {"power_feed",
       {{"capacity_w", attr_type::number, true, 0.0, 1000000.0}}});

  s.add_relation_spec({"placed_in", "switch", "rack", 1, -1});
  // A cable terminates on exactly two switches: modeled as two
  // 'terminates_on' relations out of the cable.
  s.add_relation_spec({"terminates_on", "cable", "switch", 2, -1});
  s.add_relation_spec({"patched_through", "cable", "patch_panel", -1, -1});
  s.add_relation_spec({"feeds", "power_feed", "rack", -1, 2});
  return s;
}

}  // namespace pn
