#include "twin/serialize.h"

#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

bool has_space(const std::string& s) {
  return s.find_first_of(" \t\n\r") != std::string::npos;
}

// String attribute values may contain any byte, including newlines that
// would otherwise split the record across lines and corrupt the parse.
// Escape exactly the bytes the line format cannot carry raw; everything
// else (spaces included) passes through, so common values stay readable.
std::string escape_str_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string unescape_str_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char next = s[++i];
      if (next == 'n') {
        out += '\n';
      } else if (next == 'r') {
        out += '\r';
      } else {
        out += next;  // covers "\\\\"; unknown escapes degrade to literal
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

std::string serialize_twin(const twin_model& m) {
  std::ostringstream out;
  for (const twin_entity& e : m.all_entities()) {
    if (!e.alive) continue;
    PN_CHECK_MSG(!has_space(e.kind) && !has_space(e.name),
                 "kinds/names must be whitespace-free to serialize");
    out << "entity " << e.kind << " " << e.name << "\n";
    for (const auto& [key, value] : e.attrs) {
      PN_CHECK_MSG(!has_space(key), "attr keys must be whitespace-free");
      out << "attr " << e.kind << " " << e.name << " " << key << " ";
      if (const auto* i = std::get_if<std::int64_t>(&value)) {
        out << "int " << *i;
      } else if (const auto* d = std::get_if<double>(&value)) {
        out << "num " << str_format("%.17g", *d);
      } else if (const auto* b = std::get_if<bool>(&value)) {
        out << "bool " << (*b ? "true" : "false");
      } else {
        out << "str " << escape_str_value(std::get<std::string>(value));
      }
      out << "\n";
    }
  }
  for (const twin_relation& r : m.all_relations()) {
    if (!r.alive) continue;
    const twin_entity& from = m.entity(r.from);
    const twin_entity& to = m.entity(r.to);
    if (!from.alive || !to.alive) continue;
    out << "relation " << r.kind << " " << from.kind << " " << from.name
        << " " << to.kind << " " << to.name << "\n";
  }
  return out.str();
}

result<twin_model> parse_twin(const std::string& text) {
  twin_model m;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) {
    return invalid_argument_error(
        str_format("line %zu: %s", line_no, why.c_str()));
  };

  while (std::getline(in, line)) {
    ++line_no;
    // getline keeps the \r of CRLF line endings; without this a trailing
    // \r sticks to the last token and corrupts names and str values.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;

    if (directive == "entity") {
      std::string kind, name;
      ls >> kind >> name;
      if (kind.empty() || name.empty()) return fail("malformed entity");
      if (m.find(kind, name).has_value()) {
        return fail("duplicate entity " + name);
      }
      m.add_entity(kind, name);
    } else if (directive == "attr") {
      std::string kind, name, key, type;
      ls >> kind >> name >> key >> type;
      if (type.empty()) return fail("malformed attr");
      const auto e = m.find(kind, name);
      if (!e.has_value()) return fail("attr for unknown entity " + name);
      if (type == "int") {
        std::int64_t v = 0;
        if (!(ls >> v)) return fail("bad int value");
        m.set_attr(*e, key, v);
      } else if (type == "num") {
        double v = 0.0;
        if (!(ls >> v)) return fail("bad num value");
        m.set_attr(*e, key, v);
      } else if (type == "bool") {
        std::string v;
        ls >> v;
        if (v != "true" && v != "false") return fail("bad bool value");
        m.set_attr(*e, key, v == "true");
      } else if (type == "str") {
        std::string rest;
        std::getline(ls, rest);
        if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
        m.set_attr(*e, key, unescape_str_value(rest));
      } else {
        return fail("unknown attr type " + type);
      }
    } else if (directive == "relation") {
      std::string rel, fk, fn, tk, tn;
      ls >> rel >> fk >> fn >> tk >> tn;
      if (tn.empty()) return fail("malformed relation");
      const auto from = m.find(fk, fn);
      const auto to = m.find(tk, tn);
      if (!from.has_value()) return fail("relation from unknown " + fn);
      if (!to.has_value()) return fail("relation to unknown " + tn);
      const status s = m.add_relation(rel, *from, *to);
      if (!s.is_ok()) return fail(s.to_string());
    } else {
      return fail("unknown directive " + directive);
    }
  }
  return m;
}

}  // namespace pn
