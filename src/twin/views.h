// Multi-level abstraction views over twin models.
//
// MALT (Mogul et al., NSDI'20 — cited in §5.2) models networks "at
// multiple levels of abstraction": planners want pods and blocks, repair
// automation wants line cards and fibers. A view rolls a detailed model
// up into a coarser one: entities sharing a grouping attribute collapse
// into one aggregate entity carrying summed/representative attributes,
// and relations are re-pointed (and deduplicated with multiplicity)
// between aggregates. The rollup is itself a twin_model, so every tool in
// this library — schema validation, dry runs, serialization, rule
// inference — works on it unchanged.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "twin/model.h"

namespace pn {

struct rollup_spec {
  // Entities of this kind are grouped...
  std::string source_kind;
  // ...by the value of this attribute (e.g. "pod", "row"); entities
  // missing the attribute each form their own singleton group.
  std::string group_by_attr;
  // The aggregate entities' kind and name prefix ("pod" -> "pod3").
  std::string aggregate_kind;
  // Numeric attributes to sum across the group (e.g. "power_w").
  std::vector<std::string> sum_attrs;
};

struct rollup_result {
  twin_model model;
  // source entity name -> aggregate entity name, for drill-down.
  std::map<std::string, std::string> member_of;
  std::size_t aggregates = 0;
};

// Builds the rolled-up model. Entities of kinds other than source_kind
// are copied through unchanged; relations with one or both endpoints in a
// group are re-pointed at the aggregate, keeping parallel relations as
// parallels (their count is the inter-aggregate multiplicity). Relations
// that become self-loops on an aggregate (intra-group links) are dropped,
// with the count recorded on the aggregate as "internal_<relkind>".
// Fails with invalid_argument if the aggregate kind collides with an
// existing kind in the model.
[[nodiscard]] result<rollup_result> roll_up(const twin_model& detailed,
                                            const rollup_spec& spec);

}  // namespace pn
