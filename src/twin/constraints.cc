#include "twin/constraints.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

class rack_space_check final : public constraint_checker {
 public:
  std::string name() const override { return "rack_space"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    for (const rack& r : d.floor->racks()) {
      const int used = d.place->used_units(r.id);
      if (used > r.rack_units) {
        out.push_back({name(), violation_severity::error, r.name,
                       str_format("%d RU used, %d available", used,
                                  r.rack_units)});
      }
    }
  }
};

class rack_power_check final : public constraint_checker {
 public:
  std::string name() const override { return "rack_power"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    for (const rack& r : d.floor->racks()) {
      watts draw{0.0};
      for (node_id n : d.place->nodes_in(r.id)) {
        const node_info& info = d.graph->node(n);
        draw += d.cat->switches().power(info.radix, info.port_rate);
      }
      const double frac = draw.value() / r.power_budget.value();
      if (frac > 1.0) {
        out.push_back({name(), violation_severity::error, r.name,
                       str_format("%.0fW draw vs %.0fW budget", draw.value(),
                                  r.power_budget.value())});
      } else if (frac > 0.9) {
        out.push_back({name(), violation_severity::warning, r.name,
                       str_format("power at %.0f%% of budget", frac * 100)});
      }
    }
  }
};

class tray_capacity_check final : public constraint_checker {
 public:
  std::string name() const override { return "tray_capacity"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    const tray_graph& trays = d.floor->trays();
    for (std::size_t t = 0; t < trays.segment_count(); ++t) {
      const double f = trays.fill_fraction(tray_id{t});
      if (f > 1.0) {
        out.push_back({name(), violation_severity::error,
                       str_format("tray segment %zu", t),
                       str_format("fill %.0f%%", f * 100)});
      } else if (f > 0.8) {
        out.push_back({name(), violation_severity::warning,
                       str_format("tray segment %zu", t),
                       str_format("fill %.0f%% (no headroom for the next "
                                  "generation, see §2.1)",
                                  f * 100)});
      }
    }
  }
};

class plenum_check final : public constraint_checker {
 public:
  std::string name() const override { return "plenum"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    for (const auto& [rk, fill] : d.cables->plenum_fill) {
      const std::string& rack_name = d.floor->rack_at(rk).name;
      if (fill > 1.0) {
        out.push_back({name(), violation_severity::error, rack_name,
                       str_format("cable cross-section at %.0f%% of plenum",
                                  fill * 100)});
      } else if (fill > 0.7) {
        out.push_back({name(), violation_severity::warning, rack_name,
                       str_format("plenum %.0f%% full; airflow impaired",
                                  fill * 100)});
      }
    }
  }
};

class bend_radius_check final : public constraint_checker {
 public:
  std::string name() const override { return "bend_radius"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    // The space available to turn a cable inside the rack entry: an
    // eighth of the rack width (cables enter beside the rails).
    const millimeters allowance{
        d.floor->params().rack_width.value() * 1000.0 / 8.0};
    for (const cable_run& r : d.cables->runs) {
      if (r.choice.cable->min_bend_radius > allowance) {
        out.push_back(
            {name(), violation_severity::error, r.choice.cable->name,
             str_format("min bend radius %.0fmm exceeds the %.0fmm "
                        "available at the rack entry",
                        r.choice.cable->min_bend_radius.value(),
                        allowance.value())});
      }
    }
  }
};

class reach_check final : public constraint_checker {
 public:
  std::string name() const override { return "reach"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    for (const cable_run& r : d.cables->runs) {
      meters limit = r.choice.cable->max_length;
      if (r.choice.transceiver != nullptr) {
        limit = std::min(limit, r.choice.transceiver->reach);
      }
      if (r.length > limit) {
        out.push_back({name(), violation_severity::error,
                       r.choice.cable->name,
                       str_format("routed %.1fm exceeds %.1fm reach",
                                  r.length.value(), limit.value())});
      }
    }
  }
};

class loss_budget_check final : public constraint_checker {
 public:
  std::string name() const override { return "loss_budget"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    for (const cable_run& r : d.cables->runs) {
      if (r.choice.transceiver == nullptr) continue;
      const decibels loss =
          catalog::fiber_loss_per_meter() * r.length.value() +
          catalog::connector_loss() * 2.0 +
          catalog::indirection_loss() * static_cast<double>(r.indirections);
      if (loss > r.choice.transceiver->loss_budget) {
        out.push_back(
            {name(), violation_severity::error, r.choice.transceiver->name,
             str_format("%.2fdB loss (%d indirections) vs %.2fdB budget",
                        loss.value(), r.indirections,
                        r.choice.transceiver->loss_budget.value())});
      }
    }
  }
};

class path_diversity_check final : public constraint_checker {
 public:
  std::string name() const override { return "path_diversity"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    // Parallel links between one switch pair should not all traverse the
    // same tray segment: a single cut would sever the whole adjacency.
    std::map<std::pair<node_id, node_id>, std::vector<const cable_run*>>
        groups;
    for (const cable_run& r : d.cables->runs) {
      if (r.route.segments.empty()) continue;  // intra-rack
      const edge_info& e = d.graph->edge(r.edge);
      groups[std::minmax(e.a, e.b)].push_back(&r);
    }
    for (const auto& [pair, runs] : groups) {
      if (runs.size() < 2) continue;
      // Intersect tray-segment sets across all parallel runs.
      std::set<tray_id> common(runs[0]->route.segments.begin(),
                               runs[0]->route.segments.end());
      for (std::size_t i = 1; i < runs.size() && !common.empty(); ++i) {
        std::set<tray_id> next;
        for (tray_id t : runs[i]->route.segments) {
          if (common.contains(t)) next.insert(t);
        }
        common = std::move(next);
      }
      if (!common.empty()) {
        out.push_back(
            {name(), violation_severity::warning,
             d.graph->node(pair.first).name + " <-> " +
                 d.graph->node(pair.second).name,
             str_format("%zu parallel links share %zu tray segment(s): "
                        "physical SPOF",
                        runs.size(), common.size())});
      }
    }
  }
};

class failure_domain_check final : public constraint_checker {
 public:
  std::string name() const override { return "failure_domain"; }
  void run(const physical_design& d,
           std::vector<constraint_violation>& out) const override {
    // §3.3: a redundancy group (all spines of one group, all aggs of one
    // pod) placed entirely on one power feed fails together when that
    // feed does — the abstract design's redundancy is fictitious.
    std::map<std::pair<int, int>, std::set<int>> feeds_of_group;
    std::map<std::pair<int, int>, std::size_t> group_sizes;
    for (std::size_t i = 0; i < d.graph->node_count(); ++i) {
      const node_id n{i};
      const node_info& info = d.graph->node(n);
      if (info.layer == 0) continue;  // ToRs are not redundancy groups
      const auto key = std::make_pair(info.layer, info.block);
      feeds_of_group[key].insert(d.floor->feed_of(d.place->rack_of(n)));
      ++group_sizes[key];
    }
    for (const auto& [key, feeds] : feeds_of_group) {
      if (group_sizes[key] >= 2 && feeds.size() == 1) {
        out.push_back(
            {name(), violation_severity::warning,
             str_format("layer-%d block %d", key.first, key.second),
             str_format("%zu redundant switches all on power feed %d",
                        group_sizes[key], *feeds.begin())});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<constraint_checker>> standard_checkers() {
  std::vector<std::unique_ptr<constraint_checker>> out;
  out.push_back(std::make_unique<rack_space_check>());
  out.push_back(std::make_unique<rack_power_check>());
  out.push_back(std::make_unique<tray_capacity_check>());
  out.push_back(std::make_unique<plenum_check>());
  out.push_back(std::make_unique<bend_radius_check>());
  out.push_back(std::make_unique<reach_check>());
  out.push_back(std::make_unique<loss_budget_check>());
  out.push_back(std::make_unique<path_diversity_check>());
  out.push_back(std::make_unique<failure_domain_check>());
  return out;
}

std::vector<constraint_violation> run_all_checks(const physical_design& d) {
  PN_CHECK(d.graph != nullptr && d.place != nullptr && d.floor != nullptr &&
           d.cables != nullptr && d.cat != nullptr);
  std::vector<constraint_violation> out;
  for (const auto& checker : standard_checkers()) {
    checker->run(d, out);
  }
  return out;
}

std::size_t count_errors(const std::vector<constraint_violation>& v) {
  return static_cast<std::size_t>(
      std::count_if(v.begin(), v.end(), [](const constraint_violation& cv) {
        return cv.severity == violation_severity::error;
      }));
}

}  // namespace pn
