#include "twin/envelope.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

void capability_envelope::set_range(const std::string& dimension, double min,
                                    double max) {
  PN_CHECK(min <= max);
  ranges_[dimension] = {min, max};
}

void capability_envelope::allow_value(const std::string& dimension,
                                      const std::string& value) {
  categories_[dimension].insert(value);
}

capability_envelope capability_envelope::clos_automation() {
  capability_envelope e;
  // What a Clos-only automation stack has been tested against: pods of
  // homogeneous switches, at most two link rates in flight (one
  // generation overlap), bounded cable sizes, bundles between a modest
  // number of rack pairs.
  e.set_range("distinct_radixes", 1, 3);
  e.set_range("distinct_link_rates", 1, 2);
  e.set_range("max_switch_radix", 4, 256);
  e.set_range("max_cable_length_m", 0, 300);
  e.set_range("max_cable_diameter_mm", 0, 12);
  e.set_range("max_plenum_fill", 0, 0.9);
  e.allow_value("topology_family", "clos");
  e.allow_value("topology_family", "fat_tree");
  e.allow_value("topology_family", "leaf_spine");
  e.allow_value("topology_family", "jupiter_fat_tree");
  e.allow_value("media", "DAC");
  e.allow_value("media", "AEC");
  e.allow_value("media", "AOC");
  e.allow_value("media", "fiber");
  return e;
}

std::vector<envelope_finding> capability_envelope::check_scalar(
    const std::string& dimension, double value) const {
  std::vector<envelope_finding> out;
  const auto it = ranges_.find(dimension);
  if (it == ranges_.end()) return out;  // unconstrained dimension
  if (value < it->second.min || value > it->second.max) {
    out.push_back({dimension,
                   str_format("%g outside supported range [%g, %g]", value,
                              it->second.min, it->second.max)});
  }
  return out;
}

std::vector<envelope_finding> capability_envelope::check_category(
    const std::string& dimension, const std::string& value) const {
  std::vector<envelope_finding> out;
  const auto it = categories_.find(dimension);
  if (it == categories_.end()) return out;
  if (!it->second.contains(value)) {
    out.push_back({dimension, "unsupported value '" + value + "'"});
  }
  return out;
}

design_summary summarize_design(const network_graph& g,
                                const cabling_plan& plan) {
  design_summary s;
  std::set<int> radixes;
  std::set<long long> rates;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_info& n = g.node(node_id{i});
    radixes.insert(n.radix);
    rates.insert(static_cast<long long>(n.port_rate.value()));
    s.max_switch_radix =
        std::max(s.max_switch_radix, static_cast<double>(n.radix));
  }
  s.distinct_radixes = static_cast<int>(radixes.size());
  s.distinct_link_rates = static_cast<int>(rates.size());
  s.topology_families.insert(g.family);

  std::set<std::pair<rack_id, rack_id>> pairs;
  for (const cable_run& r : plan.runs) {
    s.max_cable_length_m = std::max(s.max_cable_length_m, r.length.value());
    s.max_cable_diameter_mm =
        std::max(s.max_cable_diameter_mm, r.choice.diameter.value());
    s.media.insert(cable_medium_name(r.choice.cable->medium));
    if (r.rack_a != r.rack_b) {
      pairs.insert(std::minmax(r.rack_a, r.rack_b));
    }
  }
  s.max_bundle_pairs = static_cast<double>(pairs.size());
  for (const auto& [rk, fill] : plan.plenum_fill) {
    s.max_plenum_fill = std::max(s.max_plenum_fill, fill);
  }
  return s;
}

std::vector<envelope_finding> capability_envelope::check_design(
    const network_graph& g, const cabling_plan& plan) const {
  const design_summary s = summarize_design(g, plan);
  std::vector<envelope_finding> out;
  auto absorb = [&](std::vector<envelope_finding> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  absorb(check_scalar("distinct_radixes", s.distinct_radixes));
  absorb(check_scalar("distinct_link_rates", s.distinct_link_rates));
  absorb(check_scalar("max_switch_radix", s.max_switch_radix));
  absorb(check_scalar("max_cable_length_m", s.max_cable_length_m));
  absorb(check_scalar("max_cable_diameter_mm", s.max_cable_diameter_mm));
  absorb(check_scalar("max_plenum_fill", s.max_plenum_fill));
  for (const std::string& fam : s.topology_families) {
    absorb(check_category("topology_family", fam));
  }
  for (const std::string& m : s.media) {
    absorb(check_category("media", m));
  }
  return out;
}

}  // namespace pn
