// Declarative schema over twin models.
//
// §5.2: "by moving knowledge about a design out of automation code, and
// into a declarative data representation, we can at least detect
// out-of-envelope designs because we cannot represent them without schema
// changes." A schema declares which entity kinds exist, which attributes
// they must carry (with type and numeric range), and which relation kinds
// are legal between which entity kinds with what cardinality. Validation
// reports every deviation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "twin/model.h"

namespace pn {

enum class attr_type { integer, number, text, boolean };

struct attr_spec {
  std::string key;
  attr_type type = attr_type::number;
  bool required = true;
  // Range for numeric attributes (the per-dimension envelope hook).
  std::optional<double> min;
  std::optional<double> max;
};

struct entity_spec {
  std::string kind;
  std::vector<attr_spec> attrs;
};

struct relation_spec {
  std::string kind;
  std::string from_kind;
  std::string to_kind;
  // Max live out-relations of this kind per source entity (-1 unlimited).
  int max_out = -1;
  // Max live in-relations of this kind per target entity (-1 unlimited).
  int max_in = -1;
};

struct schema_violation {
  std::string rule;     // which check fired
  std::string subject;  // entity/relation involved
  std::string detail;
};

class twin_schema {
 public:
  void add_entity_spec(entity_spec s);
  void add_relation_spec(relation_spec s);

  [[nodiscard]] bool knows_entity_kind(const std::string& kind) const;
  [[nodiscard]] bool knows_relation_kind(const std::string& kind) const;

  // Full validation of a model: unknown kinds, missing/mistyped/out-of-
  // range attributes, illegal relation endpoints, cardinality overflows.
  [[nodiscard]] std::vector<schema_violation> validate(
      const twin_model& m) const;

  // The schema used by the built-in network twin: racks, switches, ports
  // implied by counts, cables, patch panels, power feeds.
  [[nodiscard]] static twin_schema network_schema();

 private:
  std::map<std::string, entity_spec> entities_;
  std::map<std::string, relation_spec> relations_;
};

}  // namespace pn
