// Capability envelopes (§5.2, §5.4).
//
// "We initially hoped to be able to define a multi-dimensional 'capability
// envelope,' representing the variability that our automation software
// could handle without changes." An envelope is a set of named scalar
// ranges plus allowed categorical values; a design summary is measured
// against it and every out-of-envelope dimension is reported. The paper's
// point that some dimensions resist simple metrics is preserved: anything
// not expressible here must instead surface as a schema change (schema.h).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "physical/cabling.h"
#include "physical/placement.h"
#include "topology/graph.h"

namespace pn {

struct envelope_range {
  double min = 0.0;
  double max = 0.0;
};

struct envelope_finding {
  std::string dimension;
  std::string detail;
};

class capability_envelope {
 public:
  void set_range(const std::string& dimension, double min, double max);
  void allow_value(const std::string& dimension, const std::string& value);

  // Envelope of a deployment-automation stack that has only ever handled
  // conventional Clos fabrics (the default the benches test novel designs
  // against).
  [[nodiscard]] static capability_envelope clos_automation();

  [[nodiscard]] std::vector<envelope_finding> check_scalar(
      const std::string& dimension, double value) const;
  [[nodiscard]] std::vector<envelope_finding> check_category(
      const std::string& dimension, const std::string& value) const;

  // Measures a full design and checks every known dimension.
  [[nodiscard]] std::vector<envelope_finding> check_design(
      const network_graph& g, const cabling_plan& plan) const;

 private:
  std::map<std::string, envelope_range> ranges_;
  std::map<std::string, std::set<std::string>> categories_;
};

// Scalar dimensions measured from a design. Exposed so tests and benches
// can inspect the measurement itself.
struct design_summary {
  int distinct_radixes = 0;
  int distinct_link_rates = 0;
  double max_switch_radix = 0.0;
  double max_cable_length_m = 0.0;
  double max_cable_diameter_mm = 0.0;
  double max_bundle_pairs = 0.0;       // distinct rack pairs with cables
  double max_plenum_fill = 0.0;
  std::set<std::string> topology_families;
  std::set<std::string> media;
};

[[nodiscard]] design_summary summarize_design(const network_graph& g,
                                              const cabling_plan& plan);

}  // namespace pn
