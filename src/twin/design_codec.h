// Lossless twin encoding of an abstract design (network_graph).
//
// The evaluation service's wire format is the twin serialization
// (twin/serialize.h): a request carries serialize_twin(design_to_twin(g))
// and the server rebuilds the graph with design_from_twin. The codec is
// exact — node order, edge order, dead edges, every node_info/edge_info
// field — because evaluation results are a deterministic function of the
// graph, and the service promises bit-identical reports to a local
// evaluate_design call on the same design.
//
// Encoding (kinds/attrs, one twin per design):
//   fabric  "fabric"      family, nodes, links
//   switch  <node name>   index, kind, radix, port_rate_gbps, host_ports,
//                         layer, block
//   link    "link<i>"     index, a, b (endpoint node indices),
//                         capacity_gbps, via_indirection, indirection_unit,
//                         alive
// plus a "connects" relation from each link to both endpoint switches, so
// generic twin tooling (views, diffs, dry runs) sees the topology.
#pragma once

#include "common/status.h"
#include "topology/graph.h"
#include "twin/model.h"

namespace pn {

[[nodiscard]] twin_model design_to_twin(const network_graph& g);

// Rebuilds the graph. Fails with corrupt_data when the model is not a
// design twin (missing fabric entity, non-contiguous indices, endpoint
// out of range, attribute of the wrong type).
[[nodiscard]] result<network_graph> design_from_twin(const twin_model& m);

}  // namespace pn
