// Declarative entity-relation model of a network deployment — the
// "digital twin" substrate of §5.2/§5.3.
//
// The paper's experience: moving knowledge about a design "out of
// automation code, and into a declarative data representation" lets
// out-of-envelope designs be detected because they cannot be represented
// without schema changes (MALT is the production version of this idea).
// A twin_model is a typed property graph: entities with kind + attributes,
// and directed, kinded relations. Referential integrity is enforced here;
// semantic rules live in schema.h and constraints.h.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace pn {

using attr_value = std::variant<std::int64_t, double, std::string, bool>;

[[nodiscard]] std::string attr_to_string(const attr_value& v);

struct twin_entity {
  entity_id id;
  std::string kind;   // e.g. "switch", "cable", "rack", "patch_panel"
  std::string name;   // unique within kind
  std::map<std::string, attr_value> attrs;
  bool alive = true;
};

struct twin_relation {
  std::string kind;   // e.g. "placed_in", "connects", "feeds", "carries"
  entity_id from;
  entity_id to;
  bool alive = true;
};

class twin_model {
 public:
  entity_id add_entity(std::string kind, std::string name);

  // Removal fails (unavailable) while live relations still reference the
  // entity — the referential-integrity rule that makes naive decom plans
  // fail loudly in the twin instead of silently in the building (§2.1).
  status remove_entity(entity_id e);

  status add_relation(std::string kind, entity_id from, entity_id to);
  status remove_relation(std::string kind, entity_id from, entity_id to);

  void set_attr(entity_id e, const std::string& key, attr_value v);
  [[nodiscard]] std::optional<attr_value> attr(entity_id e,
                                               const std::string& key) const;
  [[nodiscard]] std::optional<double> attr_number(
      entity_id e, const std::string& key) const;

  [[nodiscard]] bool entity_alive(entity_id e) const;
  [[nodiscard]] const twin_entity& entity(entity_id e) const;
  [[nodiscard]] std::optional<entity_id> find(const std::string& kind,
                                              const std::string& name) const;
  [[nodiscard]] std::vector<entity_id> entities_of_kind(
      const std::string& kind) const;

  // Live relations touching e (as source or target).
  [[nodiscard]] std::vector<const twin_relation*> relations_of(
      entity_id e) const;
  [[nodiscard]] std::vector<const twin_relation*> relations_of_kind(
      const std::string& kind) const;
  // Live targets of relations `kind` out of e.
  [[nodiscard]] std::vector<entity_id> related(entity_id e,
                                               const std::string& kind) const;
  // Live sources of relations `kind` into e.
  [[nodiscard]] std::vector<entity_id> related_in(
      entity_id e, const std::string& kind) const;

  [[nodiscard]] std::size_t live_entity_count() const;
  [[nodiscard]] std::size_t live_relation_count() const;

  // Full stores (including dead records) for iteration by validators.
  [[nodiscard]] const std::vector<twin_entity>& all_entities() const {
    return entities_;
  }
  [[nodiscard]] const std::vector<twin_relation>& all_relations() const {
    return relations_;
  }

 private:
  std::vector<twin_entity> entities_;
  std::vector<twin_relation> relations_;
  // (kind, name) -> id for find(); stale entries are validated on lookup.
  std::map<std::pair<std::string, std::string>, entity_id> by_name_;
};

}  // namespace pn
