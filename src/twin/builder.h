// Builds a twin_model from a concrete physical design, using the kinds
// and attributes of twin_schema::network_schema(). This is the bridge
// from the simulation-side objects (graph/placement/cabling) to the
// declarative representation dry runs and decom safety work on.
#pragma once

#include "physical/cabling.h"
#include "physical/catalog.h"
#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/graph.h"
#include "twin/model.h"

namespace pn {

// Entity names: racks use their floorplan names, switches their graph
// names, cables "cable<edge-index>", panels "panel<i>".
[[nodiscard]] twin_model build_network_twin(const network_graph& g,
                                            const placement& pl,
                                            const floorplan& fp,
                                            const cabling_plan& plan,
                                            const catalog& cat);

}  // namespace pn
