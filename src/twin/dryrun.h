// Dry-run engine: execute a change plan against a copy of the twin and
// report every step that would fail, before anyone touches hardware.
//
// §5.3: "Almost all of [our deployment mistakes and delays] could have
// been averted if we could do multi-layer digital-twin dry runs." A plan
// is a sequence of twin_ops (add/remove entities and relations, set
// attributes); the engine applies them to a private copy, surfacing
// referential-integrity failures (e.g. removing a switch whose cables are
// still connected) and schema violations at the exact step they occur.
#pragma once

#include <string>
#include <vector>

#include "twin/model.h"
#include "twin/schema.h"

namespace pn {

struct twin_op {
  enum class op_kind {
    add_entity,
    remove_entity,
    add_relation,
    remove_relation,
    set_attr,
  };
  op_kind kind = op_kind::add_entity;
  // Entity ops: target (entity_kind, entity_name). add_entity also applies
  // `attrs`.
  std::string entity_kind;
  std::string entity_name;
  std::vector<std::pair<std::string, attr_value>> attrs;
  // Relation ops.
  std::string relation_kind;
  std::string from_kind, from_name;
  std::string to_kind, to_name;
  // What a human would read in the work order.
  std::string description;
};

[[nodiscard]] twin_op op_add_entity(
    std::string kind, std::string name,
    std::vector<std::pair<std::string, attr_value>> attrs = {},
    std::string description = "");
[[nodiscard]] twin_op op_remove_entity(std::string kind, std::string name,
                                       std::string description = "");
[[nodiscard]] twin_op op_add_relation(std::string rel, std::string from_kind,
                                      std::string from_name,
                                      std::string to_kind,
                                      std::string to_name,
                                      std::string description = "");
[[nodiscard]] twin_op op_remove_relation(std::string rel,
                                         std::string from_kind,
                                         std::string from_name,
                                         std::string to_kind,
                                         std::string to_name,
                                         std::string description = "");
[[nodiscard]] twin_op op_set_attr(std::string kind, std::string name,
                                  std::string key, attr_value value,
                                  std::string description = "");

struct dry_run_step_failure {
  std::size_t step = 0;
  std::string description;
  status op_status;                           // op-level failure, if any
  std::vector<schema_violation> violations;   // schema failures after op
};

struct dry_run_report {
  bool ok = true;
  std::size_t steps_executed = 0;
  std::vector<dry_run_step_failure> failures;
};

struct dry_run_options {
  // Validate the whole model against the schema after every step (precise
  // but O(steps * model)); when false, validates once at the end.
  bool validate_each_step = true;
  // Keep executing past a failed step (to collect every problem at once).
  bool continue_after_failure = true;
};

class dry_run_engine {
 public:
  // Takes a snapshot of the model; the original is never modified.
  dry_run_engine(twin_model snapshot, const twin_schema* schema);

  [[nodiscard]] dry_run_report run(const std::vector<twin_op>& ops,
                                   const dry_run_options& opt = {});

  // State after the last run — what the world would look like if the plan
  // were executed.
  [[nodiscard]] const twin_model& model() const { return model_; }

 private:
  [[nodiscard]] status apply(const twin_op& op);

  twin_model model_;
  const twin_schema* schema_;
};

}  // namespace pn
