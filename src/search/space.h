// Deployability-constrained search: the parameter-space descriptor.
//
// A search space names, per topology family from the families.h registry,
// the typed dimensions a search may vary — integer ranges with a step
// (jellyfish switch count or radix, fat-tree k, leaf-spine uplinks) and
// categorical choices (placement strategy) — plus the hard constraints a
// candidate must satisfy before it may enter the Pareto front. It is the
// input half of inverting the evaluator: instead of "what does this
// design cost", "which buildable design meets the floor cheapest"
// (Solnushkin's automated-design program, generalized across every
// registered family).
//
// The text format follows the twin serializer idioms: line-oriented,
// whitespace-separated tokens, `#` comments, CRLF-tolerant, errors as
// "line N: why", and serialize_space∘parse_space is a fixed point.
//
//   physnet-search-space v1
//   name quickstart
//   seed 42
//   option repair off
//   constraint min_hosts 128
//   constraint min_bisection_gbps_per_host 4
//   family jellyfish
//   dim switches range 24 48 8
//   dim strategy choice block random
//   end
//   family fat_tree
//   dim k range 4 8 2
//   end
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/report.h"
#include "topology/graph.h"

namespace pn {

// One typed dimension. int_range carries lo/hi/step and materializes
// lo, lo+step, ... <= hi; int_choice and name_choice carry their value
// lists verbatim. Every kind exposes its values by index, so a candidate
// is just one index per dimension.
enum class dim_kind : std::uint8_t { int_range, int_choice, name_choice };

struct search_dimension {
  std::string name;
  dim_kind kind = dim_kind::int_range;
  // int_range.
  long long lo = 0, hi = 0, step = 1;
  // int_choice / name_choice.
  std::vector<long long> int_values;
  std::vector<std::string> name_values;

  [[nodiscard]] std::size_t value_count() const;
  // Valid for int_range / int_choice (PN_CHECKed).
  [[nodiscard]] long long int_value(std::size_t index) const;
  // Valid for name_choice (PN_CHECKed).
  [[nodiscard]] const std::string& name_value(std::size_t index) const;
  // The value at `index` as its serialized token ("32", "block").
  [[nodiscard]] std::string value_token(std::size_t index) const;
};

// One family block: a registry family name plus the dimensions the
// search varies for it. Dimensions a block does not name stay at the
// registry defaults (build_family's opinionated knobs), so "family
// fat_tree / dim k" means exactly the fat-tree physnet_eval builds.
struct family_space {
  std::string family;
  std::vector<search_dimension> dims;  // file order = canonical order
};

// Hard feasibility constraints: filters applied to a candidate's report
// before Pareto insertion. Infeasible candidates stay in the trace but
// never enter the front.
enum class constraint_kind : std::uint8_t {
  min_hosts,
  min_switches,
  min_bisection_gbps_per_host,
  max_capex_per_host_usd,
  max_time_to_deploy_h,
};

[[nodiscard]] const char* constraint_kind_name(constraint_kind k);

// Inverse of constraint_kind_name (space files, --constraint flags).
[[nodiscard]] std::optional<constraint_kind> constraint_kind_from_name(
    const std::string& name);

struct search_constraint {
  constraint_kind kind = constraint_kind::min_hosts;
  double bound = 0.0;

  [[nodiscard]] bool satisfied_by(const deployability_report& r) const;
};

struct search_space {
  std::string name;
  std::uint64_t seed = 1;
  bool repair = false;       // run the repair sim per evaluation
  bool throughput = true;    // run the ECMP throughput stage
  std::vector<search_constraint> constraints;  // file order
  std::vector<family_space> families;          // file order

  // Total candidate count of the full cartesian grid, across families.
  [[nodiscard]] std::size_t grid_size() const;
};

// One candidate: a family block plus one value index per dimension.
struct search_candidate {
  std::size_t family_index = 0;
  std::vector<std::size_t> value_indices;  // parallel to the block's dims
};

// Canonical label, e.g. "jellyfish/switches=32,strategy=block". Labels
// are unique per candidate and stable across strategies, so they key the
// engine's memo table and name the candidate in every CSV.
[[nodiscard]] std::string candidate_label(const search_space& space,
                                          const search_candidate& c);

// The candidate's placement strategy: the value of its `strategy`
// dimension, or "block" when the block has none.
[[nodiscard]] std::string candidate_strategy(const search_space& space,
                                             const search_candidate& c);

// Builds the candidate's graph. Dimensions override the registry
// defaults for that family; `seed` feeds the randomized families
// (jellyfish, xpander) and is deliberately the *space* seed, not the
// per-candidate evaluation seed, so a candidate's graph is a pure
// function of (space seed, its parameters) regardless of when the
// search discovers it.
[[nodiscard]] result<network_graph> build_candidate(
    const search_space& space, const search_candidate& c,
    std::uint64_t seed);

// Analytic §5.4 expansion-rewiring estimate for the candidate: links
// that must be physically rewired to add one host-facing switch.
// Random-graph families pay ~degree/2 (Jellyfish's construction splices
// the new switch into existing links; Xpander steals matching-edge
// endpoints); pre-provisioned Clos-style fabrics (fat-tree, leaf-spine,
// VL2, Jupiter) pay zero. Computed from the candidate's parameters, not
// from a built graph, so every backend reports the same value and it
// can serve as a Pareto objective the wire protocol never carries.
[[nodiscard]] double expansion_rewires_estimate(const search_space& space,
                                                const search_candidate& c);

// Every dimension name build_candidate understands for `family`, in
// display order. `strategy` is valid everywhere; families with richer
// builders (jellyfish, xpander, leaf_spine, fat_tree) add their own.
[[nodiscard]] std::vector<std::string> known_dimensions(
    const std::string& family);

// Parses the search-space text format. Errors name the offending line;
// a torn or truncated file parses to an error, never a crash.
[[nodiscard]] result<search_space> parse_space(const std::string& text);

// Canonical text for a space; parse_space(serialize_space(s))
// round-trips every field, and serialize∘parse is a fixed point.
[[nodiscard]] std::string serialize_space(const search_space& space);

// The full cartesian product per family block, families in file order,
// later dimensions varying fastest. This is the grid strategy's
// candidate sequence and the ordinal order of a grid run.
[[nodiscard]] std::vector<search_candidate> enumerate_grid(
    const search_space& space);

}  // namespace pn
