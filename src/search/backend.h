// Evaluation backends: how a search batch of candidates becomes a batch
// of deployability reports.
//
// The engine (engine.h) decides *which* candidates to evaluate; a
// backend decides *where*. The local backend drives run_sweep, so a
// search inherits the sweep contract wholesale — --jobs parallelism
// that stays bit-identical to serial, cooperative cancellation,
// per-point deadlines, and the deterministic per-ordinal seeds. The
// serve backend ships each candidate to an evaluation service
// (physnet_serve, or physnet_proxy fronting a fleet) as canonical
// protocol traffic over a fixed set of connections — a real concurrent
// multi-client workload — and is bit-identical to local on every CSV
// column by the differential tests (served reports zero only
// eval_total_ms, which search CSVs never include).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/report.h"
#include "search/space.h"
#include "service/client.h"

namespace pn {

// One candidate the engine wants evaluated. The eval seed is bound to
// the candidate's global discovery ordinal before the backend ever sees
// it, so results cannot depend on how the engine slices its batches.
struct backend_task {
  std::size_t ordinal = 0;
  std::string label;            // candidate_label — the design name
  std::string strategy;         // candidate_strategy — placement choice
  search_candidate candidate;
  std::uint64_t eval_seed = 0;
};

struct backend_outcome {
  // False: the task never ran (cancellation drained it) — not an
  // outcome, just undone work; the engine does not checkpoint it.
  bool evaluated = false;
  bool ok = false;
  deployability_report report;  // meaningful when ok
  status error;                 // meaningful when evaluated && !ok
};

class search_backend {
 public:
  virtual ~search_backend() = default;

  // Evaluates every task; returns outcomes parallel to `tasks`. Builds
  // that fail (e.g. an odd fat-tree k swept into range) become failed
  // outcomes, never crashes.
  [[nodiscard]] virtual std::vector<backend_outcome> evaluate(
      const search_space& space, const std::vector<backend_task>& tasks) = 0;
};

struct local_backend_options {
  // Worker threads per batch (run_sweep jobs). 1 = serial; 0 = one per
  // hardware thread. Results are identical for every value.
  int jobs = 1;
  cancel_token cancel;
  double point_deadline_ms = 0.0;  // per-candidate wall budget, 0 = none
  // Testing hook: request cancellation on `cancel` once this many
  // candidates have completed across the backend's lifetime (0 = off).
  // Deterministic with jobs = 1.
  std::size_t cancel_after = 0;
};

// Evaluates batches through run_sweep. Stateful only for the
// cancel_after counter, which spans batches so "interrupt after N
// evaluations" means N per search, not N per batch.
class local_search_backend final : public search_backend {
 public:
  explicit local_search_backend(local_backend_options opt)
      : opt_(std::move(opt)) {}

  [[nodiscard]] std::vector<backend_outcome> evaluate(
      const search_space& space,
      const std::vector<backend_task>& tasks) override;

 private:
  local_backend_options opt_;
  std::size_t completed_ = 0;
};

struct serve_backend_options {
  std::string endpoint;  // "unix:PATH" or "tcp:HOST:PORT"
  // Concurrent connections; batch tasks are striped across them
  // round-robin, so the stripe → task mapping (and every result) is
  // independent of scheduling. Every channel stays open for the whole
  // search and the server's handlers are thread-per-connection, so this
  // must not exceed the endpoint's conn_threads or the surplus stripes
  // starve.
  int connections = 2;
  retry_policy retry;
  cancel_token cancel;
  // Millisecond sleeper for retry backoff; tests inject a stub.
  std::function<void(double)> sleeper;
};

// Evaluates batches as concurrent client traffic against an evaluation
// service. Connects every channel up front, so a dead endpoint fails
// fast instead of mid-search.
class serve_search_backend final : public search_backend {
 public:
  [[nodiscard]] static result<std::unique_ptr<serve_search_backend>> connect(
      serve_backend_options opt);

  [[nodiscard]] std::vector<backend_outcome> evaluate(
      const search_space& space,
      const std::vector<backend_task>& tasks) override;

 private:
  serve_search_backend(serve_backend_options opt,
                       std::vector<eval_client> clients)
      : opt_(std::move(opt)), clients_(std::move(clients)) {}

  serve_backend_options opt_;
  std::vector<eval_client> clients_;
};

}  // namespace pn
