#include "search/backend.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/sweep.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {

namespace {

backend_outcome failed_outcome(status err) {
  backend_outcome o;
  o.evaluated = true;
  o.ok = false;
  o.error = std::move(err);
  return o;
}

}  // namespace

std::vector<backend_outcome> local_search_backend::evaluate(
    const search_space& space, const std::vector<backend_task>& tasks) {
  std::vector<backend_outcome> out(tasks.size());

  // run_sweep takes one placement strategy per call, so the batch splits
  // into per-strategy sub-sweeps. Grouping is by first appearance, a pure
  // function of the batch, so the split never perturbs results.
  std::vector<std::string> strategies;
  for (const backend_task& t : tasks) {
    if (std::find(strategies.begin(), strategies.end(), t.strategy) ==
        strategies.end()) {
      strategies.push_back(t.strategy);
    }
  }

  for (const std::string& strat : strategies) {
    // Build serially up front: build failures become structured outcomes
    // (run_sweep's build hook cannot fail), and graph construction is
    // cheap next to evaluation.
    std::vector<sweep_point> grid;
    std::vector<std::size_t> grid_to_task;
    std::vector<network_graph> graphs;
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
      if (tasks[ti].strategy != strat) continue;
      if (opt_.cancel.cancelled()) break;  // stays un-evaluated
      auto g = build_candidate(space, tasks[ti].candidate, space.seed);
      if (!g.is_ok()) {
        out[ti] = failed_outcome(g.error());
        ++completed_;
        continue;
      }
      graphs.push_back(std::move(g).value());
      sweep_point pt;
      pt.label = tasks[ti].label;
      pt.seed = tasks[ti].eval_seed;  // ordinal-bound, not batch-position
      grid.push_back(std::move(pt));
      grid_to_task.push_back(ti);
    }
    // Closures bind after `graphs` stops growing; each point is built
    // exactly once, so handing the graph over by move is safe.
    for (std::size_t j = 0; j < grid.size(); ++j) {
      grid[j].build = [&graphs, j] { return std::move(graphs[j]); };
    }

    evaluation_options eopt;
    eopt.seed = space.seed;  // unused: every point carries its own seed
    eopt.strategy = placement_strategy_from_name(strat).value_or(
        placement_strategy::block);
    eopt.run_repair_sim = space.repair;
    eopt.run_throughput = space.throughput;

    sweep_options sopt;
    sopt.jobs = opt_.jobs;
    sopt.cancel = opt_.cancel;
    sopt.point_deadline_ms = opt_.point_deadline_ms;
    if (opt_.cancel_after > 0) {
      if (completed_ >= opt_.cancel_after) {
        opt_.cancel.request_cancel();
      } else {
        sopt.cancel_after_points = opt_.cancel_after - completed_;
      }
    }

    const sweep_results res = run_sweep(grid, eopt, sopt);

    // Reports carry no grid index but are emitted in input order, so
    // after marking failed and cancelled points, the survivors map onto
    // the reports sequentially.
    std::vector<char> settled(grid.size(), 0);
    for (const sweep_failure& f : res.failures) {
      out[grid_to_task[f.point_index]] = failed_outcome(f.error);
      settled[f.point_index] = 1;
      ++completed_;
    }
    for (const std::size_t c : res.cancelled_points) settled[c] = 1;
    std::size_t r = 0;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (settled[j]) continue;
      backend_outcome& o = out[grid_to_task[j]];
      o.evaluated = true;
      o.ok = true;
      o.report = res.reports[r++];
      ++completed_;
    }
  }
  return out;
}

result<std::unique_ptr<serve_search_backend>> serve_search_backend::connect(
    serve_backend_options opt) {
  if (opt.connections < 1) opt.connections = 1;
  if (!opt.sleeper) opt.sleeper = [](double ms) { sleep_ms(ms); };
  std::vector<eval_client> clients;
  clients.reserve(static_cast<std::size_t>(opt.connections));
  for (int i = 0; i < opt.connections; ++i) {
    auto c = eval_client::connect(opt.endpoint);
    if (!c.is_ok()) return c.error();
    clients.push_back(std::move(c).value());
  }
  return std::unique_ptr<serve_search_backend>(
      // pn_lint: allow(naked-new) private ctor bars make_unique
      new serve_search_backend(std::move(opt), std::move(clients)));
}

std::vector<backend_outcome> serve_search_backend::evaluate(
    const search_space& space, const std::vector<backend_task>& tasks) {
  std::vector<backend_outcome> out(tasks.size());
  const std::size_t channels = clients_.size();
  // Stripe j owns tasks j, j+C, j+2C... — a pure function of the batch,
  // so which connection carries which candidate (and therefore every
  // byte on every socket) is deterministic. Each stripe has exclusive
  // use of its client and writes only its own outcome slots.
  parallel_for(static_cast<int>(channels), channels, [&](std::size_t j) {
    for (std::size_t t = j; t < tasks.size(); t += channels) {
      if (opt_.cancel.cancelled()) return;  // rest of stripe un-evaluated
      auto g = build_candidate(space, tasks[t].candidate, space.seed);
      if (!g.is_ok()) {
        out[t] = failed_outcome(g.error());
        continue;
      }
      eval_request req;
      req.name = tasks[t].label;
      req.options.seed = tasks[t].eval_seed;
      req.options.strategy = tasks[t].strategy;
      req.options.run_repair_sim = space.repair;
      req.options.run_throughput = space.throughput;
      req.design_twin = serialize_twin(design_to_twin(g.value()));
      auto rep =
          clients_[j].evaluate_with_retry(req, opt_.retry, opt_.sleeper);
      if (!rep.is_ok()) {
        out[t] = failed_outcome(rep.error());
        continue;
      }
      out[t].evaluated = true;
      out[t].ok = true;
      out[t].report = std::move(rep).value();
    }
  });
  return out;
}

}  // namespace pn
