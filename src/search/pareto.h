// Pareto dominance over deployability objectives.
//
// The search optimizes four objectives at once — capex, time-to-deploy,
// rewiring cost of growth, and bisection bandwidth — because the paper's
// point is exactly that these trade off: the graph-theoretically best
// topology is often the worst to physically build. A scalarized score
// would bake in one exchange rate between dollars and hours; a Pareto
// front keeps every efficient trade on the table.
//
// Dominance: candidate a dominates candidate b iff a is <= b on every
// minimized objective (cost_usd, time_h, rewires), >= on the maximized
// one (bisection_gbps_per_host), and strictly better on at least one.
// All comparisons are exact double compares — objectives come from the
// deterministic evaluator, so equal designs produce bit-equal objectives
// and ties collapse instead of flapping.
#pragma once

#include <cstddef>
#include <vector>

#include "core/report.h"

namespace pn {

struct pareto_objectives {
  double cost_usd = 0.0;    // minimize: capex()
  double time_h = 0.0;      // minimize: time_to_deploy
  double rewires = 0.0;     // minimize: rewires_per_added_switch
  double bisection = 0.0;   // maximize: bisection_gbps_per_host
};

// The four search objectives of a report.
[[nodiscard]] pareto_objectives objectives_of(const deployability_report& r);

// True iff `a` weakly beats `b` everywhere and strictly somewhere.
[[nodiscard]] bool dominates(const pareto_objectives& a,
                             const pareto_objectives& b);

// One front member, keyed by the candidate's global discovery ordinal.
struct pareto_entry {
  std::size_t ordinal = 0;
  pareto_objectives obj;
};

// Incremental non-dominated set. insert() is O(front size): reject a
// dominated candidate, evict members the candidate dominates, append.
// A candidate exactly tied with an existing member on every objective
// joins the front (neither dominates), so distinct designs with equal
// trade-offs all survive — the trace says which is which.
class pareto_front {
 public:
  // True iff the candidate entered the front.
  bool insert(std::size_t ordinal, const pareto_objectives& obj);

  // Members in insertion order (evictions preserve relative order).
  [[nodiscard]] const std::vector<pareto_entry>& entries() const {
    return entries_;
  }

 private:
  std::vector<pareto_entry> entries_;
};

// Reference O(n²) recompute over the whole population: the ordinals of
// every non-dominated entry, in input order. The differential oracle for
// pareto_front in tests, and the "before" side of the pareto_insert
// speedup benchmark.
[[nodiscard]] std::vector<std::size_t> reference_front(
    const std::vector<pareto_entry>& population);

}  // namespace pn
