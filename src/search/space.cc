#include "search/space.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/evaluator.h"
#include "topology/metrics.h"
#include "topology/generators/clos.h"
#include "topology/generators/families.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"
#include "topology/generators/slim_fly.h"
#include "topology/generators/xpander.h"

namespace pn {

std::size_t search_dimension::value_count() const {
  switch (kind) {
    case dim_kind::int_range:
      return step > 0 && hi >= lo
                 ? static_cast<std::size_t>((hi - lo) / step) + 1
                 : 0;
    case dim_kind::int_choice:
      return int_values.size();
    case dim_kind::name_choice:
      return name_values.size();
  }
  return 0;
}

long long search_dimension::int_value(std::size_t index) const {
  PN_CHECK(index < value_count());
  if (kind == dim_kind::int_range) {
    return lo + static_cast<long long>(index) * step;
  }
  PN_CHECK(kind == dim_kind::int_choice);
  return int_values[index];
}

const std::string& search_dimension::name_value(std::size_t index) const {
  PN_CHECK(kind == dim_kind::name_choice && index < name_values.size());
  return name_values[index];
}

std::string search_dimension::value_token(std::size_t index) const {
  return kind == dim_kind::name_choice ? name_value(index)
                                       : std::to_string(int_value(index));
}

const char* constraint_kind_name(constraint_kind k) {
  switch (k) {
    case constraint_kind::min_hosts: return "min_hosts";
    case constraint_kind::min_switches: return "min_switches";
    case constraint_kind::min_bisection_gbps_per_host:
      return "min_bisection_gbps_per_host";
    case constraint_kind::max_capex_per_host_usd:
      return "max_capex_per_host_usd";
    case constraint_kind::max_time_to_deploy_h:
      return "max_time_to_deploy_h";
  }
  return "?";
}

bool search_constraint::satisfied_by(const deployability_report& r) const {
  switch (kind) {
    case constraint_kind::min_hosts:
      return static_cast<double>(r.hosts) >= bound;
    case constraint_kind::min_switches:
      return static_cast<double>(r.switches) >= bound;
    case constraint_kind::min_bisection_gbps_per_host:
      return r.bisection_gbps_per_host >= bound;
    case constraint_kind::max_capex_per_host_usd:
      return r.capex_per_host.value() <= bound;
    case constraint_kind::max_time_to_deploy_h:
      return r.time_to_deploy.value() <= bound;
  }
  return false;
}

std::size_t search_space::grid_size() const {
  std::size_t total = 0;
  for (const family_space& fam : families) {
    std::size_t n = 1;
    for (const search_dimension& d : fam.dims) n *= d.value_count();
    total += n;
  }
  return total;
}

std::optional<constraint_kind> constraint_kind_from_name(
    const std::string& name) {
  for (const constraint_kind k :
       {constraint_kind::min_hosts, constraint_kind::min_switches,
        constraint_kind::min_bisection_gbps_per_host,
        constraint_kind::max_capex_per_host_usd,
        constraint_kind::max_time_to_deploy_h}) {
    if (name == constraint_kind_name(k)) return k;
  }
  return std::nullopt;
}

namespace {

// The dimension that fixes the family's size knob; a block must carry it
// (the registry has no default size).
std::string main_dimension(const std::string& family) {
  if (family == "jellyfish" || family == "xpander") return "switches";
  if (family == "fat_tree") return "k";
  if (family == "leaf_spine") return "leaves";
  return "size";
}

const search_dimension* find_dim(const family_space& fam,
                                 const std::string& name) {
  for (const search_dimension& d : fam.dims) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> known_dimensions(const std::string& family) {
  std::vector<std::string> out = {main_dimension(family)};
  if (family == "jellyfish") {
    out.push_back("radix");
    out.push_back("hosts_per_switch");
  } else if (family == "xpander") {
    out.push_back("degree");
    out.push_back("hosts_per_switch");
  } else if (family == "leaf_spine") {
    out.push_back("spines");
    out.push_back("hosts_per_leaf");
    out.push_back("uplinks");
  }
  out.push_back("strategy");
  return out;
}

std::string candidate_label(const search_space& space,
                            const search_candidate& c) {
  PN_CHECK(c.family_index < space.families.size());
  const family_space& fam = space.families[c.family_index];
  PN_CHECK(c.value_indices.size() == fam.dims.size());
  // '/'-separated (never ',') so labels survive un-escaped in CSV fields
  // and awk-driven smoke scripts.
  std::string out = fam.family;
  for (std::size_t i = 0; i < fam.dims.size(); ++i) {
    out += '/';
    out += fam.dims[i].name;
    out += '=';
    out += fam.dims[i].value_token(c.value_indices[i]);
  }
  return out;
}

std::string candidate_strategy(const search_space& space,
                               const search_candidate& c) {
  const family_space& fam = space.families[c.family_index];
  for (std::size_t i = 0; i < fam.dims.size(); ++i) {
    if (fam.dims[i].name == "strategy") {
      return fam.dims[i].name_value(c.value_indices[i]);
    }
  }
  return "block";
}

namespace {

// A search sweeps into corners a hand-picked design never visits (a
// degree-2 jellyfish can come out disconnected), and the evaluator
// treats disconnection as a caller bug. Convert it to a structured
// per-candidate failure instead.
result<network_graph> connected_or_error(network_graph g) {
  if (!is_connected(g)) {
    return invalid_argument_error("graph is disconnected");
  }
  return g;
}

}  // namespace

result<network_graph> build_candidate(const search_space& space,
                                      const search_candidate& c,
                                      std::uint64_t seed) {
  PN_CHECK(c.family_index < space.families.size());
  const family_space& fam = space.families[c.family_index];
  PN_CHECK(c.value_indices.size() == fam.dims.size());

  const auto dim_value = [&](const std::string& name,
                             long long fallback) -> long long {
    for (std::size_t i = 0; i < fam.dims.size(); ++i) {
      if (fam.dims[i].name == name) {
        return fam.dims[i].int_value(c.value_indices[i]);
      }
    }
    return fallback;
  };

  // Families with richer dimensions build through their own params; the
  // defaults mirror build_family exactly, so a block that names only the
  // main dimension gets the registry's graph.
  if (fam.family == "jellyfish") {
    jellyfish_params p;
    p.switches = static_cast<int>(dim_value("switches", 64));
    p.radix = static_cast<int>(dim_value("radix", 16));
    p.hosts_per_switch = static_cast<int>(dim_value("hosts_per_switch", 8));
    p.seed = seed;
    if (p.radix - p.hosts_per_switch < 2) {
      return invalid_argument_error(
          "jellyfish needs radix - hosts_per_switch >= 2");
    }
    if (p.switches <= 2) {
      return invalid_argument_error("jellyfish needs switches > 2");
    }
    if (p.radix - p.hosts_per_switch >= p.switches) {
      // The generator PN_CHECKs this (degree < switch count); a swept
      // combination must fail structurally, not abort the search.
      return invalid_argument_error(
          "jellyfish inter-switch degree must be < switches");
    }
    return connected_or_error(build_jellyfish(p));
  }
  if (fam.family == "xpander") {
    xpander_params p;
    p.degree = static_cast<int>(dim_value("degree", 8));
    if (p.degree < 2) return invalid_argument_error("degree must be >= 2");
    const long long switches = dim_value("switches", 64);
    p.lift_size = std::max(1, static_cast<int>(switches) / (p.degree + 1));
    p.hosts_per_switch = static_cast<int>(dim_value("hosts_per_switch", 8));
    p.seed = seed;
    return connected_or_error(build_xpander(p));
  }
  if (fam.family == "fat_tree") {
    const long long k = dim_value("k", 4);
    if (k % 2 != 0) return invalid_argument_error("k must be even");
    return build_fat_tree(static_cast<int>(k), gbps{100.0});
  }
  if (fam.family == "leaf_spine") {
    leaf_spine_params p;
    p.leaves = static_cast<int>(dim_value("leaves", 16));
    p.spines = static_cast<int>(
        dim_value("spines", std::max(2, p.leaves / 3)));
    p.hosts_per_leaf = static_cast<int>(dim_value("hosts_per_leaf", 16));
    p.links_per_pair = static_cast<int>(dim_value("uplinks", 1));
    if (p.spines < 1 || p.links_per_pair < 1) {
      return invalid_argument_error("spines and uplinks must be >= 1");
    }
    return build_leaf_spine(p);
  }
  return build_family(fam.family,
                      static_cast<int>(dim_value("size", 0)), seed);
}

double expansion_rewires_estimate(const search_space& space,
                                  const search_candidate& c) {
  const family_space& fam = space.families[c.family_index];
  const auto dim_value = [&](const std::string& name,
                             long long fallback) -> long long {
    for (std::size_t i = 0; i < fam.dims.size(); ++i) {
      if (fam.dims[i].name == name) {
        return fam.dims[i].int_value(c.value_indices[i]);
      }
    }
    return fallback;
  };
  // The bench_e5 expansion table, parameterized: ~degree/2 rewires per
  // added switch for the families whose growth splices into existing
  // links, zero for pre-provisioned Clos-style fabrics.
  if (fam.family == "jellyfish") {
    const long long degree =
        dim_value("radix", 16) - dim_value("hosts_per_switch", 8);
    return static_cast<double>(degree) / 2.0;
  }
  if (fam.family == "xpander") {
    return static_cast<double>(dim_value("degree", 8)) / 2.0;
  }
  if (fam.family == "flattened_butterfly") {
    // Growing one dimension rewires the new position's full row links.
    return static_cast<double>(dim_value("size", 0) - 1);
  }
  if (fam.family == "slim_fly") {
    return static_cast<double>(
               slim_fly_degree(static_cast<int>(dim_value("size", 0)))) /
           2.0;
  }
  if (fam.family == "dragonfly") {
    // Intra-group clique share plus global-link rebalance, h = 3 as the
    // registry builds it: ~(a - 1 + h) / 2 with a = 2h.
    return (2 * 3 - 1 + 3) / 2.0;
  }
  return 0.0;  // fat_tree, leaf_spine, vl2, jupiter_*: pre-provisioned
}

result<search_space> parse_space(const std::string& text) {
  search_space space;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  family_space current;
  bool in_family = false;

  auto fail = [&](const std::string& why) {
    return invalid_argument_error(
        str_format("line %zu: %s", line_no, why.c_str()));
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    if (!saw_header) {
      if (line != "physnet-search-space v1") {
        return fail("expected 'physnet-search-space v1' header");
      }
      saw_header = true;
      continue;
    }

    std::istringstream ls(line);
    std::string directive;
    ls >> directive;

    if (directive == "family") {
      if (in_family) return fail("family block not closed (missing 'end')");
      current = family_space{};
      if (!(ls >> current.family)) return fail("family needs a name");
      const auto& names = family_names();
      if (std::find(names.begin(), names.end(), current.family) ==
          names.end()) {
        return fail("unknown family " + current.family);
      }
      in_family = true;
      continue;
    }
    if (directive == "end") {
      if (!in_family) return fail("'end' outside a family block");
      const std::string main = main_dimension(current.family);
      if (find_dim(current, main) == nullptr) {
        return fail("family " + current.family + " needs dimension " + main);
      }
      space.families.push_back(std::move(current));
      in_family = false;
      continue;
    }
    if (directive == "dim") {
      if (!in_family) return fail("'dim' outside a family block");
      search_dimension d;
      std::string kind;
      if (!(ls >> d.name >> kind)) {
        return fail("malformed dim (want: dim <name> range|choice ...)");
      }
      const std::vector<std::string> known = known_dimensions(current.family);
      if (std::find(known.begin(), known.end(), d.name) == known.end()) {
        return fail("unknown dimension '" + d.name + "' for family " +
                    current.family);
      }
      if (find_dim(current, d.name) != nullptr) {
        return fail("duplicate dimension " + d.name);
      }
      if (kind == "range") {
        if (d.name == "strategy") {
          return fail("strategy is a choice dimension");
        }
        d.kind = dim_kind::int_range;
        if (!(ls >> d.lo >> d.hi >> d.step) || d.step <= 0 || d.hi < d.lo) {
          return fail("malformed range (want: <lo> <hi> <step>, step > 0, "
                      "hi >= lo)");
        }
      } else if (kind == "choice") {
        std::string tok;
        if (d.name == "strategy") {
          d.kind = dim_kind::name_choice;
          while (ls >> tok) {
            if (!placement_strategy_from_name(tok).has_value()) {
              return fail("unknown placement strategy " + tok);
            }
            d.name_values.push_back(tok);
          }
        } else {
          d.kind = dim_kind::int_choice;
          while (ls >> tok) {
            long long v = 0;
            std::size_t used = 0;
            try {
              v = std::stoll(tok, &used);
            } catch (...) {
              used = 0;
            }
            if (used != tok.size()) {
              return fail("choice value '" + tok + "' is not an integer");
            }
            d.int_values.push_back(v);
          }
        }
        if (d.value_count() == 0) return fail("choice needs >= 1 value");
      } else {
        return fail("unknown dim kind " + kind + " (want range|choice)");
      }
      current.dims.push_back(std::move(d));
      continue;
    }
    if (in_family) {
      return fail("unknown directive '" + directive + "' in family block");
    }

    if (directive == "name") {
      ls >> space.name;
      if (space.name.empty()) return fail("name needs a value");
    } else if (directive == "seed") {
      if (!(ls >> space.seed)) return fail("seed must be an integer");
    } else if (directive == "option") {
      std::string key, value;
      ls >> key >> value;
      const bool on = value == "on";
      if (!on && value != "off") {
        return fail("option " + key + " wants on|off");
      }
      if (key == "repair") {
        space.repair = on;
      } else if (key == "throughput") {
        space.throughput = on;
      } else {
        return fail("unknown option " + key);
      }
    } else if (directive == "constraint") {
      std::string kind_name;
      search_constraint con;
      if (!(ls >> kind_name >> con.bound)) {
        return fail("malformed constraint (want: constraint <name> <bound>)");
      }
      const auto kind = constraint_kind_from_name(kind_name);
      if (!kind.has_value()) {
        return fail("unknown constraint " + kind_name);
      }
      con.kind = *kind;
      space.constraints.push_back(con);
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }

  if (!saw_header) {
    line_no = 1;
    return fail("expected 'physnet-search-space v1' header");
  }
  if (in_family) {
    return fail("family block not closed (missing 'end')");
  }
  if (space.families.empty()) {
    return fail("a search space needs at least one family block");
  }
  if (space.name.empty()) space.name = "search";
  return space;
}

std::string serialize_space(const search_space& space) {
  std::ostringstream out;
  out << "physnet-search-space v1\n";
  out << "name " << space.name << "\n";
  out << "seed " << space.seed << "\n";
  out << "option repair " << (space.repair ? "on" : "off") << "\n";
  out << "option throughput " << (space.throughput ? "on" : "off") << "\n";
  for (const search_constraint& con : space.constraints) {
    out << "constraint " << constraint_kind_name(con.kind) << " "
        << str_format("%.17g", con.bound) << "\n";
  }
  for (const family_space& fam : space.families) {
    out << "family " << fam.family << "\n";
    for (const search_dimension& d : fam.dims) {
      out << "dim " << d.name;
      if (d.kind == dim_kind::int_range) {
        out << " range " << d.lo << " " << d.hi << " " << d.step;
      } else {
        out << " choice";
        for (std::size_t i = 0; i < d.value_count(); ++i) {
          out << " " << d.value_token(i);
        }
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

std::vector<search_candidate> enumerate_grid(const search_space& space) {
  std::vector<search_candidate> out;
  out.reserve(space.grid_size());
  for (std::size_t f = 0; f < space.families.size(); ++f) {
    const family_space& fam = space.families[f];
    search_candidate c;
    c.family_index = f;
    c.value_indices.assign(fam.dims.size(), 0);
    for (;;) {
      out.push_back(c);
      // Odometer: last dimension varies fastest.
      bool wrapped = true;
      std::size_t i = fam.dims.size();
      while (i > 0) {
        --i;
        if (++c.value_indices[i] < fam.dims[i].value_count()) {
          wrapped = false;
          break;
        }
        c.value_indices[i] = 0;
      }
      if (wrapped) break;  // full carry-out: block enumerated
    }
  }
  return out;
}

}  // namespace pn
