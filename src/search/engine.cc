#include "search/engine.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "core/sweep.h"

namespace pn {

std::size_t search_checkpoint_points(const search_space& space,
                                     search_strategy strategy) {
  return strategy == search_strategy::grid ? space.grid_size() : 0;
}

namespace {

const char* record_state_name(search_record::state st) {
  switch (st) {
    case search_record::state::ok: return "ok";
    case search_record::state::failed: return "failed";
    case search_record::state::skipped: return "skipped";
  }
  return "?";
}

// Everything a run accumulates, so the strategy loops stay readable.
struct engine {
  engine(const search_space& s, search_backend& b,
         const search_run_options& o)
      : space(s), backend(b), opt(o) {}

  const search_space& space;
  search_backend& backend;
  const search_run_options& opt;

  std::vector<search_record> records;            // by ordinal
  std::vector<search_candidate> candidates;      // parallel to records
  std::unordered_map<std::string, std::size_t> memo;  // label -> ordinal
  sweep_checkpoint_writer ckpt;
  std::size_t restored = 0;
  bool cancelled = false;

  [[nodiscard]] bool feasible_of(const deployability_report& r) const {
    return std::all_of(space.constraints.begin(), space.constraints.end(),
                       [&](const search_constraint& c) {
                         return c.satisfied_by(r);
                       });
  }

  // Discovers (assigns ordinals to) every previously unseen candidate in
  // `batch`, restores the ones the resume checkpoint already holds, and
  // evaluates the rest through the backend. Memo hits are free.
  [[nodiscard]] status evaluate_batch(
      const std::vector<search_candidate>& batch) {
    std::vector<backend_task> tasks;
    std::vector<std::size_t> task_ordinals;
    for (const search_candidate& c : batch) {
      std::string label = candidate_label(space, c);
      if (memo.find(label) != memo.end()) continue;
      const std::size_t ord = records.size();
      memo.emplace(label, ord);
      search_record rec;
      rec.ordinal = ord;
      rec.label = label;
      rec.family = space.families[c.family_index].family;
      rec.strategy = candidate_strategy(space, c);
      records.push_back(std::move(rec));
      candidates.push_back(c);

      const sweep_checkpoint_entry* e =
          opt.resume != nullptr ? opt.resume->find(ord) : nullptr;
      if (e != nullptr) {
        // Ordinals are trajectory-deterministic, so entry `ord` must
        // describe exactly the candidate this run discovered at `ord` —
        // anything else is a foreign checkpoint.
        if (e->seed != sweep_point_seed(space.seed, ord)) {
          return invalid_argument_error(str_format(
              "checkpoint entry %zu has a foreign per-point seed", ord));
        }
        const std::string& have = e->ok ? e->report.name : e->label;
        if (have != records[ord].label) {
          return invalid_argument_error(str_format(
              "checkpoint entry %zu is for '%s', this search discovered "
              "'%s'",
              ord, have.c_str(), records[ord].label.c_str()));
        }
        search_record& r = records[ord];
        r.restored = true;
        ++restored;
        if (e->ok) {
          r.st = search_record::state::ok;
          r.report = e->report;
          r.feasible = feasible_of(r.report);
        } else {
          r.st = search_record::state::failed;
          r.error = e->error;
        }
        continue;
      }

      backend_task t;
      t.ordinal = ord;
      t.label = records[ord].label;
      t.strategy = records[ord].strategy;
      t.candidate = c;
      t.eval_seed = sweep_point_seed(space.seed, ord);
      tasks.push_back(std::move(t));
      task_ordinals.push_back(ord);
    }
    if (tasks.empty()) return status::ok();
    if (opt.cancel.cancelled()) {
      cancelled = true;  // the new records stay skipped; a resume re-runs
      return status::ok();
    }

    const std::vector<backend_outcome> outcomes =
        backend.evaluate(space, tasks);
    PN_CHECK(outcomes.size() == tasks.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const backend_outcome& o = outcomes[i];
      search_record& r = records[task_ordinals[i]];
      if (!o.evaluated) {
        cancelled = true;
        continue;
      }
      if (o.ok) {
        r.st = search_record::state::ok;
        r.report = o.report;
        // The evaluator pipeline never fills the expansion-rewiring
        // metric (it is family analytics, not graph measurement); stamp
        // the analytic estimate here — before checkpointing, so restored
        // reports match — to make the rewires objective real.
        r.report.rewires_per_added_switch =
            expansion_rewires_estimate(space, candidates[r.ordinal]);
        r.feasible = feasible_of(r.report);
      } else {
        r.st = search_record::state::failed;
        r.error = o.error;
      }
      if (ckpt.is_open()) {
        ckpt.append(sweep_checkpoint_entry{
            r.ordinal, sweep_point_seed(space.seed, r.ordinal), o.ok,
            r.report, r.label, eval_stage::topology_metrics, r.error});
      }
    }
    if (opt.cancel.cancelled()) cancelled = true;
    return status::ok();
  }

  // Strict "a beats b" for hill-climbing: feasible before infeasible,
  // then cheaper capex/host, then faster deploy, then lexicographically
  // smaller label. The label tie-break makes the order total over
  // distinct candidates, so every move strictly descends and the climb
  // always terminates.
  [[nodiscard]] bool better(std::size_t a, std::size_t b) const {
    const search_record& ra = records[a];
    const search_record& rb = records[b];
    const bool va = ra.st == search_record::state::ok && ra.feasible;
    const bool vb = rb.st == search_record::state::ok && rb.feasible;
    if (va != vb) return va;
    if (!va) return false;
    const double ca = ra.report.capex_per_host.value();
    const double cb = rb.report.capex_per_host.value();
    if (ca != cb) return ca < cb;
    const double ta = ra.report.time_to_deploy.value();
    const double tb = rb.report.time_to_deploy.value();
    if (ta != tb) return ta < tb;
    return ra.label < rb.label;
  }

  [[nodiscard]] status run_grid() { return evaluate_batch(enumerate_grid(space)); }

  [[nodiscard]] status run_local() {
    rng r(space.seed);
    for (std::size_t f = 0; f < space.families.size() && !cancelled; ++f) {
      const family_space& fam = space.families[f];
      for (int restart = 0; restart < opt.local.restarts && !cancelled;
           ++restart) {
        // All draws happen here, before any result is known, so the rng
        // stream depends only on (seed, restart count) — never on what
        // the evaluations returned or where a prior run was interrupted.
        search_candidate cur;
        cur.family_index = f;
        cur.value_indices.resize(fam.dims.size());
        for (std::size_t d = 0; d < fam.dims.size(); ++d) {
          cur.value_indices[d] = r.next_index(fam.dims[d].value_count());
        }
        status st = evaluate_batch({cur});
        if (!st.is_ok()) return st;
        if (cancelled) break;

        for (int iter = 0; iter < opt.local.max_iters; ++iter) {
          // One step along each dimension, dim order, minus before plus.
          std::vector<search_candidate> nbrs;
          for (std::size_t d = 0; d < fam.dims.size(); ++d) {
            for (const int delta : {-1, +1}) {
              const std::size_t idx = cur.value_indices[d];
              if (delta < 0 && idx == 0) continue;
              if (delta > 0 && idx + 1 >= fam.dims[d].value_count()) {
                continue;
              }
              search_candidate n = cur;
              n.value_indices[d] = delta < 0 ? idx - 1 : idx + 1;
              nbrs.push_back(std::move(n));
            }
          }
          if (nbrs.empty()) break;
          st = evaluate_batch(nbrs);
          if (!st.is_ok()) return st;
          if (cancelled) break;

          const std::size_t cur_ord = memo.at(candidate_label(space, cur));
          std::size_t best = cur_ord;
          for (const search_candidate& n : nbrs) {
            const std::size_t ord = memo.at(candidate_label(space, n));
            if (better(ord, best)) best = ord;
          }
          if (best == cur_ord) break;  // local optimum
          cur = candidates[best];
        }
      }
    }
    return status::ok();
  }
};

}  // namespace

result<search_results> run_search(const search_space& space,
                                  search_backend& backend,
                                  const search_run_options& opt) {
  const std::size_t points = search_checkpoint_points(space, opt.strategy);
  if (opt.resume != nullptr) {
    if (opt.resume->base_seed != space.seed) {
      return invalid_argument_error(
          str_format("resume checkpoint seed %llu != space seed %llu",
                     static_cast<unsigned long long>(opt.resume->base_seed),
                     static_cast<unsigned long long>(space.seed)));
    }
    if (opt.resume->point_count != points) {
      return invalid_argument_error(str_format(
          "resume checkpoint has %zu points, this search expects %zu",
          opt.resume->point_count, points));
    }
  }

  engine eng{space, backend, opt};
  if (!opt.checkpoint_path.empty()) {
    const status st = eng.ckpt.open(opt.checkpoint_path, space.seed, points);
    if (!st.is_ok()) return st;
  }

  const status st = opt.strategy == search_strategy::grid ? eng.run_grid()
                                                          : eng.run_local();
  if (!st.is_ok()) return st;

  search_results out;
  out.cancelled = eng.cancelled || opt.cancel.cancelled();
  out.restored = eng.restored;

  pareto_front front;
  for (const search_record& r : eng.records) {
    if (r.st == search_record::state::ok && r.feasible) {
      front.insert(r.ordinal, objectives_of(r.report));
    }
  }
  for (const pareto_entry& e : front.entries()) {
    eng.records[e.ordinal].on_front = true;
    out.front.push_back(e.ordinal);
  }
  std::sort(out.front.begin(), out.front.end(),
            [&](std::size_t a, std::size_t b) {
              const deployability_report& ra = eng.records[a].report;
              const deployability_report& rb = eng.records[b].report;
              if (ra.capex().value() != rb.capex().value()) {
                return ra.capex().value() < rb.capex().value();
              }
              if (ra.time_to_deploy.value() != rb.time_to_deploy.value()) {
                return ra.time_to_deploy.value() < rb.time_to_deploy.value();
              }
              return a < b;
            });
  out.records = std::move(eng.records);
  return out;
}

namespace {

void append_record_row(std::ostringstream& out, const search_record& r) {
  out << r.ordinal << ',' << csv_field(r.label) << ',' << csv_field(r.family)
      << ',' << r.strategy << ',' << record_state_name(r.st) << ','
      << (r.feasible ? 1 : 0) << ',' << (r.on_front ? 1 : 0) << ','
      << str_format(
             // pn_lint: allow(csv-comma) numeric-only fields, nothing to
             // escape
             "%zu,%zu,%zu,%.2f,%.2f,%.3f,%.3f,%.2f,%.2f,%.4f,%.4f",
             r.report.switches, r.report.hosts, r.report.links,
             r.report.capex().value(), r.report.capex_per_host.value(),
             r.report.time_to_deploy.value(), r.report.deploy_labor.value(),
             r.report.rewires_per_added_switch,
             r.report.bisection_gbps_per_host, r.report.mean_path_length,
             r.report.throughput_alpha_uniform)
      << ',' << csv_field(r.st == search_record::state::failed
                              ? r.error.to_string()
                              : std::string())
      << "\n";
}

const char* search_csv_header() {
  // pn_lint: allow(csv-comma) fixed header row — column names, no data
  return "ordinal,label,family,strategy,status,feasible,on_front,switches,"
         "hosts,links,capex_usd,capex_per_host_usd,time_to_deploy_h,"
         "deploy_labor_h,rewires_per_added_switch,bisection_gbps_per_host,"
         "mean_path,tput_alpha_uniform,error\n";
}

}  // namespace

std::string search_trace_csv(const search_results& results) {
  std::ostringstream out;
  out << search_csv_header();
  for (const search_record& r : results.records) append_record_row(out, r);
  return out.str();
}

std::string search_front_csv(const search_results& results) {
  std::ostringstream out;
  out << search_csv_header();
  for (const std::size_t ord : results.front) {
    append_record_row(out, results.records[ord]);
  }
  return out.str();
}

}  // namespace pn
