// The search engine: deterministic strategies over a search space,
// filtered by hard constraints, accumulating a Pareto front.
//
// Two strategies, both bit-reproducible at equal seeds:
//
//  - grid: every candidate of the space's cartesian product, in
//    enumerate_grid order.
//  - local: seeded hill-climbing with restarts. Per family block, each
//    restart draws a uniform starting assignment (every draw through
//    common/rng.h), then repeatedly batch-evaluates the ±1-step
//    neighbors of the current assignment and moves to the strictly best
//    feasible neighbor (capex-per-host, then time-to-deploy, then label)
//    until none improves. Draws happen only when a restart begins, so
//    the rng stream is a pure function of trajectory position — a
//    resumed run replays it exactly.
//
// Every distinct candidate gets a global ordinal in first-discovery
// order and evaluates under sweep_point_seed(space.seed, ordinal),
// however the strategy batches it. A memo keyed by candidate label
// makes re-proposed candidates free.
//
// Checkpoint/resume reuse the sweep checkpoint format keyed by ordinal
// (point count = grid size for grid, 0 for local, whose trajectory
// length is unknown up front). Completed candidates restore from the
// checkpoint instead of re-evaluating; because ordinals, seeds, and the
// rng stream are trajectory-deterministic, an interrupted search
// resumes to byte-identical CSVs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "search/backend.h"
#include "search/pareto.h"
#include "search/space.h"

namespace pn {

enum class search_strategy : std::uint8_t { grid, local };

struct local_search_options {
  int restarts = 3;   // independent starts per family block
  int max_iters = 16; // hill-climb steps per restart
};

struct search_run_options {
  search_strategy strategy = search_strategy::grid;
  local_search_options local;

  // Non-empty: append each completed candidate to this sweep-format
  // checkpoint file as it finishes.
  std::string checkpoint_path;
  // Resume from a previously loaded checkpoint. Must match the space's
  // seed and the strategy's point count (search_checkpoint_points) and
  // must outlive run_search; mismatches are errors, not crashes.
  const sweep_checkpoint* resume = nullptr;

  // Cooperative cancellation: no new batch starts after the token
  // fires; candidates already dispatched drain per the backend.
  cancel_token cancel;
};

// The `points` field of a search checkpoint header: the full grid size
// for the grid strategy, 0 (unknown-length trajectory) for local.
[[nodiscard]] std::size_t search_checkpoint_points(const search_space& space,
                                                   search_strategy strategy);

// One discovered candidate, final state. Records live at their ordinal:
// results.records[i].ordinal == i.
struct search_record {
  std::size_t ordinal = 0;
  std::string label;
  std::string family;
  std::string strategy;  // placement strategy name
  enum class state : std::uint8_t {
    ok,       // evaluated (or restored) to a report
    failed,   // evaluated to a structured error
    skipped,  // cancellation drained it — a resume re-runs it
  };
  state st = state::skipped;
  bool feasible = false;   // ok && every hard constraint satisfied
  bool on_front = false;   // member of the final Pareto front
  bool restored = false;   // taken from the resume checkpoint
  deployability_report report;  // meaningful when ok
  status error;                 // meaningful when failed
};

struct search_results {
  std::vector<search_record> records;  // ordinal order
  // Front ordinals sorted by (cost ascending, time ascending, ordinal).
  std::vector<std::size_t> front;
  bool cancelled = false;
  std::size_t restored = 0;  // candidates restored from the checkpoint
};

// Runs the search. Errors (bad resume checkpoint, unwritable checkpoint
// path) return a status; evaluation failures of individual candidates
// are per-record outcomes, never errors.
[[nodiscard]] result<search_results> run_search(
    const search_space& space, search_backend& backend,
    const search_run_options& opt);

// Full trace: one row per ordinal, every record state. Deliberately no
// timing columns, so equal searches — serial vs --jobs N, local vs
// --via-serve, interrupted-then-resumed vs uninterrupted — compare
// byte-for-byte.
[[nodiscard]] std::string search_trace_csv(const search_results& results);

// The Pareto front only, in results.front order. Same columns as the
// trace, so the front is grep-able out of either file.
[[nodiscard]] std::string search_front_csv(const search_results& results);

}  // namespace pn
