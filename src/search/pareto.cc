#include "search/pareto.h"

#include <algorithm>

namespace pn {

pareto_objectives objectives_of(const deployability_report& r) {
  pareto_objectives o;
  o.cost_usd = r.capex().value();
  o.time_h = r.time_to_deploy.value();
  o.rewires = r.rewires_per_added_switch;
  o.bisection = r.bisection_gbps_per_host;
  return o;
}

bool dominates(const pareto_objectives& a, const pareto_objectives& b) {
  if (a.cost_usd > b.cost_usd || a.time_h > b.time_h ||
      a.rewires > b.rewires || a.bisection < b.bisection) {
    return false;
  }
  return a.cost_usd < b.cost_usd || a.time_h < b.time_h ||
         a.rewires < b.rewires || a.bisection > b.bisection;
}

bool pareto_front::insert(std::size_t ordinal, const pareto_objectives& obj) {
  for (const pareto_entry& e : entries_) {
    if (dominates(e.obj, obj)) return false;
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const pareto_entry& e) {
                                  return dominates(obj, e.obj);
                                }),
                 entries_.end());
  entries_.push_back(pareto_entry{ordinal, obj});
  return true;
}

std::vector<std::size_t> reference_front(
    const std::vector<pareto_entry>& population) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < population.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < population.size() && !dominated; ++j) {
      if (j != i && dominates(population[j].obj, population[i].obj)) {
        dominated = true;
      }
    }
    if (!dominated) out.push_back(population[i].ordinal);
  }
  return out;
}

}  // namespace pn
