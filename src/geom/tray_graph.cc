#include "geom/tray_graph.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

tray_graph::junction_index tray_graph::add_junction(point pos) {
  junctions_.push_back(pos);
  adj_.emplace_back();
  return junctions_.size() - 1;
}

tray_id tray_graph::add_segment(junction_index a, junction_index b,
                                square_millimeters capacity) {
  PN_CHECK(a < junctions_.size() && b < junctions_.size());
  PN_CHECK(a != b);
  PN_CHECK(capacity.value() > 0.0);
  const tray_id id{segments_.size()};
  segments_.push_back({a, b, euclidean_distance(junctions_[a], junctions_[b]),
                       capacity, square_millimeters{0.0}});
  adj_[a].push_back({b, id});
  adj_[b].push_back({a, id});
  return id;
}

point tray_graph::junction_position(junction_index j) const {
  PN_CHECK(j < junctions_.size());
  return junctions_[j];
}

meters tray_graph::segment_length(tray_id t) const {
  PN_CHECK(t.index() < segments_.size());
  return segments_[t.index()].length;
}

square_millimeters tray_graph::segment_capacity(tray_id t) const {
  PN_CHECK(t.index() < segments_.size());
  return segments_[t.index()].capacity;
}

square_millimeters tray_graph::segment_used(tray_id t) const {
  PN_CHECK(t.index() < segments_.size());
  return segments_[t.index()].used;
}

square_millimeters tray_graph::segment_free(tray_id t) const {
  const auto& s = segments_[t.index()];
  return s.capacity - s.used;
}

double tray_graph::fill_fraction(tray_id t) const {
  const auto& s = segments_[t.index()];
  return s.used.value() / s.capacity.value();
}

tray_graph::junction_index tray_graph::nearest_junction(point p) const {
  PN_CHECK(!junctions_.empty());
  junction_index best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (junction_index j = 0; j < junctions_.size(); ++j) {
    const double d = manhattan_distance(p, junctions_[j]).value();
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

result<tray_route> tray_graph::route(junction_index a, junction_index b,
                                     square_millimeters required) const {
  return dijkstra(a, b, required, /*constrained=*/true);
}

result<tray_route> tray_graph::route_unconstrained(junction_index a,
                                                   junction_index b) const {
  return dijkstra(a, b, square_millimeters{0.0}, /*constrained=*/false);
}

result<tray_route> tray_graph::dijkstra(junction_index a, junction_index b,
                                        square_millimeters required,
                                        bool constrained) const {
  PN_CHECK(a < junctions_.size() && b < junctions_.size());
  if (a == b) return tray_route{{}, meters{0.0}};

  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(junctions_.size(), inf);
  std::vector<tray_id> via(junctions_.size());
  std::vector<junction_index> prev(junctions_.size(), 0);

  using entry = std::pair<double, junction_index>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  dist[a] = 0.0;
  pq.push({0.0, a});

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == b) break;
    for (const auto& e : adj_[u]) {
      const segment& s = segments_[e.seg.index()];
      if (constrained && (s.capacity - s.used) < required) continue;
      const double nd = d + s.length.value();
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        via[e.to] = e.seg;
        prev[e.to] = u;
        pq.push({nd, e.to});
      }
    }
  }

  if (dist[b] == inf) {
    return infeasible_error(
        str_format("no tray route from junction %zu to %zu with %.1f mm^2 free",
                   a, b, required.value()));
  }

  tray_route r;
  r.length = meters{dist[b]};
  for (junction_index u = b; u != a; u = prev[u]) {
    r.segments.push_back(via[u]);
  }
  std::reverse(r.segments.begin(), r.segments.end());
  return r;
}

status tray_graph::reserve(const tray_route& r, square_millimeters area) {
  for (tray_id t : r.segments) {
    const segment& s = segments_[t.index()];
    if (s.capacity - s.used < area) {
      return capacity_error(str_format(
          "tray segment %u full: %.1f of %.1f mm^2 used, need %.1f",
          t.value(), s.used.value(), s.capacity.value(), area.value()));
    }
  }
  for (tray_id t : r.segments) {
    segments_[t.index()].used += area;
  }
  return status::ok();
}

void tray_graph::release(const tray_route& r, square_millimeters area) {
  for (tray_id t : r.segments) {
    segment& s = segments_[t.index()];
    PN_CHECK_MSG(s.used >= area, "releasing more tray area than reserved");
    s.used -= area;
  }
}

}  // namespace pn
