// 2-D floor geometry primitives.
//
// The datacenter floor is modeled in meters on a fixed grid of tiles.
// Cable runs between racks follow tray segments (see tray_graph.h) plus
// vertical drops, so Manhattan-style metrics dominate; Euclidean distance
// is used only for straight tray segments.
#pragma once

#include <cmath>

#include "common/units.h"

namespace pn {

struct point {
  double x = 0.0;  // meters
  double y = 0.0;  // meters

  friend constexpr bool operator==(const point&, const point&) = default;
};

[[nodiscard]] inline meters manhattan_distance(point a, point b) {
  return meters{std::fabs(a.x - b.x) + std::fabs(a.y - b.y)};
}

[[nodiscard]] inline meters euclidean_distance(point a, point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return meters{std::sqrt(dx * dx + dy * dy)};
}

// Axis-aligned rectangle, used for rack footprints and keep-out zones.
struct rect {
  point min;
  point max;

  [[nodiscard]] bool contains(point p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] bool overlaps(const rect& o) const {
    return min.x < o.max.x && o.min.x < max.x && min.y < o.max.y &&
           o.min.y < max.y;
  }
  [[nodiscard]] point center() const {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }
};

}  // namespace pn
