// Overhead cable-tray routing graph.
//
// §3.1 of the paper: cables between racks run through trays of finite
// cross-section; Agarwal et al. extended cabling optimization to account
// for tray routes. This graph models tray junctions (nodes) and straight
// tray segments (edges) with a cross-sectional capacity. Routing a cable
// means finding the shortest junction-to-junction path whose every segment
// still has enough free cross-section for the cable, then reserving that
// area. Decommissioning releases it (§2.1 notes that in practice operators
// rarely remove cables — callers model that by simply not releasing).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "geom/point.h"

namespace pn {

struct tray_route {
  std::vector<tray_id> segments;  // in path order; empty if same junction
  meters length;                  // sum of segment lengths
};

class tray_graph {
 public:
  // Junctions are identified by dense indices returned from add_junction.
  using junction_index = std::size_t;

  junction_index add_junction(point pos);

  // Adds a straight tray segment between two junctions with the given free
  // cross-sectional capacity. Length is the Euclidean distance between the
  // junction positions.
  tray_id add_segment(junction_index a, junction_index b,
                      square_millimeters capacity);

  [[nodiscard]] std::size_t junction_count() const { return junctions_.size(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] point junction_position(junction_index j) const;
  [[nodiscard]] meters segment_length(tray_id t) const;
  [[nodiscard]] square_millimeters segment_capacity(tray_id t) const;
  [[nodiscard]] square_millimeters segment_used(tray_id t) const;
  [[nodiscard]] square_millimeters segment_free(tray_id t) const;
  // Fraction of capacity in use, 0..1.
  [[nodiscard]] double fill_fraction(tray_id t) const;

  // Nearest junction to a floor position (e.g. a rack's drop point).
  [[nodiscard]] junction_index nearest_junction(point p) const;

  // Shortest route from a to b over segments whose free capacity is at
  // least `required`. Returns infeasible if no such route exists.
  [[nodiscard]] result<tray_route> route(junction_index a, junction_index b,
                                         square_millimeters required) const;

  // Shortest route ignoring capacity (for planning / length estimates).
  [[nodiscard]] result<tray_route> route_unconstrained(junction_index a,
                                                       junction_index b) const;

  // Reserve / release cross-section along a previously computed route.
  // reserve fails (capacity_exceeded) without partial effects if any
  // segment lacks room.
  status reserve(const tray_route& r, square_millimeters area);
  void release(const tray_route& r, square_millimeters area);

 private:
  struct segment {
    junction_index a;
    junction_index b;
    meters length;
    square_millimeters capacity;
    square_millimeters used;
  };
  struct adjacency_entry {
    junction_index to;
    tray_id seg;
  };

  [[nodiscard]] result<tray_route> dijkstra(junction_index a,
                                            junction_index b,
                                            square_millimeters required,
                                            bool constrained) const;

  std::vector<point> junctions_;
  std::vector<segment> segments_;
  std::vector<std::vector<adjacency_entry>> adj_;
};

}  // namespace pn
