#include "topology/generators/clos.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

network_graph build_clos(const clos_params& p, int min_radix) {
  PN_CHECK(p.pods > 0 && p.tors_per_pod > 0 && p.aggs_per_pod > 0);
  PN_CHECK(p.spine_groups > 0 && p.spines_per_group > 0);
  PN_CHECK_MSG(p.aggs_per_pod == p.spine_groups,
               "folded Clos wiring needs aggs_per_pod == spine_groups");
  PN_CHECK(p.hosts_per_tor >= 0);
  PN_CHECK(p.tor_agg_links > 0 && p.agg_spine_links > 0);

  network_graph g;
  g.family = "clos";

  const int tor_radix = std::max(
      min_radix, p.hosts_per_tor + p.aggs_per_pod * p.tor_agg_links);
  const int agg_radix = std::max(
      min_radix, p.tors_per_pod * p.tor_agg_links +
                     p.spines_per_group * p.agg_spine_links);
  const int spine_radix = std::max(min_radix, p.pods * p.agg_spine_links);

  // ToRs and aggregation switches, pod by pod.
  std::vector<std::vector<node_id>> tors(static_cast<std::size_t>(p.pods));
  std::vector<std::vector<node_id>> aggs(static_cast<std::size_t>(p.pods));
  for (int pod = 0; pod < p.pods; ++pod) {
    for (int t = 0; t < p.tors_per_pod; ++t) {
      tors[static_cast<std::size_t>(pod)].push_back(g.add_node(
          {str_format("pod%d/tor%d", pod, t), node_kind::tor, tor_radix,
           p.link_rate, p.hosts_per_tor, 0, pod}));
    }
    for (int a = 0; a < p.aggs_per_pod; ++a) {
      aggs[static_cast<std::size_t>(pod)].push_back(g.add_node(
          {str_format("pod%d/agg%d", pod, a), node_kind::aggregation,
           agg_radix, p.link_rate, 0, 1, pod}));
    }
  }

  // Spine groups. Block index continues after pods so that placement can
  // keep each spine group together.
  std::vector<std::vector<node_id>> spines(
      static_cast<std::size_t>(p.spine_groups));
  for (int gidx = 0; gidx < p.spine_groups; ++gidx) {
    for (int s = 0; s < p.spines_per_group; ++s) {
      spines[static_cast<std::size_t>(gidx)].push_back(g.add_node(
          {str_format("spine%d/sw%d", gidx, s), node_kind::spine, spine_radix,
           p.link_rate, 0, 2, p.pods + gidx}));
    }
  }

  for (int pod = 0; pod < p.pods; ++pod) {
    for (node_id tor : tors[static_cast<std::size_t>(pod)]) {
      for (node_id agg : aggs[static_cast<std::size_t>(pod)]) {
        for (int l = 0; l < p.tor_agg_links; ++l) {
          g.add_edge(tor, agg, p.link_rate);
        }
      }
    }
    for (int a = 0; a < p.aggs_per_pod; ++a) {
      const node_id agg = aggs[static_cast<std::size_t>(pod)]
                              [static_cast<std::size_t>(a)];
      for (node_id spine : spines[static_cast<std::size_t>(a)]) {
        for (int l = 0; l < p.agg_spine_links; ++l) {
          g.add_edge(agg, spine, p.link_rate);
        }
      }
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

clos_params fat_tree_params(int k, gbps link_rate) {
  PN_CHECK_MSG(k > 0 && k % 2 == 0, "fat-tree arity must be even");
  clos_params p;
  p.pods = k;
  p.tors_per_pod = k / 2;
  p.aggs_per_pod = k / 2;
  p.spine_groups = k / 2;
  p.spines_per_group = k / 2;
  p.hosts_per_tor = k / 2;
  p.link_rate = link_rate;
  return p;
}

network_graph build_fat_tree(int k, gbps link_rate) {
  network_graph g = build_clos(fat_tree_params(k, link_rate));
  g.family = "fat_tree";
  return g;
}

}  // namespace pn
