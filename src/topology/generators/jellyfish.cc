#include "topology/generators/jellyfish.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pn {

namespace {

// Collect switches that still have free inter-switch ports.
std::vector<node_id> switches_with_free_ports(const network_graph& g) {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_id n{i};
    if (g.free_ports(n) > 0) out.push_back(n);
  }
  return out;
}

}  // namespace

network_graph build_jellyfish(const jellyfish_params& p) {
  PN_CHECK(p.switches > 2);
  PN_CHECK(p.radix > p.hosts_per_switch);
  const int degree = p.radix - p.hosts_per_switch;
  PN_CHECK_MSG(degree < p.switches,
               "inter-switch degree must be < switch count");

  network_graph g;
  g.family = "jellyfish";
  rng r(p.seed);

  for (int i = 0; i < p.switches; ++i) {
    g.add_node({str_format("jf%d", i), node_kind::expander, p.radix,
                p.link_rate, p.hosts_per_switch, 0, i});
  }

  // Phase 1: connect random pairs with free ports and no existing link.
  int stall = 0;
  while (stall < 200) {
    auto free = switches_with_free_ports(g);
    if (free.size() < 2) break;
    const node_id a = free[r.next_index(free.size())];
    const node_id b = free[r.next_index(free.size())];
    if (a == b || g.has_edge_between(a, b)) {
      ++stall;
      continue;
    }
    g.add_edge(a, b, p.link_rate);
    stall = 0;
  }

  // Phase 2 (paper's fixup): while some switch has >= 2 free ports, break
  // a random edge not incident to it and splice the switch in.
  for (int guard = 0; guard < 10 * p.switches * degree; ++guard) {
    auto free = switches_with_free_ports(g);
    node_id w;
    bool found = false;
    for (node_id n : free) {
      if (g.free_ports(n) >= 2) {
        w = n;
        found = true;
        break;
      }
    }
    if (!found) break;
    const auto edges = g.live_edges();
    PN_CHECK(!edges.empty());
    const edge_id victim = edges[r.next_index(edges.size())];
    const edge_info info = g.edge(victim);
    if (info.a == w || info.b == w) continue;
    if (g.has_edge_between(w, info.a) || g.has_edge_between(w, info.b)) {
      continue;
    }
    g.remove_edge(victim);
    g.add_edge(w, info.a, p.link_rate);
    g.add_edge(w, info.b, p.link_rate);
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

int jellyfish_add_switch(network_graph& g, const jellyfish_params& p,
                         std::uint64_t seed) {
  rng r(seed);
  const int degree = p.radix - p.hosts_per_switch;
  const node_id fresh = g.add_node(
      {str_format("jf%zu", g.node_count()), node_kind::expander, p.radix,
       p.link_rate, p.hosts_per_switch, 0, static_cast<int>(g.node_count())});

  // Splice into degree/2 random existing edges: each splice consumes two
  // of the new switch's ports and rewires one existing link.
  int rewired = 0;
  int guard = 0;
  while (g.free_ports(fresh) >= 2 && guard++ < 1000) {
    const auto edges = g.live_edges();
    const edge_id victim = edges[r.next_index(edges.size())];
    const edge_info info = g.edge(victim);
    if (info.a == fresh || info.b == fresh) continue;
    if (g.has_edge_between(fresh, info.a) ||
        g.has_edge_between(fresh, info.b)) {
      continue;
    }
    g.remove_edge(victim);
    g.add_edge(fresh, info.a, p.link_rate);
    g.add_edge(fresh, info.b, p.link_rate);
    ++rewired;
  }
  PN_CHECK_MSG(rewired >= degree / 2 - 1 || guard >= 1000,
               "jellyfish expansion failed to splice");
  return rewired;
}

}  // namespace pn
