// Jupiter-style fabric with an OCS/patch-panel indirection layer.
//
// §4.3: Google's Jupiter connects aggregation blocks to the rest of the
// fabric through an optical circuit switch (OCS) layer. In the original
// design the OCS layer patches aggregation uplinks to *spine blocks*
// (fat-tree mode); in the evolved design it patches them *directly to
// other aggregation blocks* (direct mode). Because every inter-block fiber
// terminates on an OCS, converting between the two modes is a sequence of
// per-OCS fiber moves — the live-migration case study of E6.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "topology/graph.h"

namespace pn {

enum class jupiter_mode {
  fat_tree,  // aggregation blocks <-> spine blocks via OCS
  direct,    // aggregation blocks <-> aggregation blocks via OCS
};

struct jupiter_params {
  int agg_blocks = 8;
  int tors_per_block = 8;
  int mbs_per_block = 4;    // middle blocks (the block's internal stage)
  int uplinks_per_mb = 8;   // fabric-facing uplinks per middle block
  int spine_blocks = 4;     // used in fat_tree mode
  int ocs_count = 16;       // OCS units the uplinks are striped across
  int hosts_per_tor = 16;
  gbps link_rate{200.0};
  jupiter_mode mode = jupiter_mode::fat_tree;
};

struct jupiter_fabric {
  network_graph graph;
  jupiter_params params;
  // For every inter-block edge, edge_info::indirection_unit holds the OCS
  // it is patched through; this mirror lists the edges per OCS so the
  // migration planner can drain one OCS at a time.
  std::vector<std::vector<edge_id>> edges_by_ocs;
};

// Builds the fabric. Uplinks per block = mbs_per_block * uplinks_per_mb,
// striped round-robin across OCS units. In fat_tree mode, uplinks are
// spread evenly over spine blocks; in direct mode, evenly over the other
// aggregation blocks.
[[nodiscard]] jupiter_fabric build_jupiter(const jupiter_params& p);

// Number of inter-block fibers terminating on each OCS in the fabric.
[[nodiscard]] std::vector<std::size_t> ocs_fiber_counts(
    const jupiter_fabric& f);

// Direct-mode fabric with an explicit symmetric block-pair link-count
// matrix (pair_links[i][j] for i < j). Row degrees must not exceed the
// per-block uplink budget; this is how topology engineering installs a
// demand-proportional mesh (§4.1 / Poutievski et al.). Fails with
// invalid_argument on asymmetric/overweight matrices.
[[nodiscard]] result<jupiter_fabric> build_jupiter_direct_with_pairs(
    const jupiter_params& p, const std::vector<std::vector<int>>& pair_links);

// The uniform mesh direct mode installs by default (base + circulant
// remainder), exposed for comparison and retune counting.
[[nodiscard]] std::vector<std::vector<int>> uniform_pair_links(
    const jupiter_params& p);

}  // namespace pn
