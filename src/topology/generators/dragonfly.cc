#include "topology/generators/dragonfly.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

dragonfly_params balanced_dragonfly(int h, int groups, gbps link_rate) {
  PN_CHECK(h >= 1);
  dragonfly_params p;
  p.global_per_switch = h;
  p.switches_per_group = 2 * h;
  p.hosts_per_switch = h;
  p.groups = groups;
  p.link_rate = link_rate;
  return p;
}

result<network_graph> build_dragonfly(const dragonfly_params& p) {
  PN_CHECK(p.groups >= 2);
  PN_CHECK(p.switches_per_group >= 1);
  PN_CHECK(p.global_per_switch >= 1);

  const int n = p.groups;
  const int group_globals = p.switches_per_group * p.global_per_switch;
  const int others = n - 1;
  const int base = group_globals / others;
  const int extra = group_globals % others;
  if (extra % 2 == 1 && n % 2 == 1) {
    return invalid_argument_error(str_format(
        "cannot stripe %d global links evenly over %d peer groups",
        group_globals, others));
  }

  network_graph g;
  g.family = "dragonfly";
  const int radix = (p.switches_per_group - 1) + p.global_per_switch +
                    p.hosts_per_switch;

  auto nid = [&](int group, int sw) {
    return node_id{
        static_cast<std::size_t>(group * p.switches_per_group + sw)};
  };
  for (int grp = 0; grp < n; ++grp) {
    for (int sw = 0; sw < p.switches_per_group; ++sw) {
      g.add_node({str_format("df%d_%d", grp, sw), node_kind::expander,
                  radix, p.link_rate, p.hosts_per_switch, 0, grp});
    }
    // Intra-group clique.
    for (int a = 0; a < p.switches_per_group; ++a) {
      for (int b = a + 1; b < p.switches_per_group; ++b) {
        g.add_edge(nid(grp, a), nid(grp, b), p.link_rate);
      }
    }
  }

  // Pairwise global-link counts: uniform base + circulant remainder.
  std::vector<std::vector<int>> pair_links(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 0));
  auto bump = [&](int i, int j) {
    if (i > j) std::swap(i, j);
    ++pair_links[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pair_links[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          base;
    }
  }
  int remaining = extra;
  if (remaining % 2 == 1) {
    for (int i = 0; i < n / 2; ++i) bump(i, i + n / 2);
    --remaining;
  }
  for (int o = 1; remaining > 0; ++o) {
    PN_CHECK(o < (n + 1) / 2);
    for (int i = 0; i < n; ++i) bump(i, (i + o) % n);
    remaining -= 2;
  }

  // Attach global links round-robin over each group's switches.
  std::vector<int> next_slot(static_cast<std::size_t>(n), 0);
  auto take_switch = [&](int grp) {
    const int slot = next_slot[static_cast<std::size_t>(grp)]++;
    PN_CHECK_MSG(slot < group_globals,
                 "group " << grp << " out of global ports");
    return nid(grp, slot % p.switches_per_group);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const int links = pair_links[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)];
      for (int l = 0; l < links; ++l) {
        g.add_edge(take_switch(i), take_switch(j), p.link_rate);
      }
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace pn
