#include "topology/generators/vl2.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pn {

network_graph build_vl2(const vl2_params& p) {
  PN_CHECK(p.tors > 0 && p.aggs >= 2 && p.intermediates > 0);
  PN_CHECK(p.tor_uplinks >= 1);

  network_graph g;
  g.family = p.spread_tor_uplinks ? "vl2_spread" : "vl2";
  rng r(p.seed);

  // Radixes derived from worst-case attachment.
  const int tor_radix = p.hosts_per_tor + p.tor_uplinks;
  const int per_agg_tor_links =
      (p.tors * p.tor_uplinks + p.aggs - 1) / p.aggs;
  const int agg_radix = per_agg_tor_links + p.intermediates + p.tor_uplinks;
  const int int_radix =
      p.aggs + (p.spread_tor_uplinks ? per_agg_tor_links : 0) + p.tor_uplinks;

  std::vector<node_id> tors, aggs, ints;
  for (int t = 0; t < p.tors; ++t) {
    tors.push_back(g.add_node({str_format("tor%d", t), node_kind::tor,
                               tor_radix, p.link_rate, p.hosts_per_tor, 0,
                               t}));
  }
  for (int a = 0; a < p.aggs; ++a) {
    aggs.push_back(g.add_node({str_format("agg%d", a), node_kind::aggregation,
                               agg_radix, p.link_rate, 0, 1, p.tors + a}));
  }
  for (int i = 0; i < p.intermediates; ++i) {
    ints.push_back(g.add_node({str_format("int%d", i), node_kind::spine,
                               int_radix, p.link_rate, 0, 2,
                               p.tors + p.aggs + i}));
  }

  // Aggregation <-> intermediate complete bipartite.
  for (node_id a : aggs) {
    for (node_id i : ints) {
      g.add_edge(a, i, p.link_rate);
    }
  }

  // ToR uplinks.
  std::vector<node_id> upper;
  upper.insert(upper.end(), aggs.begin(), aggs.end());
  if (p.spread_tor_uplinks) {
    upper.insert(upper.end(), ints.begin(), ints.end());
  }
  PN_CHECK_MSG(static_cast<std::size_t>(p.tor_uplinks) <= upper.size(),
               "more ToR uplinks than attachment points");
  std::size_t rr = 0;
  for (std::size_t t = 0; t < tors.size(); ++t) {
    // Round-robin with a random start keeps attachment balanced while
    // avoiding the fully deterministic striping of tiny examples.
    std::size_t start = r.next_index(upper.size());
    int placed = 0;
    while (placed < p.tor_uplinks) {
      const node_id u = upper[(start + rr++) % upper.size()];
      if (g.has_edge_between(tors[t], u)) continue;
      g.add_edge(tors[t], u, p.link_rate);
      ++placed;
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace pn
