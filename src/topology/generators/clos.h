// Folded-Clos / fat-tree generators.
//
// The baseline every expander paper compares against, and the design whose
// physical deployability story (§4.1, §4.3) the paper examines in detail.
#pragma once

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct clos_params {
  int pods = 4;
  int tors_per_pod = 4;
  int aggs_per_pod = 4;
  // Spine layer is organized in groups; aggregation switch j of every pod
  // connects to every switch in spine group j (requires aggs_per_pod ==
  // spine_groups).
  int spine_groups = 4;
  int spines_per_group = 4;
  int hosts_per_tor = 8;
  int tor_agg_links = 1;   // parallel links between a ToR and each pod agg
  int agg_spine_links = 1; // parallel links between an agg and each spine
  gbps link_rate{100.0};
};

// Builds a three-stage folded Clos. Switch radixes are derived from the
// wiring (no spare ports) unless a larger radix is forced via min_radix.
[[nodiscard]] network_graph build_clos(const clos_params& p,
                                       int min_radix = 0);

// Classic k-ary fat-tree (k even): k pods, (k/2)^2 spines, k/2 hosts/ToR.
[[nodiscard]] network_graph build_fat_tree(int k, gbps link_rate);

// Derives the parameter block for a fat-tree without building it.
[[nodiscard]] clos_params fat_tree_params(int k, gbps link_rate);

}  // namespace pn
