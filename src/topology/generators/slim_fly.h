// Slim Fly (Besta & Hoefler, SC'14): diameter-2 MMS graphs.
// One of the three expander families §4.2 asks "why aren't these in wide
// use?" about. We implement the McKay–Miller–Širáň construction for prime
// q with q ≡ 1 (mod 4) (δ = +1), which covers the sizes the paper's
// comparisons need (q = 5, 13, 17, 29 → 50…1682 switches).
#pragma once

#include "common/status.h"
#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct slim_fly_params {
  int q = 13;  // prime, q % 4 == 1; switches = 2*q^2, network degree (3q-1)/2
  int hosts_per_switch = 9;
  gbps link_rate{100.0};
};

// Fails with invalid_argument if q is not a prime ≡ 1 (mod 4).
[[nodiscard]] result<network_graph> build_slim_fly(const slim_fly_params& p);

// Network (inter-switch) degree for a given q.
[[nodiscard]] constexpr int slim_fly_degree(int q) { return (3 * q - 1) / 2; }

}  // namespace pn
