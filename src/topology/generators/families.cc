#include "topology/generators/families.h"

#include <algorithm>
#include <utility>

#include "topology/generators/clos.h"
#include "topology/generators/dragonfly.h"
#include "topology/generators/flattened_butterfly.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/jupiter.h"
#include "topology/generators/leaf_spine.h"
#include "topology/generators/slim_fly.h"
#include "topology/generators/vl2.h"
#include "topology/generators/xpander.h"

namespace pn {

result<network_graph> build_family(const std::string& family, int size,
                                   std::uint64_t seed) {
  if (family == "fat_tree") {
    if (size % 2 != 0) return invalid_argument_error("k must be even");
    return build_fat_tree(size, gbps{100.0});
  }
  if (family == "leaf_spine") {
    leaf_spine_params p;
    p.leaves = size;
    p.spines = std::max(2, size / 3);
    p.hosts_per_leaf = 16;
    return build_leaf_spine(p);
  }
  if (family == "jellyfish") {
    jellyfish_params p;
    p.switches = size;
    p.radix = 16;
    p.hosts_per_switch = 8;
    p.seed = seed;
    return build_jellyfish(p);
  }
  if (family == "xpander") {
    xpander_params p;
    p.degree = 8;
    p.lift_size = std::max(1, size / (p.degree + 1));
    p.hosts_per_switch = 8;
    p.seed = seed;
    return build_xpander(p);
  }
  if (family == "flattened_butterfly") {
    flattened_butterfly_params p;
    p.dims = {size, size};
    p.hosts_per_switch = 4;
    return build_flattened_butterfly(p);
  }
  if (family == "slim_fly") {
    slim_fly_params p;
    p.q = size;
    p.hosts_per_switch = 6;
    auto g = build_slim_fly(p);
    if (!g.is_ok()) return g.error();
    return std::move(g).value();
  }
  if (family == "vl2") {
    vl2_params p;
    p.tors = size;
    p.aggs = std::max(2, size / 4);
    p.intermediates = std::max(2, size / 8);
    return build_vl2(p);
  }
  if (family == "dragonfly") {
    auto g = build_dragonfly(balanced_dragonfly(3, size, gbps{100.0}));
    if (!g.is_ok()) return g.error();
    return std::move(g).value();
  }
  if (family == "jupiter_fat_tree" || family == "jupiter_direct") {
    jupiter_params p;
    p.agg_blocks = size;
    p.spine_blocks = std::max(2, size / 2);
    p.mode = family == "jupiter_direct" ? jupiter_mode::direct
                                        : jupiter_mode::fat_tree;
    return build_jupiter(p).graph;
  }
  return invalid_argument_error("unknown family: " + family);
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {
      "fat_tree",  "leaf_spine",          "jellyfish",
      "xpander",   "flattened_butterfly", "slim_fly",
      "vl2",       "dragonfly",           "jupiter_fat_tree",
      "jupiter_direct"};
  return names;
}

}  // namespace pn
