// Name-indexed construction of the benchmark topology families.
//
// One string + one size knob per family, with the same opinionated
// defaults (radix, hosts per switch, oversubscription) everywhere a
// design gets built from a name: the physnet_eval CLI, the
// physnet_client CLI, the service smoke script, and the benchmark
// drivers all go through here so "jellyfish/64" means the same graph in
// every context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "topology/graph.h"

namespace pn {

// fat_tree (size = k), leaf_spine (leaves), jellyfish / xpander
// (switches), flattened_butterfly (dim, 2-D), slim_fly (q), vl2 (tors),
// dragonfly (groups), jupiter_fat_tree / jupiter_direct (agg blocks).
// `seed` feeds the randomized families (jellyfish, xpander).
[[nodiscard]] result<network_graph> build_family(const std::string& family,
                                                 int size,
                                                 std::uint64_t seed);

// Every name build_family accepts, in display order (usage strings).
[[nodiscard]] const std::vector<std::string>& family_names();

}  // namespace pn
