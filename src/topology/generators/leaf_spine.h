// Two-tier leaf-spine fabric — the small/medium datacenter baseline the
// paper (and Harsh et al.'s "Spineless Data Centers") compare flat
// topologies against.
#pragma once

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct leaf_spine_params {
  int leaves = 16;
  int spines = 4;
  int links_per_pair = 1;  // parallel links leaf<->each spine
  int hosts_per_leaf = 24;
  gbps link_rate{100.0};
};

[[nodiscard]] network_graph build_leaf_spine(const leaf_spine_params& p);

}  // namespace pn
