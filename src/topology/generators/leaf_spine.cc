#include "topology/generators/leaf_spine.h"

#include "common/check.h"
#include "common/strings.h"

namespace pn {

network_graph build_leaf_spine(const leaf_spine_params& p) {
  PN_CHECK(p.leaves > 0 && p.spines > 0 && p.links_per_pair > 0);
  PN_CHECK(p.hosts_per_leaf >= 0);

  network_graph g;
  g.family = "leaf_spine";

  const int leaf_radix = p.hosts_per_leaf + p.spines * p.links_per_pair;
  const int spine_radix = p.leaves * p.links_per_pair;

  std::vector<node_id> leaves;
  for (int l = 0; l < p.leaves; ++l) {
    leaves.push_back(g.add_node({str_format("leaf%d", l), node_kind::tor,
                                 leaf_radix, p.link_rate, p.hosts_per_leaf, 0,
                                 l}));
  }
  std::vector<node_id> spines;
  for (int s = 0; s < p.spines; ++s) {
    spines.push_back(g.add_node({str_format("spine%d", s), node_kind::spine,
                                 spine_radix, p.link_rate, 0, 1,
                                 p.leaves + s}));
  }
  for (node_id leaf : leaves) {
    for (node_id spine : spines) {
      for (int l = 0; l < p.links_per_pair; ++l) {
        g.add_edge(leaf, spine, p.link_rate);
      }
    }
  }
  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace pn
