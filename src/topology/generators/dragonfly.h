// Dragonfly (Kim et al., ISCA'08): groups of fully-connected switches
// joined by a global link mesh. The canonical "short cables inside a
// group, long expensive cables between groups" design — exactly the
// copper/optics split §3.1 describes — and a natural companion to the
// flattened butterfly in the §4.2 comparison.
#pragma once

#include "common/status.h"
#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct dragonfly_params {
  int groups = 9;              // g
  int switches_per_group = 4;  // a (intra-group clique)
  int global_per_switch = 2;   // h global links per switch
  int hosts_per_switch = 4;    // p
  gbps link_rate{100.0};
};

// Global links are distributed over group pairs as evenly as integers
// allow (same circulant remainder scheme as the Jupiter direct mesh).
// Fails with invalid_argument when a*h cannot stripe over g-1 peers
// (odd remainder with an odd group count).
[[nodiscard]] result<network_graph> build_dragonfly(
    const dragonfly_params& p);

// The balanced sizing rule a = 2p = 2h for a given h.
[[nodiscard]] dragonfly_params balanced_dragonfly(int h, int groups,
                                                  gbps link_rate);

}  // namespace pn
