#include "topology/generators/flattened_butterfly.h"

#include <numeric>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

network_graph build_flattened_butterfly(
    const flattened_butterfly_params& p) {
  PN_CHECK(!p.dims.empty());
  int total = 1;
  int degree = 0;
  for (int d : p.dims) {
    PN_CHECK(d >= 2);
    total *= d;
    degree += d - 1;
  }

  network_graph g;
  g.family = "flattened_butterfly";
  const int radix = degree + p.hosts_per_switch;

  // Mixed-radix address per switch.
  auto address = [&](int index) {
    std::vector<int> a(p.dims.size());
    for (std::size_t d = 0; d < p.dims.size(); ++d) {
      a[d] = index % p.dims[d];
      index /= p.dims[d];
    }
    return a;
  };
  auto index_of = [&](const std::vector<int>& a) {
    int idx = 0;
    for (std::size_t d = p.dims.size(); d-- > 0;) {
      idx = idx * p.dims[d] + a[d];
    }
    return idx;
  };

  for (int i = 0; i < total; ++i) {
    const auto a = address(i);
    std::string name = "fb";
    for (int c : a) name += str_format("_%d", c);
    // block = first coordinate (a row of racks) for placement locality.
    g.add_node({name, node_kind::expander, radix, p.link_rate,
                p.hosts_per_switch, 0, a[0]});
  }

  // Connect nodes differing in exactly one coordinate (each dimension is a
  // clique). Add each edge once: only when the neighbor index is larger.
  for (int i = 0; i < total; ++i) {
    const auto a = address(i);
    for (std::size_t d = 0; d < p.dims.size(); ++d) {
      auto b = a;
      for (int v = a[d] + 1; v < p.dims[d]; ++v) {
        b[d] = v;
        g.add_edge(node_id{static_cast<std::size_t>(i)},
                   node_id{static_cast<std::size_t>(index_of(b))},
                   p.link_rate);
      }
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace pn
