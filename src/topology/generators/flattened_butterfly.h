// Flattened butterfly (Kim, Dally, Abts ISCA'07): a "flat" direct topology
// where switches sharing all but one coordinate of a k-ary n-cube address
// are fully connected. §4.1 cites Marty et al.: direct ToR-to-ToR wiring
// was "operationally challenging" — E5 quantifies its cabling footprint.
#pragma once

#include <vector>

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct flattened_butterfly_params {
  // Array dimensions; switches = product(dims). 2D {8,8} is the classic
  // within-datacenter arrangement (rows x columns of racks).
  std::vector<int> dims{8, 8};
  int hosts_per_switch = 12;  // "concentration"
  gbps link_rate{100.0};
};

[[nodiscard]] network_graph build_flattened_butterfly(
    const flattened_butterfly_params& p);

}  // namespace pn
