// Jellyfish: a uniform-random regular graph over ToR switches
// (Singla et al., NSDI'12). §4.2: its random wiring "deters the
// pre-placement of intra-datacenter fiber" — the physical-deployability
// benches quantify exactly that.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct jellyfish_params {
  int switches = 64;
  int radix = 32;          // total ports per switch
  int hosts_per_switch = 24;
  gbps link_rate{100.0};
  std::uint64_t seed = 1;
};

// Inter-switch degree is radix - hosts_per_switch. Uses the construction
// from the Jellyfish paper: connect random free-port pairs; when stuck,
// break a random existing edge to free compatible ports.
[[nodiscard]] network_graph build_jellyfish(const jellyfish_params& p);

// Incremental expansion (Jellyfish §"expandability"): add one switch by
// removing `degree/2` random existing edges and splicing the new switch
// into them. Returns the number of links removed (rewired).
int jellyfish_add_switch(network_graph& g, const jellyfish_params& p,
                         std::uint64_t seed);

}  // namespace pn
