#include "topology/generators/slim_fly.h"

#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

bool is_prime(int n) {
  if (n < 2) return false;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

// Smallest primitive root modulo prime q.
int primitive_root(int q) {
  // Factor q-1.
  std::vector<int> factors;
  int m = q - 1;
  for (int d = 2; d * d <= m; ++d) {
    if (m % d == 0) {
      factors.push_back(d);
      while (m % d == 0) m /= d;
    }
  }
  if (m > 1) factors.push_back(m);

  auto pow_mod = [&](long long base, long long exp) {
    long long out = 1;
    base %= q;
    while (exp > 0) {
      if (exp & 1) out = out * base % q;
      base = base * base % q;
      exp >>= 1;
    }
    return static_cast<int>(out);
  };

  for (int g = 2; g < q; ++g) {
    bool ok = true;
    for (int f : factors) {
      if (pow_mod(g, (q - 1) / f) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  PN_CHECK_MSG(false, "no primitive root found for prime " << q);
  return -1;
}

}  // namespace

result<network_graph> build_slim_fly(const slim_fly_params& p) {
  if (!is_prime(p.q) || p.q % 4 != 1) {
    return invalid_argument_error(str_format(
        "Slim Fly (delta=+1) needs a prime q with q %% 4 == 1; got %d", p.q));
  }
  const int q = p.q;

  // Generator sets: X = even powers of a primitive root xi (the quadratic
  // residues), X' = odd powers (non-residues). Both are symmetric sets
  // because -1 is a QR when q ≡ 1 (mod 4).
  const int xi = primitive_root(q);
  std::vector<bool> in_x(static_cast<std::size_t>(q), false);
  std::vector<bool> in_xp(static_cast<std::size_t>(q), false);
  {
    long long v = 1;
    for (int k = 0; k < q - 1; ++k) {
      if (k % 2 == 0) {
        in_x[static_cast<std::size_t>(v)] = true;
      } else {
        in_xp[static_cast<std::size_t>(v)] = true;
      }
      v = v * xi % q;
    }
  }

  network_graph g;
  g.family = "slim_fly";
  const int degree = slim_fly_degree(q);
  const int radix = degree + p.hosts_per_switch;

  // Group 0 node (x, y) and group 1 node (m, c).
  auto nid = [&](int group, int a, int b) {
    return node_id{
        static_cast<std::size_t>(group * q * q + a * q + b)};
  };
  for (int group = 0; group < 2; ++group) {
    for (int a = 0; a < q; ++a) {
      for (int b = 0; b < q; ++b) {
        // block: a column of q switches shares (group, a) — the natural
        // "subgroup" unit Slim Fly's own physical-layout discussion uses.
        g.add_node({str_format("sf%d_%d_%d", group, a, b),
                    node_kind::expander, radix, p.link_rate,
                    p.hosts_per_switch, 0, group * q + a});
      }
    }
  }

  // Intra-group edges: (0,x,y)~(0,x,y') iff y-y' in X;
  //                    (1,m,c)~(1,m,c') iff c-c' in X'.
  for (int a = 0; a < q; ++a) {
    for (int y = 0; y < q; ++y) {
      for (int yp = y + 1; yp < q; ++yp) {
        const int diff = (yp - y) % q;
        if (in_x[static_cast<std::size_t>(diff)]) {
          g.add_edge(nid(0, a, y), nid(0, a, yp), p.link_rate);
        }
        if (in_xp[static_cast<std::size_t>(diff)]) {
          g.add_edge(nid(1, a, y), nid(1, a, yp), p.link_rate);
        }
      }
    }
  }
  // Cross edges: (0,x,y)~(1,m,c) iff y = m*x + c (mod q).
  for (int x = 0; x < q; ++x) {
    for (int m = 0; m < q; ++m) {
      for (int c = 0; c < q; ++c) {
        const int y = (m * x + c) % q;
        g.add_edge(nid(0, x, y), nid(1, m, c), p.link_rate);
      }
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

}  // namespace pn
