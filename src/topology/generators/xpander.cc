#include "topology/generators/xpander.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pn {

network_graph build_xpander(const xpander_params& p) {
  PN_CHECK(p.degree >= 2);
  PN_CHECK(p.lift_size >= 1);
  PN_CHECK(p.hosts_per_switch >= 0);

  network_graph g;
  g.family = "xpander";
  rng r(p.seed);

  const int groups = p.degree + 1;
  const int radix = p.degree + p.hosts_per_switch;

  // node id of copy c in group m.
  auto nid = [&](int m, int c) {
    return node_id{static_cast<std::size_t>(m * p.lift_size + c)};
  };
  for (int m = 0; m < groups; ++m) {
    for (int c = 0; c < p.lift_size; ++c) {
      g.add_node({str_format("xp%d_%d", m, c), node_kind::expander, radix,
                  p.link_rate, p.hosts_per_switch, 0, m});
    }
  }

  // Each K_{d+1} meta-edge (m1, m2) lifts to a random perfect matching.
  std::vector<int> perm(static_cast<std::size_t>(p.lift_size));
  for (int m1 = 0; m1 < groups; ++m1) {
    for (int m2 = m1 + 1; m2 < groups; ++m2) {
      for (int c = 0; c < p.lift_size; ++c) {
        perm[static_cast<std::size_t>(c)] = c;
      }
      r.shuffle(perm);
      for (int c = 0; c < p.lift_size; ++c) {
        g.add_edge(nid(m1, c), nid(m2, perm[static_cast<std::size_t>(c)]),
                   p.link_rate);
      }
    }
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return g;
}

int xpander_add_switch(network_graph& g, const xpander_params& p, int group,
                       std::uint64_t seed) {
  PN_CHECK(group >= 0 && group <= p.degree);
  rng r(seed);
  const int radix = p.degree + p.hosts_per_switch;
  const node_id fresh =
      g.add_node({str_format("xp%d_new%zu", group, g.node_count()),
                  node_kind::expander, radix, p.link_rate,
                  p.hosts_per_switch, 0, group});

  // For each other group, steal one matching edge whose far endpoint is in
  // that group: disconnect it from its current near endpoint and attach to
  // the new switch, then reconnect the displaced near endpoint... The
  // published procedure nets out to ~d/2 rewired links; we count every
  // remove+re-add of an existing link as one rewire.
  int rewired = 0;
  for (int other = 0; other <= p.degree && g.free_ports(fresh) > 0; ++other) {
    if (other == group) continue;
    // Find an edge between `group` and `other` to splice.
    std::vector<edge_id> candidates;
    for (edge_id e : g.live_edges()) {
      const edge_info& info = g.edge(e);
      const int ba = g.node(info.a).block;
      const int bb = g.node(info.b).block;
      if ((ba == group && bb == other) || (ba == other && bb == group)) {
        if (info.a != fresh && info.b != fresh) candidates.push_back(e);
      }
    }
    if (candidates.empty()) continue;
    const edge_id victim = candidates[r.next_index(candidates.size())];
    const edge_info info = g.edge(victim);
    const node_id far = g.node(info.a).block == other ? info.a : info.b;
    if (g.has_edge_between(fresh, far)) continue;
    // Every second steal leaves the displaced endpoint for the next new
    // switch (ports alternate); we only count physical rewires.
    g.remove_edge(victim);
    g.add_edge(fresh, far, p.link_rate);
    ++rewired;
  }
  return rewired;
}

}  // namespace pn
