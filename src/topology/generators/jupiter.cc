#include "topology/generators/jupiter.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

namespace {

// Builds the aggregation blocks (ToRs + middle blocks) and returns the
// middle-block node ids per block.
std::vector<std::vector<node_id>> build_agg_blocks(const jupiter_params& p,
                                                   network_graph& g) {
  const int tor_radix = p.hosts_per_tor + p.mbs_per_block;
  const int mb_radix = p.tors_per_block + p.uplinks_per_mb;
  std::vector<std::vector<node_id>> mbs(
      static_cast<std::size_t>(p.agg_blocks));
  for (int b = 0; b < p.agg_blocks; ++b) {
    std::vector<node_id> tors;
    for (int t = 0; t < p.tors_per_block; ++t) {
      tors.push_back(g.add_node({str_format("ab%d/tor%d", b, t),
                                 node_kind::tor, tor_radix, p.link_rate,
                                 p.hosts_per_tor, 0, b}));
    }
    for (int m = 0; m < p.mbs_per_block; ++m) {
      const node_id mb = g.add_node({str_format("ab%d/mb%d", b, m),
                                     node_kind::aggregation, mb_radix,
                                     p.link_rate, 0, 1, b});
      mbs[static_cast<std::size_t>(b)].push_back(mb);
      for (node_id tor : tors) {
        g.add_edge(tor, mb, p.link_rate);
      }
    }
  }
  return mbs;
}

// Installs the inter-block links of a direct-mode fabric per pair_links.
void wire_direct(const jupiter_params& p,
                 const std::vector<std::vector<int>>& pair_links,
                 const std::vector<std::vector<node_id>>& mbs,
                 jupiter_fabric& f) {
  network_graph& g = f.graph;
  const int block_uplinks = p.mbs_per_block * p.uplinks_per_mb;
  f.edges_by_ocs.assign(static_cast<std::size_t>(p.ocs_count), {});
  int next_ocs = 0;
  std::vector<int> next_slot(static_cast<std::size_t>(p.agg_blocks), 0);
  auto take_mb = [&](int b) {
    const int slot = next_slot[static_cast<std::size_t>(b)]++;
    PN_CHECK_MSG(slot < block_uplinks,
                 "block " << b << " out of fabric uplinks");
    return mbs[static_cast<std::size_t>(b)]
              [static_cast<std::size_t>(slot / p.uplinks_per_mb)];
  };
  for (int b1 = 0; b1 < p.agg_blocks; ++b1) {
    for (int b2 = b1 + 1; b2 < p.agg_blocks; ++b2) {
      const int links = pair_links[static_cast<std::size_t>(b1)]
                                  [static_cast<std::size_t>(b2)];
      for (int l = 0; l < links; ++l) {
        edge_info e{take_mb(b1), take_mb(b2), p.link_rate,
                    /*via_indirection=*/true, next_ocs};
        const edge_id id = g.add_edge(e);
        f.edges_by_ocs[static_cast<std::size_t>(next_ocs)].push_back(id);
        next_ocs = (next_ocs + 1) % p.ocs_count;
      }
    }
  }
}

}  // namespace

std::vector<std::vector<int>> uniform_pair_links(const jupiter_params& p) {
  const int n = p.agg_blocks;
  const int block_uplinks = p.mbs_per_block * p.uplinks_per_mb;
  const int others = n - 1;
  const int base = block_uplinks / others;
  const int extra = block_uplinks % others;
  PN_CHECK_MSG(extra % 2 == 0 || n % 2 == 0,
               "cannot stripe " << block_uplinks << " uplinks evenly over "
                                << others
                                << " peer blocks (odd remainder with an "
                                   "odd number of blocks)");

  std::vector<std::vector<int>> pair_links(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 0));
  auto bump = [&](int i, int j) {
    if (i > j) std::swap(i, j);
    ++pair_links[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pair_links[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          base;
    }
  }
  // Circulant overlay for the remainder: a perfect matching when odd,
  // then +-o rings, each adding degree 2 per block.
  int remaining = extra;
  if (remaining % 2 == 1) {
    for (int i = 0; i < n / 2; ++i) bump(i, i + n / 2);
    --remaining;
  }
  for (int o = 1; remaining > 0; ++o) {
    PN_CHECK(o < (n + 1) / 2);
    for (int i = 0; i < n; ++i) bump(i, (i + o) % n);
    remaining -= 2;
  }
  return pair_links;
}

jupiter_fabric build_jupiter(const jupiter_params& p) {
  PN_CHECK(p.agg_blocks >= 2);
  PN_CHECK(p.tors_per_block > 0 && p.mbs_per_block > 0);
  PN_CHECK(p.uplinks_per_mb > 0 && p.ocs_count > 0);
  if (p.mode == jupiter_mode::fat_tree) PN_CHECK(p.spine_blocks > 0);

  jupiter_fabric f;
  f.params = p;
  network_graph& g = f.graph;
  g.family =
      p.mode == jupiter_mode::fat_tree ? "jupiter_fat_tree" : "jupiter_direct";

  const int block_uplinks = p.mbs_per_block * p.uplinks_per_mb;
  const auto mbs = build_agg_blocks(p, g);

  if (p.mode == jupiter_mode::fat_tree) {
    // Uplink u of every block lands on spine block u % spine_blocks. A
    // spine block is abstracted as one high-radix switch (its internal
    // stages do not matter to inter-block deployability).
    f.edges_by_ocs.assign(static_cast<std::size_t>(p.ocs_count), {});
    int next_ocs = 0;
    const int per_spine =
        (block_uplinks + p.spine_blocks - 1) / p.spine_blocks;
    const int spine_radix = p.agg_blocks * per_spine;
    std::vector<node_id> spines;
    for (int s = 0; s < p.spine_blocks; ++s) {
      spines.push_back(g.add_node({str_format("sb%d", s), node_kind::spine,
                                   spine_radix, p.link_rate, 0, 2,
                                   p.agg_blocks + s}));
    }
    for (int b = 0; b < p.agg_blocks; ++b) {
      for (int u = 0; u < block_uplinks; ++u) {
        const node_id mb = mbs[static_cast<std::size_t>(b)]
                              [static_cast<std::size_t>(u / p.uplinks_per_mb)];
        edge_info e{mb,
                    spines[static_cast<std::size_t>(u % p.spine_blocks)],
                    p.link_rate, /*via_indirection=*/true, next_ocs};
        const edge_id id = g.add_edge(e);
        f.edges_by_ocs[static_cast<std::size_t>(next_ocs)].push_back(id);
        next_ocs = (next_ocs + 1) % p.ocs_count;
      }
    }
  } else {
    wire_direct(p, uniform_pair_links(p), mbs, f);
  }

  PN_CHECK_MSG(g.validate().empty(), g.validate());
  return f;
}

result<jupiter_fabric> build_jupiter_direct_with_pairs(
    const jupiter_params& p, const std::vector<std::vector<int>>& pair_links) {
  PN_CHECK(p.agg_blocks >= 2);
  const auto n = static_cast<std::size_t>(p.agg_blocks);
  const int block_uplinks = p.mbs_per_block * p.uplinks_per_mb;
  if (pair_links.size() != n) {
    return invalid_argument_error("pair_links has wrong dimension");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (pair_links[i].size() != n) {
      return invalid_argument_error("pair_links has wrong dimension");
    }
    int degree = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const int w = pair_links[std::min(i, j)][std::max(i, j)];
      if (i == j) {
        if (pair_links[i][i] != 0) {
          return invalid_argument_error("pair_links diagonal must be zero");
        }
        continue;
      }
      if (w < 0) return invalid_argument_error("negative pair link count");
      degree += w;
    }
    if (degree > block_uplinks) {
      return invalid_argument_error(str_format(
          "block %zu needs %d uplinks but has %d", i, degree,
          block_uplinks));
    }
  }

  jupiter_fabric f;
  f.params = p;
  f.params.mode = jupiter_mode::direct;
  f.graph.family = "jupiter_direct";
  const auto mbs = build_agg_blocks(p, f.graph);
  wire_direct(p, pair_links, mbs, f);
  PN_CHECK_MSG(f.graph.validate().empty(), f.graph.validate());
  return f;
}

std::vector<std::size_t> ocs_fiber_counts(const jupiter_fabric& f) {
  std::vector<std::size_t> out;
  out.reserve(f.edges_by_ocs.size());
  for (const auto& edges : f.edges_by_ocs) {
    std::size_t alive = 0;
    for (edge_id e : edges) {
      if (f.graph.edge_alive(e)) ++alive;
    }
    out.push_back(alive);
  }
  return out;
}

}  // namespace pn
