// Xpander (Valadarsky et al., CoNEXT'16): a deterministic-structure
// expander built by random lifts of the complete graph K_{d+1}.
// §4.2: "Xpander requires as many as d/2 links to be rewired each time a
// d-port ToR is added" — xpander_add_switch reproduces that cost.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct xpander_params {
  int degree = 8;      // inter-switch ports per switch (d)
  int lift_size = 8;   // copies per meta-node (l); switches = (d+1)*l
  int hosts_per_switch = 24;
  gbps link_rate{100.0};
  std::uint64_t seed = 1;
};

// Builds the l-lift of K_{d+1}: meta-nodes become groups of l switches;
// each meta-edge becomes a random perfect matching between the two groups.
// Every switch ends with exactly `degree` inter-switch links, and the
// group structure (node_info::block = meta-node) is what makes Xpander
// more bundleable than Jellyfish.
[[nodiscard]] network_graph build_xpander(const xpander_params& p);

// Incremental expansion as described by the Xpander authors: grow one
// group by a switch, stealing one endpoint from an existing matching edge
// per needed port (~d/2 full rewires worth of moves, counted and
// returned).
int xpander_add_switch(network_graph& g, const xpander_params& p,
                       int group, std::uint64_t seed);

}  // namespace pn
